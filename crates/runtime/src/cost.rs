//! Dispatch-cost calibration and the parallelism profitability oracle.
//!
//! Every parallel region in the workspace used to guess its own grain
//! (`min_chunk`) with a hand-picked constant. On machines where the pool's
//! scoped fan-out costs more than the region saves, those guesses turn
//! speedups into slowdowns (the `t8 < t1` regression in
//! `BENCH_parallel.json`). This module replaces the guesses with one
//! oracle: a static FLOP/byte cost model joined with per-process dispatch
//! and throughput constants measured once by a seeded micro-benchmark.
//!
//! # The decision rule
//!
//! [`decide`] marks a region [`Decision::Sequential`] unless *all* of:
//!
//! * calibrated [`CostConstants::effective_parallelism`] ≥ 1.5 — the
//!   machine demonstrably runs concurrent work faster than serial work
//!   (a single-core host never qualifies, which is exactly the fix for
//!   the regression above);
//! * predicted region time exceeds a multiple of the scope-spawn cost
//!   ([`CostConstants::dispatch_ns`]) — tiny regions stay inline;
//! * the derived grain leaves at least two chunks — otherwise parallel
//!   dispatch cannot overlap anything.
//!
//! When it does parallelize, the grain is sized so each chunk amortizes
//! per-task overhead ([`CostConstants::task_ns`]) many times over.
//!
//! # Determinism
//!
//! The oracle feeds `min_chunk` values into [`crate::chunk_ranges`], so it
//! is only consulted at *result-grid-independent* sites: disjoint
//! `&mut` writes ([`crate::for_each_split`]) and per-item maps whose
//! outputs are concatenated in chunk order ([`crate::par_chunks`]).
//! Ordered floating-point reductions keep their constant grains — their
//! accumulation order must stay a pure function of input shape. The
//! constants are resolved once per process (override → env → calibrate)
//! and never re-read, so every region in a run sees one coherent model.
//!
//! # Fail-closed
//!
//! A missing, unparsable, or implausible `PACE_SCHED_COST` spec — and any
//! calibration that produces non-finite or out-of-range numbers — resolves
//! to [`CostConstants::fail_closed`], whose `effective_parallelism` of 1.0
//! forces every decision to `Sequential`. Wrong constants can therefore
//! cost speed, never correctness or a surprise fan-out.

use crate::flags::EnvSpec;
use std::sync::Mutex;
use std::time::Instant;

/// `PACE_SCHED_COST` — pins the cost model for CI stability instead of
/// calibrating. Format: five comma-separated numbers,
/// `dispatch_ns,task_ns,flops_per_ns,bytes_per_ns,effective_parallelism`
/// (e.g. `20000,400,4.0,8.0,4.0`). Implausible values fail closed to
/// sequential execution rather than erroring.
pub static SCHED_COST: EnvSpec = EnvSpec::new("PACE_SCHED_COST");

/// Calibrated machine constants consumed by the profitability oracle.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostConstants {
    /// Cost of one parallel-region fan-out (scope spawn + join), in ns.
    pub dispatch_ns: f64,
    /// Per-task overhead inside a region (slot locking, pull counter), ns.
    pub task_ns: f64,
    /// Sustained arithmetic throughput, FLOPs per ns (single thread).
    pub flops_per_ns: f64,
    /// Sustained memory bandwidth, bytes per ns (single thread).
    pub bytes_per_ns: f64,
    /// Measured parallel speedup of a saturating workload, clamped to
    /// `[1, hardware threads]`. 1.0 means "this machine gains nothing
    /// from the pool" and forces every decision to `Sequential`.
    pub effective_parallelism: f64,
}

impl CostConstants {
    /// The conservative sentinel used whenever calibration or the env
    /// override cannot be trusted: `effective_parallelism = 1.0` makes
    /// [`decide`] return `Sequential` for every region.
    pub fn fail_closed() -> Self {
        Self {
            dispatch_ns: 100_000.0,
            task_ns: 5_000.0,
            flops_per_ns: 1.0,
            bytes_per_ns: 1.0,
            effective_parallelism: 1.0,
        }
    }

    /// True when every constant is finite and inside the generous ranges
    /// any real machine satisfies. Anything else is stale or corrupt and
    /// must fail closed.
    pub fn plausible(&self) -> bool {
        let in_range = |v: f64, lo: f64, hi: f64| v.is_finite() && v >= lo && v <= hi;
        in_range(self.dispatch_ns, 1.0, 1e9)
            && in_range(self.task_ns, 1.0, 1e8)
            && in_range(self.flops_per_ns, 1e-3, 1e5)
            && in_range(self.bytes_per_ns, 1e-3, 1e5)
            && in_range(self.effective_parallelism, 1.0, 4096.0)
    }

    /// Parses the `PACE_SCHED_COST` spec (five comma-separated numbers).
    /// Returns `None` when the text does not parse or the parsed
    /// constants are implausible — callers fail closed on `None`.
    pub fn parse(spec: &str) -> Option<Self> {
        let mut it = spec.split(',').map(|f| f.trim().parse::<f64>());
        let mut next = || it.next()?.ok();
        let c = Self {
            dispatch_ns: next()?,
            task_ns: next()?,
            flops_per_ns: next()?,
            bytes_per_ns: next()?,
            effective_parallelism: next()?,
        };
        (it.next().is_none() && c.plausible()).then_some(c)
    }

    /// Serializes in the `PACE_SCHED_COST` format accepted by [`parse`].
    pub fn to_spec(&self) -> String {
        format!(
            "{:.1},{:.1},{:.4},{:.4},{:.3}",
            self.dispatch_ns,
            self.task_ns,
            self.flops_per_ns,
            self.bytes_per_ns,
            self.effective_parallelism
        )
    }
}

/// Static cost summary of one candidate parallel region: how many
/// independent items it has and what each item costs.
#[derive(Clone, Copy, Debug)]
pub struct RegionCost {
    /// Number of independent work items (rows, queries, tape steps).
    pub items: usize,
    /// Arithmetic per item, in floating-point operations.
    pub flops_per_item: f64,
    /// Memory traffic per item, in bytes.
    pub bytes_per_item: f64,
}

/// The oracle's verdict for a region.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Run inline; parallel dispatch would not pay for itself.
    Sequential,
    /// Fan out with the given `min_chunk` grain (items per chunk).
    Parallel {
        /// Minimum items per chunk, sized to amortize per-task overhead.
        min_chunk: usize,
    },
}

impl Decision {
    /// The `min_chunk` to pass to the pool: the parallel grain, or `len`
    /// (collapsing the grid to a single inline chunk) when sequential.
    pub fn grain(&self, len: usize) -> usize {
        match *self {
            Decision::Sequential => len.max(1),
            Decision::Parallel { min_chunk } => min_chunk.max(1),
        }
    }

    /// True for [`Decision::Parallel`].
    pub fn is_parallel(&self) -> bool {
        matches!(self, Decision::Parallel { .. })
    }
}

/// Predicted single-thread nanoseconds for one item of a region under the
/// given constants (the max of the compute and bandwidth bounds, floored
/// away from zero so grain division is always defined).
fn item_ns(c: &CostConstants, r: &RegionCost) -> f64 {
    let compute = r.flops_per_item.max(0.0) / c.flops_per_ns;
    let traffic = r.bytes_per_item.max(0.0) / c.bytes_per_ns;
    compute.max(traffic).max(0.5)
}

/// Predicted sequential nanoseconds for the whole region.
pub fn predicted_seq_ns(r: &RegionCost) -> f64 {
    let c = constants();
    item_ns(&c, r) * r.items as f64
}

/// Predicted speedup of the region if parallelized (Amdahl-free upper
/// bound: effective parallelism discounted by dispatch overhead). Used by
/// reporting; [`decide`] applies the go/no-go thresholds.
pub fn predicted_speedup(r: &RegionCost) -> f64 {
    let c = constants();
    let seq = item_ns(&c, r) * r.items as f64;
    if seq <= 0.0 {
        return 1.0;
    }
    let par = seq / c.effective_parallelism + c.dispatch_ns;
    (seq / par).max(0.0)
}

/// How many dispatch costs a region must be predicted to cover before the
/// oracle will fan it out.
const MIN_DISPATCH_RATIO: f64 = 4.0;
/// How many per-task overheads one chunk must amortize.
const TASK_AMORTIZATION: f64 = 8.0;
/// Minimum calibrated speedup for the machine to count as parallel.
const MIN_EFFECTIVE_PARALLELISM: f64 = 1.5;

/// The profitability oracle: marks a region `Sequential` or
/// `Parallel { min_chunk }` from the resolved [`constants`] (see the
/// module docs for the rule). Pure in the constants and the region — the
/// same process always answers the same, so chunk grids stay deterministic.
pub fn decide(r: RegionCost) -> Decision {
    let c = constants();
    if c.effective_parallelism < MIN_EFFECTIVE_PARALLELISM || r.items <= 1 {
        return Decision::Sequential;
    }
    let per_item = item_ns(&c, &r);
    let total = per_item * r.items as f64;
    if total < MIN_DISPATCH_RATIO * c.dispatch_ns {
        return Decision::Sequential;
    }
    let min_chunk = ((TASK_AMORTIZATION * c.task_ns / per_item).ceil() as usize).max(1);
    if r.items / min_chunk.max(1) < 2 {
        return Decision::Sequential;
    }
    Decision::Parallel { min_chunk }
}

/// Resolved constants for this process: a [`set_constants`] override wins,
/// then a plausible `PACE_SCHED_COST` spec, then one [`calibrate`] run.
/// Cached after first resolution.
pub fn constants() -> CostConstants {
    let mut cache = lock(&CACHE);
    if let Some(c) = *cache {
        return c;
    }
    let resolved = match SCHED_COST.get() {
        Some(spec) => CostConstants::parse(&spec).unwrap_or_else(CostConstants::fail_closed),
        None => calibrate(),
    };
    *cache = Some(resolved);
    resolved
}

/// Overrides (or with `None`, clears) the cached constants, taking
/// precedence over both `PACE_SCHED_COST` and calibration. Tests use this
/// to force parallel-friendly or fail-closed models; `xtask` uses it to
/// pin freshly calibrated constants for a report run.
pub fn set_constants(c: Option<CostConstants>) {
    *lock(&CACHE) = c;
}

static CACHE: Mutex<Option<CostConstants>> = Mutex::new(None);

fn lock(m: &Mutex<Option<CostConstants>>) -> std::sync::MutexGuard<'_, Option<CostConstants>> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Best-of-`reps` wall time of `f`, in nanoseconds.
fn best_ns(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_nanos() as f64);
    }
    best
}

/// Deterministic (LCG-seeded) pseudo-random f32 buffer for the throughput
/// probes — seeded so calibration inputs are reproducible even though the
/// measured *times* are machine facts.
fn seeded_buffer(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        })
        .collect()
}

/// Runs the seeded micro-benchmark and returns measured constants, failing
/// closed if any probe produces an implausible number. One-time cost is a
/// few milliseconds; [`constants`] caches the result for the process.
///
/// The probes, in order:
///
/// * **dispatch**: spawn + join an empty [`std::thread::scope`] region
///   with the machine's hardware thread count;
/// * **task**: per-task overhead of [`crate::for_each_owned`] no-ops;
/// * **flops**: fused multiply-add sweep over a seeded 64 Ki f32 buffer;
/// * **bytes**: streaming sum over a seeded 4 MiB buffer (past L1/L2);
/// * **effective parallelism**: speedup of a saturating compute loop
///   fanned over hardware threads vs. run serially — deliberately
///   measured against *hardware* parallelism, not `PACE_THREADS`, so the
///   answer reflects the machine rather than a test's thread override.
pub fn calibrate() -> CostConstants {
    let hw = std::thread::available_parallelism().map_or(1, usize::from);

    // Dispatch: empty scoped fan-out, hardware-wide.
    let dispatch_ns = best_ns(16, || {
        std::thread::scope(|s| {
            for _ in 0..hw {
                s.spawn(|| {});
            }
        });
    });

    // Per-task overhead: for_each_owned over no-op units, minus dispatch.
    const TASKS: usize = 256;
    let region_ns = best_ns(8, || {
        crate::for_each_owned(vec![(); TASKS], |_, ()| {});
    });
    let task_ns = ((region_ns - dispatch_ns) / TASKS as f64).max(20.0);

    // Arithmetic throughput: FMA sweep, 2 flops per element per pass.
    let buf = seeded_buffer(1 << 16, 0x5eed);
    const PASSES: usize = 8;
    let mut acc = 0.0f32;
    let flop_ns = best_ns(4, || {
        let mut a = 0.0f32;
        for _ in 0..PASSES {
            for &x in &buf {
                a = x.mul_add(1.000_1, a);
            }
        }
        acc += a;
    });
    let flops_per_ns = (2 * PASSES * buf.len()) as f64 / flop_ns.max(1.0);

    // Memory bandwidth: streaming sum over a 4 MiB buffer.
    let big = seeded_buffer(1 << 20, 0xfeed);
    let band_ns = best_ns(4, || {
        acc += big.iter().sum::<f32>();
    });
    let bytes_per_ns = (big.len() * 4) as f64 / band_ns.max(1.0);

    // Effective parallelism: saturating per-chunk compute, serial vs.
    // fanned over hardware threads through the pool itself.
    let eff = if hw <= 1 {
        1.0
    } else {
        let work = |lo: usize, hi: usize| -> f32 {
            let mut a = 0.0f32;
            for i in lo..hi {
                let x = buf[i & (buf.len() - 1)];
                for _ in 0..64 {
                    a = x.mul_add(1.000_1, a);
                }
            }
            a
        };
        let n = 1 << 15;
        let grid: Vec<(usize, usize)> = (0..hw).map(|i| (i * n / hw, (i + 1) * n / hw)).collect();
        let seq_ns = best_ns(4, || {
            acc += grid.iter().map(|&(lo, hi)| work(lo, hi)).sum::<f32>();
        });
        let saved = crate::threads();
        crate::set_threads(hw);
        let par_ns = best_ns(4, || {
            acc += crate::par_map(&grid, |_, &(lo, hi)| work(lo, hi))
                .into_iter()
                .sum::<f32>();
        });
        crate::set_threads(saved);
        (seq_ns / par_ns.max(1.0)).clamp(1.0, hw as f64)
    };
    // Keep the probe results observable so the loops cannot be optimized out.
    std::hint::black_box(acc);

    let measured = CostConstants {
        dispatch_ns: dispatch_ns.max(1.0),
        task_ns,
        flops_per_ns,
        bytes_per_ns,
        effective_parallelism: eff,
    };
    if measured.plausible() {
        measured
    } else {
        CostConstants::fail_closed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The constants cache and `SCHED_COST` spec are process-global; tests
    /// that mutate them must not interleave.
    static GLOBALS: Mutex<()> = Mutex::new(());

    fn serialize() -> std::sync::MutexGuard<'static, ()> {
        GLOBALS
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn parallel_friendly() -> CostConstants {
        CostConstants {
            dispatch_ns: 10_000.0,
            task_ns: 200.0,
            flops_per_ns: 4.0,
            bytes_per_ns: 8.0,
            effective_parallelism: 8.0,
        }
    }

    #[test]
    fn spec_round_trips_through_parse() {
        let c = parallel_friendly();
        let parsed = CostConstants::parse(&c.to_spec()).expect("round trip");
        assert!((parsed.dispatch_ns - c.dispatch_ns).abs() < 1.0);
        assert!((parsed.effective_parallelism - c.effective_parallelism).abs() < 1e-2);
    }

    #[test]
    fn implausible_specs_fail_closed() {
        for bad in [
            "",
            "1,2,3",
            "1,2,3,4,5,6",
            "nan,1,1,1,2",
            "1e12,1,1,1,2",
            "10,10,1,1,0.5",
            "10,10,1,1,inf",
            "banana,1,1,1,2",
        ] {
            assert_eq!(CostConstants::parse(bad), None, "spec {bad:?}");
        }
        assert!(!CostConstants {
            effective_parallelism: f64::NAN,
            ..CostConstants::fail_closed()
        }
        .plausible());
    }

    #[test]
    fn fail_closed_forces_sequential_everywhere() {
        let _g = serialize();
        set_constants(Some(CostConstants::fail_closed()));
        for items in [1usize, 100, 1 << 20] {
            let d = decide(RegionCost {
                items,
                flops_per_item: 1e6,
                bytes_per_item: 1e6,
            });
            assert_eq!(d, Decision::Sequential, "items={items}");
            assert_eq!(d.grain(items), items.max(1));
        }
        set_constants(None);
    }

    #[test]
    fn oracle_parallelizes_big_regions_and_inlines_small_ones() {
        let _g = serialize();
        set_constants(Some(parallel_friendly()));
        let big = decide(RegionCost {
            items: 4096,
            flops_per_item: 100_000.0,
            bytes_per_item: 1024.0,
        });
        assert!(big.is_parallel(), "{big:?}");
        if let Decision::Parallel { min_chunk } = big {
            assert!((1..=4096).contains(&min_chunk));
        }
        let tiny = decide(RegionCost {
            items: 8,
            flops_per_item: 10.0,
            bytes_per_item: 8.0,
        });
        assert_eq!(tiny, Decision::Sequential);
        set_constants(None);
    }

    #[test]
    fn grain_amortizes_task_overhead() {
        let _g = serialize();
        set_constants(Some(parallel_friendly()));
        // Cheap items: the grain must batch many of them per task.
        let d = decide(RegionCost {
            items: 1 << 20,
            flops_per_item: 4.0,
            bytes_per_item: 8.0,
        });
        if let Decision::Parallel { min_chunk } = d {
            assert!(
                min_chunk > 100,
                "cheap items need coarse chunks: {min_chunk}"
            );
        } else {
            panic!("huge region should parallelize: {d:?}");
        }
        // Expensive items: fine grains are fine.
        let d = decide(RegionCost {
            items: 256,
            flops_per_item: 1e7,
            bytes_per_item: 1e4,
        });
        if let Decision::Parallel { min_chunk } = d {
            assert_eq!(min_chunk, 1, "expensive items go one per chunk");
        } else {
            panic!("expensive region should parallelize: {d:?}");
        }
        set_constants(None);
    }

    #[test]
    fn calibration_produces_plausible_constants() {
        let _g = serialize();
        let c = calibrate();
        assert!(c.plausible(), "{c:?}");
        // Fail-closed output is itself plausible, so either branch is fine;
        // what matters is the oracle never sees garbage.
        let _ = decide(RegionCost {
            items: 64,
            flops_per_item: 1e5,
            bytes_per_item: 1e3,
        });
    }

    #[test]
    fn env_spec_override_beats_calibration() {
        let _g = serialize();
        SCHED_COST.set(Some("10000,200,4.0,8.0,8.0".to_string()));
        set_constants(None);
        let c = constants();
        assert!((c.effective_parallelism - 8.0).abs() < 1e-9);
        // Unparsable spec fails closed, not open.
        SCHED_COST.set(Some("garbage".to_string()));
        set_constants(None);
        assert_eq!(constants(), CostConstants::fail_closed());
        SCHED_COST.set(None);
        set_constants(None);
    }
}
