//! The pool's concurrency-safety instrumentation: a shadow write-set
//! checker (`PACE_RACE`) and a seeded adversarial scheduler (`PACE_SCHED`).
//!
//! # `PACE_RACE` — the shadow write-set checker
//!
//! Safe Rust already rules out unsynchronized aliasing, but the pool's
//! determinism contract needs more: each parallel region must hand its
//! tasks ranges that are **pairwise-disjoint** and **exactly cover**
//! `0..len`. A grid with a gap does not alias memory — `split_by_grid`
//! hands out sequential chunks whose *labels* silently drift from the data
//! they cover, so chunk `(lo, hi)` computes someone else's elements and the
//! result depends on the grid, not just the input. `PACE_RACE` catches
//! exactly that class of bug at run time, with the shared `0/1/strict`
//! grammar ([`crate::flags`]):
//!
//! * armed, every region records per task the slot index or `(lo, hi)`
//!   range the task received through [`crate::run`] / [`crate::par_map`] /
//!   [`crate::par_chunks`] / [`crate::for_each_split`], and after the scope
//!   joins verifies disjointness and exact coverage — a violation is a
//!   typed [`RaceReport`] (region site, overlapping tasks, ranges), printed
//!   under `PACE_RACE=1` and fatal under `PACE_RACE=strict`;
//! * disarmed, the whole apparatus is one relaxed atomic load per region.
//!
//! # `PACE_SCHED=<seed>` — the adversarial scheduler
//!
//! The determinism contract claims results are independent of which worker
//! executes which chunk and in what order. `PACE_SCHED` attacks that claim:
//! a nonzero seed makes [`crate::run`] execute tasks in a seeded
//! pseudo-random permutation of the pull order and inject randomized
//! `yield_now` points between pulls, so worker interleavings that would
//! take weeks to hit by luck happen on demand. Any result that changes
//! under a `PACE_SCHED` seed is an order-dependence bug; the
//! `xtask race-report` gate sweeps seeds × thread counts and requires
//! bit-identical output.

use crate::flags::{EnvFlag, EnvSpec};
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;

/// The shadow write-set checker switch (`PACE_RACE`, `0/1/strict`).
pub static RACE: EnvFlag = EnvFlag::new("PACE_RACE");

/// The adversarial-scheduler seed (`PACE_SCHED`; unset/`0` disables,
/// any other `u64` arms the permuted schedule with that seed).
pub static SCHED: EnvSpec = EnvSpec::new("PACE_SCHED");

/// True when the write-set checker is armed. One relaxed atomic load when
/// the answer is "no" — the per-region cost of a disarmed `PACE_RACE`.
#[inline]
pub fn armed() -> bool {
    RACE.enabled()
}

/// True when a write-set violation must panic (`PACE_RACE=strict`).
#[inline]
pub fn strict() -> bool {
    RACE.strict()
}

// `SCHED` is string-valued and mutex-guarded; the pool queries the seed at
// the top of every region, so the parsed value is cached behind atomics:
// one relaxed load per region once resolved.
const SCHED_UNREAD: u8 = 0;
const SCHED_OFF: u8 = 1;
const SCHED_ON: u8 = 2;
static SCHED_STATE: AtomicU8 = AtomicU8::new(SCHED_UNREAD);
static SCHED_SEED: AtomicU64 = AtomicU64::new(0);

/// The adversarial-scheduler seed, or `None` when scheduling is natural.
/// Resolves `PACE_SCHED` once; afterwards one or two relaxed atomic loads.
#[inline]
pub fn sched_seed() -> Option<u64> {
    match SCHED_STATE.load(Ordering::Relaxed) {
        SCHED_OFF => None,
        SCHED_ON => Some(SCHED_SEED.load(Ordering::Relaxed)),
        _ => {
            let seed = SCHED
                .get()
                .and_then(|v| v.trim().parse::<u64>().ok())
                .filter(|&s| s != 0);
            match seed {
                Some(s) => {
                    SCHED_SEED.store(s, Ordering::Relaxed);
                    SCHED_STATE.store(SCHED_ON, Ordering::Relaxed);
                }
                None => SCHED_STATE.store(SCHED_OFF, Ordering::Relaxed),
            }
            seed
        }
    }
}

/// Overrides the adversarial-scheduler seed for this process (`None` or
/// `Some(0)` restores natural scheduling) — the lever `xtask race-report`
/// sweeps. Results must be unaffected by construction; only interleavings
/// change.
pub fn set_sched(seed: Option<u64>) {
    let seed = seed.filter(|&s| s != 0);
    SCHED.set(seed.map(|s| s.to_string()));
    match seed {
        Some(s) => {
            SCHED_SEED.store(s, Ordering::Relaxed);
            SCHED_STATE.store(SCHED_ON, Ordering::Relaxed);
        }
        None => SCHED_STATE.store(SCHED_OFF, Ordering::Relaxed),
    }
}

// ---- the write-set checker --------------------------------------------------

/// One recorded hand-off: pool task `task` received the half-open range
/// `[lo, hi)` of the region's output (indices for slot-per-task regions,
/// element offsets for split-buffer regions).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaskSpan {
    /// Pool task index within the region.
    pub task: usize,
    /// Inclusive start of the range the task received.
    pub lo: usize,
    /// Exclusive end of the range the task received.
    pub hi: usize,
}

/// Two tasks whose recorded ranges intersect.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Overlap {
    /// The earlier-starting task and its range.
    pub a: TaskSpan,
    /// The task whose range intersects `a`.
    pub b: TaskSpan,
}

/// A write-set violation in one parallel region: the typed finding the
/// armed checker produces (printed under `PACE_RACE=1`, fatal under
/// `PACE_RACE=strict`).
#[derive(Clone, Debug, Default)]
pub struct RaceReport {
    /// The region's call site (`file:line:col` of the fan-out).
    pub site: String,
    /// Length of the output the region's ranges must tile (`0..len`).
    pub len: usize,
    /// Pairs of tasks with intersecting ranges (duplicate task execution
    /// shows up here as two spans of the same slot).
    pub overlaps: Vec<Overlap>,
    /// `[lo, hi)` holes no task received (a missed task or a grid gap).
    pub gaps: Vec<(usize, usize)>,
    /// Spans reaching past `len` or inverted (`hi < lo`).
    pub out_of_bounds: Vec<TaskSpan>,
}

impl RaceReport {
    /// True when the region's write set is clean.
    pub fn is_clean(&self) -> bool {
        self.overlaps.is_empty() && self.gaps.is_empty() && self.out_of_bounds.is_empty()
    }
}

impl fmt::Display for RaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PACE_RACE: write-set violation in parallel region at {} (len {})",
            self.site, self.len
        )?;
        for o in &self.overlaps {
            write!(
                f,
                "\n  overlap: task {} [{}, {}) intersects task {} [{}, {})",
                o.a.task, o.a.lo, o.a.hi, o.b.task, o.b.lo, o.b.hi
            )?;
        }
        for &(lo, hi) in &self.gaps {
            write!(f, "\n  gap: [{lo}, {hi}) received by no task")?;
        }
        for s in &self.out_of_bounds {
            write!(
                f,
                "\n  out of bounds: task {} [{}, {}) outside 0..{}",
                s.task, s.lo, s.hi, self.len
            )?;
        }
        Ok(())
    }
}

/// Verifies that `spans` are pairwise-disjoint and exactly cover `0..len`.
/// Empty spans (`lo == hi`) are ignored — a zero-length hand-off writes
/// nothing and cannot race.
///
/// # Errors
/// Returns the full [`RaceReport`] (every overlap, gap, and out-of-bounds
/// span, not just the first) when the write set is dirty.
pub fn check_write_set(site: &str, len: usize, spans: &[TaskSpan]) -> Result<(), RaceReport> {
    let mut report = RaceReport {
        site: site.to_string(),
        len,
        ..RaceReport::default()
    };
    let mut sorted: Vec<TaskSpan> = spans.iter().copied().filter(|s| s.lo != s.hi).collect();
    for s in &sorted {
        if s.hi < s.lo || s.hi > len {
            report.out_of_bounds.push(*s);
        }
    }
    sorted.retain(|s| s.lo <= s.hi);
    sorted.sort_by_key(|s| (s.lo, s.hi, s.task));
    let mut covered = 0usize; // everything below this offset is tiled
    let mut prev: Option<TaskSpan> = None;
    for s in &sorted {
        if let Some(p) = prev {
            if s.lo < p.hi {
                report.overlaps.push(Overlap { a: p, b: *s });
            }
        }
        if s.lo > covered {
            report.gaps.push((covered, s.lo));
        }
        covered = covered.max(s.hi);
        prev = Some(*s);
    }
    if covered < len {
        report.gaps.push((covered, len));
    }
    if report.is_clean() {
        Ok(())
    } else {
        Err(report)
    }
}

/// Dispatches a dirty write set per the `PACE_RACE` mode: panic when
/// strict, print when merely armed.
///
/// # Panics
/// Panics with the rendered report under `PACE_RACE=strict`.
pub fn handle(report: &RaceReport) {
    assert!(!strict(), "{report}");
    eprintln!("{report}");
}

/// The armed checker's per-region state: tasks record the ranges they
/// receive while the region runs; [`RegionRecorder::finish`] verifies the
/// write set after the scope joins.
pub struct RegionRecorder {
    site: String,
    len: usize,
    spans: Mutex<Vec<TaskSpan>>,
}

impl RegionRecorder {
    /// Opens a recorder for a region writing `0..len`, labeled with its
    /// call site.
    pub fn new(site: String, len: usize) -> Self {
        Self {
            site,
            len,
            spans: Mutex::new(Vec::new()),
        }
    }

    /// Records that `task` received `[lo, hi)`. Called from worker threads;
    /// the mutex is armed-mode-only cost.
    pub fn record(&self, task: usize, lo: usize, hi: usize) {
        crate::lock_ignore_poison(&self.spans).push(TaskSpan { task, lo, hi });
    }

    /// Verifies the recorded write set after the region joined, dispatching
    /// any violation through [`handle`].
    pub fn finish(self) {
        let spans = self.spans.into_inner().unwrap_or_else(|p| p.into_inner());
        if let Err(report) = check_write_set(&self.site, self.len, &spans) {
            handle(&report);
        }
    }
}

/// Formats a region call site for [`RaceReport::site`].
pub(crate) fn site_label(primitive: &str, loc: &std::panic::Location<'_>) -> String {
    format!(
        "{primitive} @ {}:{}:{}",
        loc.file(),
        loc.line(),
        loc.column()
    )
}

// ---- the adversarial scheduler ----------------------------------------------

/// xorshift64* step — the zero-dependency PRNG behind the schedule fuzzer
/// (scheduling only; never used for anything that affects results).
fn xorshift(mut s: u64) -> u64 {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    s
}

/// A seeded permutation of `0..n` (Fisher–Yates over xorshift64*): the
/// adversarial task-execution order for one region. Deterministic in
/// `(n, seed)`, so a failing seed reproduces exactly.
pub fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut p: Vec<usize> = (0..n).collect();
    let mut s = seed ^ 0x9e37_79b9_7f4a_7c15 ^ (n as u64).wrapping_mul(0xa076_1d64_78bd_642f);
    for i in (1..n).rev() {
        s = xorshift(s);
        let j = (s % (i as u64 + 1)) as usize;
        p.swap(i, j);
    }
    p
}

/// Per-worker yield injector: between chunk pulls it pseudo-randomly
/// yields the thread (sometimes twice) to force interleavings the natural
/// schedule rarely produces. Seeded per `(region seed, worker)`, stepped
/// per task — deterministic, but adversarial.
pub struct SchedJitter {
    state: u64,
}

impl SchedJitter {
    /// A jitter stream for one worker of one region.
    pub fn new(seed: u64, worker: u64) -> Self {
        Self {
            state: xorshift(seed ^ worker.wrapping_mul(0xd6e8_feb8_6659_fd93) | 1),
        }
    }

    /// Maybe yields before the pulled task `i` runs.
    pub fn yield_before(&mut self, i: usize) {
        self.state = xorshift(self.state ^ (i as u64).wrapping_mul(0x2545_f491_4f6c_dd1d));
        match self.state % 8 {
            0 | 1 => std::thread::yield_now(),
            2 => {
                std::thread::yield_now();
                std::thread::yield_now();
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(task: usize, lo: usize, hi: usize) -> TaskSpan {
        TaskSpan { task, lo, hi }
    }

    #[test]
    fn clean_tiling_passes() {
        let spans = [span(0, 0, 4), span(1, 4, 9), span(2, 9, 10)];
        assert!(check_write_set("t", 10, &spans).is_ok());
        // Order of recording must not matter.
        let shuffled = [span(2, 9, 10), span(0, 0, 4), span(1, 4, 9)];
        assert!(check_write_set("t", 10, &shuffled).is_ok());
        // Empty regions and empty spans are fine.
        assert!(check_write_set("t", 0, &[]).is_ok());
        assert!(check_write_set("t", 4, &[span(0, 0, 4), span(1, 2, 2)]).is_ok());
    }

    #[test]
    fn overlap_gap_and_bounds_are_all_reported() {
        let spans = [span(0, 0, 6), span(1, 4, 8), span(2, 9, 12)];
        let report = check_write_set("matrix.rs:1:1", 11, &spans).expect_err("dirty set");
        assert_eq!(report.overlaps.len(), 1);
        assert_eq!(report.overlaps[0].a.task, 0);
        assert_eq!(report.overlaps[0].b.task, 1);
        assert_eq!(report.gaps, vec![(8, 9)]);
        assert_eq!(report.out_of_bounds, vec![span(2, 9, 12)]);
        let rendered = report.to_string();
        assert!(rendered.contains("overlap: task 0 [0, 6) intersects task 1 [4, 8)"));
        assert!(rendered.contains("gap: [8, 9)"));
        assert!(rendered.contains("out of bounds"));
    }

    #[test]
    fn missing_and_duplicated_tasks_are_caught() {
        // Slot-per-task accounting: task 1 never ran, task 2 ran twice.
        let spans = [span(0, 0, 1), span(2, 2, 3), span(2, 2, 3)];
        let report = check_write_set("run", 3, &spans).expect_err("dirty");
        assert_eq!(report.gaps, vec![(1, 2)]);
        assert_eq!(report.overlaps.len(), 1);
    }

    #[test]
    fn permutation_is_a_permutation_and_seed_sensitive() {
        for n in [0usize, 1, 2, 17, 100] {
            for seed in [1u64, 7, 0xdead_beef] {
                let p = permutation(n, seed);
                let mut sorted = p.clone();
                sorted.sort_unstable();
                assert_eq!(sorted, (0..n).collect::<Vec<_>>(), "n={n} seed={seed}");
                assert_eq!(p, permutation(n, seed), "deterministic in (n, seed)");
            }
        }
        assert_ne!(permutation(100, 1), permutation(100, 2));
        assert_ne!(permutation(100, 1), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sched_seed_override_roundtrips() {
        set_sched(Some(41));
        assert_eq!(sched_seed(), Some(41));
        set_sched(Some(0));
        assert_eq!(sched_seed(), None);
        set_sched(Some(7));
        assert_eq!(sched_seed(), Some(7));
        set_sched(None);
        assert_eq!(sched_seed(), None);
    }
}
