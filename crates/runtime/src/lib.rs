//! `pace-runtime` — the deterministic parallel runtime behind every PACE
//! hot path (re-exported as `pace_tensor::pool`).
//!
//! # The determinism contract
//!
//! Every primitive in this module produces results that are **bit-identical
//! for any thread count**, including fully sequential execution. Two rules
//! make that hold:
//!
//! 1. **Chunk boundaries are derived from input size, never thread count.**
//!    [`chunk_ranges`] partitions `0..len` into a grid that depends only on
//!    `len` and the caller's (constant) minimum chunk size. Threads pull
//!    whole chunks from a shared counter; which worker computes a chunk can
//!    vary run to run, but *what* each chunk computes cannot.
//! 2. **Reductions are ordered.** Per-chunk partial results land in a slot
//!    indexed by chunk id, and the caller folds them in ascending chunk
//!    order after the fan-out completes ([`par_chunks`] returns them in that
//!    order). Floating-point accumulation order is therefore a pure function
//!    of the input shape.
//!
//! Consequently `PACE_THREADS=1` and `PACE_THREADS=64` runs of labeling,
//! training, and campaigns are byte-identical — the property the chaos
//! matrix, campaign resume, and tape-replay parity gates all rely on
//! (`cargo run -p xtask -- determinism` checks it in CI).
//!
//! # Concurrency-safety instrumentation
//!
//! The contract is machine-checked from two directions (see [`race`]):
//!
//! * `PACE_RACE=<0|1|strict>` arms a shadow write-set checker: every region
//!   records the slot indices and `(lo, hi)` ranges its tasks receive and
//!   verifies after scope join that they are pairwise-disjoint and exactly
//!   cover `0..len`. Disarmed cost is one relaxed atomic load per region.
//! * `PACE_SCHED=<seed>` turns the work-pulling loop adversarial: task
//!   execution order is permuted by a seeded PRNG and randomized yields are
//!   injected between pulls. Results must not change — `xtask race-report`
//!   sweeps seeds × thread counts and asserts bit-identical output.
//!
//! A panicking pool task no longer tears down the scope with a generic
//! "scoped thread panicked" message: each task runs under `catch_unwind`,
//! the **lowest-indexed** panic payload is kept (deterministic no matter
//! which worker hit it first), and [`run`] re-raises it after the region
//! joins.
//!
//! # Thread-count resolution (`PACE_THREADS`)
//!
//! * `0` or unset — auto: [`std::thread::available_parallelism`];
//! * `1` — fully sequential (no worker threads are ever spawned);
//! * `N` — exactly `N` workers per parallel region.
//!
//! The variable is read once, on first use; tests and benchmarks override
//! it at any time with [`set_threads`]. An explicit [`set_threads`] always
//! wins over a concurrent first-use env resolution (the resolver publishes
//! with a compare-exchange and defers to any value that beat it in).
//!
//! # Why scoped fan-out rather than persistent workers
//!
//! The workspace forbids `unsafe` code, and lending stack-borrowed closures
//! to long-lived worker threads cannot be expressed safely without it (this
//! is the unsafe core of rayon). Instead each parallel region performs one
//! `std::thread::scope` fan-out — the only place in the workspace allowed
//! to touch raw threads (`xtask lint` enforces this). Regions are coarse
//! (a chunk of queries, a panel of matrix rows), so the few-microsecond
//! spawn cost is noise; the env-var parse and thread-count decision happen
//! once per process.
//!
//! Parallel regions do not nest: a worker thread that reaches another
//! parallel region runs it inline. Because of the determinism contract this
//! changes nothing about the results — only about who computes them.

#![warn(missing_docs)]

pub mod cost;
pub mod flags;
pub mod race;

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// Sentinel meaning "PACE_THREADS not resolved yet".
const UNRESOLVED: usize = usize::MAX;

/// Resolved worker count (never [`UNRESOLVED`] after first use).
static THREADS: AtomicUsize = AtomicUsize::new(UNRESOLVED);

thread_local! {
    /// True on a pool worker thread; nested regions run inline.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Auto thread count: the machine's available parallelism.
fn auto_threads() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// The configured worker count: `PACE_THREADS` resolved once (`0`/unset →
/// available parallelism), or the latest [`set_threads`] override.
pub fn threads() -> usize {
    match THREADS.load(Ordering::Relaxed) {
        UNRESOLVED => {
            let parsed = std::env::var("PACE_THREADS")
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .unwrap_or(0);
            let resolved = if parsed == 0 { auto_threads() } else { parsed };
            // Publish only if still unresolved: a concurrent `set_threads`
            // override must not be clobbered by a late env-derived store.
            match THREADS.compare_exchange(
                UNRESOLVED,
                resolved,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => resolved,
                Err(current) => current,
            }
        }
        n => n,
    }
}

/// Overrides the worker count for this process (`0` restores auto), taking
/// precedence over `PACE_THREADS`. Results are unaffected by construction —
/// this is a performance knob and the lever determinism tests sweep.
pub fn set_threads(n: usize) {
    let resolved = if n == 0 { auto_threads() } else { n };
    THREADS.store(resolved, Ordering::Relaxed);
}

/// Puts thread-count resolution back in the "never resolved" state so tests
/// can exercise the first-use path. Not part of the public API.
#[doc(hidden)]
pub fn unresolve_threads_for_tests() {
    THREADS.store(UNRESOLVED, Ordering::Relaxed);
}

/// True when called from inside a pool worker (used to run nested parallel
/// regions inline instead of over-subscribing).
pub fn in_worker() -> bool {
    IN_POOL.with(Cell::get)
}

/// Target number of chunks per region. More chunks than any sane thread
/// count, so the work-pulling counter load-balances uneven chunks; a
/// constant, so the grid never depends on the thread count.
const TARGET_CHUNKS: usize = 32;

/// Partitions `0..len` into contiguous `(start, end)` ranges — the fixed
/// work grid of a parallel region. The grid depends only on `len` and
/// `min_chunk` (which callers fix per call site): at most [`TARGET_CHUNKS`]
/// chunks, each at least `min_chunk` items (except possibly the last),
/// sized as evenly as integer division allows.
pub fn chunk_ranges(len: usize, min_chunk: usize) -> Vec<(usize, usize)> {
    if len == 0 {
        return Vec::new();
    }
    let min_chunk = min_chunk.max(1);
    let chunks = (len / min_chunk).clamp(1, TARGET_CHUNKS);
    let base = len / chunks;
    let extra = len % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let size = base + usize::from(i < extra);
        out.push((start, start + size));
        start += size;
    }
    out
}

/// Splits one output buffer into the disjoint `&mut` chunks of a grid
/// (normally from [`chunk_ranges`]), pairing each chunk with its `lo`
/// offset. This is the sanctioned hand-off for parallel `&mut` access:
/// split before the fan-out, move each chunk into its task.
///
/// The split is sequential by chunk *size*, so a grid with a gap or overlap
/// silently mislabels chunks — exactly the bug class the `PACE_RACE`
/// write-set checker (and the [`for_each_split`] wrapper) exists to catch.
pub fn split_by_grid<'a, T>(
    data: &'a mut [T],
    grid: &[(usize, usize)],
) -> Vec<(usize, &'a mut [T])> {
    let mut rest = data;
    let mut parts = Vec::with_capacity(grid.len());
    for &(lo, hi) in grid {
        let (head, tail) = rest.split_at_mut(hi - lo);
        parts.push((lo, head));
        rest = tail;
    }
    parts
}

/// One pull permutation + jitter stream per region when `PACE_SCHED` is
/// armed; `None` under natural scheduling.
fn adversarial_order(tasks: usize) -> Option<Vec<usize>> {
    race::sched_seed().map(|seed| race::permutation(tasks, seed))
}

/// Executes `f(0)`, …, `f(tasks - 1)`, each exactly once, distributing
/// tasks over `min(threads(), tasks)` workers. Runs inline when the pool is
/// sequential, the region is trivial, or we are already on a worker.
///
/// Task *results* must be communicated through disjoint slots (as the
/// higher-level primitives do); the execution order of tasks is unspecified
/// (and actively permuted under `PACE_SCHED`). A panicking task propagates
/// the panic to the caller once the region joins — the lowest-indexed
/// panic wins when several tasks panic — but fallible work should return
/// `Result` via [`par_try_map`] instead of panicking.
#[track_caller]
pub fn run(tasks: usize, f: impl Fn(usize) + Sync) {
    let caller = std::panic::Location::caller();
    let workers = if in_worker() { 1 } else { threads().min(tasks) };
    let recorder =
        race::armed().then(|| race::RegionRecorder::new(race::site_label("run", caller), tasks));
    let perm = adversarial_order(tasks);
    if workers <= 1 {
        for slot in 0..tasks {
            let i = perm.as_ref().map_or(slot, |p| p[slot]);
            f(i);
            if let Some(r) = &recorder {
                r.record(i, i, i + 1);
            }
        }
        pace_trace::POOL_TASKS.add(tasks as u64);
        pace_trace::POOL_INLINE_TASKS.record(tasks as u64);
        if let Some(r) = recorder {
            r.finish();
        }
        return;
    }
    let next = AtomicUsize::new(0);
    // Lowest-indexed panic payload across workers; re-raised after join.
    let panicked: Mutex<Option<(usize, Box<dyn std::any::Any + Send>)>> = Mutex::new(None);
    let seed = race::sched_seed();
    std::thread::scope(|s| {
        for w in 0..workers {
            let recorder = recorder.as_ref();
            let perm = perm.as_ref();
            let (next, panicked, f) = (&next, &panicked, &f);
            s.spawn(move || {
                IN_POOL.with(|c| c.set(true));
                let mut jitter = seed.map(|sd| race::SchedJitter::new(sd, w as u64));
                let mut pulled: u64 = 0;
                loop {
                    let slot = next.fetch_add(1, Ordering::Relaxed);
                    if slot >= tasks {
                        break;
                    }
                    let i = perm.map_or(slot, |p| p[slot]);
                    if let Some(j) = &mut jitter {
                        j.yield_before(i);
                    }
                    // A panicking task only touched its own disjoint slot,
                    // so resuming the unwind at the caller is sound.
                    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i))) {
                        Ok(()) => {
                            if let Some(r) = recorder {
                                r.record(i, i, i + 1);
                            }
                            pulled += 1;
                        }
                        Err(payload) => {
                            let mut lowest = lock_ignore_poison(panicked);
                            if lowest.as_ref().is_none_or(|&(idx, _)| i < idx) {
                                *lowest = Some((i, payload));
                            }
                            break;
                        }
                    }
                }
                pace_trace::POOL_TASKS.add(pulled);
                pace_trace::POOL_CHUNKS_PER_WORKER.record(pulled);
            });
        }
    });
    if let Some((_, payload)) = panicked
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
    {
        std::panic::resume_unwind(payload);
    }
    if let Some(r) = recorder {
        r.finish();
    }
}

/// Takes the lock even when a sibling worker panicked (the panic will
/// propagate at scope join regardless).
pub(crate) fn lock_ignore_poison<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Runs `f(i, item)` for each owned item, one task per item. Ownership
/// transfer is what lets callers hand each task a disjoint `&mut` sub-slice
/// of one output buffer (split before the fan-out) — [`for_each_split`]
/// packages that pattern, write-set checking included.
#[track_caller]
pub fn for_each_owned<T: Send>(items: Vec<T>, f: impl Fn(usize, T) + Sync) {
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    run(slots.len(), |i| {
        let item = lock_ignore_poison(&slots[i])
            .take()
            .expect("pool task item taken exactly once");
        f(i, item);
    });
}

/// Splits `data` over `grid` (see [`split_by_grid`]) and runs
/// `f(lo, chunk)` for each part in parallel — the checked primitive for
/// writing one buffer from many tasks. When `PACE_RACE` is armed the
/// region records the `(lo, lo + chunk.len())` range each task received
/// and verifies after join that the ranges tile `0..data.len()` exactly;
/// a gap or overlap in a hand-rolled grid becomes a typed `RaceReport`
/// instead of silently misplaced writes.
#[track_caller]
pub fn for_each_split<T: Send>(
    data: &mut [T],
    grid: &[(usize, usize)],
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    let caller = std::panic::Location::caller();
    let recorder = race::armed()
        .then(|| race::RegionRecorder::new(race::site_label("for_each_split", caller), data.len()));
    let parts = split_by_grid(data, grid);
    let rec = recorder.as_ref();
    for_each_owned(parts, |task, (lo, chunk)| {
        if let Some(r) = rec {
            r.record(task, lo, lo + chunk.len());
        }
        f(lo, chunk);
    });
    if let Some(r) = recorder {
        r.finish();
    }
}

/// Maps `f` over `items` in parallel (one task per item — for coarse-grained
/// items like experiment cells), returning results in **input order**.
#[track_caller]
pub fn par_map<T: Sync, R: Send>(items: &[T], f: impl Fn(usize, &T) -> R + Sync) -> Vec<R> {
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    run(items.len(), |i| {
        let r = f(i, &items[i]);
        *lock_ignore_poison(&slots[i]) = Some(r);
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .expect("pool task completed")
        })
        .collect()
}

/// Fallible [`par_map`]: every item runs to completion, then the result is
/// `Ok(all results in input order)` or the error of the **lowest-indexed**
/// failing item — deterministic no matter which worker failed first. Pool
/// workers therefore surface typed errors (e.g. a `ProbeError` from a
/// fault-injected oracle) instead of panicking the process.
#[track_caller]
pub fn par_try_map<T: Sync, R: Send, E: Send>(
    items: &[T],
    f: impl Fn(usize, &T) -> Result<R, E> + Sync,
) -> Result<Vec<R>, E> {
    let slots: Vec<Mutex<Option<Result<R, E>>>> = items.iter().map(|_| Mutex::new(None)).collect();
    run(items.len(), |i| {
        let r = f(i, &items[i]);
        *lock_ignore_poison(&slots[i]) = Some(r);
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .expect("pool task completed")
        })
        .collect()
}

/// Runs `f(start, end)` over the fixed chunk grid of `0..len` (see
/// [`chunk_ranges`]) and returns one result per chunk **in chunk order** —
/// the ordered-reduction primitive: fold the returned vector sequentially
/// and the accumulation order is independent of the thread count. When
/// `PACE_RACE` is armed the grid itself is verified to tile `0..len`.
#[track_caller]
pub fn par_chunks<R: Send>(
    len: usize,
    min_chunk: usize,
    f: impl Fn(usize, usize) -> R + Sync,
) -> Vec<R> {
    let grid = chunk_ranges(len, min_chunk);
    if race::armed() {
        let spans: Vec<race::TaskSpan> = grid
            .iter()
            .enumerate()
            .map(|(task, &(lo, hi))| race::TaskSpan { task, lo, hi })
            .collect();
        let site = race::site_label("par_chunks", std::panic::Location::caller());
        if let Err(report) = race::check_write_set(&site, len, &spans) {
            race::handle(&report);
        }
    }
    par_map(&grid, |_, &(lo, hi)| f(lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn chunk_grid_covers_exactly_once() {
        for len in [0usize, 1, 2, 7, 31, 32, 33, 1000, 4096] {
            for min in [1usize, 4, 100] {
                let grid = chunk_ranges(len, min);
                let mut pos = 0;
                for &(lo, hi) in &grid {
                    assert_eq!(lo, pos, "gap in grid for len={len}");
                    assert!(hi > lo, "empty chunk for len={len}");
                    pos = hi;
                }
                assert_eq!(pos, len, "grid does not cover len={len}");
                assert!(grid.len() <= TARGET_CHUNKS);
            }
        }
    }

    #[test]
    fn chunk_grid_ignores_thread_count() {
        let before = chunk_ranges(1000, 8);
        set_threads(7);
        assert_eq!(chunk_ranges(1000, 8), before);
        set_threads(1);
        assert_eq!(chunk_ranges(1000, 8), before);
        set_threads(0);
    }

    #[test]
    fn run_executes_every_task_once() {
        for t in [1usize, 2, 5] {
            set_threads(t);
            let counts: Vec<AtomicU64> = (0..100).map(|_| AtomicU64::new(0)).collect();
            run(100, |i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
        }
        set_threads(0);
    }

    #[test]
    fn run_executes_every_task_once_under_adversarial_schedule() {
        race::set_sched(Some(0x5eed));
        for t in [1usize, 2, 5] {
            set_threads(t);
            let counts: Vec<AtomicU64> = (0..100).map(|_| AtomicU64::new(0)).collect();
            run(100, |i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
        }
        race::set_sched(None);
        set_threads(0);
    }

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<usize> = (0..257).collect();
        for t in [1usize, 3, 8] {
            set_threads(t);
            let out = par_map(&items, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
        }
        set_threads(0);
    }

    #[test]
    fn par_try_map_returns_lowest_index_error() {
        let items: Vec<usize> = (0..64).collect();
        for t in [1usize, 4] {
            set_threads(t);
            let r: Result<Vec<usize>, usize> =
                par_try_map(&items, |_, &x| if x % 10 == 3 { Err(x) } else { Ok(x) });
            assert_eq!(r, Err(3), "threads={t}");
        }
        set_threads(0);
        let ok: Result<Vec<usize>, usize> = par_try_map(&items, |_, &x| Ok(x));
        assert_eq!(ok.expect("no failures"), items);
    }

    #[test]
    fn ordered_chunk_reduction_is_thread_count_invariant() {
        // A float sum whose value depends on accumulation order: the chunk
        // grid pins the order, so every thread count agrees bitwise.
        let data: Vec<f32> = (0..10_000)
            .map(|i| ((i * 2654435761_usize) as f32).sin() * 1e3)
            .collect();
        let sum_with = |t: usize| -> f32 {
            set_threads(t);
            par_chunks(data.len(), 64, |lo, hi| data[lo..hi].iter().sum::<f32>())
                .into_iter()
                .sum()
        };
        let reference = sum_with(1);
        for t in [2usize, 3, 8, 13] {
            assert_eq!(sum_with(t).to_bits(), reference.to_bits(), "threads={t}");
        }
        set_threads(0);
    }

    #[test]
    fn adversarial_schedule_does_not_change_results() {
        let data: Vec<f32> = (0..10_000)
            .map(|i| ((i * 2654435761_usize) as f32).sin() * 1e3)
            .collect();
        let sum = |t: usize| -> f32 {
            set_threads(t);
            par_chunks(data.len(), 64, |lo, hi| data[lo..hi].iter().sum::<f32>())
                .into_iter()
                .sum()
        };
        race::set_sched(None);
        let reference = sum(1);
        for seed in [1u64, 2, 0xfeed_f00d] {
            race::set_sched(Some(seed));
            for t in [1usize, 4, 8] {
                assert_eq!(sum(t).to_bits(), reference.to_bits(), "seed={seed} t={t}");
            }
        }
        race::set_sched(None);
        set_threads(0);
    }

    #[test]
    fn nested_regions_run_inline() {
        set_threads(4);
        let outer: Vec<bool> = par_map(&[0usize; 8], |_, _| {
            // Inside a worker the nested region must not spawn again.
            let inner = par_map(&[0usize; 4], |_, _| in_worker());
            inner.into_iter().all(|w| w)
        });
        // Whether the outer tasks saw workers depends on thread count, but
        // nested tasks always report the worker flag (they ran inline).
        assert!(outer.into_iter().all(|b| b));
        set_threads(0);
    }

    #[test]
    fn for_each_split_hands_out_disjoint_buffers() {
        let mut out = vec![0u32; 100];
        let grid = chunk_ranges(out.len(), 10);
        set_threads(3);
        for_each_split(&mut out, &grid, |lo, chunk| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = (lo + j) as u32;
            }
        });
        set_threads(0);
        assert!(out.iter().enumerate().all(|(i, &v)| v as usize == i));
    }

    #[test]
    fn split_by_grid_matches_grid_labels() {
        let mut data = vec![0u8; 37];
        let grid = chunk_ranges(data.len(), 5);
        let parts = split_by_grid(&mut data, &grid);
        assert_eq!(parts.len(), grid.len());
        for ((lo, chunk), &(glo, ghi)) in parts.iter().zip(&grid) {
            assert_eq!(*lo, glo);
            assert_eq!(chunk.len(), ghi - glo);
        }
    }
}
