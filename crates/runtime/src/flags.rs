//! The shared environment-flag grammar for every `PACE_*` runtime switch.
//!
//! All instrumentation switches in the workspace — the tape auditor
//! (`PACE_AUDIT`), the optimizing pipeline (`PACE_OPT`), the snapshot
//! finiteness gate (`PACE_FINITE`), and the pool's shadow write-set checker
//! (`PACE_RACE`, [`crate::race`]) — parse one grammar:
//!
//! * `0` (or unset, or anything unrecognized) — off;
//! * `1` / `true` / `on` — enabled: findings are *reported* (a dirty audit,
//!   a pass-verification mismatch, or an overlapping write set prints to
//!   stderr, execution continues);
//! * `strict` — enabled, and findings are *fatal*: the check panics at its
//!   choke point, so CI and experiment runs cannot silently proceed on a
//!   corrupted tape or a racy region.
//!
//! [`EnvSpec`] is the string-valued companion for switches that carry a
//! *spec* rather than a mode: the `PACE_FAULTS` fault matrix and the
//! `PACE_SCHED` adversarial-scheduler seed ([`crate::race`]).
//!
//! Every variable is read once, on first query; tests and embedders can
//! override at any time with [`EnvFlag::set`] / [`EnvSpec::set`]. The types
//! live in `pace-runtime` (the bottom of the crate stack, below the tensor
//! engine) so the pool's own switches can use them; `pace_tensor::flags`
//! re-exports them unchanged.

use std::sync::atomic::{AtomicU8, Ordering};

/// The three states a `PACE_*` instrumentation flag can be in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlagMode {
    /// Instrumentation disabled (the default).
    Off,
    /// Instrumentation enabled; findings are reported on stderr.
    On,
    /// Instrumentation enabled; findings panic at the choke point.
    Strict,
}

const UNREAD: u8 = 0;
const OFF: u8 = 1;
const ON: u8 = 2;
const STRICT: u8 = 3;

/// A lazily-read, process-global on/off/strict switch backed by an
/// environment variable.
pub struct EnvFlag {
    name: &'static str,
    state: AtomicU8,
}

impl EnvFlag {
    /// Declares a flag backed by the environment variable `name`.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            state: AtomicU8::new(UNREAD),
        }
    }

    /// The environment variable this flag reads.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Parses the shared `0/1/strict` grammar (see the module docs).
    pub fn parse(raw: &str) -> FlagMode {
        match raw.trim().to_ascii_lowercase().as_str() {
            "1" | "true" | "on" => FlagMode::On,
            "strict" => FlagMode::Strict,
            _ => FlagMode::Off,
        }
    }

    /// Current mode, reading the environment variable on first use. After
    /// that first resolution this is one relaxed atomic load — cheap enough
    /// to query at the top of every parallel region.
    #[inline]
    pub fn mode(&self) -> FlagMode {
        match self.state.load(Ordering::Relaxed) {
            UNREAD => {
                let mode = std::env::var(self.name)
                    .map(|v| Self::parse(&v))
                    .unwrap_or(FlagMode::Off);
                self.state.store(encode(mode), Ordering::Relaxed);
                mode
            }
            OFF => FlagMode::Off,
            ON => FlagMode::On,
            _ => FlagMode::Strict,
        }
    }

    /// Forces the flag for this process, overriding the environment.
    pub fn set(&self, mode: FlagMode) {
        self.state.store(encode(mode), Ordering::Relaxed);
    }

    /// True in [`FlagMode::On`] and [`FlagMode::Strict`].
    #[inline]
    pub fn enabled(&self) -> bool {
        self.mode() != FlagMode::Off
    }

    /// True only in [`FlagMode::Strict`].
    #[inline]
    pub fn strict(&self) -> bool {
        self.mode() == FlagMode::Strict
    }
}

fn encode(mode: FlagMode) -> u8 {
    match mode {
        FlagMode::Off => OFF,
        FlagMode::On => ON,
        FlagMode::Strict => STRICT,
    }
}

/// A lazily-read, process-global *string-valued* environment switch — the
/// free-form companion of [`EnvFlag`] for instrumentation that needs a spec
/// rather than an on/off/strict mode (the `PACE_FAULTS` fault matrix, the
/// `PACE_SCHED` scheduler seed). Shares the flag conventions: the variable
/// is read once on first query, unset/empty/`0` means "off", and tests or
/// embedders can override the value at any time with [`EnvSpec::set`].
pub struct EnvSpec {
    name: &'static str,
    state: std::sync::Mutex<Option<Option<String>>>,
}

impl EnvSpec {
    /// Declares a spec backed by the environment variable `name`.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            state: std::sync::Mutex::new(None),
        }
    }

    /// The environment variable this spec reads.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Current value, reading the environment variable on first use. Unset,
    /// empty, and `0` (the [`EnvFlag`] "off" spelling) all yield `None`.
    pub fn get(&self) -> Option<String> {
        let mut state = match self.state.lock() {
            Ok(s) => s,
            Err(poisoned) => poisoned.into_inner(),
        };
        if state.is_none() {
            let raw = std::env::var(self.name).ok();
            let normalized = raw.filter(|v| {
                let t = v.trim();
                !t.is_empty() && t != "0"
            });
            *state = Some(normalized);
        }
        state.as_ref().and_then(Clone::clone)
    }

    /// Forces the value for this process, overriding the environment.
    /// `None` turns the spec off.
    pub fn set(&self, value: Option<String>) {
        let mut state = match self.state.lock() {
            Ok(s) => s,
            Err(poisoned) => poisoned.into_inner(),
        };
        *state = Some(value.filter(|v| {
            let t = v.trim();
            !t.is_empty() && t != "0"
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grammar_covers_on_off_strict() {
        assert_eq!(EnvFlag::parse("1"), FlagMode::On);
        assert_eq!(EnvFlag::parse("true"), FlagMode::On);
        assert_eq!(EnvFlag::parse("ON"), FlagMode::On);
        assert_eq!(EnvFlag::parse("strict"), FlagMode::Strict);
        assert_eq!(EnvFlag::parse("STRICT "), FlagMode::Strict);
        assert_eq!(EnvFlag::parse("0"), FlagMode::Off);
        assert_eq!(EnvFlag::parse(""), FlagMode::Off);
        assert_eq!(EnvFlag::parse("yes?"), FlagMode::Off);
    }

    #[test]
    fn set_overrides_and_sticks() {
        static F: EnvFlag = EnvFlag::new("PACE_TEST_FLAG_NEVER_SET");
        assert!(!F.enabled());
        F.set(FlagMode::Strict);
        assert!(F.enabled());
        assert!(F.strict());
        F.set(FlagMode::On);
        assert!(F.enabled());
        assert!(!F.strict());
        F.set(FlagMode::Off);
        assert!(!F.enabled());
    }

    #[test]
    fn spec_normalizes_off_spellings() {
        static S: EnvSpec = EnvSpec::new("PACE_TEST_SPEC_NEVER_SET");
        assert_eq!(S.get(), None);
        S.set(Some("17".to_string()));
        assert_eq!(S.get().as_deref(), Some("17"));
        S.set(Some("0".to_string()));
        assert_eq!(S.get(), None);
        S.set(Some("  ".to_string()));
        assert_eq!(S.get(), None);
        S.set(None);
        assert_eq!(S.get(), None);
    }
}
