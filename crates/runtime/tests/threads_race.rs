//! First-use resolution of `PACE_THREADS` races against explicit
//! `set_threads` overrides. This test lives alone in its own binary: it is
//! the only test allowed to put the process-global thread count back into
//! the unresolved state.

/// An explicit `set_threads` must always win over a concurrent first-use
/// env resolution: once the override's store lands, a late env-derived
/// publish must not clobber it (the resolver uses a compare-exchange and
/// defers to whatever beat it in). With the old unconditional store this
/// assertion fails intermittently.
#[test]
fn set_threads_override_survives_concurrent_first_use() {
    for round in 0..200 {
        pace_runtime::unresolve_threads_for_tests();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let _ = pace_runtime::threads();
                });
            }
            s.spawn(|| pace_runtime::set_threads(3));
        });
        assert_eq!(pace_runtime::threads(), 3, "round {round}: override lost");
    }
    pace_runtime::set_threads(0);
}
