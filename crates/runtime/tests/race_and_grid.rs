//! Concurrency-safety integration tests for the pool: property-tested grid
//! hand-offs (pairwise-disjoint, exact cover), deterministic panic
//! propagation at scope join, and the armed `PACE_RACE` checker catching a
//! seeded dirty region.

use pace_runtime as pool;
use pace_runtime::flags::FlagMode;
use pace_runtime::race;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `chunk_ranges` grids are pairwise-disjoint and exactly cover
    /// `0..len` for arbitrary lengths and `min_chunk`s — verified through
    /// the same write-set checker the armed pool uses at run time.
    #[test]
    fn chunk_grids_tile_exactly(len in 0usize..20_000, min_chunk in 0usize..5_000) {
        let grid = pool::chunk_ranges(len, min_chunk);
        let spans: Vec<race::TaskSpan> = grid
            .iter()
            .enumerate()
            .map(|(task, &(lo, hi))| race::TaskSpan { task, lo, hi })
            .collect();
        prop_assert!(race::check_write_set("prop::grid", len, &spans).is_ok());
    }

    /// `split_by_grid` hand-offs match the grid's labels and lengths, and
    /// writing every chunk through its label covers each element exactly
    /// once — the disjoint `&mut` hand-off contract.
    #[test]
    fn split_by_grid_hands_off_disjoint_exact_cover(
        len in 0usize..20_000,
        min_chunk in 0usize..5_000,
    ) {
        let grid = pool::chunk_ranges(len, min_chunk);
        let mut data = vec![0u32; len];
        let parts = pool::split_by_grid(&mut data, &grid);
        prop_assert_eq!(parts.len(), grid.len());
        for ((lo, chunk), &(glo, ghi)) in parts.iter().zip(&grid) {
            prop_assert_eq!(*lo, glo);
            prop_assert_eq!(chunk.len(), ghi - glo);
        }
        for (lo, chunk) in parts {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v += (lo + j) as u32 + 1;
            }
        }
        prop_assert!(data.iter().enumerate().all(|(i, &v)| v == i as u32 + 1));
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default()
}

/// A panicking pool task surfaces its own payload at scope join — and when
/// several tasks panic, the lowest-indexed payload wins deterministically,
/// no matter which worker hit its panic first.
#[test]
fn pool_task_panic_surfaces_at_join_with_lowest_index() {
    pool::set_threads(4);
    let result = std::panic::catch_unwind(|| {
        pool::run(64, |i| {
            if i == 9 || i == 33 {
                panic!("task {i} exploded");
            }
        });
    });
    pool::set_threads(0);
    let payload = result.expect_err("panic must propagate to the caller");
    assert_eq!(
        panic_message(payload),
        "task 9 exploded",
        "lowest-indexed panic must win"
    );
}

/// A panic inside `par_map` must reach the caller as the task's own
/// message — not as the misleading `expect("pool task completed")` the
/// empty result slot would otherwise produce.
#[test]
fn par_map_panic_is_not_masked_as_missing_slot() {
    pool::set_threads(3);
    let result = std::panic::catch_unwind(|| {
        pool::par_map(&[0usize; 32], |i, _| {
            if i == 7 {
                panic!("mapper died at {i}");
            }
            i
        })
    });
    pool::set_threads(0);
    let msg = panic_message(result.expect_err("panic must propagate"));
    assert!(msg.contains("mapper died at 7"), "got: {msg:?}");
    assert!(!msg.contains("pool task completed"), "got: {msg:?}");
}

/// Fail-on-old-code witness for the dynamic checker: a hand-rolled grid
/// with a hole hands out chunks whose labels do not tile the buffer;
/// `PACE_RACE=strict` must turn that into a panic naming the gap.
#[test]
fn strict_race_checker_catches_gap_grid() {
    race::RACE.set(FlagMode::Strict);
    pool::set_threads(2);
    let result = std::panic::catch_unwind(|| {
        let mut data = vec![0u8; 10];
        // Dirty by construction: [3, 5) is received by no task.
        let grid = [(0usize, 3usize), (5usize, 10usize)];
        pool::for_each_split(&mut data, &grid, |_, chunk| {
            chunk.fill(1);
        });
    });
    race::RACE.set(FlagMode::Off);
    pool::set_threads(0);
    let msg = panic_message(result.expect_err("strict checker must panic on the gap"));
    assert!(msg.contains("write-set violation"), "got: {msg:?}");
    assert!(msg.contains("gap: [3, 5)"), "got: {msg:?}");
}

/// The armed checker accepts every clean primitive — no false positives on
/// the pool's own grids, at any thread count or adversarial seed.
#[test]
fn armed_checker_is_silent_on_clean_regions() {
    race::RACE.set(FlagMode::Strict);
    for seed in [None, Some(11u64)] {
        race::set_sched(seed);
        for t in [1usize, 4] {
            pool::set_threads(t);
            pool::run(37, |_| {});
            let mut data = vec![0u64; 513];
            let grid = pool::chunk_ranges(data.len(), 16);
            pool::for_each_split(&mut data, &grid, |lo, chunk| {
                for (j, v) in chunk.iter_mut().enumerate() {
                    *v = (lo + j) as u64;
                }
            });
            let sums = pool::par_chunks(data.len(), 16, |lo, hi| data[lo..hi].iter().sum::<u64>());
            assert_eq!(sums.iter().sum::<u64>(), (0..513u64).sum::<u64>());
            assert!(data.iter().enumerate().all(|(i, &v)| v as usize == i));
        }
    }
    race::set_sched(None);
    race::RACE.set(FlagMode::Off);
    pool::set_threads(0);
}
