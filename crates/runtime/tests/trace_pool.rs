//! Integration of the pool with the tracing layer: per-worker task
//! accounting (counter + chunk histogram) and span thread-attribution —
//! worker spans carry their own thread ids, distinct from the caller's.

use pace_trace::read::Value;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Metrics and the trace sink are process-global; the tests in this binary
/// must not interleave.
fn lock() -> MutexGuard<'static, ()> {
    static POOL_TRACE_LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match POOL_TRACE_LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn scratch_trace_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "pace-pool-trace-{tag}-{}.jsonl",
        std::process::id()
    ))
}

/// One traced fan-out: 64 tasks across 4 workers, each task opening a span
/// on its worker thread while the caller holds an outer span.
#[test]
fn pool_tasks_are_counted_and_worker_spans_attributed() {
    let _guard = lock();
    let path = scratch_trace_path("fanout");
    pace_runtime::set_threads(4);
    pace_trace::reset_metrics();
    pace_trace::install(Some(path.clone()));

    let work = AtomicU64::new(0);
    {
        let _outer = pace_trace::span("test::fanout");
        pace_runtime::run(64, |i| {
            let _task = pace_trace::span_at("test::task", i as u64);
            work.fetch_add(i as u64 + 1, Ordering::Relaxed);
            // Enough per-task work that every worker gets to pull a share.
            std::thread::sleep(std::time::Duration::from_micros(500));
        });
    }
    pace_trace::flush();
    pace_trace::install(None);
    pace_runtime::set_threads(0);

    assert_eq!(work.load(Ordering::Relaxed), 64 * 65 / 2, "all tasks ran");
    assert_eq!(
        pace_trace::POOL_TASKS.get(),
        64,
        "every pulled task counted"
    );
    // Each of the 4 workers records its chunk count; the histogram must
    // hold exactly those 4 samples, totalling the 64 tasks is untestable
    // from bucket counts alone, but the sample count is.
    assert_eq!(pace_trace::POOL_CHUNKS_PER_WORKER.total(), 4);

    let text = std::fs::read_to_string(&path).expect("trace file written");
    let mut outer_tid = None;
    let mut task_tids = Vec::new();
    for line in text.lines() {
        let Some(obj) = pace_trace::read::parse_line(line) else {
            panic!("unparseable trace line: {line}");
        };
        if obj.get("ev").and_then(Value::as_str) != Some("span") {
            continue;
        }
        let name = obj.get("name").and_then(Value::as_str).expect("span name");
        let tid = obj.get("tid").and_then(Value::as_u64).expect("span tid");
        let depth = obj.get("depth").and_then(Value::as_u64).expect("depth");
        match name {
            "test::fanout" => {
                outer_tid = Some(tid);
                assert_eq!(depth, 0);
            }
            "test::task" => {
                // Worker threads are fresh: their spans are thread roots.
                assert_eq!(depth, 0);
                task_tids.push(tid);
            }
            other => panic!("unexpected span {other}"),
        }
    }
    let outer_tid = outer_tid.expect("outer span recorded");
    assert_eq!(task_tids.len(), 64, "one span per task");
    assert!(
        task_tids.iter().all(|&t| t != outer_tid),
        "worker spans must not claim the caller's thread id"
    );
    let mut distinct = task_tids.clone();
    distinct.sort_unstable();
    distinct.dedup();
    assert!(
        (2..=4).contains(&distinct.len()),
        "64 tasks across 4 workers should land on several threads, got {distinct:?}"
    );
    let _ = std::fs::remove_file(&path);
}

/// The sequential path (one worker) still counts its tasks, but samples the
/// *inline* histogram — not the per-worker chunk histogram, which would skew
/// the per-worker distribution with whole-region samples and make 1-thread
/// runs incomparable to multi-thread ones.
#[test]
fn sequential_path_records_inline_region() {
    let _guard = lock();
    // Metrics only accumulate while armed, so arm to a scratch sink.
    let path = scratch_trace_path("seq");
    pace_runtime::set_threads(1);
    pace_trace::install(Some(path.clone()));
    let before_tasks = pace_trace::POOL_TASKS.get();
    let before_chunks = pace_trace::POOL_CHUNKS_PER_WORKER.total();
    let before_inline = pace_trace::POOL_INLINE_TASKS.total();
    pace_runtime::run(17, |_| {});
    pace_runtime::set_threads(0);
    let tasks = pace_trace::POOL_TASKS.get() - before_tasks;
    let chunks = pace_trace::POOL_CHUNKS_PER_WORKER.total() - before_chunks;
    let inline = pace_trace::POOL_INLINE_TASKS.total() - before_inline;
    pace_trace::install(None);
    assert_eq!(tasks, 17);
    assert_eq!(
        chunks, 0,
        "inline regions must not pollute per-worker chunks"
    );
    assert_eq!(inline, 1, "one inline-region sample for the whole batch");
    let _ = std::fs::remove_file(&path);
}
