//! Deterministic quick campaign for the chaos matrix (`xtask chaos`).
//!
//! Runs one resumable PACE campaign against a quick TPC-H victim and prints
//! a timing-free, bit-deterministic report (q-error table + FNV fingerprint
//! of the poisoned model). The harness runs this binary under different
//! `PACE_FAULTS` specs and compares stdout and exit codes:
//!
//! * `0` — campaign completed with finite results;
//! * `2` — campaign failed with a typed [`CampaignError`];
//! * `3` — campaign completed but produced non-finite q-errors (a recovery
//!   path failed silently — always a bug);
//! * `86` — an injected crash fault killed the process
//!   ([`pace_tensor::fault::CRASH_EXIT_CODE`]); rerun with the same manifest
//!   path to resume.
//!
//! ```text
//! chaos_campaign <manifest-path> [seed]
//! ```

use pace_ce::{CeConfig, CeModel, CeModelType, EncodedWorkload};
use pace_core::{run_campaign, AttackMethod, AttackerKnowledge, PipelineConfig, Victim};
use pace_data::{build, DatasetKind, Scale};
use pace_engine::Executor;
use pace_workload::{generate_queries, QErrorSummary, QueryEncoder, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(manifest) = args.next().map(PathBuf::from) else {
        eprintln!("usage: chaos_campaign <manifest-path> [seed]");
        return ExitCode::FAILURE;
    };
    let seed: u64 = args
        .next()
        .map(|s| s.parse().expect("seed must be an unsigned integer"))
        .unwrap_or(42);

    let ds = build(DatasetKind::Tpch, Scale::quick(), seed);
    let exec = Executor::new(&ds);
    let spec = WorkloadSpec {
        max_join_tables: 3,
        ..WorkloadSpec::default()
    };
    let mut rng = StdRng::seed_from_u64(seed + 100);
    let history = generate_queries(&ds, &spec, &mut rng, 400);
    let test = exec.label_nonzero(generate_queries(&ds, &spec, &mut rng, 80));

    let labeled = exec.label_nonzero(history.clone());
    let data = EncodedWorkload::from_workload(&QueryEncoder::new(&ds), &labeled);
    let mut model = CeModel::new(CeModelType::Fcn, &ds, CeConfig::quick(), seed);
    if let Err(e) = model.train(&data, &mut rng) {
        eprintln!("chaos_campaign: victim training failed: {e}");
        return ExitCode::from(2);
    }
    let mut victim = Victim::new(model, Executor::new(&ds), history);

    let k = AttackerKnowledge::from_public(&ds, spec);
    let mut cfg = PipelineConfig::quick();
    // Fix the surrogate type: speculation's latency features are wall-clock
    // and would make the report non-deterministic.
    cfg.surrogate_type = Some(CeModelType::Fcn);

    let outcome = match run_campaign(&mut victim, AttackMethod::Pace, &test, &k, &cfg, &manifest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("chaos_campaign: campaign failed: {e}");
            return ExitCode::from(2);
        }
    };

    let finite = |s: &QErrorSummary| {
        [s.mean, s.median, s.p90, s.p95, s.p99, s.max]
            .iter()
            .all(|v| v.is_finite())
    };
    if !finite(&outcome.clean) || !finite(&outcome.poisoned) || !outcome.divergence.is_finite() {
        eprintln!("chaos_campaign: non-finite q-errors after recovery");
        return ExitCode::from(3);
    }

    let table = |name: &str, s: &QErrorSummary| {
        println!(
            "{name:<8} mean {:.6} median {:.6} p95 {:.6} max {:.6}",
            s.mean, s.median, s.p95, s.max
        );
    };
    table("clean", &outcome.clean);
    table("poisoned", &outcome.poisoned);
    println!(
        "poison queries: {}  divergence {:.6}",
        outcome.poison.len(),
        outcome.divergence
    );

    // Bit-exact fingerprint: summaries, divergence, poison batch, and the
    // poisoned model's parameter image. Two runs that print the same
    // fingerprint reached the same final state.
    let mut h = Fnv::new();
    for s in [&outcome.clean, &outcome.poisoned] {
        for v in [s.mean, s.median, s.p90, s.p95, s.p99, s.max] {
            h.write_u64(v.to_bits());
        }
    }
    h.write_u64(outcome.divergence.to_bits());
    for q in &outcome.poison {
        for &t in &q.tables {
            h.write_u64(t as u64);
        }
        for p in &q.predicates {
            h.write_u64(p.table as u64);
            h.write_u64(p.col as u64);
            h.write_u64(p.lo as u64);
            h.write_u64(p.hi as u64);
        }
    }
    let mut params = Vec::new();
    if let Err(e) = pace_tensor::serialize::write_params(victim.model().params(), &mut params) {
        eprintln!("chaos_campaign: cannot serialize the poisoned model: {e}");
        return ExitCode::from(2);
    }
    for b in params {
        h.write_u64(u64::from(b));
    }
    println!("fingerprint: {:016x}", h.finish());
    ExitCode::SUCCESS
}

struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }
    fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}
