//! Workspace maintenance tasks: `cargo run -p xtask -- <lint|tape-report>`.
//!
//! # `lint` — source-level checks the compiler cannot express
//!
//! Run in CI next to `cargo clippy`:
//!
//! 1. **`Op` coverage** — every variant of the tape's `Op` enum
//!    (`crates/tensor/src/graph.rs`) must be mentioned in the VJP dispatch
//!    (`grad.rs`), the auditor (`analysis.rs`), the dataflow analyses —
//!    structural hashing and the cost model — (`dataflow.rs`), and the
//!    replay interpreter (`opt.rs`). A variant added to the enum but
//!    forgotten in any of them would otherwise surface as a runtime panic
//!    (grad, replay) or a silent analysis gap; wildcard match arms make the
//!    compiler's exhaustiveness check insufficient.
//! 2. **No `unwrap()` in library code** — panics in the library crates must
//!    carry context (`expect`) or be handled; bare `.unwrap()` is allowed
//!    only under `#[cfg(test)]`, in `tests/`, benches, and this xtask.
//!
//! # `tape-report` — static statistics of the real tapes
//!
//! Builds each tape the `PACE_OPT` choke points see — a CE training step, a
//! surrogate imitation step, and the attack hypergradient at `K = 1` and
//! `K = 4` unrolled virtual updates — runs the full pass pipeline
//! ([`pace_tensor::opt`]), verifies the optimized replay against eager
//! execution, and prints the per-context report: node/FLOP/peak-live-byte
//! counts before and after, per-pass removal counts, and the op histogram.

use pace_ce::{
    q_error_between, q_error_loss, rows_to_matrix, CeConfig, CeModel, CeModelType, EncodedWorkload,
};
use pace_core::attack::build_hypergradient_tape;
use pace_data::{build, DatasetKind, Scale};
use pace_engine::Executor;
use pace_tensor::{Graph, Matrix, Var};
use pace_workload::{generate_queries, QueryEncoder, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mode = std::env::args().nth(1).unwrap_or_default();
    match mode.as_str() {
        "lint" => lint(),
        "tape-report" => tape_report(),
        _ => {
            eprintln!("usage: cargo run -p xtask -- <lint|tape-report>");
            ExitCode::FAILURE
        }
    }
}

fn lint() -> ExitCode {
    let root = workspace_root();
    let mut failures = Vec::new();
    check_op_coverage(&root, &mut failures);
    check_no_unwrap(&root, &mut failures);
    if failures.is_empty() {
        println!("xtask lint: OK");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("xtask lint: {f}");
        }
        eprintln!("xtask lint: {} failure(s)", failures.len());
        ExitCode::FAILURE
    }
}

// ---- tape-report ------------------------------------------------------------

/// Optimizes and verifies one tape, printing the static report. Returns
/// whether the optimized replay matched eager execution.
fn report_tape(g: &Graph, outputs: &[Var], inputs: &[Var], context: &str) -> bool {
    let plan = pace_tensor::opt::optimize(g, outputs, inputs, context);
    print!("{}", plan.stats().render());
    match plan.verify(g, pace_tensor::opt::VERIFY_TOL) {
        Ok(()) => {
            println!(
                "   replay: VERIFIED against eager execution (tol {})\n",
                pace_tensor::opt::VERIFY_TOL
            );
            true
        }
        Err(e) => {
            println!("   replay: MISMATCH — {e}\n");
            false
        }
    }
}

fn tape_report() -> ExitCode {
    println!("tape-report: building quick TPC-H dataset + labeled workload...");
    let ds = build(DatasetKind::Tpch, Scale::quick(), 2);
    let exec = Executor::new(&ds);
    let mut rng = StdRng::seed_from_u64(42);
    let spec = WorkloadSpec::default();
    let labeled = exec.label_nonzero(generate_queries(&ds, &spec, &mut rng, 96));
    let encoder = QueryEncoder::new(&ds);
    let data = EncodedWorkload::from_workload(&encoder, &labeled);
    let model = CeModel::new(CeModelType::Fcn, &ds, CeConfig::quick(), 6);
    println!(
        "tape-report: {} queries, {} model parameters\n",
        data.enc.len(),
        model.params().num_scalars()
    );
    let mut all_ok = true;

    // One CE training step: forward + Q-error loss + parameter gradients —
    // the tape `ce::step_adam` / `ce::update` build every iteration.
    {
        let mut g = Graph::new();
        let bind = model.params().bind(&mut g);
        let x = g.leaf(rows_to_matrix(&data.enc));
        let out = model.forward(&mut g, &bind, x);
        let loss = q_error_loss(&mut g, out, &data.ln_card, model.ln_max());
        let grads = g.grad(loss, bind.vars());
        let mut outputs = vec![loss];
        outputs.extend(&grads);
        all_ok &= report_tape(&g, &outputs, bind.vars(), "ce::train_step");
    }

    // One surrogate imitation step: Q-error against black-box estimates.
    {
        let mut g = Graph::new();
        let bind = model.params().bind(&mut g);
        let x = g.leaf(rows_to_matrix(&data.enc));
        let out = model.forward(&mut g, &bind, x);
        let bb: Vec<f32> = data.ln_card.iter().map(|&v| v / model.ln_max()).collect();
        let bb_leaf = g.leaf(Matrix::from_vec(bb.len(), 1, bb));
        let loss = q_error_between(&mut g, out, bb_leaf, model.ln_max());
        let grads = g.grad(loss, bind.vars());
        let mut outputs = vec![loss];
        outputs.extend(&grads);
        all_ok &= report_tape(&g, &outputs, bind.vars(), "surrogate::imitate");
    }

    // The attack hypergradient: objective + ∂objective/∂(poison batch)
    // through K unrolled virtual SGD updates (paper Eq. 9–10).
    let half = data.enc.len() / 2;
    for steps in [1usize, 4] {
        let (g, outputs, inputs) = build_hypergradient_tape(
            &model,
            &data.enc[..half.min(32)],
            &data.ln_card[..half.min(32)],
            &data.enc[half..half + half.min(32)],
            &data.ln_card[half..half + half.min(32)],
            steps,
            1e-2,
        );
        all_ok &= report_tape(
            &g,
            &outputs,
            &inputs,
            &format!("attack::hypergradient K={steps}"),
        );
    }

    if all_ok {
        println!("tape-report: all optimized replays verified");
        ExitCode::SUCCESS
    } else {
        eprintln!("tape-report: at least one optimized replay diverged");
        ExitCode::FAILURE
    }
}

// ---- lint -------------------------------------------------------------------

/// The workspace root: this binary's manifest lives at `crates/xtask`.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("crates/xtask has a workspace two levels up")
        .to_path_buf()
}

fn read(root: &Path, rel: &str) -> String {
    let path = root.join(rel);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("xtask lint: cannot read {}: {e}", path.display()))
}

/// Extracts the variant names of `enum Op` from the graph source.
fn op_variants(graph_src: &str) -> Vec<String> {
    let start = graph_src
        .find("enum Op {")
        .expect("crates/tensor/src/graph.rs declares `enum Op {`");
    let body_start = start + "enum Op {".len();
    let mut depth = 1usize;
    let mut end = body_start;
    for (i, ch) in graph_src[body_start..].char_indices() {
        match ch {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    end = body_start + i;
                    break;
                }
            }
            _ => {}
        }
    }
    let body = &graph_src[body_start..end];
    let mut variants = Vec::new();
    // Variant declarations sit at brace depth 0 within the enum body, at the
    // start of a line (after doc comments), shaped `Name` or `Name(...),`.
    let mut brace = 0i32;
    let mut paren = 0i32;
    for line in body.lines() {
        let trimmed = line.trim();
        if brace == 0
            && paren == 0
            && !trimmed.is_empty()
            && !trimmed.starts_with("//")
            && !trimmed.starts_with('#')
            && trimmed
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_uppercase())
        {
            let name: String = trimmed
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                variants.push(name);
            }
        }
        for ch in trimmed.chars() {
            match ch {
                '{' => brace += 1,
                '}' => brace -= 1,
                '(' => paren += 1,
                ')' => paren -= 1,
                _ => {}
            }
        }
    }
    variants
}

/// Files that must mention every `Op` variant: the VJP dispatch, the
/// auditor's shape/closure tables, the dataflow analyses (structural hash +
/// cost model), and the optimizer's replay interpreter.
const OP_COVERAGE_FILES: [&str; 4] = [
    "crates/tensor/src/grad.rs",
    "crates/tensor/src/analysis.rs",
    "crates/tensor/src/dataflow.rs",
    "crates/tensor/src/opt.rs",
];

fn check_op_coverage(root: &Path, failures: &mut Vec<String>) {
    let graph_src = read(root, "crates/tensor/src/graph.rs");
    let variants = op_variants(&graph_src);
    if variants.len() < 30 {
        failures.push(format!(
            "crates/tensor/src/graph.rs: expected to parse the full Op enum, found only \
             {} variant(s) — the lint's parser may be out of date",
            variants.len()
        ));
        return;
    }
    for rel in OP_COVERAGE_FILES {
        let src = read(root, rel);
        for v in &variants {
            let mentioned = src.contains(&format!("Op::{v}(")) // pattern with operands
                || src.contains(&format!("Op::{v} ")) // bare pattern in match arm
                || src.contains(&format!("Op::{v},"))
                || src.contains(&format!("Op::{v} =>"));
            if !mentioned {
                failures.push(format!(
                    "{rel}: Op::{v} is not handled (no `Op::{v}` mention)"
                ));
            }
        }
    }
}

/// True for paths whose `.unwrap()` calls are exempt from the lint.
fn unwrap_exempt(rel: &Path) -> bool {
    let s = rel.to_string_lossy();
    s.starts_with("crates/xtask/")
        || s.starts_with("vendor/")
        || s.contains("/tests/")
        || s.contains("/benches/")
        || s.contains("/examples/")
        || s.starts_with("tests/")
        || s.starts_with("target/")
}

fn check_no_unwrap(root: &Path, failures: &mut Vec<String>) {
    let mut sources = Vec::new();
    collect_rs(&root.join("crates"), root, &mut sources);
    for rel in sources {
        if unwrap_exempt(&rel) {
            continue;
        }
        let src = read(root, &rel.to_string_lossy());
        for (line_no, line) in strip_test_modules(&src) {
            let code = line.split("//").next().unwrap_or(line);
            if code.contains(".unwrap()") {
                failures.push(format!(
                    "{}:{}: `.unwrap()` in library code — use `expect` with context or \
                     handle the error",
                    rel.display(),
                    line_no
                ));
            }
        }
    }
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, root, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
}

/// Yields `(line_number, line)` for lines outside `#[cfg(test)]` items.
///
/// Brace-counting heuristic: when a line contains `#[cfg(test)]`, skip until
/// the braces opened by the following item close again. Good enough for this
/// workspace's rustfmt-formatted sources; not a general Rust parser.
fn strip_test_modules(src: &str) -> Vec<(usize, &str)> {
    let mut out = Vec::new();
    let mut lines = src.lines().enumerate().peekable();
    while let Some((i, line)) = lines.next() {
        if line.trim_start().starts_with("#[cfg(test)]") {
            let mut depth = 0i32;
            let mut opened = false;
            for (_, l) in lines.by_ref() {
                for ch in l.chars() {
                    match ch {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
            }
            continue;
        }
        out.push((i + 1, line));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_op_variants_from_real_source() {
        let src = read(&workspace_root(), "crates/tensor/src/graph.rs");
        let variants = op_variants(&src);
        assert!(variants.contains(&"Leaf".to_string()));
        assert!(variants.contains(&"BroadcastScalar".to_string()));
        assert!(variants.contains(&"SliceRows".to_string()));
        assert!(
            variants.len() >= 35,
            "found {}: {variants:?}",
            variants.len()
        );
    }

    #[test]
    fn strip_test_modules_removes_cfg_test_blocks() {
        let src =
            "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() { x.unwrap(); }\n}\nfn c() {}\n";
        let kept: Vec<&str> = strip_test_modules(src)
            .into_iter()
            .map(|(_, l)| l)
            .collect();
        assert_eq!(kept, vec!["fn a() {}", "fn c() {}"]);
    }

    #[test]
    fn lint_passes_on_current_tree() {
        let root = workspace_root();
        let mut failures = Vec::new();
        check_op_coverage(&root, &mut failures);
        check_no_unwrap(&root, &mut failures);
        assert!(failures.is_empty(), "{failures:#?}");
    }

    #[test]
    fn op_coverage_spans_the_analysis_stack() {
        // The coverage list must include the new dataflow + opt modules so a
        // future Op variant cannot silently skip the analyses.
        assert!(OP_COVERAGE_FILES.contains(&"crates/tensor/src/dataflow.rs"));
        assert!(OP_COVERAGE_FILES.contains(&"crates/tensor/src/opt.rs"));
    }
}
