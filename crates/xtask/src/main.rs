//! Workspace maintenance tasks:
//! `cargo run -p xtask --
//! <lint|tape-report|trace-report|chaos|determinism|race-report|sched-report|serve-report
//! |defense-report>`.
//!
//! # `lint` — source-level checks the compiler cannot express
//!
//! Run in CI next to `cargo clippy`:
//!
//! 1. **`Op` coverage** — every variant of the tape's `Op` enum
//!    (`crates/tensor/src/graph.rs`) must be mentioned in the VJP dispatch
//!    (`grad.rs`), the auditor (`analysis.rs`), the dataflow analyses —
//!    structural hashing and the cost model — (`dataflow.rs`), the
//!    replay interpreter (`opt.rs`), and the elementwise-fusion
//!    classifier (`fuse.rs`). A variant added to the enum but
//!    forgotten in any of them would otherwise surface as a runtime panic
//!    (grad, replay) or a silent analysis gap; wildcard match arms make the
//!    compiler's exhaustiveness check insufficient.
//! 2. **No `unwrap()` in library code** — panics in the library crates must
//!    carry context (`expect`) or be handled; bare `.unwrap()` is allowed
//!    only under `#[cfg(test)]`, in `tests/`, benches, and this xtask.
//!    `crates/workload` is held to the stricter form — its `#[cfg(test)]`
//!    modules are scanned too, after two bare unwraps shipped there.
//! 3. **No panics on probe/IO results in the campaign runtime** — in
//!    `crates/core` and `crates/ce` library code, oracle probes
//!    (`explain`/`count`/`run_queries`), training results, and
//!    checkpoint/manifest IO must be propagated with `?`, never
//!    `.unwrap()`/`.expect()`-ed: a campaign that panics on a flaky probe
//!    reintroduces the exact abort the resilience layer exists to absorb.
//! 4. **No raw thread primitives outside the pool** — `thread::spawn`/
//!    `thread::scope` are allowed only in `crates/runtime`, the one
//!    sanctioned fan-out site. Everything else must go through
//!    `pace_runtime`, whose size-derived chunking keeps every parallel
//!    result bit-identical at any `PACE_THREADS` setting; an ad-hoc spawn
//!    would silently escape that contract.
//! 5. **No NaN-tolerant float sorts** — sorting float keys with
//!    `partial_cmp(..).unwrap_or(..)` silently scrambles the order the
//!    moment a NaN appears (the bug behind the degraded-estimate median);
//!    library code must filter non-finite values first and `expect` the
//!    comparison instead.
//! 6. **Pool call-site discipline** — every parallel region in library code
//!    must derive its grid from input sizes alone: `min_chunk` arguments to
//!    `chunk_ranges`/`par_chunks` must be compile-time constants or locals
//!    computed without `threads()`/environment reads, and pool call spans
//!    must not read `threads()`/env vars or touch `Mutex`/atomic shared
//!    state — the pool's indexed slots and `for_each_split` hand-offs are
//!    the only sanctioned cross-task channels. A violation reintroduces
//!    thread-count-dependent grids or racy accumulation, the two bug
//!    families `PACE_RACE` exists to catch at run time.
//!
//! # `determinism` — the `PACE_THREADS` bit-identity gate
//!
//! Exercises the three parallel surfaces in-process at several thread
//! counts and requires byte-identical results: batch exact counting
//! (`Executor::count_batch`), the cache-blocked parallel matmul, and a
//! briefly trained CE model's full parameter vector. CI runs it under
//! `PACE_THREADS=1` and `PACE_THREADS=4` and additionally diffs the two
//! process outputs.
//!
//! # `chaos` — the fault-injection matrix
//!
//! Runs the `chaos_campaign` binary (a deterministic quick TPC-H PACE
//! campaign) under each `PACE_FAULTS` spec of the matrix and checks the
//! recovery contract: absorbed faults (timeout/error/corrupt retries,
//! crash + resume) must reproduce the fault-free run **bit-identically**;
//! NaN-gradient faults must still complete with finite results; a hard-down
//! oracle must fail with a typed error, not a panic. The serving fault
//! kinds (`overload`, `slow_consumer`, `bad_update`) run in-process
//! against the [`pace_serve`] runtime: each scenario executes twice under
//! the same spec and must be bit-identical, every rejection must be typed,
//! and a corrupted hot-swap must be rejected with live traffic unharmed.
//! A final served-campaign scenario routes a whole poison campaign through
//! the hot-swap gate with a corrupted wave-1 candidate and admission
//! overload bursts armed at once: the corrupted wave must be rejected and
//! rolled back, backpressure must be observed, and the campaign — swap
//! ledger, reply log, and attack measurements — must be bit-identical
//! across two runs. See `pace_tensor::fault` for the spec grammar.
//!
//! # `tape-report` — static statistics of the real tapes
//!
//! Builds each tape the `PACE_OPT` choke points see — a CE training step, a
//! surrogate imitation step, and the attack hypergradient at `K = 1` and
//! `K = 4` unrolled virtual updates — runs the full pass pipeline
//! ([`pace_tensor::opt`]), verifies the optimized replay against eager
//! execution, and prints the per-context report: node/FLOP/peak-live-byte
//! counts before and after, per-pass removal counts (including elementwise
//! fusion: chains fused and memory passes eliminated), and the op
//! histogram. Then times each context's fused replay against the fuse-off
//! pipeline (best-of-[`FUSE_TIMING_REPS`], bit-identity required) and
//! writes `BENCH_fuse.json` at the workspace root. The speedup gate is
//! hardware-conditioned through the calibrated cost model: when the model
//! itself predicts the `K = 4` hypergradient replay should gain at least
//! [`FUSE_SPEEDUP_GATE`]× from fusion on this machine's calibrated
//! flop/bandwidth throughput, the measured speedup must clear that bar;
//! otherwise (e.g. a machine whose dispatch overhead is negligible next to
//! its memory bandwidth) the gate degrades to the
//! [`FUSE_NO_REGRESSION_GATE`] no-regression bound — fusion must never
//! lose to the pipeline it replaces.
//!
//! # `trace-report` — dynamic observability of a real campaign
//!
//! With no argument: runs the deterministic quick TPC-H demo campaign (the
//! same recipe as `chaos_campaign`) with `pace_tensor::trace` armed, then
//! renders the captured trace — a span tree with per-phase totals (gated:
//! the top-level phases must sum to within 1% of the measured wall time),
//! counter and histogram snapshots, and a per-op profile of the `K = 4`
//! hypergradient tape joining the static cost model against measured replay
//! time. Writes `BENCH_trace.json` at the workspace root and finishes with
//! a disarmed-overhead gate (a disarmed counter increment must cost about
//! one relaxed atomic load). With a path argument: parses and renders an
//! existing trace file, no gates.
//!
//! # `race-report` — the concurrency-safety gate
//!
//! Three layers, all in-process (see `DESIGN.md` § Concurrency safety):
//!
//! 1. **Static** — the arena-slot interference check
//!    ([`pace_tensor::dataflow::check_slot_interference`]) must prove the
//!    buffer-reuse plans of the real tapes (CE training step, attack
//!    hypergradient at `K = 1` and `K = 4`) free of liveness overlaps, and
//!    must *catch* a seeded synthetic overlap — a fail-on-old-code witness
//!    that the checker has teeth.
//! 2. **Dynamic** — with `PACE_RACE=strict` armed, a seeded dirty parallel
//!    region (a grid with a hole) must panic with a typed write-set
//!    violation, while the clean kernels stay silent.
//! 3. **Schedule fuzzing** — the parallel kernels (matmul, `count_batch`)
//!    and a reduced demo campaign must be bit-identical across
//!    [`SCHED_SEEDS`] adversarial `PACE_SCHED` seeds × {1, 4, 8} threads.
//!
//! Finishes with a disarmed-overhead gate (the per-region `PACE_RACE` check
//! must cost about one relaxed load, ≤ 1% of a matmul/count fan-out) and
//! writes `BENCH_race.json` at the workspace root.
//!
//! # `serve-report` — the serving-runtime SLO gate
//!
//! Drives a seeded open-loop load generator through the [`pace_serve`]
//! runtime across five virtual-time phases — ramp → rated → 2× overload
//! (the armed `overload` fault adds same-instant admission bursts on top
//! of a doubled rate) → a swap window in which a corrupted v2 snapshot is
//! rejected mid-traffic and a clean v3 lands → recovery — and gates on the
//! serving SLOs: the reply sequence must be bit-identical across repeated
//! runs and across `PACE_THREADS` 1 vs 8; every served estimate must be
//! finite and in `[0, f64::MAX]`; rated and recovery traffic must see zero
//! rejections and p99 latency within budget; overload must produce typed
//! sheds with the admission queue bounded by its cap; the bad update must
//! be rejected (`NonFiniteParams`) with zero failed well-formed requests
//! in the swap window. Writes `BENCH_serve.json` (per-phase latency
//! percentiles, shed rates, a latency histogram, and the swap log) at the
//! workspace root. Ends with a break-glass drill: an operator
//! `force_install` must activate its snapshot without shadow validation
//! and bump the `serve_force_installs` counter while the validated
//! `serve_swaps` counter stays put — an override is never mistaken for a
//! validated swap in traces.
//!
//! # `defense-report` — the served-campaign defense gate
//!
//! Runs a poison campaign *through the validated hot-swap serving path*
//! ([`pace_core::ServedVictim`]): every attacker `EXPLAIN` probe is a
//! served request, and each poison wave's retrained candidate is submitted
//! as a versioned hot-swap halfway through a window of seeded background
//! traffic. The swap gate's q-error limit is pinned relative to the clean
//! model's own shadow median ([`DEFENSE_QERR_MARGIN`]), so the report
//! measures the deployment-layer defense the paper's direct-update threat
//! model bypasses: the fraction of poison waves the pinned probe rejects
//! and rolls back. The drill uses the Lb-S waves deliberately — a single
//! full-strength PACE wave already blows the pinned median past any sane
//! margin, so the gate would reject everything and measure nothing; Lb-S
//! degrades cumulatively, and the ledger shows poison landing until the
//! accumulated damage trips the probe. Gates: the campaign must complete with zero
//! un-typed failures (every reply `Ok` or a typed [`ServeError`], every
//! swap verdict a typed [`SwapError`]); at least one wave must be
//! accepted *and* at least one rejected by the probe (the gate is neither
//! vacuous nor absolute); and the whole campaign — swap ledger with
//! virtual timestamps, reply log, and attack measurements — must be
//! bit-identical across two 1-thread runs and across `PACE_THREADS` 1
//! vs 8. Writes `BENCH_defense.json` at the workspace root.
//!
//! # `sched-report` — the static-scheduler gate
//!
//! Builds the real tapes (CE training step, attack hypergradient at `K = 1`
//! and `K = 4`) and runs the static scheduler ([`pace_tensor::sched`]) over
//! each: dependence DAG from use-def chains plus WAR/WAW arena-reuse edges,
//! level-set stages certified by the stage-collapsed slot-interference
//! proof, and per-stage profitability verdicts from the calibrated cost
//! model (`pace_runtime::cost`). Prints each verified schedule with its
//! predicted speedup, then gates on two facts: (a) the staged replay is
//! bit-identical to the sequential replay across [`SCHED_SEEDS`] ×
//! [`SCHED_THREADS`] under a fan-out-everything cost model (so the parallel
//! path really executes, even on serial hardware), and (b) the t1/t2/t4/t8
//! scaling curve of the parallel surfaces (192² matmul, the `K = 4`
//! scheduled replay, `count_batch`) written to `BENCH_scaling.json`. The
//! scaling gate is hardware-conditioned: ≥ 2× t8/t1 on the big shapes when
//! the calibrated effective parallelism clears
//! [`SCALING_EFF_PAR_GATE`], a no-regression bound otherwise — a 1-core
//! runner cannot double anything, but it must never lose to itself.

use pace_ce::{
    q_error_between, q_error_loss, rows_to_matrix, CeConfig, CeModel, CeModelType, EncodedWorkload,
};
use pace_core::attack::build_hypergradient_tape;
use pace_core::{
    run_campaign, run_served_campaign, AttackMethod, AttackOutcome, AttackerKnowledge,
    PipelineConfig, ServedTraffic, ServedVictim, Victim,
};
use pace_data::{build, Dataset, DatasetKind, Scale};
use pace_engine::{Executor, HistogramEstimator};
use pace_serve::{
    pinned_from_encoded, Phase, PinnedQuery, ReplyRecord, Request, ServeConfig, ServeError,
    ServeSummary, Server, SnapshotStore, Source, SwapError, SwapEvent, SwapOutcome,
};
use pace_tensor::fault::{self, FaultSpec};
use pace_tensor::trace;
use pace_tensor::{Graph, Matrix, Var};
use pace_workload::{generate_queries, QErrorSummary, Query, QueryEncoder, Workload, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::OnceLock;
use std::time::Instant;

fn main() -> ExitCode {
    let mode = std::env::args().nth(1).unwrap_or_default();
    match mode.as_str() {
        "lint" => lint(),
        "tape-report" => tape_report(),
        "trace-report" => trace_report(),
        "chaos" => chaos(),
        "determinism" => determinism(),
        "race-report" => race_report(),
        "sched-report" => sched_report(),
        "serve-report" => serve_report(),
        "defense-report" => defense_report(),
        _ => {
            eprintln!(
                "usage: cargo run -p xtask -- \
                 <lint|tape-report|trace-report|chaos|determinism|race-report|sched-report\
                 |serve-report|defense-report>"
            );
            ExitCode::FAILURE
        }
    }
}

fn lint() -> ExitCode {
    let root = workspace_root();
    let mut failures = Vec::new();
    check_op_coverage(&root, &mut failures);
    check_no_unwrap(&root, &mut failures);
    check_no_probe_panics(&root, &mut failures);
    check_no_raw_threads(&root, &mut failures);
    check_no_nan_sort(&root, &mut failures);
    check_pool_call_discipline(&root, &mut failures);
    if failures.is_empty() {
        println!("xtask lint: OK");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("xtask lint: {f}");
        }
        eprintln!("xtask lint: {} failure(s)", failures.len());
        ExitCode::FAILURE
    }
}

// ---- tape-report ------------------------------------------------------------

/// Best-of-N repetitions for the fused-vs-unfused replay timing.
const FUSE_TIMING_REPS: u32 = 7;

/// Required fused/unfused replay speedup on the `K = 4` hypergradient when
/// the calibrated cost model predicts fusion should pay at least that much
/// on this machine's flop/bandwidth throughput.
const FUSE_SPEEDUP_GATE: f64 = 1.3;

/// Minimum allowed fused/unfused ratio on every context. Best-of-N minimum
/// timing still jitters several percent on a loaded runner (the same bound
/// [`SCALING_NO_REGRESSION_GATE`] uses); below it fusion has become a
/// pessimization — the exact regression this gate exists to stop.
const FUSE_NO_REGRESSION_GATE: f64 = 0.85;

/// Optimizes and verifies one tape, printing the static report. Returns
/// whether the optimized replay matched eager execution.
fn report_tape(g: &Graph, outputs: &[Var], inputs: &[Var], context: &str) -> bool {
    let plan = pace_tensor::opt::optimize(g, outputs, inputs, context);
    print!("{}", plan.stats().render());
    match plan.verify(g, pace_tensor::opt::VERIFY_TOL) {
        Ok(()) => {
            println!(
                "   replay: VERIFIED against eager execution (tol {})\n",
                pace_tensor::opt::VERIFY_TOL
            );
            true
        }
        Err(e) => {
            println!("   replay: MISMATCH — {e}\n");
            false
        }
    }
}

fn tape_report() -> ExitCode {
    println!("tape-report: building quick TPC-H dataset + labeled workload...");
    let ds = build(DatasetKind::Tpch, Scale::quick(), 2);
    let exec = Executor::new(&ds);
    let mut rng = StdRng::seed_from_u64(42);
    let spec = WorkloadSpec::default();
    let labeled = exec.label_nonzero(generate_queries(&ds, &spec, &mut rng, 96));
    let encoder = QueryEncoder::new(&ds);
    let data = EncodedWorkload::from_workload(&encoder, &labeled);
    let model = CeModel::new(CeModelType::Fcn, &ds, CeConfig::quick(), 6);
    println!(
        "tape-report: {} queries, {} model parameters\n",
        data.enc.len(),
        model.params().num_scalars()
    );
    let mut all_ok = true;

    // The four tapes the `PACE_OPT` choke points see, kept alive so the
    // fusion benchmark below can re-optimize each with fusion disabled.
    let mut tapes: Vec<(String, Graph, Vec<Var>, Vec<Var>)> = Vec::new();

    // One CE training step: forward + Q-error loss + parameter gradients —
    // the tape `ce::step_adam` / `ce::update` build every iteration.
    {
        let mut g = Graph::new();
        let bind = model.params().bind(&mut g);
        let x = g.leaf(rows_to_matrix(&data.enc));
        let out = model.forward(&mut g, &bind, x);
        let loss = q_error_loss(&mut g, out, &data.ln_card, model.ln_max());
        let grads = g.grad(loss, bind.vars());
        let mut outputs = vec![loss];
        outputs.extend(&grads);
        let inputs = bind.vars().to_vec();
        tapes.push(("ce::train_step".to_string(), g, outputs, inputs));
    }

    // One surrogate imitation step: Q-error against black-box estimates.
    {
        let mut g = Graph::new();
        let bind = model.params().bind(&mut g);
        let x = g.leaf(rows_to_matrix(&data.enc));
        let out = model.forward(&mut g, &bind, x);
        let bb: Vec<f32> = data.ln_card.iter().map(|&v| v / model.ln_max()).collect();
        let bb_leaf = g.leaf(Matrix::from_vec(bb.len(), 1, bb));
        let loss = q_error_between(&mut g, out, bb_leaf, model.ln_max());
        let grads = g.grad(loss, bind.vars());
        let mut outputs = vec![loss];
        outputs.extend(&grads);
        let inputs = bind.vars().to_vec();
        tapes.push(("surrogate::imitate".to_string(), g, outputs, inputs));
    }

    // The attack hypergradient: objective + ∂objective/∂(poison batch)
    // through K unrolled virtual SGD updates (paper Eq. 9–10).
    let half = data.enc.len() / 2;
    for steps in [1usize, 4] {
        let (g, outputs, inputs) = build_hypergradient_tape(
            &model,
            &data.enc[..half.min(32)],
            &data.ln_card[..half.min(32)],
            &data.enc[half..half + half.min(32)],
            &data.ln_card[half..half + half.min(32)],
            steps,
            1e-2,
        );
        tapes.push((
            format!("attack::hypergradient K={steps}"),
            g,
            outputs,
            inputs,
        ));
    }

    for (context, g, outputs, inputs) in &tapes {
        all_ok &= report_tape(g, outputs, inputs, context);
    }

    // Fused super-steps vs the fuse-off pipeline: re-optimize each tape
    // both ways, require bit-identical outputs, time both replays under
    // the calibrated cost model, and write `BENCH_fuse.json`.
    use pace_tensor::opt::{optimize_with, Arena, OptConfig};
    use pace_tensor::pool;
    let consts = pool::cost::constants();
    pool::cost::set_constants(Some(consts));
    println!(
        "tape-report: fused vs fuse-off replay, best of {FUSE_TIMING_REPS} \
         (calibrated: {:.2} flops/ns, {:.2} bytes/ns, parallelism {:.2})",
        consts.flops_per_ns, consts.bytes_per_ns, consts.effective_parallelism
    );
    struct FuseRow {
        context: String,
        chains: usize,
        steps_fused: usize,
        passes_saved: u64,
        unfused_ns: f64,
        fused_ns: f64,
        speedup: f64,
        predicted: f64,
        identical: bool,
    }
    let mut failures: Vec<String> = Vec::new();
    let mut fuse_rows: Vec<FuseRow> = Vec::new();
    for (context, g, outputs, inputs) in &tapes {
        let off = OptConfig {
            fuse: false,
            ..OptConfig::default()
        };
        let label = format!("{context} [fuse off]");
        let unfused = optimize_with(g, outputs, inputs, &label, off);
        let fused = pace_tensor::opt::optimize(g, outputs, inputs, context);

        let mut ua = Arena::new();
        unfused.replay(&mut ua);
        let mut fa = Arena::new();
        fused.replay(&mut fa);
        let identical = plan_output_bits(&unfused, &ua) == plan_output_bits(&fused, &fa);
        if !identical {
            failures.push(format!(
                "{context}: fused replay is not bit-identical to the fuse-off replay"
            ));
        }

        let unfused_ns = scaling_best_ns(FUSE_TIMING_REPS, &mut || unfused.replay(&mut ua));
        let fused_ns = scaling_best_ns(FUSE_TIMING_REPS, &mut || fused.replay(&mut fa));
        let speedup = unfused_ns / fused_ns;
        let predicted = pace_tensor::fuse::modeled_replay_ns(&unfused, &consts)
            / pace_tensor::fuse::modeled_replay_ns(&fused, &consts);
        let st = fused.stats();
        println!(
            "tape-report: fusion {context:<28} {} chain(s) / {} step(s), {} pass(es) \
             saved — fuse-off {:.0}us, fused {:.0}us, {speedup:.2}x (model {predicted:.2}x)",
            st.fused_chains,
            st.fused_steps,
            st.fused_passes_saved,
            unfused_ns / 1e3,
            fused_ns / 1e3
        );
        fuse_rows.push(FuseRow {
            context: context.clone(),
            chains: st.fused_chains,
            steps_fused: st.fused_steps,
            passes_saved: st.fused_passes_saved,
            unfused_ns,
            fused_ns,
            speedup,
            predicted,
            identical,
        });
    }
    pool::cost::set_constants(None);

    // The speedup gate is hardware-conditioned through the cost model: it
    // applies only when the model itself says the calibrated throughput
    // leaves ≥ FUSE_SPEEDUP_GATE on the table for the K=4 replay.
    let k4 = fuse_rows
        .iter()
        .find(|r| r.context.ends_with("K=4"))
        .expect("the K=4 hypergradient tape is built above");
    let gated_speedup = k4.predicted >= FUSE_SPEEDUP_GATE;
    let gate_name = if gated_speedup {
        "speedup_1_3x"
    } else {
        "no_regression"
    };
    if !gated_speedup {
        println!(
            "tape-report: {FUSE_SPEEDUP_GATE}x gate skipped: the calibrated cost model \
             predicts only {:.2}x from fusion on this hardware — applying the \
             no-regression gate only",
            k4.predicted
        );
    }
    if gated_speedup && k4.speedup < FUSE_SPEEDUP_GATE {
        failures.push(format!(
            "attack::hypergradient K=4: fused replay {:.2}x < {FUSE_SPEEDUP_GATE}x \
             (model predicted {:.2}x on this hardware)",
            k4.speedup, k4.predicted
        ));
    }
    for r in &fuse_rows {
        if !r.speedup.is_finite() {
            failures.push(format!("{}: fused replay not measurable", r.context));
        } else if r.speedup < FUSE_NO_REGRESSION_GATE {
            failures.push(format!(
                "{}: fusion is a pessimization — {:.2}x < {FUSE_NO_REGRESSION_GATE}",
                r.context, r.speedup
            ));
        }
    }

    // Machine-readable artifact for CI.
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "  \"constants\": {{\"dispatch_ns\": {:.1}, \"task_ns\": {:.1}, \
         \"flops_per_ns\": {:.3}, \"bytes_per_ns\": {:.3}, \
         \"effective_parallelism\": {:.2}}},\n",
        consts.dispatch_ns,
        consts.task_ns,
        consts.flops_per_ns,
        consts.bytes_per_ns,
        consts.effective_parallelism
    ));
    s.push_str(&format!("  \"gate\": \"{gate_name}\",\n"));
    s.push_str(&format!(
        "  \"gates\": {{\"speedup\": {FUSE_SPEEDUP_GATE}, \
         \"no_regression\": {FUSE_NO_REGRESSION_GATE}}},\n"
    ));
    s.push_str("  \"contexts\": [");
    for (i, r) in fuse_rows.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"context\": \"{}\", \"fused_chains\": {}, \"fused_steps\": {}, \
             \"passes_saved\": {}, \"unfused_ns\": {:.0}, \"fused_ns\": {:.0}, \
             \"speedup\": {:.3}, \"model_speedup\": {:.3}, \"bit_identical\": {}}}",
            r.context,
            r.chains,
            r.steps_fused,
            r.passes_saved,
            r.unfused_ns,
            r.fused_ns,
            r.speedup,
            r.predicted,
            r.identical
        ));
    }
    s.push_str(&format!("\n  ],\n  \"failures\": {}\n}}\n", failures.len()));
    let root = workspace_root();
    if let Err(e) = std::fs::write(root.join("BENCH_fuse.json"), &s) {
        failures.push(format!("could not write BENCH_fuse.json: {e}"));
    } else {
        println!(
            "tape-report: wrote {}",
            root.join("BENCH_fuse.json").display()
        );
    }

    if all_ok && failures.is_empty() {
        println!("tape-report: all optimized replays verified; fusion gate ({gate_name}) passed");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("tape-report: {f}");
        }
        if !all_ok {
            eprintln!("tape-report: at least one optimized replay diverged");
        }
        eprintln!("tape-report: FAILED");
        ExitCode::FAILURE
    }
}

// ---- trace-report -----------------------------------------------------------

/// One span event parsed back out of the trace file, re-linked to the spans
/// it encloses.
struct TraceSpan {
    name: String,
    idx: Option<u64>,
    tid: u64,
    depth: u64,
    start: u64,
    dur: u64,
    children: Vec<usize>,
}

/// One `ev:"op"` per-op profile row.
struct TraceOp {
    ctx: String,
    op: String,
    count: u64,
    flops: u64,
    out_bytes: u64,
    measured_ns: u64,
}

/// Everything the report renders, parsed from one trace file.
struct TraceData {
    spans: Vec<TraceSpan>,
    roots: Vec<usize>,
    counters: Vec<(String, u64)>,
    hists: BTreeMap<String, Vec<(u64, u64)>>,
    ops: Vec<TraceOp>,
}

/// Parses a JSONL trace and reconstructs span nesting.
///
/// Spans are emitted at *close*, so children precede parents in the file;
/// the tree is rebuilt by sorting each thread's spans by start time and
/// matching recorded depths.
fn parse_trace(text: &str) -> TraceData {
    use trace::read::Value;
    let mut spans: Vec<TraceSpan> = Vec::new();
    let mut counters = Vec::new();
    let mut hists: BTreeMap<String, Vec<(u64, u64)>> = BTreeMap::new();
    let mut ops = Vec::new();
    for line in text.lines() {
        let Some(obj) = trace::read::parse_line(line) else {
            continue;
        };
        let str_of = |k: &str| obj.get(k).and_then(Value::as_str).map(str::to_string);
        let u64_of = |k: &str| obj.get(k).and_then(Value::as_u64);
        match obj.get("ev").and_then(Value::as_str) {
            Some("span") => {
                let (Some(name), Some(tid), Some(depth), Some(start), Some(dur)) = (
                    str_of("name"),
                    u64_of("tid"),
                    u64_of("depth"),
                    u64_of("start_ns"),
                    u64_of("dur_ns"),
                ) else {
                    continue;
                };
                spans.push(TraceSpan {
                    name,
                    idx: u64_of("idx"),
                    tid,
                    depth,
                    start,
                    dur,
                    children: Vec::new(),
                });
            }
            Some("counter") => {
                if let (Some(name), Some(value)) = (str_of("name"), u64_of("value")) {
                    counters.push((name, value));
                }
            }
            Some("hist") => {
                if let (Some(name), Some(lo), Some(count)) =
                    (str_of("name"), u64_of("bucket_lo"), u64_of("count"))
                {
                    hists.entry(name).or_default().push((lo, count));
                }
            }
            Some("op") => {
                if let (Some(ctx), Some(op)) = (str_of("ctx"), str_of("op")) {
                    ops.push(TraceOp {
                        ctx,
                        op,
                        count: u64_of("count").unwrap_or(0),
                        flops: u64_of("flops").unwrap_or(0),
                        out_bytes: u64_of("out_bytes").unwrap_or(0),
                        measured_ns: u64_of("measured_ns").unwrap_or(0),
                    });
                }
            }
            _ => {}
        }
    }
    // Nesting: within a thread, a span's parent is the most recent span at
    // `depth - 1` that started before it.
    let mut order: Vec<usize> = (0..spans.len()).collect();
    order.sort_by_key(|&i| (spans[i].tid, spans[i].start, spans[i].depth));
    let mut roots = Vec::new();
    let mut stack: Vec<usize> = Vec::new();
    let mut cur_tid = None;
    for &i in &order {
        if cur_tid != Some(spans[i].tid) {
            stack.clear();
            cur_tid = Some(spans[i].tid);
        }
        while stack
            .last()
            .is_some_and(|&top| spans[top].depth >= spans[i].depth)
        {
            stack.pop();
        }
        match stack.last().copied() {
            Some(p) if spans[p].depth + 1 == spans[i].depth => spans[p].children.push(i),
            _ => roots.push(i),
        }
        stack.push(i);
    }
    TraceData {
        spans,
        roots,
        counters,
        hists,
        ops,
    }
}

/// Prints one tree level, aggregating sibling spans that share a name
/// (e.g. hundreds of `oracle::explain` probes become one `×N` line).
fn print_span_group(spans: &[TraceSpan], nodes: &[usize], indent: usize) {
    let mut order: Vec<&str> = Vec::new();
    let mut groups: BTreeMap<&str, (u64, u64, Vec<usize>, usize)> = BTreeMap::new();
    for &i in nodes {
        let s = &spans[i];
        let e = groups.entry(s.name.as_str()).or_insert_with(|| {
            order.push(s.name.as_str());
            (0, 0, Vec::new(), i)
        });
        e.0 += 1;
        e.1 += s.dur;
        e.2.extend_from_slice(&s.children);
    }
    for name in order {
        let (count, total, children, first) = &groups[name];
        let label = if *count > 1 {
            format!("{name} ×{count}")
        } else if let Some(idx) = spans[*first].idx {
            format!("{name} #{idx}")
        } else {
            name.to_string()
        };
        let pad = "  ".repeat(indent);
        let width = 46usize.saturating_sub(pad.len());
        println!("  {pad}{label:<width$} {:>10.2} ms", *total as f64 / 1e6);
        print_span_group(spans, children, indent + 1);
    }
}

/// Renders the parsed trace: span tree, counters, histograms, op profiles.
fn print_trace_report(t: &TraceData) {
    println!("spans ({} recorded):", t.spans.len());
    print_span_group(&t.spans, &t.roots, 0);
    if !t.counters.is_empty() {
        println!("\ncounters:");
        for (name, value) in &t.counters {
            println!("  {name:<28} {value}");
        }
    }
    if !t.hists.is_empty() {
        println!("\nhistograms (power-of-two buckets):");
        for (name, buckets) in &t.hists {
            let total: u64 = buckets.iter().map(|&(_, c)| c).sum();
            println!("  {name} ({total} samples)");
            for &(lo, count) in buckets {
                println!("    >= {lo:<12} {count}");
            }
        }
    }
    print_op_profiles(&t.ops);
}

/// The cost-model-vs-reality table: for each op family of a profiled
/// replay, its share of modeled FLOPs against its share of measured time,
/// largest divergence first.
fn print_op_profiles(ops: &[TraceOp]) {
    let mut ctxs: Vec<&str> = Vec::new();
    for o in ops {
        if !ctxs.contains(&o.ctx.as_str()) {
            ctxs.push(&o.ctx);
        }
    }
    for ctx in ctxs {
        let rows: Vec<&TraceOp> = ops.iter().filter(|o| o.ctx == ctx).collect();
        let total_ns: u64 = rows.iter().map(|o| o.measured_ns).sum();
        let total_flops: u64 = rows.iter().map(|o| o.flops).sum();
        if total_ns == 0 || total_flops == 0 {
            continue;
        }
        println!("\nper-op profile [{ctx}] — modeled FLOP share vs measured time share:");
        let mut indexed: Vec<(&TraceOp, f64, f64)> = rows
            .iter()
            .map(|o| {
                let measured = o.measured_ns as f64 / total_ns as f64;
                let modeled = o.flops as f64 / total_flops as f64;
                (*o, measured, modeled)
            })
            .collect();
        indexed.sort_by(|a, b| {
            let (da, db) = ((a.1 - a.2).abs(), (b.1 - b.2).abs());
            db.partial_cmp(&da)
                .expect("shares are finite")
                .then_with(|| a.0.op.cmp(&b.0.op))
        });
        println!(
            "  {:<16} {:>7} {:>14} {:>12} {:>10} {:>9} {:>9} {:>8}",
            "op", "steps", "flops", "bytes", "ms", "modeled", "measured", "diverge"
        );
        for (o, measured, modeled) in indexed.iter().take(12) {
            println!(
                "  {:<16} {:>7} {:>14} {:>12} {:>10.3} {:>8.1}% {:>8.1}% {:>+7.1}%",
                o.op,
                o.count,
                o.flops,
                o.out_bytes,
                o.measured_ns as f64 / 1e6,
                modeled * 100.0,
                measured * 100.0,
                (measured - modeled) * 100.0,
            );
        }
        if indexed.len() > 12 {
            println!("  ... {} more op families", indexed.len() - 12);
        }
    }
}

/// Runs the deterministic demo campaign (the `chaos_campaign` recipe) with
/// tracing armed, every stage inside an explicit phase span so the phase
/// totals tile the run. Returns the measured wall time.
fn run_traced_demo(trace_path: &Path, work_dir: &Path) -> Result<f64, String> {
    trace::reset_metrics();
    trace::install(Some(trace_path.to_path_buf()));
    let wall0 = Instant::now();
    let result = (|| -> Result<(), String> {
        let _root = trace::span("trace-report::demo");
        let seed = 42u64;
        let (ds, test, history, data, k, cfg) = {
            let _p = trace::span("demo::setup");
            let ds = build(DatasetKind::Tpch, Scale::quick(), seed);
            let exec = Executor::new(&ds);
            let spec = WorkloadSpec {
                max_join_tables: 3,
                ..WorkloadSpec::default()
            };
            let mut rng = StdRng::seed_from_u64(seed + 100);
            let history = generate_queries(&ds, &spec, &mut rng, 400);
            let test = exec.label_nonzero(generate_queries(&ds, &spec, &mut rng, 80));
            let labeled = exec.label_nonzero(history.clone());
            let data = EncodedWorkload::from_workload(&QueryEncoder::new(&ds), &labeled);
            let k = AttackerKnowledge::from_public(&ds, spec);
            let mut cfg = PipelineConfig::quick();
            // Fixed surrogate type: speculation keys off wall-clock latency
            // and would make the demo non-deterministic.
            cfg.surrogate_type = Some(CeModelType::Fcn);
            (ds, test, history, data, k, cfg)
        };
        let mut victim = {
            let _p = trace::span("demo::train-victim");
            let mut rng = StdRng::seed_from_u64(seed + 200);
            let mut model = CeModel::new(CeModelType::Fcn, &ds, CeConfig::quick(), seed);
            model
                .train(&data, &mut rng)
                .map_err(|e| format!("victim training failed: {e}"))?;
            Victim::new(model, Executor::new(&ds), history)
        };
        let outcome = {
            let _p = trace::span("demo::campaign");
            let manifest = work_dir.join("demo.campaign");
            run_campaign(&mut victim, AttackMethod::Pace, &test, &k, &cfg, &manifest)
                .map_err(|e| format!("campaign failed: {e}"))?
        };
        {
            // Optimize + profiled replay of the heaviest tape the attack
            // builds; `replay_profiled` emits the `ev:"op"` rows.
            let _p = trace::span("demo::tape-profile");
            let model = victim.model();
            let half = data.enc.len() / 2;
            let m = half.min(32);
            let (g, outputs, inputs) = build_hypergradient_tape(
                model,
                &data.enc[..m],
                &data.ln_card[..m],
                &data.enc[half..half + m],
                &data.ln_card[half..half + m],
                4,
                1e-2,
            );
            let plan = pace_tensor::opt::optimize(&g, &outputs, &inputs, "attack::hypergradient");
            let mut arena = pace_tensor::opt::Arena::new();
            let _ = plan.replay_profiled(&mut arena);
        }
        {
            let _p = trace::span("demo::evaluate");
            let finite = |s: &QErrorSummary| {
                [s.mean, s.median, s.p90, s.p95, s.p99, s.max]
                    .iter()
                    .all(|v| v.is_finite())
            };
            if !finite(&outcome.clean) || !finite(&outcome.poisoned) {
                return Err("non-finite q-errors in the demo campaign".to_string());
            }
            println!(
                "demo campaign: clean median q-error {:.4}, poisoned {:.4}, {} poison queries",
                outcome.clean.median,
                outcome.poisoned.median,
                outcome.poison.len()
            );
        }
        Ok(())
    })();
    let wall = wall0.elapsed().as_secs_f64();
    trace::flush();
    trace::install(None);
    result.map(|()| wall)
}

/// The disarmed-overhead gate: with tracing off, a counter increment must
/// cost about one relaxed atomic load. Generous bound (4× + 2 ns) so CI
/// noise cannot flake it; a regression to a mutex or SeqCst fence is orders
/// of magnitude beyond it.
fn disarmed_overhead_ok() -> bool {
    use std::sync::atomic::{AtomicU64, Ordering};
    trace::install(None);
    trace::reset_metrics();
    static BASELINE: AtomicU64 = AtomicU64::new(7);
    const N: u64 = 20_000_000;
    for _ in 0..N / 20 {
        trace::MATMUL_FLOPS.add(std::hint::black_box(1));
    }
    let t0 = Instant::now();
    for _ in 0..N {
        trace::MATMUL_FLOPS.add(std::hint::black_box(1));
    }
    let disarmed_ns = t0.elapsed().as_secs_f64() * 1e9 / N as f64;
    let t0 = Instant::now();
    let mut acc = 0u64;
    for _ in 0..N {
        acc = acc.wrapping_add(std::hint::black_box(BASELINE.load(Ordering::Relaxed)));
    }
    std::hint::black_box(acc);
    let baseline_ns = t0.elapsed().as_secs_f64() * 1e9 / N as f64;
    let counted = trace::MATMUL_FLOPS.get();
    println!(
        "\ndisarmed overhead: Counter::add {disarmed_ns:.2} ns/op, \
         relaxed-load baseline {baseline_ns:.2} ns/op"
    );
    if counted != 0 {
        eprintln!("trace-report: disarmed counter counted {counted} increments");
        return false;
    }
    if disarmed_ns > baseline_ns * 4.0 + 2.0 {
        eprintln!(
            "trace-report: disarmed counter increment costs {disarmed_ns:.2} ns — \
             more than one relaxed load's worth ({baseline_ns:.2} ns)"
        );
        return false;
    }
    true
}

/// Writes the machine-readable `BENCH_trace.json` next to the trace.
fn write_bench_json(
    path: &Path,
    wall_s: f64,
    phases: &[(String, u64, u64)],
    t: &TraceData,
) -> std::io::Result<()> {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"wall_s\": {wall_s:.6},\n"));
    s.push_str("  \"phases\": [");
    for (i, (name, count, total_ns)) in phases.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"name\": \"{name}\", \"count\": {count}, \"seconds\": {:.6}}}",
            *total_ns as f64 / 1e9
        ));
    }
    s.push_str("\n  ],\n  \"counters\": {");
    for (i, (name, value)) in t.counters.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\n    \"{name}\": {value}"));
    }
    s.push_str("\n  },\n  \"ops\": [");
    for (i, o) in t.ops.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"ctx\": \"{}\", \"op\": \"{}\", \"count\": {}, \"flops\": {}, \
             \"out_bytes\": {}, \"measured_ns\": {}}}",
            o.ctx, o.op, o.count, o.flops, o.out_bytes, o.measured_ns
        ));
    }
    s.push_str("\n  ]\n}\n");
    std::fs::write(path, s)
}

fn trace_report() -> ExitCode {
    let root = workspace_root();
    if let Some(path) = std::env::args().nth(2) {
        // Report-only mode: render an existing trace, no demo, no gates.
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("trace-report: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!("trace-report: {path}");
        print_trace_report(&parse_trace(&text));
        return ExitCode::SUCCESS;
    }

    let trace_path = root.join("pace_trace.jsonl");
    let work_dir = std::env::temp_dir().join(format!("pace-trace-report-{}", std::process::id()));
    if let Err(e) = std::fs::create_dir_all(&work_dir) {
        eprintln!("trace-report: cannot create {}: {e}", work_dir.display());
        return ExitCode::FAILURE;
    }
    println!("trace-report: running the traced demo campaign (quick TPC-H, PACE)...");
    let demo = run_traced_demo(&trace_path, &work_dir);
    let _ = std::fs::remove_dir_all(&work_dir);
    let wall_s = match demo {
        Ok(w) => w,
        Err(e) => {
            eprintln!("trace-report: {e}");
            return ExitCode::FAILURE;
        }
    };

    let text = match std::fs::read_to_string(&trace_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace-report: cannot read {}: {e}", trace_path.display());
            return ExitCode::FAILURE;
        }
    };
    let t = parse_trace(&text);
    println!(
        "\ntrace: {} ({} lines)",
        trace_path.display(),
        text.lines().count()
    );
    print_trace_report(&t);

    // Per-phase totals: the demo root's direct children, which tile it.
    let Some(&root_span) = t
        .roots
        .iter()
        .find(|&&i| t.spans[i].name == "trace-report::demo")
    else {
        eprintln!("trace-report: demo root span missing from the trace");
        return ExitCode::FAILURE;
    };
    let mut phases: Vec<(String, u64, u64)> = Vec::new();
    for &c in &t.spans[root_span].children {
        let s = &t.spans[c];
        match phases.iter_mut().find(|(n, _, _)| *n == s.name) {
            Some(p) => {
                p.1 += 1;
                p.2 += s.dur;
            }
            None => phases.push((s.name.clone(), 1, s.dur)),
        }
    }
    let phase_s: f64 = phases.iter().map(|&(_, _, ns)| ns as f64 / 1e9).sum();
    println!("\nper-phase totals:");
    for (name, _, ns) in &phases {
        let s = *ns as f64 / 1e9;
        println!(
            "  {name:<24} {s:>8.3} s  ({:>5.1}% of wall)",
            s / wall_s * 100.0
        );
    }
    println!(
        "  {:<24} {phase_s:>8.3} s  (wall {wall_s:.3} s, coverage {:.2}%)",
        "sum",
        phase_s / wall_s * 100.0
    );

    if let Err(e) = write_bench_json(&root.join("BENCH_trace.json"), wall_s, &phases, &t) {
        eprintln!("trace-report: cannot write BENCH_trace.json: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {}", root.join("BENCH_trace.json").display());

    let mut ok = true;
    if (phase_s - wall_s).abs() / wall_s > 0.01 {
        eprintln!(
            "trace-report: phase totals ({phase_s:.3} s) diverge from wall time \
             ({wall_s:.3} s) by more than 1% — untraced work inside the demo"
        );
        ok = false;
    }
    ok &= disarmed_overhead_ok();
    if ok {
        println!("trace-report: OK");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

// ---- lint -------------------------------------------------------------------

/// The workspace root: this binary's manifest lives at `crates/xtask`.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("crates/xtask has a workspace two levels up")
        .to_path_buf()
}

fn read(root: &Path, rel: &str) -> String {
    let path = root.join(rel);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("xtask lint: cannot read {}: {e}", path.display()))
}

/// Extracts the variant names of `enum Op` from the graph source.
fn op_variants(graph_src: &str) -> Vec<String> {
    let start = graph_src
        .find("enum Op {")
        .expect("crates/tensor/src/graph.rs declares `enum Op {`");
    let body_start = start + "enum Op {".len();
    let mut depth = 1usize;
    let mut end = body_start;
    for (i, ch) in graph_src[body_start..].char_indices() {
        match ch {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    end = body_start + i;
                    break;
                }
            }
            _ => {}
        }
    }
    let body = &graph_src[body_start..end];
    let mut variants = Vec::new();
    // Variant declarations sit at brace depth 0 within the enum body, at the
    // start of a line (after doc comments), shaped `Name` or `Name(...),`.
    let mut brace = 0i32;
    let mut paren = 0i32;
    for line in body.lines() {
        let trimmed = line.trim();
        if brace == 0
            && paren == 0
            && !trimmed.is_empty()
            && !trimmed.starts_with("//")
            && !trimmed.starts_with('#')
            && trimmed
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_uppercase())
        {
            let name: String = trimmed
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                variants.push(name);
            }
        }
        for ch in trimmed.chars() {
            match ch {
                '{' => brace += 1,
                '}' => brace -= 1,
                '(' => paren += 1,
                ')' => paren -= 1,
                _ => {}
            }
        }
    }
    variants
}

/// Files that must mention every `Op` variant: the VJP dispatch, the
/// auditor's shape/closure tables, the dataflow analyses (structural hash +
/// cost model), the optimizer's replay interpreter, the static
/// scheduler's op-class table, and the elementwise-fusion classifier
/// (`elem_form` must give an explicit fusible/not-fusible verdict for
/// every op — a wildcard arm there would silently exclude new
/// elementwise ops from fusion).
const OP_COVERAGE_FILES: [&str; 6] = [
    "crates/tensor/src/grad.rs",
    "crates/tensor/src/analysis.rs",
    "crates/tensor/src/dataflow.rs",
    "crates/tensor/src/opt.rs",
    "crates/tensor/src/sched.rs",
    "crates/tensor/src/fuse.rs",
];

fn check_op_coverage(root: &Path, failures: &mut Vec<String>) {
    let graph_src = read(root, "crates/tensor/src/graph.rs");
    let variants = op_variants(&graph_src);
    if variants.len() < 30 {
        failures.push(format!(
            "crates/tensor/src/graph.rs: expected to parse the full Op enum, found only \
             {} variant(s) — the lint's parser may be out of date",
            variants.len()
        ));
        return;
    }
    for rel in OP_COVERAGE_FILES {
        let src = read(root, rel);
        for v in &variants {
            let mentioned = src.contains(&format!("Op::{v}(")) // pattern with operands
                || src.contains(&format!("Op::{v} ")) // bare pattern in match arm
                || src.contains(&format!("Op::{v},"))
                || src.contains(&format!("Op::{v} =>"));
            if !mentioned {
                failures.push(format!(
                    "{rel}: Op::{v} is not handled (no `Op::{v}` mention)"
                ));
            }
        }
    }
}

/// True for paths whose `.unwrap()` calls are exempt from the lint.
fn unwrap_exempt(rel: &Path) -> bool {
    let s = rel.to_string_lossy();
    s.starts_with("crates/xtask/")
        || s.starts_with("vendor/")
        || s.contains("/tests/")
        || s.contains("/benches/")
        || s.contains("/examples/")
        || s.starts_with("tests/")
        || s.starts_with("target/")
}

fn check_no_unwrap(root: &Path, failures: &mut Vec<String>) {
    let mut sources = Vec::new();
    collect_rs(&root.join("crates"), root, &mut sources);
    for rel in sources {
        if unwrap_exempt(&rel) {
            continue;
        }
        let src = read(root, &rel.to_string_lossy());
        failures.extend(unwrap_violations(&rel, &src));
    }
}

/// Bare-`.unwrap()` violations in one file. Most crates get the rule on
/// library code only (`#[cfg(test)]` items are stripped); the `workload`
/// crate is scanned in full, including its test modules — bare unwraps
/// crept back in through exactly that gap once.
fn unwrap_violations(rel: &Path, src: &str) -> Vec<String> {
    let full_coverage = rel.to_string_lossy().starts_with("crates/workload/");
    let lines: Vec<(usize, &str)> = if full_coverage {
        src.lines().enumerate().map(|(i, l)| (i + 1, l)).collect()
    } else {
        strip_test_modules(src)
    };
    let mut out = Vec::new();
    for (line_no, line) in lines {
        let code = line.split("//").next().unwrap_or(line);
        if code.contains(".unwrap()") {
            out.push(format!(
                "{}:{}: `.unwrap()` in library code — use `expect` with context or \
                 handle the error",
                rel.display(),
                line_no
            ));
        }
    }
    out
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, root, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
}

/// Yields `(line_number, line)` for lines outside `#[cfg(test)]` items.
///
/// Brace-counting heuristic: when a line contains `#[cfg(test)]`, skip until
/// the braces opened by the following item close again. Good enough for this
/// workspace's rustfmt-formatted sources; not a general Rust parser.
fn strip_test_modules(src: &str) -> Vec<(usize, &str)> {
    let mut out = Vec::new();
    let mut lines = src.lines().enumerate().peekable();
    while let Some((i, line)) = lines.next() {
        if line.trim_start().starts_with("#[cfg(test)]") {
            let mut depth = 0i32;
            let mut opened = false;
            for (_, l) in lines.by_ref() {
                for ch in l.chars() {
                    match ch {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
            }
            continue;
        }
        out.push((i + 1, line));
    }
    out
}

/// Tokens marking a fallible probe / training / persistence call whose
/// result must be propagated in the campaign-runtime crates.
const PROBE_TOKENS: [&str; 9] = [
    ".explain(",
    ".explain_timed(",
    ".count(",
    ".run_queries(",
    "read_params(",
    "write_params(",
    "read_checkpoint(",
    "write_checkpoint(",
    "load_manifest(",
];

/// In `crates/core` and `crates/ce` library code, probe/IO results must not
/// be `.unwrap()`/`.expect()`-ed — they carry the typed failure surface the
/// resilience layer recovers from.
fn check_no_probe_panics(root: &Path, failures: &mut Vec<String>) {
    let mut sources = Vec::new();
    collect_rs(&root.join("crates/core/src"), root, &mut sources);
    collect_rs(&root.join("crates/ce/src"), root, &mut sources);
    for rel in sources {
        let src = read(root, &rel.to_string_lossy());
        for (line_no, line) in strip_test_modules(&src) {
            let code = line.split("//").next().unwrap_or(line);
            let panics = code.contains(".unwrap()") || code.contains(".expect(");
            if panics && PROBE_TOKENS.iter().any(|t| code.contains(t)) {
                failures.push(format!(
                    "{}:{}: panicking on a probe/IO result — propagate the error with `?` \
                     so the campaign runtime can retry, degrade, or resume",
                    rel.display(),
                    line_no
                ));
            }
        }
    }
}

/// Raw thread primitives; only `crates/runtime` (the pool's scoped fan-out)
/// may use them.
const THREAD_TOKENS: [&str; 2] = ["thread::spawn(", "thread::scope("];

/// Every fan-out outside the pool crate must go through `pace_runtime`:
/// an ad-hoc `thread::spawn`/`thread::scope` escapes the size-derived
/// chunking and ordered reduction that make results `PACE_THREADS`-invariant.
fn check_no_raw_threads(root: &Path, failures: &mut Vec<String>) {
    let mut sources = Vec::new();
    collect_rs(&root.join("crates"), root, &mut sources);
    for rel in sources {
        let s = rel.to_string_lossy().into_owned();
        // crates/xtask is exempt because this lint's own token table would
        // match itself; it is tooling, not product code.
        if s.starts_with("crates/runtime/") || s.starts_with("crates/xtask/") {
            continue;
        }
        let src = read(root, &s);
        for (line_no, line) in src.lines().enumerate() {
            let code = line.split("//").next().unwrap_or(line);
            if THREAD_TOKENS.iter().any(|t| code.contains(t)) {
                failures.push(format!(
                    "{s}:{}: raw thread primitive outside crates/runtime — fan out through \
                     `pace_runtime` so results stay thread-count invariant",
                    line_no + 1
                ));
            }
        }
    }
}

/// True when `code` sorts float keys NaN-tolerantly: a `partial_cmp` whose
/// `None` is absorbed by `.unwrap_or(..)` / `.unwrap_or_else(..)` /
/// `.unwrap_or_default()`. One NaN key then scrambles the whole sort order
/// (the comparator stops being a strict weak ordering), which is how the
/// degraded-estimate median came to return garbage instead of failing.
fn is_nan_tolerant_sort(code: &str) -> bool {
    code.contains("partial_cmp") && code.contains(".unwrap_or")
}

/// Library code must filter non-finite values *before* sorting and then
/// `expect` the comparison; swallowing the `None` hides the NaN.
///
/// Checks each line and each pair of adjacent lines (rustfmt likes to split
/// `partial_cmp(b)` and the `.unwrap_or(..)` across lines).
fn check_no_nan_sort(root: &Path, failures: &mut Vec<String>) {
    let mut sources = Vec::new();
    collect_rs(&root.join("crates"), root, &mut sources);
    for rel in sources {
        if unwrap_exempt(&rel) {
            continue;
        }
        let src = read(root, &rel.to_string_lossy());
        let lines = strip_test_modules(&src);
        for w in 0..lines.len() {
            let (line_no, line) = lines[w];
            let code = line.split("//").next().unwrap_or(line).to_string();
            let hit = if is_nan_tolerant_sort(&code) {
                true
            } else if let Some(&(next_no, next)) = lines.get(w + 1) {
                // Only join physically adjacent lines; a gap means the two
                // tokens belong to different expressions.
                next_no == line_no + 1 && {
                    let joined = format!("{code}{}", next.split("//").next().unwrap_or(next));
                    // Report a split pattern once, at its first line.
                    is_nan_tolerant_sort(&joined) && !is_nan_tolerant_sort(next)
                }
            } else {
                false
            };
            if hit {
                failures.push(format!(
                    "{}:{}: `partial_cmp(..).unwrap_or(..)` on a float sort key silently \
                     scrambles the order on NaN — filter non-finite values first and \
                     `expect` the comparison",
                    rel.display(),
                    line_no
                ));
            }
        }
    }
}

// ---- pool call-site discipline ----------------------------------------------

/// Pool entry points whose call spans are audited. `chunk_ranges` and
/// `par_chunks` additionally get their `min_chunk` argument checked.
const POOL_PRIMITIVES: [&str; 7] = [
    "::run(",
    "::for_each_owned(",
    "::for_each_split(",
    "::par_map(",
    "::par_try_map(",
    "::par_chunks(",
    "::chunk_ranges(",
];

/// Tokens that must not appear anywhere inside a pool call span. The first
/// three make the grid or the task body depend on the thread count or the
/// environment (breaking `PACE_THREADS` bit-identity); the rest are shared
/// mutable state — cross-task communication outside the pool's indexed
/// slots and `for_each_split` hand-offs, i.e. ordering-dependent results at
/// best and a data race at worst.
const REGION_FORBIDDEN: [&str; 8] = [
    "threads()",
    "env::var",
    "available_parallelism",
    "Mutex",
    "RwLock",
    "Atomic",
    "fetch_add(",
    ".store(",
];

/// Tokens that disqualify a local `let` binding from serving as a
/// `min_chunk` argument: the grid must be a pure function of input sizes.
const MIN_CHUNK_FORBIDDEN: [&str; 3] = ["threads()", "env::var", "available_parallelism"];

/// Paths exempt from the pool-discipline lint: the pool itself (its
/// internals *are* the slot primitives), tooling, and test/bench code.
fn pool_discipline_exempt(rel: &Path) -> bool {
    unwrap_exempt(rel) || rel.to_string_lossy().starts_with("crates/runtime/")
}

/// The balanced-paren call span starting at `open` (the index of `(`),
/// exclusive of the outer parens. `None` if the parens never balance.
/// Naive about parens inside string literals — fine for this workspace's
/// call sites, and a false hit fails loudly rather than silently passing.
fn call_span(text: &str, open: usize) -> Option<&str> {
    let mut depth = 0i32;
    for (i, ch) in text[open..].char_indices() {
        match ch {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&text[open + 1..open + i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Splits a call span at top-level commas, stopping at the first top-level
/// `|` (the trailing closure — its parameter list would otherwise
/// over-split). Everything from the `|` on lands in the final argument.
fn top_level_args(span: &str) -> Vec<&str> {
    let mut args = Vec::new();
    let mut depth = 0i32;
    let mut start = 0;
    for (i, ch) in span.char_indices() {
        match ch {
            '(' | '[' | '{' => depth += 1,
            ')' | ']' | '}' => depth -= 1,
            ',' if depth == 0 => {
                args.push(&span[start..i]);
                start = i + 1;
            }
            '|' if depth == 0 => break,
            _ => {}
        }
    }
    args.push(&span[start..]);
    args
}

/// True when `arg` is an acceptable `min_chunk`: a numeric literal, a
/// `SCREAMING_CASE` constant path, or a local identifier whose `let`
/// initializer (searched in `text`) contains none of
/// [`MIN_CHUNK_FORBIDDEN`]. Anything else — a call, an arithmetic
/// expression, an unknown name — is rejected: hoist it into a named local
/// so the lint (and the reader) can see what the grid depends on.
fn min_chunk_arg_ok(arg: &str, text: &str) -> bool {
    let arg = arg.trim();
    if !arg.is_empty() && arg.chars().all(|c| c.is_ascii_digit() || c == '_') {
        return true; // numeric literal
    }
    if !arg
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    {
        return false; // not a bare path — hoist it into a local
    }
    let last = arg.rsplit("::").next().unwrap_or(arg);
    if !last.is_empty() && !last.chars().any(|c| c.is_ascii_lowercase()) {
        return true; // SCREAMING_CASE constant
    }
    // A local: its initializer, up to the statement's `;`, must not read
    // the thread count or the environment.
    for pat in [format!("let {last} ="), format!("let {last}:")] {
        if let Some(pos) = text.find(&pat) {
            let init = text[pos..].split(';').next().unwrap_or("");
            return !MIN_CHUNK_FORBIDDEN.iter().any(|t| init.contains(t));
        }
    }
    false // unknown name (fn parameter, field) — derivation not auditable
}

/// Original line number of byte offset `pos` in the rebuilt text.
fn line_at(line_of_offset: &[(usize, usize)], pos: usize) -> usize {
    match line_of_offset.binary_search_by_key(&pos, |&(off, _)| off) {
        Ok(i) => line_of_offset[i].1,
        Err(0) => 1,
        Err(i) => line_of_offset[i - 1].1,
    }
}

/// Audits every pool call site in library code: constant-derived `min_chunk`
/// arguments only, and no thread-count/env reads or shared-state primitives
/// inside the call span. See module docs, lint rule 6.
fn check_pool_call_discipline(root: &Path, failures: &mut Vec<String>) {
    let mut sources = Vec::new();
    collect_rs(&root.join("crates"), root, &mut sources);
    for rel in sources {
        if pool_discipline_exempt(&rel) {
            continue;
        }
        let src = read(root, &rel.to_string_lossy());
        // Rebuild the non-test text, remembering original line numbers.
        let mut text = String::new();
        let mut line_of_offset: Vec<(usize, usize)> = Vec::new();
        for (no, line) in strip_test_modules(&src) {
            line_of_offset.push((text.len(), no));
            text.push_str(line.split("//").next().unwrap_or(line));
            text.push('\n');
        }
        for prim in POOL_PRIMITIVES {
            let mut from = 0;
            while let Some(pos) = text[from..].find(prim) {
                let start = from + pos;
                from = start + prim.len();
                let line_no = line_at(&line_of_offset, start);
                let open = start + prim.len() - 1;
                let Some(span) = call_span(&text, open) else {
                    failures.push(format!(
                        "{}:{line_no}: unbalanced parens at pool call `{prim}` — \
                         the discipline lint cannot audit this span",
                        rel.display()
                    ));
                    continue;
                };
                for token in REGION_FORBIDDEN {
                    if span.contains(token) {
                        failures.push(format!(
                            "{}:{line_no}: `{token}` inside a pool call span — parallel \
                             regions must not read the thread count/environment or touch \
                             shared state outside the pool's own slot primitives",
                            rel.display()
                        ));
                    }
                }
                if matches!(prim, "::par_chunks(" | "::chunk_ranges(") {
                    let args = top_level_args(span);
                    match args.get(1) {
                        Some(mc) if min_chunk_arg_ok(mc, &text) => {}
                        Some(mc) => failures.push(format!(
                            "{}:{line_no}: `min_chunk` argument `{}` is not a numeric \
                             literal, a constant, or a local derived from input sizes — \
                             the chunk grid must not depend on `threads()` or the \
                             environment",
                            rel.display(),
                            mc.trim()
                        )),
                        None => failures.push(format!(
                            "{}:{line_no}: pool call `{prim}` has no `min_chunk` argument \
                             to audit",
                            rel.display()
                        )),
                    }
                }
            }
        }
    }
}

// ---- determinism ------------------------------------------------------------

/// The parameter bytes of `matrices`, flattened in order.
fn matrix_bits(matrices: &[Matrix]) -> Vec<u32> {
    matrices
        .iter()
        .flat_map(|m| m.data().iter().map(|x| x.to_bits()))
        .collect()
}

/// Thread counts the in-process gate compares against the sequential run.
const DETERMINISM_THREADS: [usize; 3] = [2, 4, 8];

fn determinism() -> ExitCode {
    use pace_tensor::pool;
    let mut failures: Vec<String> = Vec::new();
    println!("determinism: quick TPC-H dataset + labeled workload...");
    let ds = build(DatasetKind::Tpch, Scale::quick(), 2);
    let exec = Executor::new(&ds);
    let mut rng = StdRng::seed_from_u64(42);
    let queries = generate_queries(&ds, &WorkloadSpec::default(), &mut rng, 96);

    // (1) Batch exact counting over the pool.
    pool::set_threads(1);
    let counts = exec.count_batch(&queries);
    for threads in DETERMINISM_THREADS {
        pool::set_threads(threads);
        if exec.count_batch(&queries) != counts {
            failures.push(format!("count_batch diverges at {threads} threads"));
        }
    }
    println!(
        "determinism: count_batch over {} queries — checked at {DETERMINISM_THREADS:?} threads",
        queries.len()
    );

    // (2) The cache-blocked parallel matmul kernel, bit-for-bit.
    let n = 160;
    let mut state = 0x5eed_u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f32 / 2.0e9) - 1.0
    };
    let a = Matrix::from_vec(n, n, (0..n * n).map(|_| next()).collect());
    let b = Matrix::from_vec(n, n, (0..n * n).map(|_| next()).collect());
    pool::set_threads(1);
    let product = matrix_bits(&[a.matmul(&b)]);
    for threads in DETERMINISM_THREADS {
        pool::set_threads(threads);
        if matrix_bits(&[a.matmul(&b)]) != product {
            failures.push(format!("matmul diverges at {threads} threads"));
        }
    }
    println!("determinism: {n}x{n} matmul — checked at {DETERMINISM_THREADS:?} threads");

    // (3) A briefly trained CE model: the full parameter vector must be
    // byte-equal whatever the thread count, because training is a long chain
    // of the kernels above — any reduction-order leak compounds here.
    let labeled = exec.label_nonzero(queries);
    let data = EncodedWorkload::from_workload(&QueryEncoder::new(&ds), &labeled);
    let train_once = || -> Result<Vec<u32>, String> {
        let mut model = CeModel::new(CeModelType::Fcn, &ds, CeConfig::quick(), 6);
        let mut rng = StdRng::seed_from_u64(7);
        model
            .train(&data, &mut rng)
            .map_err(|e| format!("training failed: {e}"))?;
        Ok(matrix_bits(&model.params().snapshot()))
    };
    pool::set_threads(1);
    match train_once() {
        Err(e) => failures.push(e),
        Ok(params) => {
            for threads in DETERMINISM_THREADS {
                pool::set_threads(threads);
                match train_once() {
                    Err(e) => failures.push(format!("{threads} threads: {e}")),
                    Ok(p) if p != params => {
                        failures.push(format!("trained parameters diverge at {threads} threads"))
                    }
                    Ok(_) => {}
                }
            }
            println!(
                "determinism: FCN training ({} parameter scalars) — checked at \
                 {DETERMINISM_THREADS:?} threads",
                params.len()
            );
        }
    }
    pool::set_threads(0);

    if failures.is_empty() {
        println!("xtask determinism: bit-identical across thread counts");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("xtask determinism: {f}");
        }
        eprintln!("xtask determinism: {} failure(s)", failures.len());
        ExitCode::FAILURE
    }
}

// ---- race-report ------------------------------------------------------------

/// Adversarial `PACE_SCHED` seeds for the schedule-fuzz matrix. Eight
/// arbitrary but fixed seeds; each drives a different chunk-pull
/// permutation and yield pattern in every parallel region.
const SCHED_SEEDS: [u64; 8] = [1, 2, 3, 5, 8, 13, 0x5eed, 0xfeed_f00d];

/// Thread counts the schedule matrix crosses with [`SCHED_SEEDS`].
const SCHED_THREADS: [usize; 3] = [1, 4, 8];

/// FNV-1a over `u64` words — the same fingerprint `chaos_campaign` prints,
/// so digests are comparable across gates.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }
    fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

/// Runs a reduced demo campaign (the `chaos_campaign` recipe at 200 history
/// / 40 test queries) from scratch — victim training included, so every
/// parallel kernel sits under the active schedule — and returns its
/// bit-exact fingerprint.
fn demo_campaign_digest(ds: &Dataset, work: &Path, tag: &str) -> Result<u64, String> {
    let exec = Executor::new(ds);
    let spec = WorkloadSpec {
        max_join_tables: 3,
        ..WorkloadSpec::default()
    };
    let mut rng = StdRng::seed_from_u64(142);
    let history = generate_queries(ds, &spec, &mut rng, 200);
    let test = exec.label_nonzero(generate_queries(ds, &spec, &mut rng, 40));
    let labeled = exec.label_nonzero(history.clone());
    let data = EncodedWorkload::from_workload(&QueryEncoder::new(ds), &labeled);
    let mut model = CeModel::new(CeModelType::Fcn, ds, CeConfig::quick(), 42);
    let mut train_rng = StdRng::seed_from_u64(242);
    model
        .train(&data, &mut train_rng)
        .map_err(|e| format!("victim training failed: {e}"))?;
    let mut victim = Victim::new(model, Executor::new(ds), history);
    let k = AttackerKnowledge::from_public(ds, spec);
    let mut cfg = PipelineConfig::quick();
    // Fixed surrogate type: speculation keys off wall-clock latency and
    // would make the digest non-deterministic.
    cfg.surrogate_type = Some(CeModelType::Fcn);
    let manifest = work.join(format!("race-{tag}.campaign"));
    let outcome = run_campaign(&mut victim, AttackMethod::Pace, &test, &k, &cfg, &manifest)
        .map_err(|e| format!("campaign failed: {e}"))?;

    let mut h = Fnv::new();
    for s in [&outcome.clean, &outcome.poisoned] {
        for v in [s.mean, s.median, s.p90, s.p95, s.p99, s.max] {
            h.write_u64(v.to_bits());
        }
    }
    h.write_u64(outcome.divergence.to_bits());
    for q in &outcome.poison {
        for &t in &q.tables {
            h.write_u64(t as u64);
        }
        for p in &q.predicates {
            h.write_u64(p.table as u64);
            h.write_u64(p.col as u64);
            h.write_u64(p.lo as u64);
            h.write_u64(p.hi as u64);
        }
    }
    let mut params = Vec::new();
    pace_tensor::serialize::write_params(victim.model().params(), &mut params)
        .map_err(|e| format!("cannot serialize the poisoned model: {e}"))?;
    for b in params {
        h.write_u64(u64::from(b));
    }
    Ok(h.finish())
}

/// The deterministic matmul operand pair the kernel-matrix gate reuses
/// (the `determinism` LCG recipe).
fn lcg_matrices(n: usize) -> (Matrix, Matrix) {
    let mut state = 0x5eed_u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f32 / 2.0e9) - 1.0
    };
    let a = Matrix::from_vec(n, n, (0..n * n).map(|_| next()).collect());
    let b = Matrix::from_vec(n, n, (0..n * n).map(|_| next()).collect());
    (a, b)
}

/// Builds and interference-checks one real tape; pushes a failure if the
/// arena plan has a liveness overlap. Returns `(context, steps, slots,
/// checked_pairs, clean)` for the JSON artifact.
fn interference_row(
    g: &Graph,
    outputs: &[Var],
    inputs: &[Var],
    context: &str,
    failures: &mut Vec<String>,
) -> (String, usize, usize, usize, bool) {
    let plan = pace_tensor::opt::optimize(g, outputs, inputs, context);
    match plan.check_interference() {
        Ok(stats) => {
            println!(
                "race-report: [{context}] arena interference: CLEAN — {} slot-writing \
                 steps over {} slots, {} adjacent pair(s) checked",
                stats.steps, stats.slots, stats.checked_pairs
            );
            (
                context.to_string(),
                stats.steps,
                stats.slots,
                stats.checked_pairs,
                true,
            )
        }
        Err(violations) => {
            for v in &violations {
                failures.push(format!("[{context}] {v}"));
            }
            (context.to_string(), 0, 0, 0, false)
        }
    }
}

fn race_report() -> ExitCode {
    use pace_tensor::pool;
    use pool::flags::FlagMode;
    use pool::race;

    let root = workspace_root();
    let mut failures: Vec<String> = Vec::new();

    // Shared fixtures: the tape-report dataset/model recipe.
    println!("race-report: building quick TPC-H dataset + labeled workload...");
    let ds = build(DatasetKind::Tpch, Scale::quick(), 2);
    let exec = Executor::new(&ds);
    let mut rng = StdRng::seed_from_u64(42);
    let queries = generate_queries(&ds, &WorkloadSpec::default(), &mut rng, 96);
    let labeled = exec.label_nonzero(queries.clone());
    let data = EncodedWorkload::from_workload(&QueryEncoder::new(&ds), &labeled);
    let model = CeModel::new(CeModelType::Fcn, &ds, CeConfig::quick(), 6);

    // (1) Static: the buffer-reuse plans of the real tapes must be free of
    // arena-slot interference.
    let mut interference_rows = Vec::new();
    {
        let mut g = Graph::new();
        let bind = model.params().bind(&mut g);
        let x = g.leaf(rows_to_matrix(&data.enc));
        let out = model.forward(&mut g, &bind, x);
        let loss = q_error_loss(&mut g, out, &data.ln_card, model.ln_max());
        let grads = g.grad(loss, bind.vars());
        let mut outputs = vec![loss];
        outputs.extend(&grads);
        interference_rows.push(interference_row(
            &g,
            &outputs,
            bind.vars(),
            "ce::train_step",
            &mut failures,
        ));
    }
    let half = data.enc.len() / 2;
    let m = half.min(32);
    for steps in [1usize, 4] {
        let (g, outputs, inputs) = build_hypergradient_tape(
            &model,
            &data.enc[..m],
            &data.ln_card[..m],
            &data.enc[half..half + m],
            &data.ln_card[half..half + m],
            steps,
            1e-2,
        );
        interference_rows.push(interference_row(
            &g,
            &outputs,
            &inputs,
            &format!("attack::hypergradient K={steps}"),
            &mut failures,
        ));
    }

    // (2) Fail-on-old-code witness, static: a seeded slot assignment where
    // the second tenant moves in while the first is still live MUST be
    // caught.
    {
        use pace_tensor::dataflow::{check_slot_interference, SlotStep};
        let seeded = [
            SlotStep {
                step: 1,
                slot: 0,
                last_use: 3,
            },
            SlotStep {
                step: 2,
                slot: 0,
                last_use: 4,
            },
        ];
        match check_slot_interference(&seeded) {
            Err(v) if v.len() == 1 && v[0].slot == 0 => {
                println!("race-report: seeded arena overlap: CAUGHT ({})", v[0]);
            }
            Err(v) => failures.push(format!(
                "seeded arena overlap mis-reported: {} violation(s)",
                v.len()
            )),
            Ok(_) => failures.push(
                "seeded arena overlap NOT caught — the static checker has lost its teeth".into(),
            ),
        }
    }

    // (3) Fail-on-old-code witness, dynamic: under PACE_RACE=strict a grid
    // with a hole must panic with a typed write-set violation, and the
    // clean kernels must stay silent.
    race::RACE.set(FlagMode::Strict);
    {
        let caught = std::panic::catch_unwind(|| {
            let mut buf = vec![0u8; 64];
            let grid = [(0usize, 24usize), (40usize, 64usize)];
            pool::for_each_split(&mut buf, &grid, |_, chunk| chunk.fill(1));
        });
        match caught {
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .unwrap_or_default();
                if msg.contains("write-set violation") && msg.contains("gap: [24, 40)") {
                    println!("race-report: seeded dirty region: CAUGHT (gap [24, 40))");
                } else {
                    failures.push(format!(
                        "dirty region panicked with the wrong report: {msg}"
                    ));
                }
            }
            Ok(()) => {
                failures.push("seeded dirty region NOT caught under PACE_RACE=strict".to_string())
            }
        }
    }
    let (a, b) = lcg_matrices(160);
    {
        // Clean kernels under the armed checker: no false positives.
        let clean = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool::set_threads(4);
            let _ = a.matmul(&b);
            let _ = exec.count_batch(&queries);
        }));
        if clean.is_err() {
            failures.push("armed checker false-positived on clean kernels".to_string());
        }
    }
    race::RACE.set(FlagMode::Off);

    // (4) Schedule-fuzz matrix: kernels and a reduced demo campaign must be
    // bit-identical across adversarial seeds × thread counts.
    let work_dir = std::env::temp_dir().join(format!("pace-race-report-{}", std::process::id()));
    if let Err(e) = std::fs::create_dir_all(&work_dir) {
        eprintln!("race-report: cannot create {}: {e}", work_dir.display());
        return ExitCode::FAILURE;
    }
    race::set_sched(None);
    pool::set_threads(1);
    let matmul_base = matrix_bits(&[a.matmul(&b)]);
    let counts_base = exec.count_batch(&queries);
    println!("race-report: baseline campaign digest (natural schedule, 1 thread)...");
    let digest_base = match demo_campaign_digest(&ds, &work_dir, "base") {
        Ok(d) => d,
        Err(e) => {
            eprintln!("race-report: baseline campaign failed: {e}");
            let _ = std::fs::remove_dir_all(&work_dir);
            return ExitCode::FAILURE;
        }
    };
    println!("race-report: baseline fingerprint {digest_base:016x}");
    let mut combos = 0usize;
    for (si, &seed) in SCHED_SEEDS.iter().enumerate() {
        for &threads in &SCHED_THREADS {
            race::set_sched(Some(seed));
            pool::set_threads(threads);
            combos += 1;
            if matrix_bits(&[a.matmul(&b)]) != matmul_base {
                failures.push(format!(
                    "matmul diverges under PACE_SCHED={seed} at {threads} threads"
                ));
            }
            if exec.count_batch(&queries) != counts_base {
                failures.push(format!(
                    "count_batch diverges under PACE_SCHED={seed} at {threads} threads"
                ));
            }
            match demo_campaign_digest(&ds, &work_dir, &format!("s{si}t{threads}")) {
                Ok(d) if d == digest_base => {}
                Ok(d) => failures.push(format!(
                    "demo campaign diverges under PACE_SCHED={seed} at {threads} threads: \
                     {d:016x} != {digest_base:016x}"
                )),
                Err(e) => failures.push(format!(
                    "demo campaign failed under PACE_SCHED={seed} at {threads} threads: {e}"
                )),
            }
        }
        println!(
            "race-report: seed {seed:#x}: kernels + campaign bit-identical at \
             {SCHED_THREADS:?} threads"
        );
    }
    race::set_sched(None);
    let _ = std::fs::remove_dir_all(&work_dir);

    // (5) Disarmed overhead: with PACE_RACE off, the per-region check is
    // 1–2 relaxed loads — bounded both absolutely (vs a measured relaxed
    // load) and relatively (≤ 1% of one matmul / count_batch fan-out).
    pool::set_threads(4);
    let (check_ns, load_ns) = {
        use std::sync::atomic::{AtomicU64, Ordering};
        static BASELINE: AtomicU64 = AtomicU64::new(7);
        const N: u64 = 20_000_000;
        for _ in 0..N / 20 {
            std::hint::black_box(race::armed());
        }
        let t0 = Instant::now();
        for _ in 0..N {
            std::hint::black_box(race::armed());
            std::hint::black_box(race::sched_seed());
        }
        let check_ns = t0.elapsed().as_secs_f64() * 1e9 / N as f64;
        let t0 = Instant::now();
        let mut acc = 0u64;
        for _ in 0..N {
            acc = acc.wrapping_add(std::hint::black_box(BASELINE.load(Ordering::Relaxed)));
        }
        std::hint::black_box(acc);
        (check_ns, t0.elapsed().as_secs_f64() * 1e9 / N as f64)
    };
    let bench_ns = |f: &dyn Fn()| {
        f(); // warm
        let reps = 5;
        let t0 = Instant::now();
        for _ in 0..reps {
            f();
        }
        t0.elapsed().as_secs_f64() * 1e9 / f64::from(reps)
    };
    let matmul_ns = bench_ns(&|| {
        std::hint::black_box(a.matmul(&b));
    });
    let count_ns = bench_ns(&|| {
        std::hint::black_box(exec.count_batch(&queries));
    });
    pool::set_threads(0);
    let matmul_share = check_ns / matmul_ns;
    let count_share = check_ns / count_ns;
    println!(
        "\nrace-report: disarmed check {check_ns:.2} ns/region (relaxed load \
         {load_ns:.2} ns), matmul {:.0} us, count_batch {:.0} us — shares \
         {:.5}% / {:.5}%",
        matmul_ns / 1e3,
        count_ns / 1e3,
        matmul_share * 100.0,
        count_share * 100.0
    );
    // The disarmed check is two-to-three relaxed loads plus branches;
    // generous bound so CI noise cannot flake it. The product-level
    // criterion is the ≤ 1% share gate below.
    if check_ns > load_ns * 8.0 + 2.0 {
        failures.push(format!(
            "disarmed PACE_RACE check costs {check_ns:.2} ns — more than a few \
             relaxed loads ({load_ns:.2} ns each)"
        ));
    }
    if matmul_share > 0.01 || count_share > 0.01 {
        failures.push(format!(
            "disarmed PACE_RACE overhead exceeds 1% of a fan-out: matmul \
             {:.3}%, count_batch {:.3}%",
            matmul_share * 100.0,
            count_share * 100.0
        ));
    }

    // Machine-readable artifact for CI.
    let mut s = String::from("{\n  \"interference\": [");
    for (i, (ctx, steps, slots, pairs, clean)) in interference_rows.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"context\": \"{ctx}\", \"steps\": {steps}, \"slots\": {slots}, \
             \"checked_pairs\": {pairs}, \"clean\": {clean}}}"
        ));
    }
    s.push_str(&format!(
        "\n  ],\n  \"schedule_matrix\": {{\"seeds\": {SCHED_SEEDS:?}, \
         \"threads\": {SCHED_THREADS:?}, \"combos\": {combos}, \
         \"campaign_fingerprint\": \"{digest_base:016x}\"}},\n"
    ));
    s.push_str(&format!(
        "  \"disarmed_overhead\": {{\"check_ns\": {check_ns:.4}, \
         \"relaxed_load_ns\": {load_ns:.4}, \"matmul_ns\": {matmul_ns:.0}, \
         \"count_batch_ns\": {count_ns:.0}, \"matmul_share\": {matmul_share:.6}, \
         \"count_share\": {count_share:.6}}},\n"
    ));
    s.push_str(&format!("  \"failures\": {}\n}}\n", failures.len()));
    let json_path = root.join("BENCH_race.json");
    if let Err(e) = std::fs::write(&json_path, s) {
        eprintln!("race-report: cannot write {}: {e}", json_path.display());
        return ExitCode::FAILURE;
    }
    println!("race-report: wrote {}", json_path.display());

    if failures.is_empty() {
        println!(
            "xtask race-report: OK — {} tape(s) interference-free, seeded overlaps \
             caught, {combos} schedule combos bit-identical",
            interference_rows.len()
        );
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("xtask race-report: {f}");
        }
        eprintln!("xtask race-report: {} failure(s)", failures.len());
        ExitCode::FAILURE
    }
}

// ---- sched-report -----------------------------------------------------------

/// Thread counts of the scaling curve (the `BENCH_scaling.json` x-axis).
const SCALING_THREADS: [usize; 4] = [1, 2, 4, 8];

/// Calibrated effective parallelism below which the 2× scaling gate is
/// vacuous — a 1–2 core runner cannot double anything — and the gate
/// degrades to the no-regression bound.
const SCALING_EFF_PAR_GATE: f64 = 3.3;

/// Required t8/t1 speedup on the big shapes when the hardware is genuinely
/// parallel.
const SCALING_SPEEDUP_GATE: f64 = 2.0;

/// Minimum allowed t8/t1 ratio anywhere. Best-of-N minimum timing still
/// jitters a few percent; below this bound the oracle has let threads
/// become a pessimization — the exact regression this gate exists to stop.
const SCALING_NO_REGRESSION_GATE: f64 = 0.85;

/// Best-of-`reps` wall time of `f` in nanoseconds, after one warm-up call.
fn scaling_best_ns(reps: u32, f: &mut dyn FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e9);
    }
    best
}

/// The output buffers of a replayed plan as exact bit patterns.
fn plan_output_bits(
    plan: &pace_tensor::opt::TapePlan,
    arena: &pace_tensor::opt::Arena,
) -> Vec<Vec<u32>> {
    (0..plan.num_outputs())
        .map(|k| {
            plan.output_value(arena, k)
                .data()
                .iter()
                .map(|v| v.to_bits())
                .collect()
        })
        .collect()
}

/// One verified schedule, condensed for console + JSON.
struct ScheduleRow {
    context: String,
    stages: usize,
    parallel: usize,
    max_width: usize,
    raw: usize,
    war: usize,
    waw: usize,
    predicted: f64,
}

fn sched_report() -> ExitCode {
    use pace_tensor::pool;
    use pace_tensor::sched::EdgeKind;
    use pool::race;

    let root = workspace_root();
    let mut failures: Vec<String> = Vec::new();

    // Resolve the cost constants once (override → PACE_SCHED_COST →
    // calibration) and pin them, so every stage decision and kernel grain in
    // the report keys off one consistent set.
    let consts = pool::cost::constants();
    pool::cost::set_constants(Some(consts));
    println!(
        "sched-report: cost constants: dispatch {:.0} ns, task {:.0} ns, \
         {:.2} flops/ns, {:.2} bytes/ns, effective parallelism {:.2}",
        consts.dispatch_ns,
        consts.task_ns,
        consts.flops_per_ns,
        consts.bytes_per_ns,
        consts.effective_parallelism
    );
    println!(
        "sched-report: pin with PACE_SCHED_COST={}",
        consts.to_spec()
    );

    // Shared fixtures: the race-report dataset/model recipe.
    println!("sched-report: building quick TPC-H dataset + labeled workload...");
    let ds = build(DatasetKind::Tpch, Scale::quick(), 2);
    let exec = Executor::new(&ds);
    let mut rng = StdRng::seed_from_u64(42);
    let queries = generate_queries(&ds, &WorkloadSpec::default(), &mut rng, 96);
    let labeled = exec.label_nonzero(queries.clone());
    let data = EncodedWorkload::from_workload(&QueryEncoder::new(&ds), &labeled);
    let model = CeModel::new(CeModelType::Fcn, &ds, CeConfig::quick(), 6);

    // The real tapes: a CE training step and the K = 1 / K = 4 attack
    // hypergradients.
    let mut plans: Vec<(String, pace_tensor::opt::TapePlan)> = Vec::new();
    {
        let mut g = Graph::new();
        let bind = model.params().bind(&mut g);
        let x = g.leaf(rows_to_matrix(&data.enc));
        let out = model.forward(&mut g, &bind, x);
        let loss = q_error_loss(&mut g, out, &data.ln_card, model.ln_max());
        let grads = g.grad(loss, bind.vars());
        let mut outputs = vec![loss];
        outputs.extend(&grads);
        plans.push((
            "ce::train_step".to_string(),
            pace_tensor::opt::optimize(&g, &outputs, bind.vars(), "ce::train_step"),
        ));
    }
    let half = data.enc.len() / 2;
    let m = half.min(32);
    for steps in [1usize, 4] {
        let (g, outputs, inputs) = build_hypergradient_tape(
            &model,
            &data.enc[..m],
            &data.ln_card[..m],
            &data.enc[half..half + m],
            &data.ln_card[half..half + m],
            steps,
            1e-2,
        );
        let context = format!("attack::hypergradient K={steps}");
        plans.push((
            context.clone(),
            pace_tensor::opt::optimize(&g, &outputs, &inputs, &context),
        ));
    }

    // (1) Verified schedules under the calibrated model: DAG + level-set
    // stages + the stage-collapsed interference proof, or a hard failure.
    let mut schedule_rows: Vec<ScheduleRow> = Vec::new();
    for (context, plan) in &plans {
        match plan.schedule() {
            Ok(s) => {
                println!(
                    "\nsched-report: [{context}] predicted speedup {:.2}x",
                    s.predicted_speedup()
                );
                if s.stages().len() <= 48 {
                    print!("{}", s.render());
                } else {
                    // The full per-stage listing would drown the log; keep
                    // the proof header and aggregate the rest.
                    print!("{}", s.render().lines().next().unwrap_or_default());
                    println!(
                        "\n  ({} stages elided; {} parallel, widest {})",
                        s.stages().len(),
                        s.parallel_stages(),
                        s.max_width()
                    );
                }
                schedule_rows.push(ScheduleRow {
                    context: context.clone(),
                    stages: s.stages().len(),
                    parallel: s.parallel_stages(),
                    max_width: s.max_width(),
                    raw: s.edge_count(EdgeKind::Raw),
                    war: s.edge_count(EdgeKind::War),
                    waw: s.edge_count(EdgeKind::Waw),
                    predicted: s.predicted_speedup(),
                });
            }
            Err(e) => failures.push(format!("[{context}] schedule rejected: {e}")),
        }
    }

    // (2) Bit-identity: staged replay vs. sequential replay across the
    // adversarial seed × thread matrix, under a fan-out-everything cost
    // model so the parallel hand-off path really executes even when the
    // calibrated verdicts would stay sequential (e.g. on a 1-core runner).
    pool::cost::set_constants(Some(pool::cost::CostConstants {
        dispatch_ns: 1.0,
        task_ns: 1.0,
        flops_per_ns: 1.0,
        bytes_per_ns: 1.0,
        effective_parallelism: 8.0,
    }));
    let mut combos = 0usize;
    for (context, plan) in &plans {
        let sched = match plan.schedule() {
            Ok(s) => s,
            Err(e) => {
                failures.push(format!("[{context}] fan-out schedule rejected: {e}"));
                continue;
            }
        };
        race::set_sched(None);
        pool::set_threads(1);
        let mut seq = pace_tensor::opt::Arena::new();
        plan.replay(&mut seq);
        let reference = plan_output_bits(plan, &seq);
        let mut clean = true;
        for &seed in &SCHED_SEEDS {
            for &threads in &SCHED_THREADS {
                race::set_sched(Some(seed));
                pool::set_threads(threads);
                combos += 1;
                let mut arena = pace_tensor::opt::Arena::new();
                plan.replay_scheduled(&sched, &mut arena);
                if plan_output_bits(plan, &arena) != reference {
                    clean = false;
                    failures.push(format!(
                        "[{context}] scheduled replay diverges under PACE_SCHED={seed} \
                         at {threads} threads"
                    ));
                }
            }
        }
        if clean {
            println!(
                "sched-report: [{context}] staged replay bit-identical across \
                 {} seeds x {SCHED_THREADS:?} threads ({} parallel stage(s))",
                SCHED_SEEDS.len(),
                sched.parallel_stages()
            );
        }
    }
    race::set_sched(None);

    // (3) Scaling curve: natural schedule, calibrated constants, best-of-N
    // minimum wall times at each thread count.
    pool::cost::set_constants(Some(consts));
    println!("\nsched-report: scaling curve at {SCALING_THREADS:?} threads...");
    let (a, b) = lcg_matrices(192);
    let (_, k4) = plans
        .iter()
        .find(|(c, _)| c.ends_with("K=4"))
        .expect("the K=4 hypergradient plan is built above");
    let k4_sched = k4.schedule();
    let mut rows: Vec<(&str, bool, Vec<f64>)> = vec![
        ("matmul_192", true, Vec::new()),
        ("hypergrad_k4_replay", true, Vec::new()),
        ("count_batch", false, Vec::new()),
    ];
    let mut k4_arena = pace_tensor::opt::Arena::new();
    for &threads in &SCALING_THREADS {
        pool::set_threads(threads);
        rows[0].2.push(scaling_best_ns(5, &mut || {
            std::hint::black_box(a.matmul(&b));
        }));
        match &k4_sched {
            Ok(s) => rows[1].2.push(scaling_best_ns(5, &mut || {
                k4.replay_scheduled(s, &mut k4_arena);
            })),
            Err(_) => rows[1].2.push(f64::NAN), // already a failure from (1)
        }
        rows[2].2.push(scaling_best_ns(5, &mut || {
            std::hint::black_box(exec.count_batch(&queries));
        }));
    }
    pool::set_threads(0);

    let eff = consts.effective_parallelism;
    let gated_2x = eff >= SCALING_EFF_PAR_GATE;
    let gate_name = if gated_2x {
        "speedup_2x"
    } else {
        "no_regression"
    };
    if !gated_2x {
        println!(
            "sched-report: 2x gate skipped: calibrated hardware parallelism {eff:.2} < \
             {SCALING_EFF_PAR_GATE} — applying the no-regression gate only"
        );
    }
    let mut scaling_rows: Vec<(String, Vec<f64>, f64, bool)> = Vec::new();
    for (name, big, ns) in &rows {
        let t1 = ns[0];
        let t8 = *ns.last().unwrap_or(&f64::NAN);
        let speedup = t1 / t8;
        let curve: Vec<String> = SCALING_THREADS
            .iter()
            .zip(ns)
            .map(|(t, v)| format!("t{t} {:.0}us", v / 1e3))
            .collect();
        println!(
            "sched-report: scaling {name:<20} {} — t8/t1 {speedup:.2}x",
            curve.join("  ")
        );
        if !speedup.is_finite() {
            failures.push(format!("{name}: scaling curve not measurable"));
        } else {
            if gated_2x && *big && speedup < SCALING_SPEEDUP_GATE {
                failures.push(format!(
                    "{name}: t8/t1 = {speedup:.2}x < {SCALING_SPEEDUP_GATE}x on parallel \
                     hardware (effective parallelism {eff:.1})"
                ));
            }
            if speedup < SCALING_NO_REGRESSION_GATE {
                failures.push(format!(
                    "{name}: threads are a pessimization — t8/t1 = {speedup:.2}x < \
                     {SCALING_NO_REGRESSION_GATE}"
                ));
            }
        }
        scaling_rows.push((name.to_string(), ns.clone(), speedup, *big));
    }
    if let (Ok(s), Some((_, _, measured, _))) = (
        &k4_sched,
        scaling_rows
            .iter()
            .find(|(n, ..)| n == "hypergrad_k4_replay"),
    ) {
        println!(
            "sched-report: hypergrad K=4 replay: predicted {:.2}x, measured t8/t1 {measured:.2}x",
            s.predicted_speedup()
        );
    }

    // Machine-readable artifact for CI.
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "  \"constants\": {{\"dispatch_ns\": {:.1}, \"task_ns\": {:.1}, \
         \"flops_per_ns\": {:.3}, \"bytes_per_ns\": {:.3}, \
         \"effective_parallelism\": {:.2}}},\n",
        consts.dispatch_ns, consts.task_ns, consts.flops_per_ns, consts.bytes_per_ns, eff
    ));
    s.push_str(&format!("  \"gate\": \"{gate_name}\",\n"));
    s.push_str(&format!("  \"thread_counts\": {SCALING_THREADS:?},\n"));
    s.push_str("  \"schedules\": [");
    for (i, r) in schedule_rows.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"context\": \"{}\", \"stages\": {}, \"parallel_stages\": {}, \
             \"max_width\": {}, \"edges_raw\": {}, \"edges_war\": {}, \
             \"edges_waw\": {}, \"predicted_speedup\": {:.3}}}",
            r.context, r.stages, r.parallel, r.max_width, r.raw, r.war, r.waw, r.predicted
        ));
    }
    s.push_str("\n  ],\n  \"scaling\": [");
    for (i, (name, ns, speedup, big)) in scaling_rows.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let ns_list: Vec<String> = ns.iter().map(|v| format!("{v:.0}")).collect();
        s.push_str(&format!(
            "\n    {{\"name\": \"{name}\", \"ns\": [{}], \"t8_over_t1\": {speedup:.3}, \
             \"gate_2x\": {big}}}",
            ns_list.join(", ")
        ));
    }
    s.push_str(&format!("\n  ],\n  \"identity_combos\": {combos},\n"));
    s.push_str(&format!("  \"failures\": {}\n}}\n", failures.len()));
    let json_path = root.join("BENCH_scaling.json");
    if let Err(e) = std::fs::write(&json_path, s) {
        eprintln!("sched-report: cannot write {}: {e}", json_path.display());
        return ExitCode::FAILURE;
    }
    println!("sched-report: wrote {}", json_path.display());

    if failures.is_empty() {
        println!(
            "xtask sched-report: OK — {} tape(s) scheduled and proof-checked, \
             {combos} identity combos bit-identical, scaling gate: {gate_name}",
            schedule_rows.len()
        );
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("xtask sched-report: {f}");
        }
        eprintln!("xtask sched-report: {} failure(s)", failures.len());
        ExitCode::FAILURE
    }
}

// ---- chaos ------------------------------------------------------------------

/// One `chaos_campaign` process run.
struct ChaosRun {
    code: i32,
    stdout: String,
    stderr: String,
}

fn chaos_campaign_once(manifest: &Path, faults: Option<&str>) -> ChaosRun {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let mut cmd = std::process::Command::new(cargo);
    cmd.args([
        "run",
        "--release",
        "-q",
        "-p",
        "xtask",
        "--bin",
        "chaos_campaign",
        "--",
    ]);
    cmd.arg(manifest);
    match faults {
        Some(f) => {
            cmd.env("PACE_FAULTS", f);
        }
        None => {
            cmd.env_remove("PACE_FAULTS");
        }
    }
    let out = cmd
        .output()
        .unwrap_or_else(|e| panic!("xtask chaos: cannot spawn chaos_campaign: {e}"));
    ChaosRun {
        code: out.status.code().unwrap_or(-1),
        stdout: String::from_utf8_lossy(&out.stdout).into_owned(),
        stderr: String::from_utf8_lossy(&out.stderr).into_owned(),
    }
}

/// Runs the campaign to completion through injected crashes: every exit code
/// [`pace_tensor::fault::CRASH_EXIT_CODE`] resumes from the same manifest.
/// Returns the final run and how many crashes were absorbed.
fn chaos_campaign_resuming(manifest: &Path, faults: &str, max_runs: u32) -> (ChaosRun, u32) {
    let mut crashes = 0;
    for _ in 0..max_runs {
        let run = chaos_campaign_once(manifest, Some(faults));
        if run.code == fault::CRASH_EXIT_CODE {
            crashes += 1;
            continue;
        }
        return (run, crashes);
    }
    panic!("xtask chaos: campaign under {faults:?} still crashing after {max_runs} runs");
}

fn chaos() -> ExitCode {
    let dir = std::env::temp_dir().join(format!("pace-chaos-{}", std::process::id()));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("xtask chaos: cannot create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    let mut failures: Vec<String> = Vec::new();

    // Fault-free baseline, run twice: the campaign itself must be
    // deterministic before fault recovery can promise bit-identity.
    println!("chaos: baseline (faults off), twice...");
    let base_a = chaos_campaign_once(&dir.join("baseline-a"), None);
    let base_b = chaos_campaign_once(&dir.join("baseline-b"), None);
    if base_a.code != 0 {
        eprintln!("{}", base_a.stderr);
        eprintln!(
            "xtask chaos: fault-free campaign failed (exit {})",
            base_a.code
        );
        return ExitCode::FAILURE;
    }
    if base_b.stdout != base_a.stdout {
        failures
            .push("baseline: two fault-free runs disagree — campaign is non-deterministic".into());
    }
    print!("{}", base_a.stdout);

    // Transient faults: retries/validation absorb them and the campaign
    // reproduces the baseline exactly.
    for (name, spec) in [
        ("timeout", "seed=7;timeout,site=explain,every=9,lat=0.05"),
        ("error", "seed=7;error,site=explain,every=11"),
        ("corrupt", "seed=7;corrupt,site=explain,every=13"),
    ] {
        println!("chaos: {name} ({spec})...");
        let run = chaos_campaign_once(&dir.join(name), Some(spec));
        if run.code != 0 {
            failures.push(format!("{name}: exit {} — {}", run.code, run.stderr.trim()));
        } else if run.stdout != base_a.stdout {
            failures.push(format!(
                "{name}: absorbed faults changed the outcome\n  baseline: {}\n  faulted : {}",
                last_line(&base_a.stdout),
                last_line(&run.stdout)
            ));
        }
    }

    // NaN gradients: rollback + halved LR changes the trajectory, so only
    // completion with finite results is required.
    {
        let spec = "nan,site=ce-update,at=1;nan,site=surrogate-imitate,at=2";
        println!("chaos: nan ({spec})...");
        let run = chaos_campaign_once(&dir.join("nan"), Some(spec));
        if run.code != 0 {
            failures.push(format!("nan: exit {} — {}", run.code, run.stderr.trim()));
        }
    }

    // Crashes: the process dies at the injected point; resuming from the
    // manifest must reproduce the baseline bit-identically.
    for (name, spec, min_crashes) in [
        ("crash-craft", "crash,site=campaign-craft,at=1", 1),
        ("crash-wave", "crash,site=campaign-wave,every=2", 1),
    ] {
        println!("chaos: {name} ({spec})...");
        let (run, crashes) = chaos_campaign_resuming(&dir.join(name), spec, 10);
        if crashes < min_crashes {
            failures.push(format!("{name}: expected an injected crash, saw none"));
        }
        if run.code != 0 {
            failures.push(format!(
                "{name}: resumed campaign failed (exit {}) — {}",
                run.code,
                run.stderr.trim()
            ));
        } else if run.stdout != base_a.stdout {
            failures.push(format!(
                "{name}: resume after {crashes} crash(es) diverged from the baseline\n  \
                 baseline: {}\n  resumed : {}",
                last_line(&base_a.stdout),
                last_line(&run.stdout)
            ));
        } else {
            println!("chaos: {name}: resumed through {crashes} crash(es), bit-identical");
        }
    }

    // Hard-down oracle: every retry and degradation path exhausts; the
    // campaign must fail with a typed error (exit 2), never a panic.
    {
        let spec = "error,site=explain,every=1";
        println!("chaos: hard-down ({spec})...");
        let run = chaos_campaign_once(&dir.join("hard-down"), Some(spec));
        if run.code != 2 {
            failures.push(format!(
                "hard-down: expected a typed campaign error (exit 2), got exit {} — {}",
                run.code,
                run.stderr.trim()
            ));
        }
    }

    // Serving kinds: in-process drills of the `pace-serve` runtime (the
    // campaign binary has no serving path). Each scenario runs twice under
    // the same spec and must be bit-identical; every rejection must be
    // typed; a corrupted hot-swap must be rejected with traffic unharmed.
    for (kind, spec) in [
        ("overload", "overload,site=serve-admit,every=25"),
        (
            "slow_consumer",
            "slow_consumer,site=serve-batch,every=4,lat=0.02",
        ),
        ("bad_update", "bad_update,site=serve-swap,at=1"),
    ] {
        println!("chaos: serve {kind} ({spec})...");
        match serve_chaos_scenario(kind, spec) {
            Ok(note) => println!("chaos: serve {kind}: {note}"),
            Err(e) => failures.push(format!("serve {kind}: {e}")),
        }
    }

    // The served campaign: a whole poison campaign through the hot-swap
    // gate with a corrupted wave-1 candidate and admission overload bursts
    // armed at once. The rejected wave must roll back, every reply must
    // stay typed, and two runs must be bit-identical end to end.
    println!("chaos: served campaign (bad_update wave 1 + overload bursts)...");
    match served_campaign_chaos_scenario() {
        Ok(note) => println!("chaos: served campaign: {note}"),
        Err(e) => failures.push(format!("served campaign: {e}")),
    }

    let _ = std::fs::remove_dir_all(&dir);
    if failures.is_empty() {
        println!("xtask chaos: full fault matrix OK");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("xtask chaos: {f}");
        }
        eprintln!("xtask chaos: {} failure(s)", failures.len());
        ExitCode::FAILURE
    }
}

fn last_line(s: &str) -> &str {
    s.lines().last().unwrap_or("")
}

// ---------------------------------------------------------------------------
// serve-report — the serving-runtime SLO gate
// ---------------------------------------------------------------------------

/// Deadline budget attached to every generated request (virtual seconds).
const SERVE_DEADLINE: f64 = 0.1;

/// The drill's load shape. The default config's service capacity is about
/// 1080 req/s, so 600 req/s is comfortably rated; the overload phase
/// doubles the rate and additionally arms the `overload` fault, whose
/// same-instant admission bursts push the offered load to roughly 2×
/// capacity. The two swap events (corrupted v2, clean v3) land inside the
/// swap-window phase, after the overload backlog has drained.
fn serve_phases() -> [Phase; 5] {
    [
        Phase {
            name: "ramp",
            duration: 0.5,
            rate: 300.0,
        },
        Phase {
            name: "rated",
            duration: 1.0,
            rate: 600.0,
        },
        Phase {
            name: "overload",
            duration: 1.5,
            rate: 1200.0,
        },
        Phase {
            name: "swap-window",
            duration: 1.0,
            rate: 600.0,
        },
        Phase {
            name: "recovery",
            duration: 1.0,
            rate: 600.0,
        },
    ]
}

/// Shared dataset/model/workload for the serving drills; model training
/// dominates the setup cost, so it runs once per process.
struct ServeFixture {
    ds: Dataset,
    model: CeModel,
    pinned: Vec<PinnedQuery>,
    pool: Vec<Query>,
}

fn serve_fixture() -> &'static ServeFixture {
    static FIXTURE: OnceLock<ServeFixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let ds = build(DatasetKind::Dmv, Scale::tiny(), 601);
        let exec = Executor::new(&ds);
        let mut rng = StdRng::seed_from_u64(602);
        let labeled = exec.label_nonzero(generate_queries(
            &ds,
            &WorkloadSpec::single_table(),
            &mut rng,
            200,
        ));
        let data = EncodedWorkload::from_workload(&QueryEncoder::new(&ds), &labeled);
        let mut model = CeModel::new(CeModelType::Linear, &ds, CeConfig::quick(), 603);
        model
            .train(&data, &mut rng)
            .expect("serve fixture model trains");
        let pool = labeled.iter().take(32).map(|lq| lq.query.clone()).collect();
        ServeFixture {
            pinned: pinned_from_encoded(&data, 24),
            ds,
            model,
            pool,
        }
    })
}

/// Everything one serving drill produced.
struct DrillRun {
    requests: usize,
    records: Vec<ReplyRecord>,
    summary: ServeSummary,
    swaps: Vec<SwapOutcome>,
    active: Option<u64>,
}

/// Runs the full five-phase drill at `threads` pool threads. Faults are
/// scoped: the admission `overload` bursts are armed only while the
/// overload phase's arrivals are generated, and `bad_update` is armed for
/// the in-flight swaps (it fires once, corrupting v2; v3 passes clean).
fn serve_drill(threads: usize) -> DrillRun {
    use pace_tensor::pool;
    let fx = serve_fixture();
    pool::set_threads(threads);
    fault::install(None);
    let mut srv = Server::new(
        ServeConfig::default(),
        fx.ds.schema.clone(),
        fx.pinned.clone(),
        Some(HistogramEstimator::build(&fx.ds, 32)),
    );
    srv.try_swap(1, fx.model.clone())
        .expect("initial snapshot validates");

    let mut requests: Vec<Request> = Vec::new();
    let mut offset = 0.0;
    for (i, ph) in serve_phases().iter().enumerate() {
        let spec = (ph.name == "overload").then(|| {
            FaultSpec::parse("overload,site=serve-admit,every=30").expect("valid overload spec")
        });
        fault::install(spec);
        let mut chunk = pace_serve::generate(
            std::slice::from_ref(ph),
            &fx.pool,
            700 + i as u64,
            SERVE_DEADLINE,
            requests.len() as u64,
        );
        for r in &mut chunk {
            r.arrival += offset;
            r.deadline += offset;
        }
        offset += ph.duration;
        requests.append(&mut chunk);
    }

    fault::install(Some(
        FaultSpec::parse("bad_update,site=serve-swap,at=1").expect("valid bad_update spec"),
    ));
    let swaps = vec![
        SwapEvent {
            at: 3.5,
            version: 2,
            model: fx.model.clone(),
        },
        SwapEvent {
            at: 3.8,
            version: 3,
            model: fx.model.clone(),
        },
    ];
    let n = requests.len();
    let records = srv.run(requests, swaps);
    fault::install(None);
    DrillRun {
        requests: n,
        records,
        summary: srv.summary().clone(),
        swaps: srv.swap_log().to_vec(),
        active: srv.snapshots().active_version(),
    }
}

/// First divergence between two reply sequences (bit-level on floats), or
/// `None` when identical.
fn records_diverge(a: &[ReplyRecord], b: &[ReplyRecord]) -> Option<String> {
    if a.len() != b.len() {
        return Some(format!("lengths differ: {} vs {}", a.len(), b.len()));
    }
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        let same = x.id == y.id
            && x.arrival.to_bits() == y.arrival.to_bits()
            && match (&x.outcome, &y.outcome) {
                (Ok(rx), Ok(ry)) => {
                    rx.estimate.to_bits() == ry.estimate.to_bits()
                        && rx.source == ry.source
                        && rx.completed_at.to_bits() == ry.completed_at.to_bits()
                }
                (Err(ex), Err(ey)) => ex == ey,
                _ => false,
            };
        if !same {
            return Some(format!(
                "record {i} (id {}) differs: {:?} vs {:?}",
                x.id, x.outcome, y.outcome
            ));
        }
    }
    None
}

/// Per-phase serving statistics, bucketed by request arrival time.
struct ServePhaseStats {
    name: &'static str,
    requests: usize,
    ok: usize,
    learned: usize,
    fallback: usize,
    shed: usize,
    deadline_missed: usize,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
}

fn serve_phase_stats(records: &[ReplyRecord]) -> Vec<ServePhaseStats> {
    let mut out = Vec::new();
    let mut start = 0.0;
    for ph in serve_phases() {
        let end = start + ph.duration;
        let mut s = ServePhaseStats {
            name: ph.name,
            requests: 0,
            ok: 0,
            learned: 0,
            fallback: 0,
            shed: 0,
            deadline_missed: 0,
            p50_ms: 0.0,
            p95_ms: 0.0,
            p99_ms: 0.0,
        };
        let mut lat: Vec<f64> = Vec::new();
        for r in records
            .iter()
            .filter(|r| r.arrival >= start && r.arrival < end)
        {
            s.requests += 1;
            match &r.outcome {
                Ok(reply) => {
                    s.ok += 1;
                    if reply.source == Source::Learned {
                        s.learned += 1;
                    } else {
                        s.fallback += 1;
                    }
                    lat.push((reply.completed_at - r.arrival) * 1e3);
                }
                Err(ServeError::Shed { .. }) => s.shed += 1,
                Err(ServeError::DeadlineExceeded { .. }) => s.deadline_missed += 1,
                Err(_) => {}
            }
        }
        lat.sort_by(f64::total_cmp);
        s.p50_ms = pctl(&lat, 0.50);
        s.p95_ms = pctl(&lat, 0.95);
        s.p99_ms = pctl(&lat, 0.99);
        out.push(s);
        start = end;
    }
    out
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn pctl(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Upper edges of the served-latency histogram buckets (ms); the last
/// bucket is open-ended.
const SERVE_LAT_BUCKETS_MS: [f64; 7] = [1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0];

fn serve_latency_histogram(records: &[ReplyRecord]) -> [u64; 8] {
    let mut h = [0u64; 8];
    for r in records {
        if let Ok(reply) = &r.outcome {
            let ms = (reply.completed_at - r.arrival) * 1e3;
            let idx = SERVE_LAT_BUCKETS_MS
                .iter()
                .position(|&b| ms <= b)
                .unwrap_or(SERVE_LAT_BUCKETS_MS.len());
            h[idx] += 1;
        }
    }
    h
}

/// Writes the machine-readable `BENCH_serve.json` at the workspace root.
fn write_serve_json(
    path: &Path,
    wall_s: f64,
    stats: &[ServePhaseStats],
    hist: &[u64; 8],
    run: &DrillRun,
    queue_cap: usize,
) -> std::io::Result<()> {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"wall_s\": {wall_s:.6},\n"));
    s.push_str(&format!(
        "  \"virtual_s\": {:.3},\n",
        pace_serve::total_duration(&serve_phases())
    ));
    s.push_str("  \"phases\": [");
    for (i, p) in stats.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let shed_rate = if p.requests == 0 {
            0.0
        } else {
            p.shed as f64 / p.requests as f64
        };
        s.push_str(&format!(
            "\n    {{\"name\": \"{}\", \"requests\": {}, \"ok\": {}, \"learned\": {}, \
             \"fallback\": {}, \"shed\": {}, \"shed_rate\": {:.4}, \"deadline_missed\": {}, \
             \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}}}",
            p.name,
            p.requests,
            p.ok,
            p.learned,
            p.fallback,
            p.shed,
            shed_rate,
            p.deadline_missed,
            p.p50_ms,
            p.p95_ms,
            p.p99_ms,
        ));
    }
    s.push_str("\n  ],\n  \"latency_histogram_ms\": {");
    for (i, count) in hist.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let label = match SERVE_LAT_BUCKETS_MS.get(i) {
            Some(edge) => format!("le_{edge}"),
            None => format!(
                "gt_{}",
                SERVE_LAT_BUCKETS_MS[SERVE_LAT_BUCKETS_MS.len() - 1]
            ),
        };
        s.push_str(&format!("\n    \"{label}\": {count}"));
    }
    s.push_str("\n  },\n  \"swaps\": [");
    for (i, sw) in run.swaps.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let outcome = match &sw.result {
            Ok(()) => "installed".to_string(),
            Err(e) => format!("rejected: {e}"),
        };
        s.push_str(&format!(
            "\n    {{\"at\": {:.3}, \"version\": {}, \"outcome\": \"{outcome}\"}}",
            sw.at, sw.version
        ));
    }
    s.push_str("\n  ],\n");
    s.push_str(&format!(
        "  \"active_version\": {},\n",
        run.active
            .map_or_else(|| "null".to_string(), |v| v.to_string())
    ));
    s.push_str(&format!("  \"queue_cap\": {queue_cap},\n"));
    s.push_str(&format!(
        "  \"max_queue_depth\": {},\n",
        run.summary.max_queue_depth
    ));
    s.push_str(&format!(
        "  \"totals\": {{\"requests\": {}, \"shed\": {}, \"fallback_served\": {}, \
         \"learned_served\": {}, \"deadline_missed\": {}, \"batches\": {}}}\n",
        run.summary.requests,
        run.summary.shed,
        run.summary.fallback_served,
        run.summary.learned_served,
        run.summary.deadline_missed,
        run.summary.batches,
    ));
    s.push_str("}\n");
    std::fs::write(path, s)
}

fn serve_report() -> ExitCode {
    use pace_tensor::pool;
    let root = workspace_root();
    let t0 = Instant::now();
    let mut failures: Vec<String> = Vec::new();

    println!(
        "serve-report: five-phase drill (ramp -> rated -> 2x overload -> bad-update swap \
         window -> recovery), ~5 s virtual time"
    );
    let run = serve_drill(1);
    println!("serve-report: re-running at 1 thread and at 8 threads for bit-identity...");
    let again = serve_drill(1);
    let wide = serve_drill(8);
    pool::set_threads(0);

    if let Some(d) = records_diverge(&run.records, &again.records) {
        failures.push(format!("determinism: two 1-thread runs diverge — {d}"));
    }
    if let Some(d) = records_diverge(&run.records, &wide.records) {
        failures.push(format!(
            "threads: 1-thread and 8-thread reply sequences diverge — {d}"
        ));
    }
    if run.records.len() != run.requests {
        failures.push(format!(
            "{} requests in, {} reply records out — a request was silently dropped",
            run.requests,
            run.records.len()
        ));
    }

    let queue_cap = ServeConfig::default().queue_cap;
    for r in &run.records {
        match &r.outcome {
            Ok(reply) => {
                if !(reply.estimate.is_finite() && reply.estimate >= 0.0) {
                    failures.push(format!(
                        "request {}: served estimate {} is outside [0, f64::MAX]",
                        r.id, reply.estimate
                    ));
                }
                if reply.completed_at < r.arrival {
                    failures.push(format!("request {}: completed before it arrived", r.id));
                }
            }
            Err(ServeError::Shed { depth }) => {
                if *depth > queue_cap {
                    failures.push(format!(
                        "request {}: shed at depth {depth} above the cap {queue_cap}",
                        r.id
                    ));
                }
            }
            Err(ServeError::DeadlineExceeded { .. }) => {}
            Err(e) => failures.push(format!("request {}: unexpected rejection: {e}", r.id)),
        }
    }
    if run.summary.max_queue_depth > queue_cap {
        failures.push(format!(
            "queue depth reached {} — the {queue_cap} cap did not hold",
            run.summary.max_queue_depth
        ));
    }

    let stats = serve_phase_stats(&run.records);
    for p in &stats {
        match p.name {
            "rated" | "recovery" => {
                if p.ok != p.requests {
                    failures.push(format!(
                        "{}: {} of {} requests rejected at rated load",
                        p.name,
                        p.requests - p.ok,
                        p.requests
                    ));
                }
                if p.p99_ms > 50.0 {
                    failures.push(format!(
                        "{}: p99 latency {:.1} ms exceeds the 50 ms budget",
                        p.name, p.p99_ms
                    ));
                }
            }
            "overload" => {
                if p.shed == 0 {
                    failures.push("overload: expected typed sheds under 2x load, saw none".into());
                }
                if p.fallback == 0 {
                    failures.push(
                        "overload: expected token-bucket fallback service before shedding".into(),
                    );
                }
            }
            _ => {}
        }
    }

    // Swap log: v1 installed pre-stream, corrupted v2 rejected, clean v3
    // installed; zero failed well-formed requests around the swap window.
    let expected = [(1u64, true), (2, false), (3, true)];
    if run.swaps.len() != expected.len() {
        failures.push(format!(
            "expected {} swap attempts, saw {}",
            expected.len(),
            run.swaps.len()
        ));
    } else {
        for (&(version, ok), sw) in expected.iter().zip(&run.swaps) {
            if sw.version != version || sw.result.is_ok() != ok {
                failures.push(format!(
                    "swap v{}: expected {}, got {:?}",
                    sw.version,
                    if ok { "install" } else { "rejection" },
                    sw.result
                ));
            }
        }
        if run.swaps[1].result != Err(SwapError::NonFiniteParams) {
            failures.push(format!(
                "corrupted v2 rejected for the wrong reason: {:?}",
                run.swaps[1].result
            ));
        }
    }
    if run.active != Some(3) {
        failures.push(format!(
            "active version after the drill is {:?}, expected v3",
            run.active
        ));
    }
    if let Some(r) = run
        .records
        .iter()
        .find(|r| r.arrival >= 3.3 && r.arrival <= 3.7 && r.outcome.is_err())
    {
        failures.push(format!(
            "swap window: request {} failed ({:?}) while the bad update was being rejected",
            r.id, r.outcome
        ));
    }

    println!("serve-report: phase breakdown (virtual time):");
    println!(
        "  {:<12} {:>8} {:>6} {:>8} {:>9} {:>6} {:>8} {:>8} {:>8} {:>8}",
        "phase",
        "requests",
        "ok",
        "learned",
        "fallback",
        "shed",
        "dl-miss",
        "p50 ms",
        "p95 ms",
        "p99 ms"
    );
    for p in &stats {
        println!(
            "  {:<12} {:>8} {:>6} {:>8} {:>9} {:>6} {:>8} {:>8.2} {:>8.2} {:>8.2}",
            p.name,
            p.requests,
            p.ok,
            p.learned,
            p.fallback,
            p.shed,
            p.deadline_missed,
            p.p50_ms,
            p.p95_ms,
            p.p99_ms
        );
    }
    println!(
        "serve-report: swaps: {}; active {}; max queue depth {} (cap {})",
        run.swaps
            .iter()
            .map(|sw| format!(
                "v{} {}",
                sw.version,
                if sw.result.is_ok() {
                    "installed"
                } else {
                    "rejected"
                }
            ))
            .collect::<Vec<_>>()
            .join(", "),
        run.active
            .map_or_else(|| "none".to_string(), |v| format!("v{v}")),
        run.summary.max_queue_depth,
        queue_cap
    );

    // Break-glass drill: an operator `force_install` must activate its
    // snapshot without shadow validation and be counted apart from
    // validated swaps (counters only move while a trace sink is armed).
    {
        let fx = serve_fixture();
        let trace_path = std::env::temp_dir().join(format!(
            "pace-serve-report-counters-{}.jsonl",
            std::process::id()
        ));
        trace::install(Some(trace_path.clone()));
        let swaps_before = trace::SERVE_SWAPS.get();
        let force_before = trace::SERVE_FORCE_INSTALLS.get();
        let mut srv = Server::new(
            ServeConfig::default(),
            fx.ds.schema.clone(),
            fx.pinned.clone(),
            Some(HistogramEstimator::build(&fx.ds, 32)),
        );
        srv.force_install(9, fx.model.clone());
        let swap_delta = trace::SERVE_SWAPS.get() - swaps_before;
        let force_delta = trace::SERVE_FORCE_INSTALLS.get() - force_before;
        trace::install(None);
        let _ = std::fs::remove_file(&trace_path);
        if srv.snapshots().active_version() != Some(9) {
            failures.push("break-glass: force_install did not activate its snapshot".into());
        }
        if force_delta != 1 || swap_delta != 0 {
            failures.push(format!(
                "break-glass: force_install moved the wrong counters (force installs +{}, \
                 validated swaps +{}); an override must count once, apart from swaps",
                force_delta, swap_delta
            ));
        } else {
            println!("serve-report: break-glass force_install counted apart from validated swaps");
        }
    }

    let hist = serve_latency_histogram(&run.records);
    let path = root.join("BENCH_serve.json");
    match write_serve_json(
        &path,
        t0.elapsed().as_secs_f64(),
        &stats,
        &hist,
        &run,
        queue_cap,
    ) {
        Ok(()) => println!("serve-report: wrote {}", path.display()),
        Err(e) => failures.push(format!("cannot write {}: {e}", path.display())),
    }

    if failures.is_empty() {
        println!(
            "serve-report: all gates OK ({} requests, {} batches, {} sheds, bit-identical at \
             1 and 8 threads)",
            run.summary.requests, run.summary.batches, run.summary.shed
        );
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("xtask serve-report: {f}");
        }
        eprintln!("xtask serve-report: {} failure(s)", failures.len());
        ExitCode::FAILURE
    }
}

/// One in-process serving chaos run: rated then stressed traffic with a
/// v2 hot-swap attempt mid-stream, under `spec`.
fn serve_chaos_once(spec: &str, stress_rate: f64) -> DrillRun {
    let fx = serve_fixture();
    fault::install(None);
    let cfg = ServeConfig {
        queue_cap: 32,
        ..ServeConfig::default()
    };
    let mut srv = Server::new(
        cfg,
        fx.ds.schema.clone(),
        fx.pinned.clone(),
        Some(HistogramEstimator::build(&fx.ds, 32)),
    );
    srv.try_swap(1, fx.model.clone())
        .expect("initial snapshot validates");
    fault::install(Some(FaultSpec::parse(spec).expect("valid serving spec")));
    let phases = [
        Phase {
            name: "rated",
            duration: 0.3,
            rate: 600.0,
        },
        Phase {
            name: "stress",
            duration: 0.3,
            rate: stress_rate,
        },
    ];
    let requests = pace_serve::generate(&phases, &fx.pool, 811, 0.08, 0);
    let n = requests.len();
    let records = srv.run(
        requests,
        vec![SwapEvent {
            at: 0.45,
            version: 2,
            model: fx.model.clone(),
        }],
    );
    fault::install(None);
    DrillRun {
        requests: n,
        records,
        summary: srv.summary().clone(),
        swaps: srv.swap_log().to_vec(),
        active: srv.snapshots().active_version(),
    }
}

/// Checks one serving fault kind end to end: two bit-identical runs, typed
/// rejections only, finite estimates, and kind-specific recovery facts.
fn serve_chaos_scenario(kind: &str, spec: &str) -> Result<String, String> {
    // The bad-update scenario stays at rated load so the swap rejection is
    // observed with zero collateral rejections; the others stress at 2.5×.
    let stress_rate = if kind == "bad_update" { 600.0 } else { 1500.0 };
    let a = serve_chaos_once(spec, stress_rate);
    let b = serve_chaos_once(spec, stress_rate);
    if let Some(d) = records_diverge(&a.records, &b.records) {
        return Err(format!("two runs under the same spec diverge — {d}"));
    }
    if a.records.len() != a.requests {
        return Err(format!(
            "{} requests in, {} records out — silent drop",
            a.requests,
            a.records.len()
        ));
    }
    for r in &a.records {
        match &r.outcome {
            Ok(reply) if reply.estimate.is_finite() && reply.estimate >= 0.0 => {}
            Ok(reply) => {
                return Err(format!(
                    "request {}: served estimate {} is outside [0, f64::MAX]",
                    r.id, reply.estimate
                ))
            }
            Err(ServeError::Shed { depth }) if *depth <= 32 => {}
            Err(ServeError::DeadlineExceeded { .. }) => {}
            Err(e) => return Err(format!("request {}: unexpected rejection: {e}", r.id)),
        }
    }
    match kind {
        "overload" => {
            if a.summary.shed == 0 {
                return Err("expected typed sheds under burst overload, saw none".into());
            }
            if a.summary.max_queue_depth > 32 {
                return Err(format!(
                    "queue depth {} exceeded the cap",
                    a.summary.max_queue_depth
                ));
            }
            if a.active != Some(2) {
                return Err(format!(
                    "clean v2 swap did not land (active {:?})",
                    a.active
                ));
            }
            Ok(format!(
                "{} typed sheds, depth capped at {}, bit-identical",
                a.summary.shed, a.summary.max_queue_depth
            ))
        }
        "slow_consumer" => {
            let pressured = a.summary.shed + a.summary.fallback_served + a.summary.deadline_missed;
            if pressured == 0 {
                return Err("stalled batches produced no backpressure at all".into());
            }
            Ok(format!(
                "absorbed stalls: {} fallback, {} shed, {} deadline misses, no hang",
                a.summary.fallback_served, a.summary.shed, a.summary.deadline_missed
            ))
        }
        "bad_update" => {
            match a.swaps.get(1).map(|sw| &sw.result) {
                Some(Err(SwapError::NonFiniteParams)) => {}
                other => {
                    return Err(format!(
                        "corrupted v2 was not rejected as NonFiniteParams: {other:?}"
                    ))
                }
            }
            if a.active != Some(1) {
                return Err(format!(
                    "rollback failed: active {:?}, expected v1",
                    a.active
                ));
            }
            if a.records.iter().any(|r| r.outcome.is_err()) {
                return Err("a well-formed request failed during the rejected swap".into());
            }
            Ok("v2 rejected, v1 stayed active, zero failed requests".into())
        }
        _ => Err(format!("unknown serving kind {kind}")),
    }
}

/// One in-process served-campaign chaos run: a quick `Random` poison
/// campaign through the hot-swap serving path with the wave-1 candidate
/// corrupted mid-swap and admission overload bursts armed throughout.
/// Returns the attack outcome plus the serving-side ledgers.
fn served_campaign_chaos_once(
    tag: &str,
) -> Result<(AttackOutcome, Vec<ReplyRecord>, ServeSummary, Option<u64>), String> {
    let fx = defense_fixture();
    fault::install(None);
    // A tight admission queue: the injected same-instant bursts (24
    // arrivals) nearly fill it, so overload pressure is actually observed
    // during the waves.
    let server = Server::new(
        ServeConfig {
            queue_cap: 32,
            ..ServeConfig::default()
        },
        fx.ds.schema.clone(),
        fx.pinned.clone(),
        Some(HistogramEstimator::build(&fx.ds, 32)),
    );
    // Near-capacity background traffic: the runtime serves ~1080 req/s, so
    // at 900 req/s the injected bursts overflow the tight queue instead of
    // being absorbed by headroom.
    let mut traffic = ServedTraffic::new(fx.pool.clone(), 907);
    traffic.rate = 900.0;
    let mut served = ServedVictim::new(
        server,
        fx.model.clone(),
        Executor::new(&fx.ds),
        fx.history.clone(),
        traffic,
    )
    .map_err(|e| format!("clean install failed shadow validation: {e}"))?;
    // Armed *after* construction, so serve-swap site visits count from the
    // waves: visit 1 is wave 0's swap, visit 2 is wave 1's — which the
    // fault corrupts just before shadow validation. The overload bursts
    // hit every wave's background-traffic admission.
    fault::install(Some(
        FaultSpec::parse("bad_update,site=serve-swap,at=2;overload,site=serve-admit,every=25")
            .expect("valid chaos spec"),
    ));
    let k = AttackerKnowledge::from_public(&fx.ds, WorkloadSpec::single_table());
    let cfg = PipelineConfig::quick();
    let manifest = std::env::temp_dir().join(format!(
        "pace-chaos-served-{}-{tag}.campaign",
        std::process::id()
    ));
    let out = run_served_campaign(
        &mut served,
        AttackMethod::Random,
        &fx.test,
        &k,
        &cfg,
        &manifest,
    );
    fault::install(None);
    let out = out.map_err(|e| format!("served campaign failed under chaos: {e}"))?;
    if manifest.exists() {
        let _ = std::fs::remove_file(&manifest);
        return Err("completed campaign left its manifest behind".into());
    }
    Ok((
        out,
        served.replies(),
        served.summary(),
        served.active_version(),
    ))
}

/// The served-campaign chaos scenario: two identical runs under the
/// combined bad-update + overload spec must be bit-identical (swap ledger,
/// reply log, and attack measurements), the corrupted wave must be
/// rejected and rolled back while the other waves land, backpressure must
/// actually be observed, and every reply must be typed.
fn served_campaign_chaos_scenario() -> Result<String, String> {
    let (a, replies_a, summary_a, active_a) = served_campaign_chaos_once("a")?;
    let (b, replies_b, _, _) = served_campaign_chaos_once("b")?;
    if a.swaps != b.swaps {
        return Err(format!(
            "two runs under the same spec produce different swap ledgers:\n  a: {:?}\n  b: {:?}",
            a.swaps, b.swaps
        ));
    }
    if let Some(d) = records_diverge(&replies_a, &replies_b) {
        return Err(format!("two runs under the same spec diverge — {d}"));
    }
    if a.poisoned.mean.to_bits() != b.poisoned.mean.to_bits()
        || a.divergence.to_bits() != b.divergence.to_bits()
    {
        return Err("attack measurements differ between two identical runs".into());
    }

    let waves = a.swaps.len();
    if waves < 3 {
        return Err(format!("expected at least 3 waves, saw {waves}"));
    }
    match a.swaps.get(1).map(|s| &s.result) {
        Some(Err(SwapError::NonFiniteParams)) => {}
        other => {
            return Err(format!(
                "corrupted wave-1 candidate was not rejected as NonFiniteParams: {other:?}"
            ))
        }
    }
    let accepted = a.swaps.iter().filter(|s| s.result.is_ok()).count();
    if accepted != waves - 1 {
        return Err(format!(
            "expected every wave but the corrupted one to land, got {accepted} of {waves}: {:?}",
            a.swaps
        ));
    }
    let last_accepted = a
        .swaps
        .iter()
        .filter(|s| s.result.is_ok())
        .map(|s| s.version)
        .max();
    if active_a != last_accepted {
        return Err(format!(
            "active version {active_a:?} is not the last accepted {last_accepted:?} — \
             the rejected wave was not rolled back cleanly"
        ));
    }

    let queue_cap = 32; // must match the scenario's ServeConfig
    for r in &replies_a {
        match &r.outcome {
            Ok(reply) if reply.estimate.is_finite() && reply.estimate >= 0.0 => {}
            Ok(reply) => {
                return Err(format!(
                    "request {}: served estimate {} is outside [0, f64::MAX]",
                    r.id, reply.estimate
                ))
            }
            Err(ServeError::Shed { depth }) if *depth <= queue_cap => {}
            Err(ServeError::DeadlineExceeded { .. }) => {}
            Err(e) => return Err(format!("request {}: un-typed rejection: {e}", r.id)),
        }
    }
    let pressured = summary_a.shed + summary_a.fallback_served + summary_a.deadline_missed;
    if pressured == 0 {
        return Err("overload bursts produced no backpressure at all".into());
    }
    Ok(format!(
        "wave 1 rejected and rolled back, {accepted} of {waves} waves landed, \
         {pressured} pressured replies, bit-identical"
    ))
}

// ---------------------------------------------------------------------------
// defense-report — the served-campaign defense gate
// ---------------------------------------------------------------------------

/// Acceptance margin the defense drill applies to the clean model's own
/// pinned-set median q-error: a candidate snapshot passes shadow
/// validation only while its median stays within `margin ×` the honest
/// score. Wide enough that the clean v1 install and benign drift pass,
/// tight enough that accumulated poison trips the probe within a quick
/// campaign.
const DEFENSE_QERR_MARGIN: f64 = 2.0;

/// Shared dataset/model/workloads of the defense drill and the served
/// chaos scenario; model training dominates setup, so it runs once.
struct DefenseFixture {
    ds: Dataset,
    model: CeModel,
    pinned: Vec<PinnedQuery>,
    pool: Vec<Query>,
    history: Vec<Query>,
    test: Workload,
    /// The clean model's own median q-error on the pinned set.
    honest_median: f64,
    /// `honest_median × DEFENSE_QERR_MARGIN` — the drill's swap limit.
    qerr_limit: f64,
}

fn defense_fixture() -> &'static DefenseFixture {
    static FIXTURE: OnceLock<DefenseFixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let ds = build(DatasetKind::Dmv, Scale::tiny(), 901);
        let exec = Executor::new(&ds);
        let mut rng = StdRng::seed_from_u64(902);
        let spec = WorkloadSpec::single_table();
        let history = generate_queries(&ds, &spec, &mut rng, 200);
        let test = exec.label_nonzero(generate_queries(&ds, &spec, &mut rng, 60));
        let labeled = exec.label_nonzero(history.clone());
        let data = EncodedWorkload::from_workload(&QueryEncoder::new(&ds), &labeled);
        let mut model = CeModel::new(CeModelType::Linear, &ds, CeConfig::quick(), 903);
        model
            .train(&data, &mut rng)
            .expect("defense fixture model trains");
        let pinned = pinned_from_encoded(&data, 24);
        let honest_median = SnapshotStore::new(pinned.clone(), 1e6, 3).shadow_median_qerr(&model);
        let pool = labeled.iter().take(24).map(|lq| lq.query.clone()).collect();
        DefenseFixture {
            ds,
            model,
            pinned,
            pool,
            history,
            test,
            honest_median,
            qerr_limit: honest_median * DEFENSE_QERR_MARGIN,
        }
    })
}

/// Everything one defense drill produced.
struct DefenseRun {
    outcome: AttackOutcome,
    replies: Vec<ReplyRecord>,
    summary: ServeSummary,
    active: Option<u64>,
}

/// Runs the full PACE campaign through the serving path at `threads` pool
/// threads, with the swap gate pinned to the fixture's q-error limit.
fn defense_drill(threads: usize, tag: &str) -> Result<DefenseRun, String> {
    use pace_tensor::pool;
    let fx = defense_fixture();
    pool::set_threads(threads);
    fault::install(None);
    let serve_cfg = ServeConfig {
        swap_qerr_limit: fx.qerr_limit,
        ..ServeConfig::default()
    };
    let server = Server::new(
        serve_cfg,
        fx.ds.schema.clone(),
        fx.pinned.clone(),
        Some(HistogramEstimator::build(&fx.ds, 32)),
    );
    let mut served = ServedVictim::new(
        server,
        fx.model.clone(),
        Executor::new(&fx.ds),
        fx.history.clone(),
        ServedTraffic::new(fx.pool.clone(), 905),
    )
    .map_err(|e| format!("clean model failed its own shadow validation: {e}"))?;
    let k = AttackerKnowledge::from_public(&fx.ds, WorkloadSpec::single_table());
    // Lb-S, not full PACE: one PACE wave alone pushes the pinned median
    // ~15× past the honest score, so every wave would be rejected and the
    // report would measure nothing. Lb-S degrades cumulatively — poison
    // lands until the accumulated damage trips the probe. The surrogate
    // type is fixed: speculation's behavioral-similarity probes add
    // nothing to the defense measurement.
    let cfg = PipelineConfig {
        surrogate_type: Some(CeModelType::Linear),
        ..PipelineConfig::quick()
    };
    let manifest = std::env::temp_dir().join(format!(
        "pace-defense-{}-{tag}.campaign",
        std::process::id()
    ));
    let outcome = run_served_campaign(
        &mut served,
        AttackMethod::LbS,
        &fx.test,
        &k,
        &cfg,
        &manifest,
    )
    .map_err(|e| format!("served campaign failed: {e}"))?;
    if manifest.exists() {
        let _ = std::fs::remove_file(&manifest);
        return Err("completed campaign left its manifest behind".into());
    }
    Ok(DefenseRun {
        outcome,
        replies: served.replies(),
        summary: served.summary(),
        active: served.active_version(),
    })
}

/// Writes the machine-readable `BENCH_defense.json` at the workspace root.
fn write_defense_json(
    path: &Path,
    wall_s: f64,
    run: &DefenseRun,
    accepted: usize,
    rejected_by_probe: usize,
) -> std::io::Result<()> {
    let fx = defense_fixture();
    let waves = run.outcome.swaps.len().max(1);
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"wall_s\": {wall_s:.6},\n"));
    s.push_str(&format!(
        "  \"honest_median_qerr\": {:.6},\n",
        fx.honest_median
    ));
    s.push_str(&format!("  \"swap_qerr_limit\": {:.6},\n", fx.qerr_limit));
    s.push_str("  \"waves\": [");
    for (i, sw) in run.outcome.swaps.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let detail = match &sw.result {
            Ok(()) => "installed".to_string(),
            Err(e) => format!("{e}"),
        };
        s.push_str(&format!(
            "\n    {{\"wave\": {}, \"version\": {}, \"at\": {:.6}, \"class\": \"{}\", \
             \"detail\": \"{detail}\"}}",
            sw.wave,
            sw.version,
            sw.at,
            sw.class()
        ));
    }
    s.push_str("\n  ],\n");
    s.push_str(&format!("  \"accepted\": {accepted},\n"));
    s.push_str(&format!("  \"rejected_by_probe\": {rejected_by_probe},\n"));
    s.push_str(&format!(
        "  \"rejection_fraction\": {:.4},\n",
        rejected_by_probe as f64 / waves as f64
    ));
    s.push_str(&format!(
        "  \"clean\": {{\"mean\": {:.6}, \"median\": {:.6}, \"p95\": {:.6}}},\n",
        run.outcome.clean.mean, run.outcome.clean.median, run.outcome.clean.p95
    ));
    s.push_str(&format!(
        "  \"poisoned\": {{\"mean\": {:.6}, \"median\": {:.6}, \"p95\": {:.6}}},\n",
        run.outcome.poisoned.mean, run.outcome.poisoned.median, run.outcome.poisoned.p95
    ));
    s.push_str(&format!(
        "  \"divergence\": {:.6},\n",
        run.outcome.divergence
    ));
    s.push_str(&format!(
        "  \"active_version\": {},\n",
        run.active
            .map_or_else(|| "null".to_string(), |v| v.to_string())
    ));
    s.push_str(&format!(
        "  \"totals\": {{\"requests\": {}, \"shed\": {}, \"fallback_served\": {}, \
         \"learned_served\": {}, \"deadline_missed\": {}, \"batches\": {}}}\n",
        run.summary.requests,
        run.summary.shed,
        run.summary.fallback_served,
        run.summary.learned_served,
        run.summary.deadline_missed,
        run.summary.batches,
    ));
    s.push_str("}\n");
    std::fs::write(path, s)
}

fn defense_report() -> ExitCode {
    use pace_tensor::pool;
    let root = workspace_root();
    let t0 = Instant::now();
    let mut failures: Vec<String> = Vec::new();

    println!(
        "defense-report: Lb-S poison campaign through the validated hot-swap serving path \
         (swap limit = clean median × {DEFENSE_QERR_MARGIN})"
    );
    let run = match defense_drill(1, "a") {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask defense-report: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("defense-report: re-running at 1 thread and at 8 threads for bit-identity...");
    let again = defense_drill(1, "b");
    let wide = defense_drill(8, "c");
    pool::set_threads(0);

    for (label, other) in [("two 1-thread runs", again), ("1 vs 8 threads", wide)] {
        match other {
            Ok(o) => {
                if o.outcome.swaps != run.outcome.swaps {
                    failures.push(format!(
                        "{label}: swap ledgers diverge:\n  a: {:?}\n  b: {:?}",
                        run.outcome.swaps, o.outcome.swaps
                    ));
                }
                if let Some(d) = records_diverge(&run.replies, &o.replies) {
                    failures.push(format!("{label}: reply sequences diverge — {d}"));
                }
                if run.outcome.poisoned.mean.to_bits() != o.outcome.poisoned.mean.to_bits()
                    || run.outcome.divergence.to_bits() != o.outcome.divergence.to_bits()
                {
                    failures.push(format!("{label}: attack measurements diverge"));
                }
                if run.outcome.poison != o.outcome.poison {
                    failures.push(format!("{label}: crafted poison batches diverge"));
                }
            }
            Err(e) => failures.push(format!("{label}: {e}")),
        }
    }

    // Every wave must have reached a typed swap verdict, in order.
    for (w, sw) in run.outcome.swaps.iter().enumerate() {
        if sw.wave != w as u64 || sw.version != 2 + w as u64 {
            failures.push(format!(
                "wave {w}: ledger entry out of order (wave {}, version {})",
                sw.wave, sw.version
            ));
        }
    }
    let waves = run.outcome.swaps.len();
    let accepted = run
        .outcome
        .swaps
        .iter()
        .filter(|s| s.result.is_ok())
        .count();
    let rejected_by_probe = run
        .outcome
        .swaps
        .iter()
        .filter(|s| s.class() == "rejected-by-probe")
        .count();
    if waves == 0 {
        failures.push("campaign submitted no waves at all".into());
    }
    if rejected_by_probe == 0 {
        failures.push(
            "the pinned q-error probe rejected no poison wave — the swap gate is vacuous \
             at this margin"
                .into(),
        );
    }
    if accepted == 0 {
        failures.push(
            "no poison wave was accepted — the gate rejects everything, so the campaign \
             measures nothing"
                .into(),
        );
    }
    let last_accepted = run
        .outcome
        .swaps
        .iter()
        .filter(|s| s.result.is_ok())
        .map(|s| s.version)
        .max();
    if run.active != last_accepted.or(Some(1)) {
        failures.push(format!(
            "active version {:?} is not the last accepted snapshot {:?}",
            run.active, last_accepted
        ));
    }

    // Zero un-typed failures: every reply is Ok or a typed, in-contract
    // rejection.
    let queue_cap = ServeConfig::default().queue_cap;
    for r in &run.replies {
        match &r.outcome {
            Ok(reply) if reply.estimate.is_finite() && reply.estimate >= 0.0 => {}
            Ok(reply) => failures.push(format!(
                "request {}: served estimate {} is outside [0, f64::MAX]",
                r.id, reply.estimate
            )),
            Err(ServeError::Shed { depth }) if *depth <= queue_cap => {}
            Err(ServeError::DeadlineExceeded { .. }) => {}
            Err(e) => failures.push(format!("request {}: un-typed rejection: {e}", r.id)),
        }
    }

    let fx = defense_fixture();
    println!(
        "defense-report: clean pinned median {:.3}, swap limit {:.3}",
        fx.honest_median, fx.qerr_limit
    );
    println!("defense-report: wave ledger:");
    for sw in &run.outcome.swaps {
        let detail = match &sw.result {
            Ok(()) => "installed".to_string(),
            Err(e) => format!("{e}"),
        };
        println!(
            "  wave {} v{} at {:.3}s: {} ({detail})",
            sw.wave,
            sw.version,
            sw.at,
            sw.class()
        );
    }
    println!(
        "defense-report: {rejected_by_probe}/{waves} poison waves rejected by the pinned \
         probe; test q-error median {:.2} -> {:.2}; active {}",
        run.outcome.clean.median,
        run.outcome.poisoned.median,
        run.active
            .map_or_else(|| "none".to_string(), |v| format!("v{v}"))
    );

    let path = root.join("BENCH_defense.json");
    match write_defense_json(
        &path,
        t0.elapsed().as_secs_f64(),
        &run,
        accepted,
        rejected_by_probe,
    ) {
        Ok(()) => println!("defense-report: wrote {}", path.display()),
        Err(e) => failures.push(format!("cannot write {}: {e}", path.display())),
    }

    if failures.is_empty() {
        println!(
            "defense-report: all gates OK ({} served requests, {accepted} waves landed, \
             {rejected_by_probe} rolled back, bit-identical at 1 and 8 threads)",
            run.summary.requests
        );
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("xtask defense-report: {f}");
        }
        eprintln!("xtask defense-report: {} failure(s)", failures.len());
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_op_variants_from_real_source() {
        let src = read(&workspace_root(), "crates/tensor/src/graph.rs");
        let variants = op_variants(&src);
        assert!(variants.contains(&"Leaf".to_string()));
        assert!(variants.contains(&"BroadcastScalar".to_string()));
        assert!(variants.contains(&"SliceRows".to_string()));
        assert!(
            variants.len() >= 35,
            "found {}: {variants:?}",
            variants.len()
        );
    }

    #[test]
    fn strip_test_modules_removes_cfg_test_blocks() {
        let src =
            "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() { x.unwrap(); }\n}\nfn c() {}\n";
        let kept: Vec<&str> = strip_test_modules(src)
            .into_iter()
            .map(|(_, l)| l)
            .collect();
        assert_eq!(kept, vec!["fn a() {}", "fn c() {}"]);
    }

    #[test]
    fn workload_unwrap_rule_covers_test_modules() {
        let src =
            "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() { x.unwrap(); }\n}\nfn c() {}\n";
        // Elsewhere the rule stops at `#[cfg(test)]`…
        assert!(unwrap_violations(Path::new("crates/engine/src/count.rs"), src).is_empty());
        // …but the workload crate is scanned in full.
        let hits = unwrap_violations(Path::new("crates/workload/src/query.rs"), src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].contains("query.rs:4"));
    }

    #[test]
    fn lint_passes_on_current_tree() {
        let root = workspace_root();
        let mut failures = Vec::new();
        check_op_coverage(&root, &mut failures);
        check_no_unwrap(&root, &mut failures);
        check_no_probe_panics(&root, &mut failures);
        check_no_raw_threads(&root, &mut failures);
        check_no_nan_sort(&root, &mut failures);
        check_pool_call_discipline(&root, &mut failures);
        assert!(failures.is_empty(), "{failures:#?}");
    }

    #[test]
    fn pool_call_spans_are_extracted_and_split_correctly() {
        let text = "pool::par_chunks(data.len(), MIN, |lo, hi| sum(&data[lo..hi]))";
        let open = text.find('(').expect("call has an open paren");
        let span = call_span(text, open).expect("parens balance");
        assert_eq!(span, "data.len(), MIN, |lo, hi| sum(&data[lo..hi])");
        let args = top_level_args(span);
        assert_eq!(args[0], "data.len()");
        assert_eq!(args[1].trim(), "MIN");
        // The trailing closure's commas must not over-split.
        assert_eq!(args.len(), 3);
        assert!(call_span("pool::run(1, |i| (", 9).is_none());
    }

    #[test]
    fn min_chunk_rule_accepts_constants_and_size_derived_locals() {
        // Literals and SCREAMING_CASE constants.
        assert!(min_chunk_arg_ok("16", ""));
        assert!(min_chunk_arg_ok("1_024", ""));
        assert!(min_chunk_arg_ok("ELEMWISE_PAR_MIN", ""));
        assert!(min_chunk_arg_ok("crate::matrix::MATMUL_PANEL", ""));
        // A local derived from input sizes alone (the matmul row grid).
        let clean = "let min_rows = (MATMUL_PAR_MIN_FLOPS / k.saturating_mul(m).max(1)).max(1);";
        assert!(min_chunk_arg_ok("min_rows", clean));
        // Thread-count- or env-derived locals are the bug this rule exists
        // to stop: the grid would change shape with PACE_THREADS.
        let dirty = "let min_rows = len / pool::threads();";
        assert!(!min_chunk_arg_ok("min_rows", dirty));
        let env = "let chunk = std::env::var(\"CHUNK\").map_or(8, |v| v.parse().of());";
        assert!(!min_chunk_arg_ok("chunk", env));
        // Inline expressions and unknown names must be hoisted into a local.
        assert!(!min_chunk_arg_ok("len / threads()", ""));
        assert!(!min_chunk_arg_ok("mystery", ""));
    }

    #[test]
    fn pool_discipline_exempts_the_pool_and_tooling_only() {
        assert!(pool_discipline_exempt(Path::new(
            "crates/runtime/src/lib.rs"
        )));
        assert!(pool_discipline_exempt(Path::new(
            "crates/xtask/src/main.rs"
        )));
        assert!(pool_discipline_exempt(Path::new(
            "crates/core/tests/pool_faults.rs"
        )));
        assert!(!pool_discipline_exempt(Path::new(
            "crates/tensor/src/matrix.rs"
        )));
        assert!(!pool_discipline_exempt(Path::new(
            "crates/engine/src/count.rs"
        )));
    }

    #[test]
    fn nan_sort_predicate_catches_the_original_bug() {
        // The exact shape of the pre-fix degraded-estimate median.
        assert!(is_nan_tolerant_sort(
            "v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));"
        ));
        assert!(is_nan_tolerant_sort(
            "xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or_else(|| Ordering::Less));"
        ));
        // The fixed idiom must pass.
        assert!(!is_nan_tolerant_sort(
            "v.sort_by(|a, b| a.partial_cmp(b).expect(\"non-finite filtered\"));"
        ));
        assert!(!is_nan_tolerant_sort("total_cmp-based sort"));
    }

    #[test]
    fn raw_thread_lint_exempts_only_the_pool_crate() {
        // The pool's own scoped fan-out must stay lintable; everything else
        // is scanned.
        let root = workspace_root();
        let mut sources = Vec::new();
        collect_rs(&root.join("crates/runtime"), &root, &mut sources);
        assert!(
            !sources.is_empty(),
            "crates/runtime sources exist for the exemption to cover"
        );
        let pool_src = read(&root, "crates/runtime/src/lib.rs");
        assert!(
            THREAD_TOKENS.iter().any(|t| pool_src.contains(t)),
            "the pool crate is the sanctioned spawn site"
        );
    }

    #[test]
    fn probe_panic_tokens_cover_the_oracle_surface() {
        for t in [".explain(", ".count(", ".run_queries(", "read_params("] {
            assert!(PROBE_TOKENS.contains(&t), "missing probe token {t}");
        }
    }

    #[test]
    fn op_coverage_spans_the_analysis_stack() {
        // The coverage list must include the new dataflow + opt modules and
        // the scheduler's op-class table so a future Op variant cannot
        // silently skip the analyses.
        assert!(OP_COVERAGE_FILES.contains(&"crates/tensor/src/dataflow.rs"));
        assert!(OP_COVERAGE_FILES.contains(&"crates/tensor/src/opt.rs"));
        assert!(OP_COVERAGE_FILES.contains(&"crates/tensor/src/sched.rs"));
        assert!(OP_COVERAGE_FILES.contains(&"crates/tensor/src/fuse.rs"));
    }
}
