//! Workspace maintenance tasks:
//! `cargo run -p xtask -- <lint|tape-report|chaos|determinism>`.
//!
//! # `lint` — source-level checks the compiler cannot express
//!
//! Run in CI next to `cargo clippy`:
//!
//! 1. **`Op` coverage** — every variant of the tape's `Op` enum
//!    (`crates/tensor/src/graph.rs`) must be mentioned in the VJP dispatch
//!    (`grad.rs`), the auditor (`analysis.rs`), the dataflow analyses —
//!    structural hashing and the cost model — (`dataflow.rs`), and the
//!    replay interpreter (`opt.rs`). A variant added to the enum but
//!    forgotten in any of them would otherwise surface as a runtime panic
//!    (grad, replay) or a silent analysis gap; wildcard match arms make the
//!    compiler's exhaustiveness check insufficient.
//! 2. **No `unwrap()` in library code** — panics in the library crates must
//!    carry context (`expect`) or be handled; bare `.unwrap()` is allowed
//!    only under `#[cfg(test)]`, in `tests/`, benches, and this xtask.
//! 3. **No panics on probe/IO results in the campaign runtime** — in
//!    `crates/core` and `crates/ce` library code, oracle probes
//!    (`explain`/`count`/`run_queries`), training results, and
//!    checkpoint/manifest IO must be propagated with `?`, never
//!    `.unwrap()`/`.expect()`-ed: a campaign that panics on a flaky probe
//!    reintroduces the exact abort the resilience layer exists to absorb.
//! 4. **No raw thread primitives outside the pool** — `thread::spawn`/
//!    `thread::scope` are allowed only in `crates/runtime`, the one
//!    sanctioned fan-out site. Everything else must go through
//!    `pace_runtime`, whose size-derived chunking keeps every parallel
//!    result bit-identical at any `PACE_THREADS` setting; an ad-hoc spawn
//!    would silently escape that contract.
//!
//! # `determinism` — the `PACE_THREADS` bit-identity gate
//!
//! Exercises the three parallel surfaces in-process at several thread
//! counts and requires byte-identical results: batch exact counting
//! (`Executor::count_batch`), the cache-blocked parallel matmul, and a
//! briefly trained CE model's full parameter vector. CI runs it under
//! `PACE_THREADS=1` and `PACE_THREADS=4` and additionally diffs the two
//! process outputs.
//!
//! # `chaos` — the fault-injection matrix
//!
//! Runs the `chaos_campaign` binary (a deterministic quick TPC-H PACE
//! campaign) under each `PACE_FAULTS` spec of the matrix and checks the
//! recovery contract: absorbed faults (timeout/error/corrupt retries,
//! crash + resume) must reproduce the fault-free run **bit-identically**;
//! NaN-gradient faults must still complete with finite results; a hard-down
//! oracle must fail with a typed error, not a panic. See
//! `pace_tensor::fault` for the spec grammar.
//!
//! # `tape-report` — static statistics of the real tapes
//!
//! Builds each tape the `PACE_OPT` choke points see — a CE training step, a
//! surrogate imitation step, and the attack hypergradient at `K = 1` and
//! `K = 4` unrolled virtual updates — runs the full pass pipeline
//! ([`pace_tensor::opt`]), verifies the optimized replay against eager
//! execution, and prints the per-context report: node/FLOP/peak-live-byte
//! counts before and after, per-pass removal counts, and the op histogram.

use pace_ce::{
    q_error_between, q_error_loss, rows_to_matrix, CeConfig, CeModel, CeModelType, EncodedWorkload,
};
use pace_core::attack::build_hypergradient_tape;
use pace_data::{build, DatasetKind, Scale};
use pace_engine::Executor;
use pace_tensor::{Graph, Matrix, Var};
use pace_workload::{generate_queries, QueryEncoder, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mode = std::env::args().nth(1).unwrap_or_default();
    match mode.as_str() {
        "lint" => lint(),
        "tape-report" => tape_report(),
        "chaos" => chaos(),
        "determinism" => determinism(),
        _ => {
            eprintln!("usage: cargo run -p xtask -- <lint|tape-report|chaos|determinism>");
            ExitCode::FAILURE
        }
    }
}

fn lint() -> ExitCode {
    let root = workspace_root();
    let mut failures = Vec::new();
    check_op_coverage(&root, &mut failures);
    check_no_unwrap(&root, &mut failures);
    check_no_probe_panics(&root, &mut failures);
    check_no_raw_threads(&root, &mut failures);
    if failures.is_empty() {
        println!("xtask lint: OK");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("xtask lint: {f}");
        }
        eprintln!("xtask lint: {} failure(s)", failures.len());
        ExitCode::FAILURE
    }
}

// ---- tape-report ------------------------------------------------------------

/// Optimizes and verifies one tape, printing the static report. Returns
/// whether the optimized replay matched eager execution.
fn report_tape(g: &Graph, outputs: &[Var], inputs: &[Var], context: &str) -> bool {
    let plan = pace_tensor::opt::optimize(g, outputs, inputs, context);
    print!("{}", plan.stats().render());
    match plan.verify(g, pace_tensor::opt::VERIFY_TOL) {
        Ok(()) => {
            println!(
                "   replay: VERIFIED against eager execution (tol {})\n",
                pace_tensor::opt::VERIFY_TOL
            );
            true
        }
        Err(e) => {
            println!("   replay: MISMATCH — {e}\n");
            false
        }
    }
}

fn tape_report() -> ExitCode {
    println!("tape-report: building quick TPC-H dataset + labeled workload...");
    let ds = build(DatasetKind::Tpch, Scale::quick(), 2);
    let exec = Executor::new(&ds);
    let mut rng = StdRng::seed_from_u64(42);
    let spec = WorkloadSpec::default();
    let labeled = exec.label_nonzero(generate_queries(&ds, &spec, &mut rng, 96));
    let encoder = QueryEncoder::new(&ds);
    let data = EncodedWorkload::from_workload(&encoder, &labeled);
    let model = CeModel::new(CeModelType::Fcn, &ds, CeConfig::quick(), 6);
    println!(
        "tape-report: {} queries, {} model parameters\n",
        data.enc.len(),
        model.params().num_scalars()
    );
    let mut all_ok = true;

    // One CE training step: forward + Q-error loss + parameter gradients —
    // the tape `ce::step_adam` / `ce::update` build every iteration.
    {
        let mut g = Graph::new();
        let bind = model.params().bind(&mut g);
        let x = g.leaf(rows_to_matrix(&data.enc));
        let out = model.forward(&mut g, &bind, x);
        let loss = q_error_loss(&mut g, out, &data.ln_card, model.ln_max());
        let grads = g.grad(loss, bind.vars());
        let mut outputs = vec![loss];
        outputs.extend(&grads);
        all_ok &= report_tape(&g, &outputs, bind.vars(), "ce::train_step");
    }

    // One surrogate imitation step: Q-error against black-box estimates.
    {
        let mut g = Graph::new();
        let bind = model.params().bind(&mut g);
        let x = g.leaf(rows_to_matrix(&data.enc));
        let out = model.forward(&mut g, &bind, x);
        let bb: Vec<f32> = data.ln_card.iter().map(|&v| v / model.ln_max()).collect();
        let bb_leaf = g.leaf(Matrix::from_vec(bb.len(), 1, bb));
        let loss = q_error_between(&mut g, out, bb_leaf, model.ln_max());
        let grads = g.grad(loss, bind.vars());
        let mut outputs = vec![loss];
        outputs.extend(&grads);
        all_ok &= report_tape(&g, &outputs, bind.vars(), "surrogate::imitate");
    }

    // The attack hypergradient: objective + ∂objective/∂(poison batch)
    // through K unrolled virtual SGD updates (paper Eq. 9–10).
    let half = data.enc.len() / 2;
    for steps in [1usize, 4] {
        let (g, outputs, inputs) = build_hypergradient_tape(
            &model,
            &data.enc[..half.min(32)],
            &data.ln_card[..half.min(32)],
            &data.enc[half..half + half.min(32)],
            &data.ln_card[half..half + half.min(32)],
            steps,
            1e-2,
        );
        all_ok &= report_tape(
            &g,
            &outputs,
            &inputs,
            &format!("attack::hypergradient K={steps}"),
        );
    }

    if all_ok {
        println!("tape-report: all optimized replays verified");
        ExitCode::SUCCESS
    } else {
        eprintln!("tape-report: at least one optimized replay diverged");
        ExitCode::FAILURE
    }
}

// ---- lint -------------------------------------------------------------------

/// The workspace root: this binary's manifest lives at `crates/xtask`.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("crates/xtask has a workspace two levels up")
        .to_path_buf()
}

fn read(root: &Path, rel: &str) -> String {
    let path = root.join(rel);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("xtask lint: cannot read {}: {e}", path.display()))
}

/// Extracts the variant names of `enum Op` from the graph source.
fn op_variants(graph_src: &str) -> Vec<String> {
    let start = graph_src
        .find("enum Op {")
        .expect("crates/tensor/src/graph.rs declares `enum Op {`");
    let body_start = start + "enum Op {".len();
    let mut depth = 1usize;
    let mut end = body_start;
    for (i, ch) in graph_src[body_start..].char_indices() {
        match ch {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    end = body_start + i;
                    break;
                }
            }
            _ => {}
        }
    }
    let body = &graph_src[body_start..end];
    let mut variants = Vec::new();
    // Variant declarations sit at brace depth 0 within the enum body, at the
    // start of a line (after doc comments), shaped `Name` or `Name(...),`.
    let mut brace = 0i32;
    let mut paren = 0i32;
    for line in body.lines() {
        let trimmed = line.trim();
        if brace == 0
            && paren == 0
            && !trimmed.is_empty()
            && !trimmed.starts_with("//")
            && !trimmed.starts_with('#')
            && trimmed
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_uppercase())
        {
            let name: String = trimmed
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                variants.push(name);
            }
        }
        for ch in trimmed.chars() {
            match ch {
                '{' => brace += 1,
                '}' => brace -= 1,
                '(' => paren += 1,
                ')' => paren -= 1,
                _ => {}
            }
        }
    }
    variants
}

/// Files that must mention every `Op` variant: the VJP dispatch, the
/// auditor's shape/closure tables, the dataflow analyses (structural hash +
/// cost model), and the optimizer's replay interpreter.
const OP_COVERAGE_FILES: [&str; 4] = [
    "crates/tensor/src/grad.rs",
    "crates/tensor/src/analysis.rs",
    "crates/tensor/src/dataflow.rs",
    "crates/tensor/src/opt.rs",
];

fn check_op_coverage(root: &Path, failures: &mut Vec<String>) {
    let graph_src = read(root, "crates/tensor/src/graph.rs");
    let variants = op_variants(&graph_src);
    if variants.len() < 30 {
        failures.push(format!(
            "crates/tensor/src/graph.rs: expected to parse the full Op enum, found only \
             {} variant(s) — the lint's parser may be out of date",
            variants.len()
        ));
        return;
    }
    for rel in OP_COVERAGE_FILES {
        let src = read(root, rel);
        for v in &variants {
            let mentioned = src.contains(&format!("Op::{v}(")) // pattern with operands
                || src.contains(&format!("Op::{v} ")) // bare pattern in match arm
                || src.contains(&format!("Op::{v},"))
                || src.contains(&format!("Op::{v} =>"));
            if !mentioned {
                failures.push(format!(
                    "{rel}: Op::{v} is not handled (no `Op::{v}` mention)"
                ));
            }
        }
    }
}

/// True for paths whose `.unwrap()` calls are exempt from the lint.
fn unwrap_exempt(rel: &Path) -> bool {
    let s = rel.to_string_lossy();
    s.starts_with("crates/xtask/")
        || s.starts_with("vendor/")
        || s.contains("/tests/")
        || s.contains("/benches/")
        || s.contains("/examples/")
        || s.starts_with("tests/")
        || s.starts_with("target/")
}

fn check_no_unwrap(root: &Path, failures: &mut Vec<String>) {
    let mut sources = Vec::new();
    collect_rs(&root.join("crates"), root, &mut sources);
    for rel in sources {
        if unwrap_exempt(&rel) {
            continue;
        }
        let src = read(root, &rel.to_string_lossy());
        for (line_no, line) in strip_test_modules(&src) {
            let code = line.split("//").next().unwrap_or(line);
            if code.contains(".unwrap()") {
                failures.push(format!(
                    "{}:{}: `.unwrap()` in library code — use `expect` with context or \
                     handle the error",
                    rel.display(),
                    line_no
                ));
            }
        }
    }
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, root, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
}

/// Yields `(line_number, line)` for lines outside `#[cfg(test)]` items.
///
/// Brace-counting heuristic: when a line contains `#[cfg(test)]`, skip until
/// the braces opened by the following item close again. Good enough for this
/// workspace's rustfmt-formatted sources; not a general Rust parser.
fn strip_test_modules(src: &str) -> Vec<(usize, &str)> {
    let mut out = Vec::new();
    let mut lines = src.lines().enumerate().peekable();
    while let Some((i, line)) = lines.next() {
        if line.trim_start().starts_with("#[cfg(test)]") {
            let mut depth = 0i32;
            let mut opened = false;
            for (_, l) in lines.by_ref() {
                for ch in l.chars() {
                    match ch {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
            }
            continue;
        }
        out.push((i + 1, line));
    }
    out
}

/// Tokens marking a fallible probe / training / persistence call whose
/// result must be propagated in the campaign-runtime crates.
const PROBE_TOKENS: [&str; 9] = [
    ".explain(",
    ".explain_timed(",
    ".count(",
    ".run_queries(",
    "read_params(",
    "write_params(",
    "read_checkpoint(",
    "write_checkpoint(",
    "load_manifest(",
];

/// In `crates/core` and `crates/ce` library code, probe/IO results must not
/// be `.unwrap()`/`.expect()`-ed — they carry the typed failure surface the
/// resilience layer recovers from.
fn check_no_probe_panics(root: &Path, failures: &mut Vec<String>) {
    let mut sources = Vec::new();
    collect_rs(&root.join("crates/core/src"), root, &mut sources);
    collect_rs(&root.join("crates/ce/src"), root, &mut sources);
    for rel in sources {
        let src = read(root, &rel.to_string_lossy());
        for (line_no, line) in strip_test_modules(&src) {
            let code = line.split("//").next().unwrap_or(line);
            let panics = code.contains(".unwrap()") || code.contains(".expect(");
            if panics && PROBE_TOKENS.iter().any(|t| code.contains(t)) {
                failures.push(format!(
                    "{}:{}: panicking on a probe/IO result — propagate the error with `?` \
                     so the campaign runtime can retry, degrade, or resume",
                    rel.display(),
                    line_no
                ));
            }
        }
    }
}

/// Raw thread primitives; only `crates/runtime` (the pool's scoped fan-out)
/// may use them.
const THREAD_TOKENS: [&str; 2] = ["thread::spawn(", "thread::scope("];

/// Every fan-out outside the pool crate must go through `pace_runtime`:
/// an ad-hoc `thread::spawn`/`thread::scope` escapes the size-derived
/// chunking and ordered reduction that make results `PACE_THREADS`-invariant.
fn check_no_raw_threads(root: &Path, failures: &mut Vec<String>) {
    let mut sources = Vec::new();
    collect_rs(&root.join("crates"), root, &mut sources);
    for rel in sources {
        let s = rel.to_string_lossy().into_owned();
        // crates/xtask is exempt because this lint's own token table would
        // match itself; it is tooling, not product code.
        if s.starts_with("crates/runtime/") || s.starts_with("crates/xtask/") {
            continue;
        }
        let src = read(root, &s);
        for (line_no, line) in src.lines().enumerate() {
            let code = line.split("//").next().unwrap_or(line);
            if THREAD_TOKENS.iter().any(|t| code.contains(t)) {
                failures.push(format!(
                    "{s}:{}: raw thread primitive outside crates/runtime — fan out through \
                     `pace_runtime` so results stay thread-count invariant",
                    line_no + 1
                ));
            }
        }
    }
}

// ---- determinism ------------------------------------------------------------

/// The parameter bytes of `matrices`, flattened in order.
fn matrix_bits(matrices: &[Matrix]) -> Vec<u32> {
    matrices
        .iter()
        .flat_map(|m| m.data().iter().map(|x| x.to_bits()))
        .collect()
}

/// Thread counts the in-process gate compares against the sequential run.
const DETERMINISM_THREADS: [usize; 3] = [2, 4, 8];

fn determinism() -> ExitCode {
    use pace_tensor::pool;
    let mut failures: Vec<String> = Vec::new();
    println!("determinism: quick TPC-H dataset + labeled workload...");
    let ds = build(DatasetKind::Tpch, Scale::quick(), 2);
    let exec = Executor::new(&ds);
    let mut rng = StdRng::seed_from_u64(42);
    let queries = generate_queries(&ds, &WorkloadSpec::default(), &mut rng, 96);

    // (1) Batch exact counting over the pool.
    pool::set_threads(1);
    let counts = exec.count_batch(&queries);
    for threads in DETERMINISM_THREADS {
        pool::set_threads(threads);
        if exec.count_batch(&queries) != counts {
            failures.push(format!("count_batch diverges at {threads} threads"));
        }
    }
    println!(
        "determinism: count_batch over {} queries — checked at {DETERMINISM_THREADS:?} threads",
        queries.len()
    );

    // (2) The cache-blocked parallel matmul kernel, bit-for-bit.
    let n = 160;
    let mut state = 0x5eed_u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f32 / 2.0e9) - 1.0
    };
    let a = Matrix::from_vec(n, n, (0..n * n).map(|_| next()).collect());
    let b = Matrix::from_vec(n, n, (0..n * n).map(|_| next()).collect());
    pool::set_threads(1);
    let product = matrix_bits(&[a.matmul(&b)]);
    for threads in DETERMINISM_THREADS {
        pool::set_threads(threads);
        if matrix_bits(&[a.matmul(&b)]) != product {
            failures.push(format!("matmul diverges at {threads} threads"));
        }
    }
    println!("determinism: {n}x{n} matmul — checked at {DETERMINISM_THREADS:?} threads");

    // (3) A briefly trained CE model: the full parameter vector must be
    // byte-equal whatever the thread count, because training is a long chain
    // of the kernels above — any reduction-order leak compounds here.
    let labeled = exec.label_nonzero(queries);
    let data = EncodedWorkload::from_workload(&QueryEncoder::new(&ds), &labeled);
    let train_once = || -> Result<Vec<u32>, String> {
        let mut model = CeModel::new(CeModelType::Fcn, &ds, CeConfig::quick(), 6);
        let mut rng = StdRng::seed_from_u64(7);
        model
            .train(&data, &mut rng)
            .map_err(|e| format!("training failed: {e}"))?;
        Ok(matrix_bits(&model.params().snapshot()))
    };
    pool::set_threads(1);
    match train_once() {
        Err(e) => failures.push(e),
        Ok(params) => {
            for threads in DETERMINISM_THREADS {
                pool::set_threads(threads);
                match train_once() {
                    Err(e) => failures.push(format!("{threads} threads: {e}")),
                    Ok(p) if p != params => {
                        failures.push(format!("trained parameters diverge at {threads} threads"))
                    }
                    Ok(_) => {}
                }
            }
            println!(
                "determinism: FCN training ({} parameter scalars) — checked at \
                 {DETERMINISM_THREADS:?} threads",
                params.len()
            );
        }
    }
    pool::set_threads(0);

    if failures.is_empty() {
        println!("xtask determinism: bit-identical across thread counts");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("xtask determinism: {f}");
        }
        eprintln!("xtask determinism: {} failure(s)", failures.len());
        ExitCode::FAILURE
    }
}

// ---- chaos ------------------------------------------------------------------

/// One `chaos_campaign` process run.
struct ChaosRun {
    code: i32,
    stdout: String,
    stderr: String,
}

fn chaos_campaign_once(manifest: &Path, faults: Option<&str>) -> ChaosRun {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let mut cmd = std::process::Command::new(cargo);
    cmd.args([
        "run",
        "--release",
        "-q",
        "-p",
        "xtask",
        "--bin",
        "chaos_campaign",
        "--",
    ]);
    cmd.arg(manifest);
    match faults {
        Some(f) => {
            cmd.env("PACE_FAULTS", f);
        }
        None => {
            cmd.env_remove("PACE_FAULTS");
        }
    }
    let out = cmd
        .output()
        .unwrap_or_else(|e| panic!("xtask chaos: cannot spawn chaos_campaign: {e}"));
    ChaosRun {
        code: out.status.code().unwrap_or(-1),
        stdout: String::from_utf8_lossy(&out.stdout).into_owned(),
        stderr: String::from_utf8_lossy(&out.stderr).into_owned(),
    }
}

/// Runs the campaign to completion through injected crashes: every exit code
/// [`pace_tensor::fault::CRASH_EXIT_CODE`] resumes from the same manifest.
/// Returns the final run and how many crashes were absorbed.
fn chaos_campaign_resuming(manifest: &Path, faults: &str, max_runs: u32) -> (ChaosRun, u32) {
    let mut crashes = 0;
    for _ in 0..max_runs {
        let run = chaos_campaign_once(manifest, Some(faults));
        if run.code == pace_tensor::fault::CRASH_EXIT_CODE {
            crashes += 1;
            continue;
        }
        return (run, crashes);
    }
    panic!("xtask chaos: campaign under {faults:?} still crashing after {max_runs} runs");
}

fn chaos() -> ExitCode {
    let dir = std::env::temp_dir().join(format!("pace-chaos-{}", std::process::id()));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("xtask chaos: cannot create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    let mut failures: Vec<String> = Vec::new();

    // Fault-free baseline, run twice: the campaign itself must be
    // deterministic before fault recovery can promise bit-identity.
    println!("chaos: baseline (faults off), twice...");
    let base_a = chaos_campaign_once(&dir.join("baseline-a"), None);
    let base_b = chaos_campaign_once(&dir.join("baseline-b"), None);
    if base_a.code != 0 {
        eprintln!("{}", base_a.stderr);
        eprintln!(
            "xtask chaos: fault-free campaign failed (exit {})",
            base_a.code
        );
        return ExitCode::FAILURE;
    }
    if base_b.stdout != base_a.stdout {
        failures
            .push("baseline: two fault-free runs disagree — campaign is non-deterministic".into());
    }
    print!("{}", base_a.stdout);

    // Transient faults: retries/validation absorb them and the campaign
    // reproduces the baseline exactly.
    for (name, spec) in [
        ("timeout", "seed=7;timeout,site=explain,every=9,lat=0.05"),
        ("error", "seed=7;error,site=explain,every=11"),
        ("corrupt", "seed=7;corrupt,site=explain,every=13"),
    ] {
        println!("chaos: {name} ({spec})...");
        let run = chaos_campaign_once(&dir.join(name), Some(spec));
        if run.code != 0 {
            failures.push(format!("{name}: exit {} — {}", run.code, run.stderr.trim()));
        } else if run.stdout != base_a.stdout {
            failures.push(format!(
                "{name}: absorbed faults changed the outcome\n  baseline: {}\n  faulted : {}",
                last_line(&base_a.stdout),
                last_line(&run.stdout)
            ));
        }
    }

    // NaN gradients: rollback + halved LR changes the trajectory, so only
    // completion with finite results is required.
    {
        let spec = "nan,site=ce-update,at=1;nan,site=surrogate-imitate,at=2";
        println!("chaos: nan ({spec})...");
        let run = chaos_campaign_once(&dir.join("nan"), Some(spec));
        if run.code != 0 {
            failures.push(format!("nan: exit {} — {}", run.code, run.stderr.trim()));
        }
    }

    // Crashes: the process dies at the injected point; resuming from the
    // manifest must reproduce the baseline bit-identically.
    for (name, spec, min_crashes) in [
        ("crash-craft", "crash,site=campaign-craft,at=1", 1),
        ("crash-wave", "crash,site=campaign-wave,every=2", 1),
    ] {
        println!("chaos: {name} ({spec})...");
        let (run, crashes) = chaos_campaign_resuming(&dir.join(name), spec, 10);
        if crashes < min_crashes {
            failures.push(format!("{name}: expected an injected crash, saw none"));
        }
        if run.code != 0 {
            failures.push(format!(
                "{name}: resumed campaign failed (exit {}) — {}",
                run.code,
                run.stderr.trim()
            ));
        } else if run.stdout != base_a.stdout {
            failures.push(format!(
                "{name}: resume after {crashes} crash(es) diverged from the baseline\n  \
                 baseline: {}\n  resumed : {}",
                last_line(&base_a.stdout),
                last_line(&run.stdout)
            ));
        } else {
            println!("chaos: {name}: resumed through {crashes} crash(es), bit-identical");
        }
    }

    // Hard-down oracle: every retry and degradation path exhausts; the
    // campaign must fail with a typed error (exit 2), never a panic.
    {
        let spec = "error,site=explain,every=1";
        println!("chaos: hard-down ({spec})...");
        let run = chaos_campaign_once(&dir.join("hard-down"), Some(spec));
        if run.code != 2 {
            failures.push(format!(
                "hard-down: expected a typed campaign error (exit 2), got exit {} — {}",
                run.code,
                run.stderr.trim()
            ));
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
    if failures.is_empty() {
        println!("xtask chaos: full fault matrix OK");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("xtask chaos: {f}");
        }
        eprintln!("xtask chaos: {} failure(s)", failures.len());
        ExitCode::FAILURE
    }
}

fn last_line(s: &str) -> &str {
    s.lines().last().unwrap_or("")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_op_variants_from_real_source() {
        let src = read(&workspace_root(), "crates/tensor/src/graph.rs");
        let variants = op_variants(&src);
        assert!(variants.contains(&"Leaf".to_string()));
        assert!(variants.contains(&"BroadcastScalar".to_string()));
        assert!(variants.contains(&"SliceRows".to_string()));
        assert!(
            variants.len() >= 35,
            "found {}: {variants:?}",
            variants.len()
        );
    }

    #[test]
    fn strip_test_modules_removes_cfg_test_blocks() {
        let src =
            "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() { x.unwrap(); }\n}\nfn c() {}\n";
        let kept: Vec<&str> = strip_test_modules(src)
            .into_iter()
            .map(|(_, l)| l)
            .collect();
        assert_eq!(kept, vec!["fn a() {}", "fn c() {}"]);
    }

    #[test]
    fn lint_passes_on_current_tree() {
        let root = workspace_root();
        let mut failures = Vec::new();
        check_op_coverage(&root, &mut failures);
        check_no_unwrap(&root, &mut failures);
        check_no_probe_panics(&root, &mut failures);
        check_no_raw_threads(&root, &mut failures);
        assert!(failures.is_empty(), "{failures:#?}");
    }

    #[test]
    fn raw_thread_lint_exempts_only_the_pool_crate() {
        // The pool's own scoped fan-out must stay lintable; everything else
        // is scanned.
        let root = workspace_root();
        let mut sources = Vec::new();
        collect_rs(&root.join("crates/runtime"), &root, &mut sources);
        assert!(
            !sources.is_empty(),
            "crates/runtime sources exist for the exemption to cover"
        );
        let pool_src = read(&root, "crates/runtime/src/lib.rs");
        assert!(
            THREAD_TOKENS.iter().any(|t| pool_src.contains(t)),
            "the pool crate is the sanctioned spawn site"
        );
    }

    #[test]
    fn probe_panic_tokens_cover_the_oracle_surface() {
        for t in [".explain(", ".count(", ".run_queries(", "read_params("] {
            assert!(PROBE_TOKENS.contains(&t), "missing probe token {t}");
        }
    }

    #[test]
    fn op_coverage_spans_the_analysis_stack() {
        // The coverage list must include the new dataflow + opt modules so a
        // future Op variant cannot silently skip the analyses.
        assert!(OP_COVERAGE_FILES.contains(&"crates/tensor/src/dataflow.rs"));
        assert!(OP_COVERAGE_FILES.contains(&"crates/tensor/src/opt.rs"));
    }
}
