//! Workspace lint gate: `cargo run -p xtask -- lint`.
//!
//! Source-level checks the compiler cannot express, run in CI next to
//! `cargo clippy`:
//!
//! 1. **`Op` coverage** — every variant of the tape's `Op` enum
//!    (`crates/tensor/src/graph.rs`) must be mentioned in both the VJP
//!    dispatch (`grad.rs`) and the auditor (`analysis.rs`). A variant added
//!    to the enum but forgotten in either file would otherwise surface as a
//!    runtime panic (grad) or a silent audit gap (analysis); wildcard match
//!    arms make the compiler's exhaustiveness check insufficient.
//! 2. **No `unwrap()` in library code** — panics in the library crates must
//!    carry context (`expect`) or be handled; bare `.unwrap()` is allowed
//!    only under `#[cfg(test)]`, in `tests/`, benches, and this xtask.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mode = std::env::args().nth(1).unwrap_or_default();
    if mode != "lint" {
        eprintln!("usage: cargo run -p xtask -- lint");
        return ExitCode::FAILURE;
    }
    let root = workspace_root();
    let mut failures = Vec::new();
    check_op_coverage(&root, &mut failures);
    check_no_unwrap(&root, &mut failures);
    if failures.is_empty() {
        println!("xtask lint: OK");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("xtask lint: {f}");
        }
        eprintln!("xtask lint: {} failure(s)", failures.len());
        ExitCode::FAILURE
    }
}

/// The workspace root: this binary's manifest lives at `crates/xtask`.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("crates/xtask has a workspace two levels up")
        .to_path_buf()
}

fn read(root: &Path, rel: &str) -> String {
    let path = root.join(rel);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("xtask lint: cannot read {}: {e}", path.display()))
}

/// Extracts the variant names of `enum Op` from the graph source.
fn op_variants(graph_src: &str) -> Vec<String> {
    let start = graph_src
        .find("enum Op {")
        .expect("crates/tensor/src/graph.rs declares `enum Op {`");
    let body_start = start + "enum Op {".len();
    let mut depth = 1usize;
    let mut end = body_start;
    for (i, ch) in graph_src[body_start..].char_indices() {
        match ch {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    end = body_start + i;
                    break;
                }
            }
            _ => {}
        }
    }
    let body = &graph_src[body_start..end];
    let mut variants = Vec::new();
    // Variant declarations sit at brace depth 0 within the enum body, at the
    // start of a line (after doc comments), shaped `Name` or `Name(...),`.
    let mut brace = 0i32;
    let mut paren = 0i32;
    for line in body.lines() {
        let trimmed = line.trim();
        if brace == 0
            && paren == 0
            && !trimmed.is_empty()
            && !trimmed.starts_with("//")
            && !trimmed.starts_with('#')
            && trimmed
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_uppercase())
        {
            let name: String = trimmed
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                variants.push(name);
            }
        }
        for ch in trimmed.chars() {
            match ch {
                '{' => brace += 1,
                '}' => brace -= 1,
                '(' => paren += 1,
                ')' => paren -= 1,
                _ => {}
            }
        }
    }
    variants
}

fn check_op_coverage(root: &Path, failures: &mut Vec<String>) {
    let graph_src = read(root, "crates/tensor/src/graph.rs");
    let variants = op_variants(&graph_src);
    if variants.len() < 30 {
        failures.push(format!(
            "crates/tensor/src/graph.rs: expected to parse the full Op enum, found only \
             {} variant(s) — the lint's parser may be out of date",
            variants.len()
        ));
        return;
    }
    for rel in ["crates/tensor/src/grad.rs", "crates/tensor/src/analysis.rs"] {
        let src = read(root, rel);
        for v in &variants {
            let mentioned = src.contains(&format!("Op::{v}(")) // pattern with operands
                || src.contains(&format!("Op::{v} ")) // bare pattern in match arm
                || src.contains(&format!("Op::{v},"))
                || src.contains(&format!("Op::{v} =>"));
            if !mentioned {
                failures.push(format!(
                    "{rel}: Op::{v} is not handled (no `Op::{v}` mention)"
                ));
            }
        }
    }
}

/// True for paths whose `.unwrap()` calls are exempt from the lint.
fn unwrap_exempt(rel: &Path) -> bool {
    let s = rel.to_string_lossy();
    s.starts_with("crates/xtask/")
        || s.starts_with("vendor/")
        || s.contains("/tests/")
        || s.contains("/benches/")
        || s.contains("/examples/")
        || s.starts_with("tests/")
        || s.starts_with("target/")
}

fn check_no_unwrap(root: &Path, failures: &mut Vec<String>) {
    let mut sources = Vec::new();
    collect_rs(&root.join("crates"), root, &mut sources);
    for rel in sources {
        if unwrap_exempt(&rel) {
            continue;
        }
        let src = read(root, &rel.to_string_lossy());
        for (line_no, line) in strip_test_modules(&src) {
            let code = line.split("//").next().unwrap_or(line);
            if code.contains(".unwrap()") {
                failures.push(format!(
                    "{}:{}: `.unwrap()` in library code — use `expect` with context or \
                     handle the error",
                    rel.display(),
                    line_no
                ));
            }
        }
    }
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, root, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
}

/// Yields `(line_number, line)` for lines outside `#[cfg(test)]` items.
///
/// Brace-counting heuristic: when a line contains `#[cfg(test)]`, skip until
/// the braces opened by the following item close again. Good enough for this
/// workspace's rustfmt-formatted sources; not a general Rust parser.
fn strip_test_modules(src: &str) -> Vec<(usize, &str)> {
    let mut out = Vec::new();
    let mut lines = src.lines().enumerate().peekable();
    while let Some((i, line)) = lines.next() {
        if line.trim_start().starts_with("#[cfg(test)]") {
            let mut depth = 0i32;
            let mut opened = false;
            for (_, l) in lines.by_ref() {
                for ch in l.chars() {
                    match ch {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
            }
            continue;
        }
        out.push((i + 1, line));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_op_variants_from_real_source() {
        let src = read(&workspace_root(), "crates/tensor/src/graph.rs");
        let variants = op_variants(&src);
        assert!(variants.contains(&"Leaf".to_string()));
        assert!(variants.contains(&"BroadcastScalar".to_string()));
        assert!(variants.contains(&"SliceRows".to_string()));
        assert!(
            variants.len() >= 35,
            "found {}: {variants:?}",
            variants.len()
        );
    }

    #[test]
    fn strip_test_modules_removes_cfg_test_blocks() {
        let src =
            "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() { x.unwrap(); }\n}\nfn c() {}\n";
        let kept: Vec<&str> = strip_test_modules(src)
            .into_iter()
            .map(|(_, l)| l)
            .collect();
        assert_eq!(kept, vec!["fn a() {}", "fn c() {}"]);
    }

    #[test]
    fn lint_passes_on_current_tree() {
        let root = workspace_root();
        let mut failures = Vec::new();
        check_op_coverage(&root, &mut failures);
        check_no_unwrap(&root, &mut failures);
        assert!(failures.is_empty(), "{failures:#?}");
    }
}
