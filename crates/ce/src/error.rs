//! Typed training failures.
//!
//! Training a CE model is part of a long-running campaign against a remote
//! victim; a bad batch must surface as a value the campaign runtime can act
//! on (retry, roll back, resume), not as a panic that loses hours of probe
//! budget.

use std::fmt;

/// Why a training or incremental-update run could not produce a model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TrainError {
    /// The training workload contained no queries.
    EmptyWorkload,
    /// Optimization kept diverging (non-finite loss or a loss past the
    /// configured guard band) after exhausting every rollback recovery.
    Diverged {
        /// Rollback recoveries consumed before giving up (each one restored
        /// the last good checkpoint and halved the learning rate).
        rollbacks: u32,
    },
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::EmptyWorkload => write!(f, "training workload is empty"),
            TrainError::Diverged { rollbacks } => write!(
                f,
                "optimization diverged and stayed divergent after {rollbacks} rollback(s)"
            ),
        }
    }
}

impl std::error::Error for TrainError {}
