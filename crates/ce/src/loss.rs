//! Differentiable Q-error loss (paper Section 2.1).
//!
//! With both estimate and truth strictly positive,
//! `qerr = max(est/true, true/est) = exp(|ln est − ln true|)`. Models output a
//! *normalized* log-cardinality `o ∈ (0,1)` (final sigmoid), denormalized as
//! `ln est = o · ln C_max`, so the loss reduces to
//! `exp(|o · ln C_max − ln true|)` — smooth almost everywhere.
//!
//! Raw exponentials explode for wildly wrong early predictions, so beyond a
//! cap `Δ̄` the loss continues *linearly* with slope `e^Δ̄` (a first-order
//! extension: continuous, monotone, non-vanishing gradients).

use pace_tensor::{Graph, Matrix, Var};

/// Log-error magnitude beyond which the Q-error loss grows linearly.
pub const QERR_CAP: f32 = 8.0;

/// Builds the mean capped Q-error of a batch.
///
/// * `pred_norm` — `n×1` normalized log-cardinality outputs in `(0,1)`;
/// * `ln_truth` — `n` natural-log true cardinalities (constants);
/// * `ln_max` — the dataset's normalization constant `ln C_max`.
pub fn q_error_loss(g: &mut Graph, pred_norm: Var, ln_truth: &[f32], ln_max: f32) -> Var {
    let (n, c) = g.shape(pred_norm);
    assert_eq!(c, 1, "predictions must be Nx1");
    assert_eq!(n, ln_truth.len(), "label count mismatch");
    let truth = g.leaf(Matrix::from_vec(n, 1, ln_truth.to_vec()));
    let ln_est = g.mul_scalar(pred_norm, ln_max);
    let diff = g.sub(ln_est, truth);
    let d = g.abs(diff);
    per_element_capped_exp(g, d)
}

/// Mean of `exp(min(d, CAP)) + relu(d − CAP)·e^CAP` over all elements.
fn per_element_capped_exp(g: &mut Graph, d: Var) -> Var {
    let (r, c) = g.shape(d);
    let cap = g.leaf(Matrix::full(r, c, QERR_CAP));
    let clamped = g.minimum(d, cap);
    let expd = g.exp(clamped);
    let over = g.sub(d, cap);
    let over = g.relu(over);
    let linear = g.mul_scalar(over, QERR_CAP.exp());
    let total = g.add(expd, linear);
    g.mean_all(total)
}

/// Mean capped Q-error between two prediction vectors *in normalized log
/// space* — the imitation loss `L(f_s(x), f_bb(x))` of surrogate training
/// (paper Eq. 6/7 uses the same Q-error form with the black box's estimate in
/// place of the truth).
pub fn q_error_between(g: &mut Graph, pred_a: Var, pred_b: Var, ln_max: f32) -> Var {
    assert_eq!(
        g.shape(pred_a),
        g.shape(pred_b),
        "prediction shape mismatch"
    );
    let diff = g.sub(pred_a, pred_b);
    let scaled = g.mul_scalar(diff, ln_max);
    let d = g.abs(scaled);
    per_element_capped_exp(g, d)
}

/// Scalar (non-graph) capped Q-error used for reporting parity in tests.
pub fn capped_q_error(ln_est: f32, ln_truth: f32) -> f32 {
    let d = (ln_est - ln_truth).abs();
    if d <= QERR_CAP {
        d.exp()
    } else {
        QERR_CAP.exp() + (d - QERR_CAP) * QERR_CAP.exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pace_tensor::check::assert_grad_close;

    #[test]
    fn loss_is_one_at_perfect_prediction() {
        let mut g = Graph::new();
        let ln_max = 10.0f32;
        let truth = [3.0f32, 7.0];
        let pred = g.leaf(Matrix::from_vec(2, 1, vec![0.3, 0.7]));
        let loss = q_error_loss(&mut g, pred, &truth, ln_max);
        assert!((g.value(loss).as_scalar() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn loss_matches_exp_of_log_gap() {
        let mut g = Graph::new();
        let pred = g.leaf(Matrix::from_vec(1, 1, vec![0.5]));
        // ln est = 5, ln truth = 3 → qerr = e².
        let loss = q_error_loss(&mut g, pred, &[3.0], 10.0);
        assert!((g.value(loss).as_scalar() - 2.0f32.exp()).abs() < 1e-3);
    }

    #[test]
    fn loss_linearizes_beyond_cap() {
        let mut g = Graph::new();
        let pred = g.leaf(Matrix::from_vec(1, 1, vec![1.0]));
        // d = 20 − 0 = 20 > CAP.
        let loss = q_error_loss(&mut g, pred, &[0.0], 20.0);
        let expected = capped_q_error(20.0, 0.0);
        let got = g.value(loss).as_scalar();
        assert!(
            (got - expected).abs() / expected < 1e-4,
            "{got} vs {expected}"
        );
        assert!(got < 20.0f32.exp(), "must be far below the raw exponential");
    }

    #[test]
    fn loss_gradient_checks() {
        let x = Matrix::from_vec(3, 1, vec![0.2, 0.5, 0.8]);
        assert_grad_close("q_error_loss", &x, 3e-2, |g, v| {
            q_error_loss(g, v, &[4.0, 1.0, 9.0], 12.0)
        });
    }

    #[test]
    fn between_is_symmetric() {
        let mut g = Graph::new();
        let a = g.leaf(Matrix::from_vec(2, 1, vec![0.2, 0.9]));
        let b = g.leaf(Matrix::from_vec(2, 1, vec![0.4, 0.5]));
        let ab = q_error_between(&mut g, a, b, 10.0);
        let ba = q_error_between(&mut g, b, a, 10.0);
        assert_eq!(g.value(ab).as_scalar(), g.value(ba).as_scalar());
        assert!(g.value(ab).as_scalar() > 1.0);
    }
}
