//! `pace-ce` — learned query-driven cardinality estimators.
//!
//! Implements the six neural CE model families the paper evaluates and
//! attacks — FCN, FCN+Pool, MSCN, RNN, LSTM, Linear — over the shared
//! `T + 2A` query encoding, trained with a capped Q-error loss and supporting
//! the incremental-update mechanism that poisoning exploits.
//!
//! Every model's forward pass is a pure function of a parameter [`pace_tensor::Binding`],
//! so the attack (in `pace-core`) can differentiate through `K` unrolled
//! update steps of a surrogate model.
//!
//! # Example
//!
//! ```
//! use pace_ce::{CeConfig, CeModel, CeModelType, EncodedWorkload};
//! use pace_data::{build, DatasetKind, Scale};
//! use pace_engine::Executor;
//! use pace_workload::{generate_queries, QueryEncoder, WorkloadSpec};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let ds = build(DatasetKind::Dmv, Scale::tiny(), 1);
//! let exec = Executor::new(&ds);
//! let mut rng = StdRng::seed_from_u64(2);
//! let queries = generate_queries(&ds, &WorkloadSpec::single_table(), &mut rng, 64);
//! let train = EncodedWorkload::from_workload(&QueryEncoder::new(&ds), &exec.label_nonzero(queries));
//! let mut model = CeModel::new(CeModelType::Linear, &ds, CeConfig::quick(), 3);
//! model.train(&train, &mut rng).expect("training converges");
//! let qerrs = model.evaluate(&train);
//! assert!(qerrs.iter().all(|&q| q >= 1.0));
//! ```

#![warn(missing_docs)]

mod config;
mod error;
mod loss;
mod model;

pub use config::CeConfig;
pub use error::TrainError;
pub use loss::{capped_q_error, q_error_between, q_error_loss, QERR_CAP};
pub use model::{rows_to_matrix, CeModel, CeModelType, EncodedWorkload};
