//! The six query-driven CE models the paper attacks (Section 7.1).
//!
//! All models share one interface: a *differentiable* forward pass from a
//! batch of encoded queries (`n × (T + 2A)`) to normalized log-cardinalities
//! (`n × 1`, final sigmoid), with parameters read through a
//! [`pace_tensor::Binding`]. The binding indirection is what lets the attack
//! evaluate a model at parameters that exist only inside an autograd graph
//! (the unrolled update chain `θ_0 … θ_K`).
//!
//! | Type | Architecture |
//! |------|--------------|
//! | `Linear`  | one dense layer + sigmoid |
//! | `Fcn`     | MLP with ReLU hidden layers |
//! | `FcnPool` | three towers (join bits / lower bounds / upper bounds) mean-pooled into an MLP head |
//! | `Mscn`    | set modules: table set + predicate set through shared MLPs, masked-mean pooled, MLP head |
//! | `Rnn`     | per-query sequence over the pattern's attributes through an Elman cell |
//! | `Lstm`    | same sequence through an LSTM cell |

use crate::config::CeConfig;
use crate::error::TrainError;
use crate::loss::q_error_loss;
use pace_data::Dataset;
use pace_engine::CardEstimator;
use pace_tensor::fault;
use pace_tensor::nn::{Activation, Dense, LstmCell, Mlp, RnnCell};
use pace_tensor::optim::{clip_global_norm, sanitize, Adam, AdamState, Optimizer, Sgd};
use pace_tensor::{Binding, Graph, Matrix, ParamStore, Var};
use pace_workload::{Query, QueryEncoder, Workload};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The model families of the paper's evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum CeModelType {
    /// Lightweight fully connected network (Dutt et al.; Kim et al.).
    Fcn,
    /// Three FCNs with a pooling layer (Kim et al.).
    FcnPool,
    /// Multi-set convolutional network (Kipf et al.).
    Mscn,
    /// Recurrent network (Ortiz et al.).
    Rnn,
    /// Long short-term memory network.
    Lstm,
    /// Plain linear regression.
    Linear,
}

impl CeModelType {
    /// All six model types, in the paper's presentation order.
    pub fn all() -> [CeModelType; 6] {
        [
            CeModelType::Fcn,
            CeModelType::FcnPool,
            CeModelType::Mscn,
            CeModelType::Rnn,
            CeModelType::Lstm,
            CeModelType::Linear,
        ]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            CeModelType::Fcn => "FCN",
            CeModelType::FcnPool => "FCN+Pool",
            CeModelType::Mscn => "MSCN",
            CeModelType::Rnn => "RNN",
            CeModelType::Lstm => "LSTM",
            CeModelType::Linear => "Linear",
        }
    }
}

#[derive(Clone)]
enum Arch {
    Linear {
        out: Dense,
    },
    Fcn {
        mlp: Mlp,
    },
    FcnPool {
        join_tower: Mlp,
        lo_tower: Mlp,
        hi_tower: Mlp,
        head: Mlp,
    },
    Mscn {
        table_mlp: Mlp,
        pred_mlp: Mlp,
        head: Mlp,
    },
    Rnn {
        cell: RnnCell,
        head: Dense,
    },
    Lstm {
        cell: LstmCell,
        head: Dense,
    },
}

/// A trained (or trainable) query-driven cardinality estimator.
#[derive(Clone)]
pub struct CeModel {
    ty: CeModelType,
    config: CeConfig,
    encoder: QueryEncoder,
    ln_max: f32,
    params: ParamStore,
    arch: Arch,
    adam: Adam,
    attrs_by_table: Vec<Vec<usize>>,
}

/// Encoded queries with natural-log cardinalities — the tensor-level training
/// set shared by models and the attack.
#[derive(Clone, Debug, Default)]
pub struct EncodedWorkload {
    /// Encoded query vectors.
    pub enc: Vec<Vec<f32>>,
    /// `ln(cardinality)` per query (cardinalities floored at 1).
    pub ln_card: Vec<f32>,
}

impl EncodedWorkload {
    /// Encodes a labeled workload.
    pub fn from_workload(encoder: &QueryEncoder, w: &Workload) -> Self {
        let enc = w.iter().map(|lq| encoder.encode(&lq.query)).collect();
        let ln_card = w
            .iter()
            .map(|lq| (lq.cardinality.max(1) as f32).ln())
            .collect();
        Self { enc, ln_card }
    }

    /// Builds directly from encodings and raw cardinalities.
    pub fn from_parts(enc: Vec<Vec<f32>>, cards: &[u64]) -> Self {
        assert_eq!(enc.len(), cards.len());
        let ln_card = cards.iter().map(|&c| (c.max(1) as f32).ln()).collect();
        Self { enc, ln_card }
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.enc.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.enc.is_empty()
    }

    /// The subset at the given indices.
    pub fn subset(&self, idx: &[usize]) -> Self {
        Self {
            enc: idx.iter().map(|&i| self.enc[i].clone()).collect(),
            ln_card: idx.iter().map(|&i| self.ln_card[i]).collect(),
        }
    }
}

/// A recurrent cell step: `(graph, binding, input, state) → state'`.
type StepFn<'a> = &'a dyn Fn(&mut Graph, &Binding, Var, &[Var]) -> Vec<Var>;

/// Everything [`CeModel::train`] must restore to resume from a known-good
/// point: parameters, Adam state, the RNG mid-stream state, and the
/// best-epoch bookkeeping, pinned to an epoch index.
struct RollbackPoint {
    epoch: usize,
    params: Vec<Matrix>,
    adam: AdamState,
    rng: [u64; 4],
    best_loss: f32,
    best_params: Option<Vec<Matrix>>,
}

impl RollbackPoint {
    fn capture(
        model: &CeModel,
        rng: &StdRng,
        epoch: usize,
        best_loss: f32,
        best_params: &Option<Vec<Matrix>>,
    ) -> Self {
        Self {
            epoch,
            params: model.params.snapshot(),
            adam: model.adam.export_state(),
            rng: rng.state(),
            best_loss,
            best_params: best_params.clone(),
        }
    }

    /// Restores the captured state into `model`/`rng` and returns the epoch
    /// to resume from.
    fn restore(
        &self,
        model: &mut CeModel,
        rng: &mut StdRng,
        best_loss: &mut f32,
        best_params: &mut Option<Vec<Matrix>>,
    ) -> usize {
        model.params.restore(&self.params);
        model.adam.import_state(self.adam.clone());
        *rng = StdRng::from_state(self.rng);
        *best_loss = self.best_loss;
        *best_params = self.best_params.clone();
        self.epoch
    }
}

/// Stacks encoded rows into an `n×dim` matrix.
pub fn rows_to_matrix(rows: &[Vec<f32>]) -> Matrix {
    assert!(!rows.is_empty(), "empty batch");
    let dim = rows[0].len();
    let mut data = Vec::with_capacity(rows.len() * dim);
    for r in rows {
        assert_eq!(r.len(), dim, "ragged encoded batch");
        data.extend_from_slice(r);
    }
    Matrix::from_vec(rows.len(), dim, data)
}

impl CeModel {
    /// Creates an untrained model of the given type over a dataset. The
    /// log-cardinality normalization constant is the largest unfiltered
    /// pattern-join count (see [`pace_engine::ln_max_cardinality`]).
    pub fn new(ty: CeModelType, ds: &Dataset, config: CeConfig, seed: u64) -> Self {
        let encoder = QueryEncoder::new(ds);
        let ln_max = pace_engine::ln_max_cardinality(ds, 4) as f32;
        Self::with_encoder(ty, encoder, ln_max, config, seed)
    }

    /// Creates a model from an explicit encoder and normalization constant
    /// (used by the attack to construct surrogates without dataset access).
    pub fn with_encoder(
        ty: CeModelType,
        encoder: QueryEncoder,
        ln_max: f32,
        config: CeConfig,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = ParamStore::new();
        let dim = encoder.dim();
        let t = encoder.num_tables();
        let a = encoder.attributes().len();
        let h = config.hidden;
        let hidden_dims = |inp: usize| -> Vec<usize> {
            let mut dims = vec![inp];
            dims.extend(std::iter::repeat_n(h, config.layers.max(1)));
            dims
        };
        let arch = match ty {
            CeModelType::Linear => Arch::Linear {
                out: Dense::new(&mut params, &mut rng, "linear", dim, 1, Activation::Sigmoid),
            },
            CeModelType::Fcn => {
                let mut dims = hidden_dims(dim);
                dims.push(1);
                Arch::Fcn {
                    mlp: Mlp::new(
                        &mut params,
                        &mut rng,
                        "fcn",
                        &dims,
                        Activation::Relu,
                        Activation::Sigmoid,
                    ),
                }
            }
            CeModelType::FcnPool => {
                let tower = |params: &mut ParamStore, rng: &mut StdRng, name: &str, inp: usize| {
                    Mlp::new(
                        params,
                        rng,
                        name,
                        &hidden_dims(inp),
                        Activation::Relu,
                        Activation::Relu,
                    )
                };
                let join_tower = tower(&mut params, &mut rng, "pool.join", t);
                let lo_tower = tower(&mut params, &mut rng, "pool.lo", a.max(1));
                let hi_tower = tower(&mut params, &mut rng, "pool.hi", a.max(1));
                let head = Mlp::new(
                    &mut params,
                    &mut rng,
                    "pool.head",
                    &[h, h, 1],
                    Activation::Relu,
                    Activation::Sigmoid,
                );
                Arch::FcnPool {
                    join_tower,
                    lo_tower,
                    hi_tower,
                    head,
                }
            }
            CeModelType::Mscn => {
                let table_mlp = Mlp::new(
                    &mut params,
                    &mut rng,
                    "mscn.table",
                    &hidden_dims(t),
                    Activation::Relu,
                    Activation::Relu,
                );
                let pred_mlp = Mlp::new(
                    &mut params,
                    &mut rng,
                    "mscn.pred",
                    &hidden_dims(a.max(1) + 2),
                    Activation::Relu,
                    Activation::Relu,
                );
                let head = Mlp::new(
                    &mut params,
                    &mut rng,
                    "mscn.head",
                    &[2 * h, h, 1],
                    Activation::Relu,
                    Activation::Sigmoid,
                );
                Arch::Mscn {
                    table_mlp,
                    pred_mlp,
                    head,
                }
            }
            CeModelType::Rnn => {
                let cell = RnnCell::new(&mut params, &mut rng, "rnn", t + 2, h);
                let head = Dense::new(&mut params, &mut rng, "rnn.head", h, 1, Activation::Sigmoid);
                Arch::Rnn { cell, head }
            }
            CeModelType::Lstm => {
                let cell = LstmCell::new(&mut params, &mut rng, "lstm", t + 2, h);
                let head = Dense::new(
                    &mut params,
                    &mut rng,
                    "lstm.head",
                    h,
                    1,
                    Activation::Sigmoid,
                );
                Arch::Lstm { cell, head }
            }
        };
        let attrs_by_table = {
            let mut v = vec![Vec::new(); t];
            for (i, &(tb, _)) in encoder.attributes().iter().enumerate() {
                v[tb].push(i);
            }
            v
        };
        let adam = Adam::new(config.lr);
        Self {
            ty,
            config,
            encoder,
            ln_max,
            params,
            arch,
            adam,
            attrs_by_table,
        }
    }

    /// The model family.
    pub fn model_type(&self) -> CeModelType {
        self.ty
    }

    /// The hyperparameters the model was built with.
    pub fn config(&self) -> &CeConfig {
        &self.config
    }

    /// The query encoder (shape of the input space).
    pub fn encoder(&self) -> &QueryEncoder {
        &self.encoder
    }

    /// Normalization constant `ln C_max`.
    pub fn ln_max(&self) -> f32 {
        self.ln_max
    }

    /// Parameter store (read access).
    pub fn params(&self) -> &ParamStore {
        &self.params
    }

    /// Parameter store (mutable — snapshot/restore around poisoning runs).
    pub fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.params
    }

    fn lo_col(&self, attr: usize) -> usize {
        self.encoder.num_tables() + 2 * attr
    }

    fn hi_col(&self, attr: usize) -> usize {
        self.encoder.num_tables() + 2 * attr + 1
    }

    /// Differentiable forward pass: `x` is `n×dim`, result is `n×1` in (0,1).
    pub fn forward(&self, g: &mut Graph, bind: &Binding, x: Var) -> Var {
        let (_, dim) = g.shape(x);
        assert_eq!(dim, self.encoder.dim(), "encoded width mismatch");
        match &self.arch {
            Arch::Linear { out } => out.forward(g, bind, x),
            Arch::Fcn { mlp } => mlp.forward(g, bind, x),
            Arch::FcnPool {
                join_tower,
                lo_tower,
                hi_tower,
                head,
            } => {
                let t = self.encoder.num_tables();
                let a = self.encoder.attributes().len();
                let join = g.slice_cols(x, 0, t);
                let (lo, hi) = if a == 0 {
                    let (n, _) = g.shape(x);
                    (g.leaf(Matrix::zeros(n, 1)), g.leaf(Matrix::ones(n, 1)))
                } else {
                    let lo_parts: Vec<Var> = (0..a)
                        .map(|i| g.slice_cols(x, self.lo_col(i), self.lo_col(i) + 1))
                        .collect();
                    let hi_parts: Vec<Var> = (0..a)
                        .map(|i| g.slice_cols(x, self.hi_col(i), self.hi_col(i) + 1))
                        .collect();
                    (g.concat_cols(&lo_parts), g.concat_cols(&hi_parts))
                };
                let hj = join_tower.forward(g, bind, join);
                let hl = lo_tower.forward(g, bind, lo);
                let hh = hi_tower.forward(g, bind, hi);
                let s = g.add(hj, hl);
                let s = g.add(s, hh);
                let pooled = g.mul_scalar(s, 1.0 / 3.0);
                head.forward(g, bind, pooled)
            }
            Arch::Mscn {
                table_mlp,
                pred_mlp,
                head,
            } => self.forward_mscn(g, bind, x, table_mlp, pred_mlp, head),
            Arch::Rnn { cell, head } => self.forward_sequence(
                g,
                bind,
                x,
                &|g, bind, inp, state| {
                    let h = cell.step(g, bind, inp, state[0]);
                    vec![h]
                },
                |g, n| vec![cell.zero_state(g, n)],
                head,
            ),
            Arch::Lstm { cell, head } => self.forward_sequence(
                g,
                bind,
                x,
                &|g, bind, inp, state| {
                    let (h, c) = cell.step(g, bind, inp, state[0], state[1]);
                    vec![h, c]
                },
                |g, n| {
                    let (h, c) = cell.zero_state(g, n);
                    vec![h, c]
                },
                head,
            ),
        }
    }

    fn forward_mscn(
        &self,
        g: &mut Graph,
        bind: &Binding,
        x: Var,
        table_mlp: &Mlp,
        pred_mlp: &Mlp,
        head: &Mlp,
    ) -> Var {
        let t = self.encoder.num_tables();
        let a = self.encoder.attributes().len();
        let (n, _) = g.shape(x);
        // Table set: shared MLP over all T one-hot table vectors (an identity
        // leaf), pooled by the query's normalized join bitmap. Equivalent to
        // the masked mean of per-element MLP outputs, but fully batched.
        let eye = {
            let mut m = Matrix::zeros(t, t);
            for i in 0..t {
                m.set(i, i, 1.0);
            }
            g.leaf(m)
        };
        let table_reprs = table_mlp.forward(g, bind, eye); // T×h
        let join = g.slice_cols(x, 0, t); // n×T
        let counts = g.sum_cols(join); // n×1
        let counts = g.add_scalar(counts, 1e-6);
        let recip = g.pow_scalar(counts, -1.0);
        let tbl = g.matmul(join, table_reprs); // n×h
        let tbl = g.mul_col(tbl, recip);

        // Predicate set: one element per attribute (one-hot attr id ⊕ lo ⊕
        // hi) through a shared MLP, masked-mean pooled over attributes whose
        // table is in the pattern.
        let h = self.config.hidden;
        let pred = if a == 0 {
            g.leaf(Matrix::zeros(n, h))
        } else {
            let mut acc = g.leaf(Matrix::zeros(n, h));
            let mut cnt = g.leaf(Matrix::zeros(n, 1));
            for i in 0..a {
                let (tb, _) = self.encoder.attributes()[i];
                let onehot = {
                    let mut m = Matrix::zeros(1, a);
                    m.set(0, i, 1.0);
                    g.leaf(m)
                };
                let onehot = g.repeat_rows(onehot, n);
                let lo = g.slice_cols(x, self.lo_col(i), self.lo_col(i) + 1);
                let hi = g.slice_cols(x, self.hi_col(i), self.hi_col(i) + 1);
                let elem = g.concat_cols(&[onehot, lo, hi]);
                let repr = pred_mlp.forward(g, bind, elem); // n×h
                let mask = g.slice_cols(x, tb, tb + 1); // n×1
                let masked = g.mul_col(repr, mask);
                acc = g.add(acc, masked);
                cnt = g.add(cnt, mask);
            }
            let cnt = g.add_scalar(cnt, 1e-6);
            let recip = g.pow_scalar(cnt, -1.0);
            g.mul_col(acc, recip)
        };
        let joint = g.concat_cols(&[tbl, pred]);
        head.forward(g, bind, joint)
    }

    /// Shared RNN/LSTM forward: group the batch by join pattern (a constant
    /// permutation), run one sequence per group over the pattern's
    /// attributes, and un-permute the outputs.
    fn forward_sequence(
        &self,
        g: &mut Graph,
        bind: &Binding,
        x: Var,
        step: StepFn<'_>,
        zero_state: impl Fn(&mut Graph, usize) -> Vec<Var>,
        head: &Dense,
    ) -> Var {
        let t = self.encoder.num_tables();
        let (n, _) = g.shape(x);
        // Determine each row's pattern from current values.
        let patterns: Vec<Vec<usize>> = (0..n)
            .map(|r| {
                let row = g.value(x).row_slice(r);
                let p: Vec<usize> = (0..t).filter(|&i| row[i] > 0.5).collect();
                if p.is_empty() {
                    vec![0]
                } else {
                    p
                }
            })
            .collect();
        // Order rows so equal patterns are contiguous.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&i, &j| patterns[i].cmp(&patterns[j]));
        let perm = {
            let mut m = Matrix::zeros(n, n);
            for (new, &old) in order.iter().enumerate() {
                m.set(new, old, 1.0);
            }
            g.leaf(m)
        };
        let xg = g.matmul(perm, x);
        // Group boundaries.
        let mut outputs: Vec<Var> = Vec::new();
        let mut start = 0;
        while start < n {
            let mut end = start + 1;
            while end < n && patterns[order[end]] == patterns[order[start]] {
                end += 1;
            }
            let ng = end - start;
            let xs = g.slice_rows(xg, start, end);
            let pat = &patterns[order[start]];
            let mut state = zero_state(g, ng);
            for &tb in pat {
                let onehot = {
                    let mut m = Matrix::zeros(1, t);
                    m.set(0, tb, 1.0);
                    g.leaf(m)
                };
                let onehot = g.repeat_rows(onehot, ng);
                if self.attrs_by_table[tb].is_empty() {
                    let lo = g.leaf(Matrix::zeros(ng, 1));
                    let hi = g.leaf(Matrix::ones(ng, 1));
                    let inp = g.concat_cols(&[onehot, lo, hi]);
                    state = step(g, bind, inp, &state);
                } else {
                    for &i in &self.attrs_by_table[tb] {
                        let lo = g.slice_cols(xs, self.lo_col(i), self.lo_col(i) + 1);
                        let hi = g.slice_cols(xs, self.hi_col(i), self.hi_col(i) + 1);
                        let inp = g.concat_cols(&[onehot, lo, hi]);
                        state = step(g, bind, inp, &state);
                    }
                }
            }
            outputs.push(head.forward(g, bind, state[0]));
            start = end;
        }
        let stacked = if outputs.len() == 1 {
            outputs[0]
        } else {
            g.concat_rows(&outputs)
        };
        // Un-permute: P is a permutation, so P⁻¹ = Pᵀ.
        let pt = g.transpose(perm);
        g.matmul(pt, stacked)
    }

    /// Estimated cardinalities for a batch of encoded queries.
    pub fn estimate_encoded_batch(&self, encs: &[Vec<f32>]) -> Vec<f64> {
        if encs.is_empty() {
            return Vec::new();
        }
        let mut g = Graph::new();
        let bind = self.params.bind(&mut g);
        let x = g.leaf(rows_to_matrix(encs));
        let out = self.forward(&mut g, &bind, x);
        g.value(out)
            .data()
            .iter()
            .map(|&o| f64::from(o * self.ln_max).exp())
            .collect()
    }

    /// Estimated cardinality of one query.
    pub fn estimate_query(&self, q: &Query) -> f64 {
        self.estimate_encoded_batch(&[self.encoder.encode(q)])[0]
    }

    /// Per-query Q-errors against the workload's true cardinalities.
    pub fn evaluate(&self, data: &EncodedWorkload) -> Vec<f64> {
        let ests = self.estimate_encoded_batch(&data.enc);
        ests.iter()
            .zip(&data.ln_card)
            .map(|(&e, &lt)| pace_workload::q_error(e, f64::from(lt).exp()))
            .collect()
    }

    /// Trains from scratch with Adam + minibatches, keeping the parameters
    /// of the best epoch (the exponential Q-error loss can spike late in
    /// training; best-epoch restore makes victim quality robust to that).
    /// Returns the best epoch's mean loss.
    ///
    /// Training is self-healing: at the first epoch boundary after every
    /// `config.checkpoint_every` optimizer steps it snapshots params, Adam
    /// state, and the RNG state, and when a step diverges (non-finite loss,
    /// or loss past `config.guard_band`) it rolls the whole triple back to
    /// the last good checkpoint with a halved learning rate instead of
    /// carrying NaN parameters to completion. When no divergence occurs the
    /// trajectory is bit-identical to a build without this machinery —
    /// checkpoints only read state.
    ///
    /// # Errors
    /// [`TrainError::EmptyWorkload`] on an empty workload;
    /// [`TrainError::Diverged`] when `config.max_rollbacks` recoveries were
    /// not enough to finish training with finite parameters.
    pub fn train(&mut self, data: &EncodedWorkload, rng: &mut StdRng) -> Result<f32, TrainError> {
        let _span = pace_tensor::trace::span("ce::train");
        if data.is_empty() {
            return Err(TrainError::EmptyWorkload);
        }
        let mut best_loss = f32::MAX;
        let mut best_params: Option<Vec<Matrix>> = None;
        let mut idx: Vec<usize> = (0..data.len()).collect();
        let mut ckpt = RollbackPoint::capture(self, rng, 0, best_loss, &best_params);
        let mut steps_since_ckpt = 0usize;
        let mut rollbacks = 0u32;
        let mut epoch = 0usize;
        while epoch < self.config.epochs {
            if steps_since_ckpt >= self.config.checkpoint_every && self.params_finite() {
                ckpt = RollbackPoint::capture(self, rng, epoch, best_loss, &best_params);
                steps_since_ckpt = 0;
            }
            idx.shuffle(rng);
            let mut epoch_loss = 0.0;
            let mut batches = 0;
            let mut diverged = false;
            for chunk in idx.chunks(self.config.batch_size) {
                let batch = data.subset(chunk);
                let value = self.step_adam(&batch);
                steps_since_ckpt += 1;
                // The capped loss drops NaN through IEEE min/max, so a
                // poisoned step can report a finite loss — parameter
                // finiteness is the authoritative divergence signal.
                if !value.is_finite() || value > self.config.guard_band || !self.params_finite() {
                    diverged = true;
                    break;
                }
                epoch_loss += value;
                batches += 1;
            }
            if diverged {
                if rollbacks >= self.config.max_rollbacks {
                    return Err(TrainError::Diverged { rollbacks });
                }
                rollbacks += 1;
                pace_tensor::trace::CHECKPOINT_ROLLBACKS.add(1);
                epoch = ckpt.restore(self, rng, &mut best_loss, &mut best_params);
                self.adam.set_learning_rate(self.adam.learning_rate() * 0.5);
                steps_since_ckpt = 0;
                continue;
            }
            let epoch_loss = epoch_loss / batches as f32;
            if epoch_loss < best_loss {
                best_loss = epoch_loss;
                best_params = Some(self.params.snapshot());
            }
            epoch += 1;
        }
        if let Some(best) = best_params {
            self.params.restore(&best);
        }
        if !self.params_finite() {
            return Err(TrainError::Diverged { rollbacks });
        }
        Ok(best_loss)
    }

    /// True when every parameter value is finite — the invariant rollback
    /// recovery maintains and checkpoints require.
    pub fn params_finite(&self) -> bool {
        self.params
            .iter()
            .all(|(_, m)| m.data().iter().all(|x| x.is_finite()))
    }

    fn step_adam(&mut self, batch: &EncodedWorkload) -> f32 {
        let _span = pace_tensor::trace::span("ce::step_adam");
        let mut g = Graph::new();
        let bind = self.params.bind(&mut g);
        let x = g.leaf(rows_to_matrix(&batch.enc));
        let out = self.forward(&mut g, &bind, x);
        let loss = q_error_loss(&mut g, out, &batch.ln_card, self.ln_max);
        pace_tensor::analysis::audit_if_enabled(&g, loss, bind.vars(), "ce::step_adam");
        let value = g.value(loss).as_scalar();
        let grad_vars = g.grad(loss, bind.vars());
        let mut opt_outputs = vec![loss];
        opt_outputs.extend(&grad_vars);
        pace_tensor::opt::optimize_if_enabled(&g, &opt_outputs, bind.vars(), "ce::step_adam");
        let mut grads: Vec<Matrix> = grad_vars.iter().map(|&v| g.value(v).clone()).collect();
        sanitize(&mut grads);
        clip_global_norm(&mut grads, self.config.clip_norm);
        // Chaos hook, after sanitize/clip so the injected NaN reaches the
        // optimizer and exercises the divergence-rollback path (sanitize
        // would otherwise zero it out).
        fault::poison_grads("ce-train", &mut grads);
        self.adam.step(&mut self.params, &grads);
        value
    }

    /// Saves the model's parameters to a file (see
    /// [`pace_tensor::serialize`] for the format). The architecture itself
    /// is reconstructed by creating the model with the same type, encoder
    /// and config before calling [`CeModel::load_params`].
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn save_params(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        pace_tensor::serialize::write_params(&self.params, &mut f)
    }

    /// Loads parameters saved by [`CeModel::save_params`] into this model.
    ///
    /// # Errors
    /// Fails with `InvalidData` when the file does not match this model's
    /// architecture.
    pub fn load_params(&mut self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
        pace_tensor::serialize::read_params(&mut self.params, &mut f)
    }

    /// Saves a full training checkpoint — parameters, Adam state, and the
    /// caller's RNG state — in the checksummed `PACECKP2` format, so a
    /// killed run can resume bit-identically via
    /// [`CeModel::load_checkpoint`]. The file is written to a sibling
    /// temporary path and renamed into place, so a crash mid-write leaves
    /// either the old checkpoint or the new one, never a torn file.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn save_checkpoint(
        &self,
        rng: &StdRng,
        step: u64,
        path: impl AsRef<std::path::Path>,
    ) -> std::io::Result<()> {
        let path = path.as_ref();
        let tmp = path.with_extension("tmp");
        let extras = pace_tensor::serialize::Checkpoint {
            step,
            adam: Some(self.adam.export_state()),
            rng: rng.state(),
        };
        {
            let mut f = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
            pace_tensor::serialize::write_checkpoint(&self.params, &extras, &mut f)?;
            use std::io::Write as _;
            f.flush()?;
        }
        std::fs::rename(&tmp, path)
    }

    /// Restores a checkpoint saved by [`CeModel::save_checkpoint`] into this
    /// model, returning the RNG (rebuilt mid-stream) and the step count.
    ///
    /// # Errors
    /// Fails with `InvalidData` when the file is corrupt or does not match
    /// this model's architecture.
    pub fn load_checkpoint(
        &mut self,
        path: impl AsRef<std::path::Path>,
    ) -> std::io::Result<(StdRng, u64)> {
        let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
        let extras = pace_tensor::serialize::read_checkpoint(&mut self.params, &mut f)?;
        if let Some(adam) = extras.adam {
            self.adam.import_state(adam);
        }
        Ok((StdRng::from_state(extras.rng), extras.step))
    }

    /// Incremental update on newly arrived queries: `update_iters` full-batch
    /// SGD steps at `update_lr` — exactly the update process the attack
    /// differentiates through (paper Eq. 9).
    ///
    /// Like [`CeModel::train`], the update is self-healing: the parameters
    /// are snapshotted on entry, and an attempt that ends with non-finite
    /// parameters (or hits a non-finite loss mid-way) is rolled back and
    /// retried at half the step size, up to `config.max_rollbacks` times.
    ///
    /// # Errors
    /// [`TrainError::EmptyWorkload`] on an empty workload;
    /// [`TrainError::Diverged`] when every retry diverged.
    pub fn update(&mut self, data: &EncodedWorkload) -> Result<(), TrainError> {
        let _span = pace_tensor::trace::span("ce::update");
        if data.is_empty() {
            return Err(TrainError::EmptyWorkload);
        }
        let entry = self.params.snapshot();
        let mut lr = self.config.update_lr;
        let mut rollbacks = 0u32;
        loop {
            let mut sgd = Sgd::new(lr);
            let mut diverged = false;
            for _ in 0..self.config.update_iters {
                let mut g = Graph::new();
                let bind = self.params.bind(&mut g);
                let x = g.leaf(rows_to_matrix(&data.enc));
                let out = self.forward(&mut g, &bind, x);
                let loss = q_error_loss(&mut g, out, &data.ln_card, self.ln_max);
                pace_tensor::analysis::audit_if_enabled(&g, loss, bind.vars(), "ce::update");
                if !g.value(loss).as_scalar().is_finite() {
                    diverged = true;
                    break;
                }
                let grad_vars = g.grad(loss, bind.vars());
                let mut opt_outputs = vec![loss];
                opt_outputs.extend(&grad_vars);
                pace_tensor::opt::optimize_if_enabled(&g, &opt_outputs, bind.vars(), "ce::update");
                let mut grads: Vec<Matrix> =
                    grad_vars.iter().map(|&v| g.value(v).clone()).collect();
                sanitize(&mut grads);
                clip_global_norm(&mut grads, self.config.update_clip);
                fault::poison_grads("ce-update", &mut grads);
                sgd.step(&mut self.params, &grads);
                if !self.params_finite() {
                    diverged = true;
                    break;
                }
            }
            if !diverged && self.params_finite() {
                return Ok(());
            }
            if rollbacks >= self.config.max_rollbacks {
                self.params.restore(&entry);
                return Err(TrainError::Diverged { rollbacks });
            }
            rollbacks += 1;
            pace_tensor::trace::CHECKPOINT_ROLLBACKS.add(1);
            lr *= 0.5;
            self.params.restore(&entry);
        }
    }
}

impl CardEstimator for CeModel {
    fn estimate(&self, q: &Query) -> f64 {
        self.estimate_query(q)
    }
}
