//! Hyperparameters of query-driven CE models.

/// Hyperparameters shared by all six model types.
///
/// The paper's Table 2 default set maps to [`CeConfig::default`]; experiments
/// that probe hyperparameter mismatch (paper Figure 11) vary `hidden` and
/// `layers`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CeConfig {
    /// Hidden width of every internal layer.
    pub hidden: usize,
    /// Number of hidden layers in MLP-style towers.
    pub layers: usize,
    /// Adam learning rate used for initial training.
    pub lr: f32,
    /// SGD learning rate used for incremental updates — identical to the
    /// step size the attack unrolls through (paper Eq. 9's `η`).
    pub update_lr: f32,
    /// Initial-training epochs.
    pub epochs: usize,
    /// Minibatch size during initial training.
    pub batch_size: usize,
    /// Number of incremental-update iterations when new queries arrive
    /// (paper default: 10).
    pub update_iters: usize,
    /// Gradient-clipping threshold (global L2 norm) during initial training.
    pub clip_norm: f32,
    /// Gradient-clipping threshold during incremental updates. Looser than
    /// `clip_norm`: deployed estimators genuinely fit newly arrived queries
    /// (the mechanism poisoning exploits), so updates must be able to move
    /// the parameters.
    pub update_clip: f32,
    /// Training takes a rollback checkpoint (params + Adam state + RNG
    /// state) at the first epoch boundary after this many optimizer steps.
    pub checkpoint_every: usize,
    /// Divergence guard band: a per-batch loss above this value triggers a
    /// rollback. The default (`+∞`) leaves loss spikes to best-epoch restore
    /// and only treats *non-finite* losses as divergence, so recovery can
    /// never perturb a healthy run.
    pub guard_band: f32,
    /// How many rollback recoveries (each halving the learning rate) a
    /// training or update run may consume before giving up with
    /// [`crate::TrainError::Diverged`].
    pub max_rollbacks: u32,
}

impl Default for CeConfig {
    fn default() -> Self {
        Self {
            hidden: 64,
            layers: 2,
            lr: 1e-3,
            update_lr: 1e-2,
            epochs: 40,
            batch_size: 128,
            update_iters: 10,
            clip_norm: 5.0,
            update_clip: 20.0,
            checkpoint_every: 25,
            guard_band: f32::INFINITY,
            max_rollbacks: 3,
        }
    }
}

impl CeConfig {
    /// A faster configuration for tests.
    pub fn quick() -> Self {
        Self {
            hidden: 32,
            epochs: 30,
            batch_size: 64,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = CeConfig::default();
        assert_eq!(c.update_iters, 10);
        assert_eq!(c.lr, 1e-3);
        assert_eq!(c.update_lr, 1e-2);
    }
}
