//! Behavioral tests of the six CE model families.

use pace_ce::{CeConfig, CeModel, CeModelType, EncodedWorkload};
use pace_data::{build, DatasetKind, Scale};
use pace_engine::{CardEstimator, Executor};
use pace_tensor::Graph;
use pace_workload::{generate_queries, QErrorSummary, QueryEncoder, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn training_data(kind: DatasetKind, n: usize, seed: u64) -> (pace_data::Dataset, EncodedWorkload) {
    let ds = build(kind, Scale::tiny(), seed);
    let exec = Executor::new(&ds);
    let mut rng = StdRng::seed_from_u64(seed + 1);
    let spec = if kind == DatasetKind::Dmv {
        WorkloadSpec::single_table()
    } else {
        WorkloadSpec {
            max_join_tables: 3,
            ..WorkloadSpec::default()
        }
    };
    let queries = generate_queries(&ds, &spec, &mut rng, n);
    let labeled = exec.label_nonzero(queries);
    let data = EncodedWorkload::from_workload(&QueryEncoder::new(&ds), &labeled);
    (ds, data)
}

#[test]
fn all_models_produce_unit_interval_outputs() {
    let (ds, data) = training_data(DatasetKind::Tpch, 32, 1);
    for ty in CeModelType::all() {
        let model = CeModel::new(ty, &ds, CeConfig::quick(), 7);
        let mut g = Graph::new();
        let bind = model.params().bind(&mut g);
        let x = g.leaf(pace_ce::rows_to_matrix(&data.enc));
        let out = model.forward(&mut g, &bind, x);
        assert_eq!(g.shape(out), (data.len(), 1), "{}", ty.name());
        assert!(
            g.value(out)
                .data()
                .iter()
                .all(|&v| (0.0..=1.0).contains(&v)),
            "{} output escaped (0,1)",
            ty.name()
        );
    }
}

#[test]
fn training_reduces_q_error_for_every_model() {
    let (ds, data) = training_data(DatasetKind::Dmv, 300, 2);
    for ty in CeModelType::all() {
        let mut model = CeModel::new(ty, &ds, CeConfig::quick(), 11);
        let before = QErrorSummary::from_samples(&model.evaluate(&data)).mean;
        let mut rng = StdRng::seed_from_u64(13);
        model.train(&data, &mut rng).expect("train");
        let after = QErrorSummary::from_samples(&model.evaluate(&data)).mean;
        assert!(
            after < before,
            "{}: training failed to reduce mean q-error ({before} -> {after})",
            ty.name()
        );
    }
}

#[test]
fn multi_join_models_train_on_tpch() {
    let (ds, data) = training_data(DatasetKind::Tpch, 300, 3);
    for ty in [CeModelType::Fcn, CeModelType::Mscn, CeModelType::Rnn] {
        let mut model = CeModel::new(ty, &ds, CeConfig::quick(), 17);
        let before = QErrorSummary::from_samples(&model.evaluate(&data)).mean;
        let mut rng = StdRng::seed_from_u64(19);
        model.train(&data, &mut rng).expect("train");
        let after = QErrorSummary::from_samples(&model.evaluate(&data)).mean;
        assert!(after < before, "{}: {before} -> {after}", ty.name());
    }
}

#[test]
fn estimate_is_positive_and_bounded() {
    let (ds, data) = training_data(DatasetKind::Stats, 40, 4);
    let model = CeModel::new(CeModelType::FcnPool, &ds, CeConfig::quick(), 23);
    for est in model.estimate_encoded_batch(&data.enc) {
        assert!(est >= 1.0);
        assert!(est <= ds.max_cardinality_bound() * 2.0);
    }
}

#[test]
fn card_estimator_trait_wires_through() {
    let ds = build(DatasetKind::Tpch, Scale::tiny(), 5);
    let model = CeModel::new(CeModelType::Linear, &ds, CeConfig::quick(), 29);
    let mut rng = StdRng::seed_from_u64(31);
    let q = &generate_queries(&ds, &WorkloadSpec::default(), &mut rng, 1)[0];
    let via_trait = CardEstimator::estimate(&model, q);
    let direct = model.estimate_query(q);
    assert_eq!(via_trait, direct);
}

#[test]
fn update_moves_predictions_toward_new_labels() {
    let (ds, data) = training_data(DatasetKind::Dmv, 200, 6);
    let mut model = CeModel::new(CeModelType::Fcn, &ds, CeConfig::quick(), 37);
    let mut rng = StdRng::seed_from_u64(41);
    model.train(&data, &mut rng).expect("train");

    // Build an adversarial update set: same queries, labels forced to 1.
    let poison = EncodedWorkload {
        enc: data.enc[..50.min(data.len())].to_vec(),
        ln_card: vec![0.0; 50.min(data.len())],
    };
    let before: f64 = model.estimate_encoded_batch(&poison.enc).iter().sum();
    model.update(&poison).expect("update");
    let after: f64 = model.estimate_encoded_batch(&poison.enc).iter().sum();
    assert!(
        after < before,
        "update should pull estimates toward the new tiny labels: {before} -> {after}"
    );
}

#[test]
fn rnn_grouping_is_order_invariant() {
    // Outputs must not depend on the batch order (the permutation must be
    // correctly undone).
    let (ds, data) = training_data(DatasetKind::Tpch, 24, 7);
    for ty in [CeModelType::Rnn, CeModelType::Lstm] {
        let model = CeModel::new(ty, &ds, CeConfig::quick(), 43);
        let fwd = model.estimate_encoded_batch(&data.enc);
        let mut reversed = data.enc.clone();
        reversed.reverse();
        let mut bwd = model.estimate_encoded_batch(&reversed);
        bwd.reverse();
        for (a, b) in fwd.iter().zip(&bwd) {
            assert!(
                (a - b).abs() <= 1e-3 * a.abs().max(1.0),
                "{}: batch order changed estimates: {a} vs {b}",
                ty.name()
            );
        }
    }
}

#[test]
fn forward_is_differentiable_wrt_input_encoding() {
    // The attack needs ∂output/∂query — check it is non-zero for every type.
    let (ds, data) = training_data(DatasetKind::Tpch, 8, 8);
    for ty in CeModelType::all() {
        let model = CeModel::new(ty, &ds, CeConfig::quick(), 47);
        let mut g = Graph::new();
        let bind = model.params().bind(&mut g);
        let x = g.leaf(pace_ce::rows_to_matrix(&data.enc));
        let out = model.forward(&mut g, &bind, x);
        let s = g.sum_all(out);
        let gx = g.grad(s, &[x])[0];
        let norm = g.value(gx).norm();
        assert!(norm > 0.0, "{}: zero input gradient", ty.name());
        assert!(
            g.value(gx).all_finite(),
            "{}: non-finite input gradient",
            ty.name()
        );
    }
}

#[test]
fn models_distinguish_small_from_large_ranges_after_training() {
    let ds = build(DatasetKind::Dmv, Scale::tiny(), 9);
    let exec = Executor::new(&ds);
    let enc = QueryEncoder::new(&ds);
    let mut rng = StdRng::seed_from_u64(53);
    let queries = generate_queries(&ds, &WorkloadSpec::single_table(), &mut rng, 400);
    let labeled = exec.label_nonzero(queries);
    let data = EncodedWorkload::from_workload(&enc, &labeled);
    let mut model = CeModel::new(CeModelType::Fcn, &ds, CeConfig::quick(), 59);
    model.train(&data, &mut rng).expect("train");

    // Full-table query must be estimated (much) larger than a tight one.
    let full = pace_workload::Query::new(vec![0], vec![]);
    let stats = ds.col_stats(0, 7); // reg_year
    let tight = pace_workload::Query::new(
        vec![0],
        vec![pace_workload::Predicate {
            table: 0,
            col: 7,
            lo: stats.min,
            hi: stats.min + 1,
        }],
    );
    let e_full = model.estimate_query(&full);
    let e_tight = model.estimate_query(&tight);
    assert!(
        e_full > e_tight,
        "trained model ignores predicate selectivity: full {e_full} <= tight {e_tight}"
    );
}
