//! Recovery-path tests: injected NaN gradients, rollback/retry, typed
//! training errors, checkpoint persistence, and the bit-identity guarantee
//! of the checkpoint machinery when no fault fires.

use pace_ce::{CeConfig, CeModel, CeModelType, EncodedWorkload, TrainError};
use pace_data::{build, DatasetKind, Scale};
use pace_engine::Executor;
use pace_tensor::fault::{self, FaultSpec};
use pace_workload::{generate_queries, QueryEncoder, WorkloadSpec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Mutex;

/// The fault injector is process-global; tests that install specs (and tests
/// that require none) must not interleave.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    match FAULT_LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn quick_config() -> CeConfig {
    CeConfig {
        epochs: 6,
        batch_size: 16,
        checkpoint_every: 8,
        ..CeConfig::quick()
    }
}

fn training_data(n: usize, seed: u64) -> (pace_data::Dataset, EncodedWorkload) {
    let ds = build(DatasetKind::Dmv, Scale::tiny(), seed);
    let exec = Executor::new(&ds);
    let mut rng = StdRng::seed_from_u64(seed + 1);
    let queries = generate_queries(&ds, &WorkloadSpec::single_table(), &mut rng, n);
    let labeled = exec.label_nonzero(queries);
    let data = EncodedWorkload::from_workload(&QueryEncoder::new(&ds), &labeled);
    (ds, data)
}

#[test]
fn empty_workload_is_a_typed_error() {
    let _g = lock();
    fault::install(None);
    let (ds, _) = training_data(8, 1);
    let mut model = CeModel::new(CeModelType::Linear, &ds, quick_config(), 7);
    let mut rng = StdRng::seed_from_u64(2);
    assert_eq!(
        model.train(&EncodedWorkload::default(), &mut rng),
        Err(TrainError::EmptyWorkload)
    );
    assert_eq!(
        model.update(&EncodedWorkload::default()),
        Err(TrainError::EmptyWorkload)
    );
}

#[test]
fn nan_grad_fault_rolls_back_and_training_recovers() {
    let _g = lock();
    fault::install(Some(
        FaultSpec::parse("nan,at=3,site=ce-train").expect("spec"),
    ));
    let (ds, data) = training_data(120, 3);
    let mut model = CeModel::new(CeModelType::Linear, &ds, quick_config(), 11);
    let mut rng = StdRng::seed_from_u64(13);
    let loss = model.train(&data, &mut rng);
    fault::install(None);
    let loss = loss.expect("one injected NaN step must be survivable");
    assert!(loss.is_finite());
    assert!(model.params_finite(), "rollback left non-finite parameters");
    assert!(model
        .estimate_encoded_batch(&data.enc)
        .iter()
        .all(|e| e.is_finite()));
}

#[test]
fn persistent_nan_grads_exhaust_rollbacks_into_typed_error() {
    let _g = lock();
    fault::install(Some(
        FaultSpec::parse("nan,every=1,site=ce-train").expect("spec"),
    ));
    let (ds, data) = training_data(60, 5);
    let mut model = CeModel::new(CeModelType::Linear, &ds, quick_config(), 17);
    let mut rng = StdRng::seed_from_u64(19);
    let result = model.train(&data, &mut rng);
    fault::install(None);
    match result {
        Err(TrainError::Diverged { rollbacks }) => {
            assert_eq!(rollbacks, quick_config().max_rollbacks);
        }
        other => panic!("expected Diverged, got {other:?}"),
    }
}

#[test]
fn nan_grad_fault_in_update_retries_to_success() {
    let _g = lock();
    fault::install(None);
    let (ds, data) = training_data(80, 7);
    let mut model = CeModel::new(CeModelType::Linear, &ds, quick_config(), 23);
    let mut rng = StdRng::seed_from_u64(29);
    model.train(&data, &mut rng).expect("clean train");
    fault::install(Some(
        FaultSpec::parse("nan,at=2,site=ce-update").expect("spec"),
    ));
    let result = model.update(&data);
    fault::install(None);
    result.expect("one injected NaN update step must be survivable");
    assert!(model.params_finite());
}

#[test]
fn guard_band_divergence_is_detected_without_faults() {
    let _g = lock();
    fault::install(None);
    let (ds, data) = training_data(60, 9);
    let config = CeConfig {
        guard_band: 0.0, // every finite loss "diverges"
        ..quick_config()
    };
    let mut model = CeModel::new(CeModelType::Linear, &ds, config, 31);
    let mut rng = StdRng::seed_from_u64(37);
    match model.train(&data, &mut rng) {
        Err(TrainError::Diverged { rollbacks }) => assert_eq!(rollbacks, config.max_rollbacks),
        other => panic!("expected Diverged, got {other:?}"),
    }
    assert!(
        model.params_finite(),
        "failed training must not leave NaN parameters"
    );
}

#[test]
fn checkpoint_file_restores_model_optimizer_and_rng() {
    let _g = lock();
    fault::install(None);
    let (ds, data) = training_data(100, 11);
    let mut model = CeModel::new(CeModelType::Fcn, &ds, quick_config(), 41);
    let mut rng = StdRng::seed_from_u64(43);
    model.train(&data, &mut rng).expect("train");

    let dir = std::env::temp_dir().join("pace_ce_recovery_test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("model.ckpt");
    model.save_checkpoint(&rng, 123, &path).expect("save");

    let mut restored = CeModel::new(CeModelType::Fcn, &ds, quick_config(), 999);
    let (mut restored_rng, step) = restored.load_checkpoint(&path).expect("load");
    assert_eq!(step, 123);
    assert_eq!(
        model.estimate_encoded_batch(&data.enc[..5]),
        restored.estimate_encoded_batch(&data.enc[..5]),
        "restored parameters differ"
    );
    // The RNG resumes mid-stream: both generators must continue identically.
    for _ in 0..32 {
        assert_eq!(
            rng.random_range(0u64..1_000_000),
            restored_rng.random_range(0u64..1_000_000)
        );
    }
    // Continued training from the restored triple matches the original.
    let a = model.update(&data);
    let b = restored.update(&data);
    assert_eq!(a, b);
    assert_eq!(
        model.estimate_encoded_batch(&data.enc[..5]),
        restored.estimate_encoded_batch(&data.enc[..5])
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupt_checkpoint_file_is_invalid_data() {
    let _g = lock();
    fault::install(None);
    let (ds, data) = training_data(40, 13);
    let mut model = CeModel::new(CeModelType::Linear, &ds, quick_config(), 47);
    let mut rng = StdRng::seed_from_u64(53);
    model.train(&data, &mut rng).expect("train");
    let dir = std::env::temp_dir().join("pace_ce_recovery_test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("corrupt.ckpt");
    model.save_checkpoint(&rng, 1, &path).expect("save");
    let mut bytes = std::fs::read(&path).expect("read");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).expect("rewrite");
    let err = model
        .load_checkpoint(&path)
        .expect_err("corruption accepted");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    let _ = std::fs::remove_file(&path);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// With no fault firing, the checkpoint machinery must be invisible:
    /// training with any checkpoint cadence produces bit-identical
    /// parameters to training that never checkpoints.
    #[test]
    fn checkpoint_cadence_never_changes_results(
        seed in 0u64..1000,
        ckpt_every in 1usize..12,
    ) {
        let _g = lock();
        fault::install(None);
        let (ds, data) = training_data(60, 15);
        let base = CeConfig { epochs: 4, batch_size: 16, ..CeConfig::quick() };
        let mut never = CeModel::new(
            CeModelType::Linear,
            &ds,
            CeConfig { checkpoint_every: usize::MAX, ..base },
            seed,
        );
        let mut often = CeModel::new(
            CeModelType::Linear,
            &ds,
            CeConfig { checkpoint_every: ckpt_every, ..base },
            seed,
        );
        let mut rng_a = StdRng::seed_from_u64(seed ^ 0xabcd);
        let mut rng_b = StdRng::seed_from_u64(seed ^ 0xabcd);
        let la = never.train(&data, &mut rng_a).expect("train");
        let lb = often.train(&data, &mut rng_b).expect("train");
        prop_assert_eq!(la.to_bits(), lb.to_bits(), "best loss diverged");
        prop_assert_eq!(
            rng_a.state(),
            rng_b.state(),
            "checkpointing consumed RNG state"
        );
        let pa = never.params().snapshot();
        let pb = often.params().snapshot();
        prop_assert_eq!(pa, pb);
    }

    /// `StdRng::from_state(state())` continues the exact stream — the
    /// round-trip every rollback and resume depends on.
    #[test]
    fn rng_state_roundtrip_continues_the_stream(
        seed in any::<u64>(),
        warmup in 0usize..64,
    ) {
        let mut a = StdRng::seed_from_u64(seed);
        for _ in 0..warmup {
            let _ = a.random_range(0u64..u64::MAX);
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..64 {
            prop_assert_eq!(
                a.random_range(0u64..u64::MAX),
                b.random_range(0u64..u64::MAX)
            );
        }
    }
}
