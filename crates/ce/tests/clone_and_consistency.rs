//! Clone semantics and estimate consistency — load-bearing for the attack's
//! white-box diagnostics and budgeted-selection simulations.

use pace_ce::{CeConfig, CeModel, CeModelType, EncodedWorkload};
use pace_data::{build, DatasetKind, Scale};
use pace_engine::Executor;
use pace_workload::{generate_queries, QueryEncoder, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn trained_model() -> (pace_data::Dataset, CeModel, EncodedWorkload) {
    let ds = build(DatasetKind::Dmv, Scale::tiny(), 51);
    let exec = Executor::new(&ds);
    let mut rng = StdRng::seed_from_u64(52);
    let train = exec.label_nonzero(generate_queries(
        &ds,
        &WorkloadSpec::single_table(),
        &mut rng,
        250,
    ));
    let data = EncodedWorkload::from_workload(&QueryEncoder::new(&ds), &train);
    let mut model = CeModel::new(CeModelType::Fcn, &ds, CeConfig::quick(), 53);
    model.train(&data, &mut rng).expect("train");
    (ds, model, data)
}

#[test]
fn clone_is_deep_for_parameters() {
    let (_, model, data) = trained_model();
    let before: Vec<f64> = model.estimate_encoded_batch(&data.enc[..10]);
    let mut copy = model.clone();
    copy.update(&EncodedWorkload {
        enc: data.enc[..10].to_vec(),
        ln_card: vec![0.0; 10],
    })
    .expect("update");
    let after_original: Vec<f64> = model.estimate_encoded_batch(&data.enc[..10]);
    let after_copy: Vec<f64> = copy.estimate_encoded_batch(&data.enc[..10]);
    assert_eq!(
        before, after_original,
        "updating a clone mutated the original"
    );
    assert_ne!(after_original, after_copy, "clone update had no effect");
}

#[test]
fn single_and_batch_estimates_agree() {
    let (ds, model, data) = trained_model();
    let encoder = QueryEncoder::new(&ds);
    let batch = model.estimate_encoded_batch(&data.enc[..5]);
    for (i, est) in batch.iter().enumerate() {
        let q = encoder.decode(&data.enc[i]);
        let single = model.estimate_query(&q);
        let rel = (est - single).abs() / est.max(1.0);
        assert!(rel < 1e-4, "batch {est} vs single {single}");
    }
}

#[test]
fn snapshot_restore_roundtrips_estimates() {
    let (_, mut model, data) = trained_model();
    let before = model.estimate_encoded_batch(&data.enc[..5]);
    let snap = model.params().snapshot();
    model
        .update(&EncodedWorkload {
            enc: data.enc[..5].to_vec(),
            ln_card: vec![0.0; 5],
        })
        .expect("update");
    assert_ne!(before, model.estimate_encoded_batch(&data.enc[..5]));
    model.params_mut().restore(&snap);
    assert_eq!(before, model.estimate_encoded_batch(&data.enc[..5]));
}

#[test]
fn save_load_roundtrips_a_trained_model() {
    let (ds, model, data) = trained_model();
    let dir = std::env::temp_dir().join("pace_ce_test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("fcn.params");
    model.save_params(&path).expect("save");

    // Same-architecture fresh model, different random init.
    let mut restored = CeModel::new(CeModelType::Fcn, &ds, CeConfig::quick(), 999);
    assert_ne!(
        model.estimate_encoded_batch(&data.enc[..5]),
        restored.estimate_encoded_batch(&data.enc[..5])
    );
    restored.load_params(&path).expect("load");
    assert_eq!(
        model.estimate_encoded_batch(&data.enc[..5]),
        restored.estimate_encoded_batch(&data.enc[..5])
    );

    // Architecture mismatch is rejected.
    let mut wrong = CeModel::new(CeModelType::Mscn, &ds, CeConfig::quick(), 1000);
    assert!(wrong.load_params(&path).is_err());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn encoded_workload_subset_selects_rows() {
    let (_, _, data) = trained_model();
    let sub = data.subset(&[0, 2, 4]);
    assert_eq!(sub.len(), 3);
    assert_eq!(sub.enc[1], data.enc[2]);
    assert_eq!(sub.ln_card[2], data.ln_card[4]);
}

#[test]
fn ln_max_is_attainable_by_real_cardinalities() {
    // Every observed cardinality must encode strictly inside (0, 1).
    let (_, model, data) = trained_model();
    for &lc in &data.ln_card {
        let norm = lc / model.ln_max();
        assert!(
            (0.0..1.0).contains(&norm),
            "ln_card {lc} vs ln_max {}",
            model.ln_max()
        );
    }
}
