//! `pace-data` — synthetic relational datasets for the PACE reproduction.
//!
//! Provides schemas (tables, columns, acyclic PK–FK join graphs), columnar
//! table storage, seeded skewed/correlated value samplers, and builders for
//! the paper's four evaluation datasets: DMV (single table), IMDB (21-table
//! JOB schema), TPC-H (8 tables), and STATS (8-table Stack Exchange dump).
//!
//! The real datasets are multi-GB artifacts; the builders here reproduce
//! their *shape* — join topology, attribute counts, skew, correlation — at a
//! configurable scale. See DESIGN.md ("Substitutions") for why this preserves
//! the attack's comparative behaviour.
//!
//! # Example
//!
//! ```
//! use pace_data::{build, DatasetKind, Scale};
//!
//! let db = build(DatasetKind::Tpch, Scale::tiny(), 42);
//! assert_eq!(db.schema.num_tables(), 8);
//! assert!(db.schema.is_connected(&[db.schema.table("orders"), db.schema.table("lineitem")]));
//! ```

#![warn(missing_docs)]

mod dataset;
mod datasets;
pub mod distr;
pub mod schema;
mod table;

pub use dataset::{ColStats, Dataset};
pub use datasets::{build, dmv, imdb, stats, tpch, DatasetKind, Scale};
pub use schema::{ColumnDef, ColumnRole, JoinEdge, Schema, TableDef};
pub use table::Table;
