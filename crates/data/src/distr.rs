//! Seeded samplers used by the synthetic dataset builders.
//!
//! The goal is not to match the real datasets' values but their *statistical
//! character*: heavy skew (Zipf), multi-modal numeric attributes (Gaussian
//! mixtures), and cross-column correlation — the properties that make the
//! query→cardinality mapping non-trivial for a learned estimator.

use rand::Rng;

/// Samples `count` indices in `0..n` from a Zipf distribution with exponent
/// `s` (`s = 0` degenerates to uniform). Uses inverse-CDF over precomputed
/// cumulative weights.
pub fn zipf_indices(rng: &mut impl Rng, n: usize, count: usize, s: f64) -> Vec<usize> {
    assert!(n > 0, "zipf over empty domain");
    let weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).collect();
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0.0;
    for w in &weights {
        acc += w;
        cdf.push(acc);
    }
    let total = acc;
    (0..count)
        .map(|_| {
            let u = rng.random_range(0.0..total);
            cdf.partition_point(|&c| c < u).min(n - 1)
        })
        .collect()
}

/// One component of a Gaussian mixture over integers.
#[derive(Clone, Copy, Debug)]
pub struct MixtureComponent {
    /// Component mean.
    pub mean: f64,
    /// Component standard deviation.
    pub std: f64,
    /// Relative weight (need not be normalized).
    pub weight: f64,
}

/// Samples `count` integers from a Gaussian mixture, clamped to `[min, max]`.
pub fn gaussian_mixture(
    rng: &mut impl Rng,
    components: &[MixtureComponent],
    min: i64,
    max: i64,
    count: usize,
) -> Vec<i64> {
    assert!(!components.is_empty(), "empty mixture");
    assert!(min <= max);
    let total: f64 = components.iter().map(|c| c.weight).sum();
    (0..count)
        .map(|_| {
            let mut u = rng.random_range(0.0..total);
            let mut chosen = components[components.len() - 1];
            for c in components {
                if u < c.weight {
                    chosen = *c;
                    break;
                }
                u -= c.weight;
            }
            let z = standard_normal(rng);
            let v = chosen.mean + z * chosen.std;
            (v.round() as i64).clamp(min, max)
        })
        .collect()
}

/// One standard-normal sample (Box–Muller).
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples `count` uniform integers in `[min, max]`.
pub fn uniform_ints(rng: &mut impl Rng, min: i64, max: i64, count: usize) -> Vec<i64> {
    assert!(min <= max);
    (0..count).map(|_| rng.random_range(min..=max)).collect()
}

/// Derives a column correlated with `base`: `out[i] = a·base[i] + b + noise`,
/// clamped to `[min, max]`. Correlated attribute pairs are what break the
/// independence assumptions a cardinality estimator must learn around.
pub fn correlated(
    rng: &mut impl Rng,
    base: &[i64],
    a: f64,
    b: f64,
    noise_std: f64,
    min: i64,
    max: i64,
) -> Vec<i64> {
    base.iter()
        .map(|&x| {
            let v = a * x as f64 + b + standard_normal(rng) * noise_std;
            (v.round() as i64).clamp(min, max)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_is_skewed() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs = zipf_indices(&mut rng, 100, 20_000, 1.2);
        let zero_frac = xs.iter().filter(|&&x| x == 0).count() as f64 / xs.len() as f64;
        let tail_frac = xs.iter().filter(|&&x| x >= 50).count() as f64 / xs.len() as f64;
        assert!(zero_frac > 0.15, "head not heavy: {zero_frac}");
        assert!(tail_frac < 0.12, "tail too heavy: {tail_frac}");
        assert!(xs.iter().all(|&x| x < 100));
    }

    #[test]
    fn zipf_zero_exponent_is_uniformish() {
        let mut rng = StdRng::seed_from_u64(2);
        let xs = zipf_indices(&mut rng, 10, 50_000, 0.0);
        for v in 0..10 {
            let frac = xs.iter().filter(|&&x| x == v).count() as f64 / xs.len() as f64;
            assert!((frac - 0.1).abs() < 0.02, "bucket {v}: {frac}");
        }
    }

    #[test]
    fn mixture_respects_bounds_and_modes() {
        let mut rng = StdRng::seed_from_u64(3);
        let comps = [
            MixtureComponent {
                mean: 10.0,
                std: 2.0,
                weight: 1.0,
            },
            MixtureComponent {
                mean: 90.0,
                std: 2.0,
                weight: 1.0,
            },
        ];
        let xs = gaussian_mixture(&mut rng, &comps, 0, 100, 10_000);
        assert!(xs.iter().all(|&x| (0..=100).contains(&x)));
        let low = xs.iter().filter(|&&x| x < 50).count() as f64 / xs.len() as f64;
        assert!((low - 0.5).abs() < 0.05, "modes unbalanced: {low}");
        // Middle should be nearly empty (bimodal).
        let mid = xs.iter().filter(|&&x| (30..=70).contains(&x)).count();
        assert!(mid < 100, "not bimodal: {mid}");
    }

    #[test]
    fn correlated_tracks_base() {
        let mut rng = StdRng::seed_from_u64(4);
        let base: Vec<i64> = (0..1000).collect();
        let out = correlated(&mut rng, &base, 2.0, 5.0, 1.0, 0, 3000);
        // Pearson correlation should be near 1.
        let n = base.len() as f64;
        let mx = base.iter().sum::<i64>() as f64 / n;
        let my = out.iter().sum::<i64>() as f64 / n;
        let mut cov = 0.0;
        let mut vx = 0.0;
        let mut vy = 0.0;
        for (&x, &y) in base.iter().zip(&out) {
            cov += (x as f64 - mx) * (y as f64 - my);
            vx += (x as f64 - mx).powi(2);
            vy += (y as f64 - my).powi(2);
        }
        let r = cov / (vx.sqrt() * vy.sqrt());
        assert!(r > 0.99, "correlation too weak: {r}");
    }

    #[test]
    fn uniform_covers_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let xs = uniform_ints(&mut rng, -5, 5, 5000);
        assert!(xs.contains(&-5));
        assert!(xs.contains(&5));
        assert!(xs.iter().all(|&x| (-5..=5).contains(&x)));
    }
}
