//! Relational schema metadata: tables, columns, and the PK–FK join graph.
//!
//! All four evaluation schemas (DMV, IMDB, TPC-H, STATS) have *acyclic* join
//! graphs in this reproduction (see DESIGN.md for the two edges dropped from
//! TPC-H/STATS to break cycles). Acyclicity is what lets the engine compute
//! exact join cardinalities in linear time, and is asserted at construction.

/// How a column participates in queries.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ColumnRole {
    /// Primary key (row id); join-only, never filtered.
    Key,
    /// Foreign key referencing another table's key; join-only.
    ForeignKey,
    /// Data attribute; eligible for range predicates.
    Attribute,
}

/// One column of a table.
#[derive(Clone, Debug)]
pub struct ColumnDef {
    /// Column name, unique within its table.
    pub name: String,
    /// Role in query processing.
    pub role: ColumnRole,
}

/// One table of a schema.
#[derive(Clone, Debug)]
pub struct TableDef {
    /// Table name, unique within the schema.
    pub name: String,
    /// Columns in storage order.
    pub columns: Vec<ColumnDef>,
}

impl TableDef {
    /// Index of the column with the given name.
    ///
    /// # Panics
    /// Panics when the column does not exist (schema-construction error).
    pub fn col(&self, name: &str) -> usize {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .unwrap_or_else(|| panic!("table {} has no column {name}", self.name))
    }
}

/// An equi-join edge `left.col = right.col` of the join graph.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct JoinEdge {
    /// `(table index, column index)` of one side.
    pub left: (usize, usize),
    /// `(table index, column index)` of the other side.
    pub right: (usize, usize),
}

/// A database schema: tables plus an acyclic join graph.
#[derive(Clone, Debug)]
pub struct Schema {
    /// Schema name (e.g. `"imdb"`).
    pub name: String,
    /// Tables in index order.
    pub tables: Vec<TableDef>,
    /// Join edges; the induced graph must be a forest.
    pub edges: Vec<JoinEdge>,
}

impl Schema {
    /// Creates a schema, validating name uniqueness and join-graph acyclicity.
    ///
    /// # Panics
    /// Panics on duplicate table names, out-of-range edge endpoints, or a
    /// cyclic join graph.
    pub fn new(name: impl Into<String>, tables: Vec<TableDef>, edges: Vec<JoinEdge>) -> Self {
        let schema = Self {
            name: name.into(),
            tables,
            edges,
        };
        schema.validate();
        schema
    }

    fn validate(&self) {
        for (i, t) in self.tables.iter().enumerate() {
            for (j, u) in self.tables.iter().enumerate() {
                assert!(
                    i == j || t.name != u.name,
                    "duplicate table name {}",
                    t.name
                );
            }
        }
        // Union-find cycle check.
        let mut parent: Vec<usize> = (0..self.tables.len()).collect();
        fn find(parent: &mut [usize], x: usize) -> usize {
            let mut root = x;
            while parent[root] != root {
                root = parent[root];
            }
            let mut cur = x;
            while parent[cur] != root {
                let next = parent[cur];
                parent[cur] = root;
                cur = next;
            }
            root
        }
        for e in &self.edges {
            let (lt, lc) = e.left;
            let (rt, rc) = e.right;
            assert!(
                lt < self.tables.len() && rt < self.tables.len(),
                "edge table out of range"
            );
            assert!(
                lc < self.tables[lt].columns.len(),
                "edge column out of range"
            );
            assert!(
                rc < self.tables[rt].columns.len(),
                "edge column out of range"
            );
            let (a, b) = (find(&mut parent, lt), find(&mut parent, rt));
            assert!(
                a != b,
                "join graph has a cycle through {}",
                self.tables[lt].name
            );
            parent[a] = b;
        }
    }

    /// Number of tables.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Index of the table with the given name.
    ///
    /// # Panics
    /// Panics when the table does not exist.
    pub fn table(&self, name: &str) -> usize {
        self.tables
            .iter()
            .position(|t| t.name == name)
            .unwrap_or_else(|| panic!("schema {} has no table {name}", self.name))
    }

    /// Global list of filterable attributes as `(table, column)` pairs, in a
    /// canonical order shared by query encodings.
    pub fn attributes(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (t, table) in self.tables.iter().enumerate() {
            for (c, col) in table.columns.iter().enumerate() {
                if col.role == ColumnRole::Attribute {
                    out.push((t, c));
                }
            }
        }
        out
    }

    /// Number of filterable attributes across all tables.
    pub fn num_attributes(&self) -> usize {
        self.attributes().len()
    }

    /// Adjacency lists of the join graph: `adj[t] = [(neighbor, edge idx)]`.
    pub fn adjacency(&self) -> Vec<Vec<(usize, usize)>> {
        let mut adj = vec![Vec::new(); self.tables.len()];
        for (i, e) in self.edges.iter().enumerate() {
            adj[e.left.0].push((e.right.0, i));
            adj[e.right.0].push((e.left.0, i));
        }
        adj
    }

    /// Whether the given table subset induces a connected subgraph of the
    /// join graph. Singletons are connected; the empty set is not.
    pub fn is_connected(&self, tables: &[usize]) -> bool {
        if tables.is_empty() {
            return false;
        }
        if tables.len() == 1 {
            return true;
        }
        let in_set = {
            let mut v = vec![false; self.tables.len()];
            for &t in tables {
                v[t] = true;
            }
            v
        };
        let adj = self.adjacency();
        let mut seen = vec![false; self.tables.len()];
        let mut stack = vec![tables[0]];
        seen[tables[0]] = true;
        let mut count = 1;
        while let Some(t) = stack.pop() {
            for &(n, _) in &adj[t] {
                if in_set[n] && !seen[n] {
                    seen[n] = true;
                    count += 1;
                    stack.push(n);
                }
            }
        }
        count == tables.len()
    }

    /// Enumerates every connected table subset of size `1..=max_size`
    /// (the valid join patterns of generated queries). Patterns are sorted
    /// table-index lists in deterministic order.
    pub fn connected_patterns(&self, max_size: usize) -> Vec<Vec<usize>> {
        let adj = self.adjacency();
        let mut result: Vec<Vec<usize>> = Vec::new();
        // Grow connected sets from each start table; dedupe by requiring the
        // start to be the minimum element of the set.
        for start in 0..self.tables.len() {
            let mut frontier: Vec<Vec<usize>> = vec![vec![start]];
            result.push(vec![start]);
            for _ in 1..max_size {
                let mut next = Vec::new();
                for set in &frontier {
                    for &t in set {
                        for &(n, _) in &adj[t] {
                            if n > start && !set.contains(&n) {
                                let mut grown = set.clone();
                                grown.push(n);
                                grown.sort_unstable();
                                if !next.contains(&grown) && !result.contains(&grown) {
                                    result.push(grown.clone());
                                    next.push(grown);
                                }
                            }
                        }
                    }
                }
                if next.is_empty() {
                    break;
                }
                frontier = next;
            }
        }
        result.sort();
        result
    }

    /// The edges whose both endpoints fall inside `tables` (the join
    /// predicate induced by a pattern).
    pub fn induced_edges(&self, tables: &[usize]) -> Vec<JoinEdge> {
        self.edges
            .iter()
            .copied()
            .filter(|e| tables.contains(&e.left.0) && tables.contains(&e.right.0))
            .collect()
    }
}

/// Shorthand for building a [`TableDef`]: key column first, then FKs, then
/// attributes.
pub fn table(name: &str, keys: &[&str], fks: &[&str], attrs: &[&str]) -> TableDef {
    let mut columns = Vec::new();
    for k in keys {
        columns.push(ColumnDef {
            name: (*k).into(),
            role: ColumnRole::Key,
        });
    }
    for f in fks {
        columns.push(ColumnDef {
            name: (*f).into(),
            role: ColumnRole::ForeignKey,
        });
    }
    for a in attrs {
        columns.push(ColumnDef {
            name: (*a).into(),
            role: ColumnRole::Attribute,
        });
    }
    TableDef {
        name: name.into(),
        columns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Schema {
        // a - b - c chain
        let tables = vec![
            table("a", &["id"], &[], &["x"]),
            table("b", &["id"], &["a_id"], &["y", "z"]),
            table("c", &["id"], &["b_id"], &["w"]),
        ];
        let edges = vec![
            JoinEdge {
                left: (0, 0),
                right: (1, 1),
            },
            JoinEdge {
                left: (1, 0),
                right: (2, 1),
            },
        ];
        Schema::new("tiny", tables, edges)
    }

    #[test]
    fn attributes_canonical_order() {
        let s = tiny();
        assert_eq!(s.attributes(), vec![(0, 1), (1, 2), (1, 3), (2, 2)]);
        assert_eq!(s.num_attributes(), 4);
    }

    #[test]
    fn connectivity() {
        let s = tiny();
        assert!(s.is_connected(&[0]));
        assert!(s.is_connected(&[0, 1]));
        assert!(s.is_connected(&[0, 1, 2]));
        assert!(!s.is_connected(&[0, 2]));
        assert!(!s.is_connected(&[]));
    }

    #[test]
    fn connected_patterns_enumeration() {
        let s = tiny();
        let pats = s.connected_patterns(3);
        assert_eq!(
            pats,
            vec![
                vec![0],
                vec![0, 1],
                vec![0, 1, 2],
                vec![1],
                vec![1, 2],
                vec![2]
            ]
        );
    }

    #[test]
    fn induced_edges_subset() {
        let s = tiny();
        assert_eq!(s.induced_edges(&[0, 1]).len(), 1);
        assert_eq!(s.induced_edges(&[0, 2]).len(), 0);
        assert_eq!(s.induced_edges(&[0, 1, 2]).len(), 2);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cyclic_graph_rejected() {
        let tables = vec![
            table("a", &["id"], &["c_id"], &[]),
            table("b", &["id"], &["a_id"], &[]),
            table("c", &["id"], &["b_id"], &[]),
        ];
        let edges = vec![
            JoinEdge {
                left: (0, 0),
                right: (1, 1),
            },
            JoinEdge {
                left: (1, 0),
                right: (2, 1),
            },
            JoinEdge {
                left: (2, 0),
                right: (0, 1),
            },
        ];
        let _ = Schema::new("cyclic", tables, edges);
    }

    #[test]
    fn table_lookup_by_name() {
        let s = tiny();
        assert_eq!(s.table("b"), 1);
        assert_eq!(s.tables[1].col("z"), 3);
    }
}
