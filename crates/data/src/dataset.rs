//! A materialized dataset: schema + tables + per-attribute statistics.

use crate::schema::Schema;
use crate::table::Table;
use rand::Rng;

/// Min/max statistics of one column, used to normalize predicate bounds into
/// `[0, 1]` for query encodings.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ColStats {
    /// Minimum value present (0 for empty columns).
    pub min: i64,
    /// Maximum value present (0 for empty columns).
    pub max: i64,
}

impl ColStats {
    /// Maps a value into `[0, 1]` relative to the column domain.
    pub fn normalize(&self, v: i64) -> f64 {
        if self.max == self.min {
            return 0.5;
        }
        ((v - self.min) as f64 / (self.max - self.min) as f64).clamp(0.0, 1.0)
    }

    /// Maps a normalized `[0, 1]` position back to a domain value.
    pub fn denormalize(&self, x: f64) -> i64 {
        let x = x.clamp(0.0, 1.0);
        self.min + (x * (self.max - self.min) as f64).round() as i64
    }

    /// Domain width (`max - min`).
    pub fn width(&self) -> i64 {
        self.max - self.min
    }
}

/// A complete synthetic database instance.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// The schema the tables instantiate.
    pub schema: Schema,
    /// Tables, parallel to `schema.tables`.
    pub tables: Vec<Table>,
    /// `stats[t][c]` for every table/column.
    pub stats: Vec<Vec<ColStats>>,
}

impl Dataset {
    /// Bundles tables with a schema and computes column statistics.
    ///
    /// # Panics
    /// Panics when table count or column counts disagree with the schema.
    pub fn new(schema: Schema, tables: Vec<Table>) -> Self {
        assert_eq!(schema.tables.len(), tables.len(), "table count mismatch");
        for (def, t) in schema.tables.iter().zip(&tables) {
            assert_eq!(
                def.columns.len(),
                t.num_cols(),
                "column count mismatch in table {}",
                def.name
            );
        }
        let stats = tables
            .iter()
            .map(|t| {
                (0..t.num_cols())
                    .map(|c| {
                        let (min, max) = t.col_min_max(c);
                        ColStats { min, max }
                    })
                    .collect()
            })
            .collect();
        Self {
            schema,
            tables,
            stats,
        }
    }

    /// Statistics of one column.
    pub fn col_stats(&self, table: usize, col: usize) -> ColStats {
        self.stats[table][col]
    }

    /// Total rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(Table::num_rows).sum()
    }

    /// Upper bound on any join cardinality: the product of table sizes of the
    /// largest join pattern. Used to normalize log-cardinalities into (0, 1).
    pub fn max_cardinality_bound(&self) -> f64 {
        // Product over all tables is a loose but sufficient bound; taken in
        // log space to avoid overflow.
        let ln: f64 = self
            .tables
            .iter()
            .map(|t| (t.num_rows().max(2) as f64).ln())
            .sum();
        ln.exp().min(f64::MAX / 4.0)
    }

    /// Natural log of [`Dataset::max_cardinality_bound`].
    pub fn ln_max_cardinality(&self) -> f64 {
        self.tables
            .iter()
            .map(|t| (t.num_rows().max(2) as f64).ln())
            .sum()
    }

    /// Samples one existing row of `table` and returns the value of column
    /// `col`; used to center generated predicates on populated regions.
    pub fn sample_value(&self, rng: &mut impl Rng, table: usize, col: usize) -> i64 {
        let t = &self.tables[table];
        if t.num_rows() == 0 {
            return 0;
        }
        t.get(rng.random_range(0..t.num_rows()), col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{table, JoinEdge};

    fn dataset() -> Dataset {
        let schema = Schema::new(
            "t",
            vec![
                table("a", &["id"], &[], &["x"]),
                table("b", &["id"], &["a_id"], &["y"]),
            ],
            vec![JoinEdge {
                left: (0, 0),
                right: (1, 1),
            }],
        );
        let ta = Table::from_columns(vec![vec![0, 1, 2], vec![10, 20, 30]]);
        let tb = Table::from_columns(vec![vec![0, 1], vec![0, 2], vec![5, 15]]);
        Dataset::new(schema, vec![ta, tb])
    }

    #[test]
    fn stats_computed() {
        let d = dataset();
        assert_eq!(d.col_stats(0, 1), ColStats { min: 10, max: 30 });
        assert_eq!(d.col_stats(1, 2), ColStats { min: 5, max: 15 });
        assert_eq!(d.total_rows(), 5);
    }

    #[test]
    fn normalize_roundtrip() {
        let s = ColStats { min: 10, max: 30 };
        assert_eq!(s.normalize(10), 0.0);
        assert_eq!(s.normalize(30), 1.0);
        assert_eq!(s.normalize(20), 0.5);
        assert_eq!(s.denormalize(0.5), 20);
        assert_eq!(s.denormalize(-1.0), 10);
    }

    #[test]
    fn degenerate_column_normalizes_to_half() {
        let s = ColStats { min: 7, max: 7 };
        assert_eq!(s.normalize(7), 0.5);
        assert_eq!(s.denormalize(0.9), 7);
    }

    #[test]
    fn ln_max_cardinality_positive() {
        let d = dataset();
        assert!(d.ln_max_cardinality() > 0.0);
        assert!((d.ln_max_cardinality() - (3.0f64.ln() + 2.0f64.ln())).abs() < 1e-9);
    }
}
