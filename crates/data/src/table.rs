//! Columnar in-memory table storage.

/// A table stored column-wise; every value is a dictionary-encoded `i64`
/// (the paper encodes string attributes into numeric types the same way).
#[derive(Clone, Debug, Default)]
pub struct Table {
    cols: Vec<Vec<i64>>,
    rows: usize,
}

impl Table {
    /// Creates a table from columns.
    ///
    /// # Panics
    /// Panics when column lengths differ.
    pub fn from_columns(cols: Vec<Vec<i64>>) -> Self {
        let rows = cols.first().map_or(0, Vec::len);
        assert!(cols.iter().all(|c| c.len() == rows), "ragged columns");
        Self { cols, rows }
    }

    /// Number of rows.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn num_cols(&self) -> usize {
        self.cols.len()
    }

    /// Borrow one column.
    #[inline]
    pub fn col(&self, c: usize) -> &[i64] {
        &self.cols[c]
    }

    /// Single cell accessor.
    #[inline]
    pub fn get(&self, row: usize, c: usize) -> i64 {
        self.cols[c][row]
    }

    /// Minimum and maximum of a column, or `(0, 0)` when empty.
    pub fn col_min_max(&self, c: usize) -> (i64, i64) {
        let col = &self.cols[c];
        match (col.iter().min(), col.iter().max()) {
            (Some(&lo), Some(&hi)) => (lo, hi),
            _ => (0, 0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_columns_shape() {
        let t = Table::from_columns(vec![vec![1, 2, 3], vec![4, 5, 6]]);
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.num_cols(), 2);
        assert_eq!(t.get(1, 1), 5);
        assert_eq!(t.col_min_max(0), (1, 3));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rejected() {
        let _ = Table::from_columns(vec![vec![1], vec![1, 2]]);
    }

    #[test]
    fn empty_table() {
        let t = Table::from_columns(vec![vec![], vec![]]);
        assert_eq!(t.num_rows(), 0);
        assert_eq!(t.col_min_max(0), (0, 0));
    }
}
