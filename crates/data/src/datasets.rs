//! Synthetic builders for the paper's four evaluation datasets.
//!
//! Each builder reproduces the real dataset's *shape* — table count, join
//! graph, attribute counts — while generating values from seeded skewed and
//! correlated distributions (see `distr`). Scale is configurable: the
//! experiments run at a laptop-friendly fraction of the real row counts, which
//! preserves the attack's comparative behaviour (DESIGN.md, substitutions).
//!
//! Join-graph fidelity notes:
//! * IMDB: the 21-table JOB schema, arranged as the natural PK–FK tree around
//!   `title` and `name`.
//! * TPC-H: 8 tables; the `supplier–nation` and `partsupp–supplier` edges are
//!   dropped (cycle-breaking) so the graph is the tree
//!   `region–nation–customer–orders–lineitem–{supplier, part–partsupp}`.
//! * STATS: 8 tables of the Stack Exchange dump, tree-shaped around `posts`.

use crate::dataset::Dataset;
use crate::distr::{correlated, gaussian_mixture, uniform_ints, zipf_indices, MixtureComponent};
use crate::schema::{table, JoinEdge, Schema};
use crate::table::Table;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Row-count scaling for dataset builders.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Scale {
    /// Base row count of the central fact table; other tables derive from it.
    pub fact_rows: usize,
}

impl Scale {
    /// Small datasets for fast tests and CI (`fact_rows = 400`).
    pub fn quick() -> Self {
        Self { fact_rows: 400 }
    }

    /// The default experiment scale (`fact_rows = 2000`).
    pub fn experiment() -> Self {
        Self { fact_rows: 2000 }
    }

    /// Tiny datasets for property tests (`fact_rows = 60`).
    pub fn tiny() -> Self {
        Self { fact_rows: 60 }
    }
}

/// The four evaluation datasets.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum DatasetKind {
    /// Single-table vehicle registrations (real-world skew, 11 attributes).
    Dmv,
    /// 21-table movie database (JOB).
    Imdb,
    /// 8-table decision-support benchmark.
    Tpch,
    /// 8-table Stack Exchange dump (STATS-CEB).
    Stats,
}

impl DatasetKind {
    /// All four kinds, in the paper's presentation order.
    pub fn all() -> [DatasetKind; 4] {
        [
            DatasetKind::Dmv,
            DatasetKind::Imdb,
            DatasetKind::Tpch,
            DatasetKind::Stats,
        ]
    }

    /// Lowercase display name.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Dmv => "dmv",
            DatasetKind::Imdb => "imdb",
            DatasetKind::Tpch => "tpch",
            DatasetKind::Stats => "stats",
        }
    }
}

/// Builds the requested dataset at the given scale, deterministically in
/// `seed`.
pub fn build(kind: DatasetKind, scale: Scale, seed: u64) -> Dataset {
    match kind {
        DatasetKind::Dmv => dmv(scale, seed),
        DatasetKind::Imdb => imdb(scale, seed),
        DatasetKind::Tpch => tpch(scale, seed),
        DatasetKind::Stats => stats(scale, seed),
    }
}

fn ids(n: usize) -> Vec<i64> {
    (0..n as i64).collect()
}

/// Foreign-key column over `parent_rows` ids with Zipf skew `s`.
fn fk(rng: &mut StdRng, parent_rows: usize, rows: usize, s: f64) -> Vec<i64> {
    zipf_indices(rng, parent_rows.max(1), rows, s)
        .into_iter()
        .map(|x| x as i64)
        .collect()
}

/// DMV: one table, 11 dictionary-encoded attributes with heavy skew and
/// several correlated pairs (body type ↔ registration class, revocation ↔
/// suspension).
pub fn dmv(scale: Scale, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xd31);
    let n = scale.fact_rows * 10; // single-table dataset: use more rows
    let record_type: Vec<i64> = zipf_indices(&mut rng, 5, n, 1.4)
        .into_iter()
        .map(|x| x as i64)
        .collect();
    let reg_class: Vec<i64> = zipf_indices(&mut rng, 60, n, 1.1)
        .into_iter()
        .map(|x| x as i64)
        .collect();
    let state: Vec<i64> = zipf_indices(&mut rng, 51, n, 2.0)
        .into_iter()
        .map(|x| x as i64)
        .collect();
    let county: Vec<i64> = zipf_indices(&mut rng, 62, n, 0.8)
        .into_iter()
        .map(|x| x as i64)
        .collect();
    let body_type = correlated(&mut rng, &reg_class, 0.5, 0.0, 3.0, 0, 30);
    let fuel_type = correlated(&mut rng, &body_type, 0.2, 1.0, 1.0, 0, 8);
    let reg_year = gaussian_mixture(
        &mut rng,
        &[
            MixtureComponent {
                mean: 2018.0,
                std: 3.0,
                weight: 3.0,
            },
            MixtureComponent {
                mean: 2005.0,
                std: 6.0,
                weight: 1.0,
            },
        ],
        1970,
        2023,
        n,
    );
    let color: Vec<i64> = zipf_indices(&mut rng, 20, n, 1.0)
        .into_iter()
        .map(|x| x as i64)
        .collect();
    let scofflaw: Vec<i64> = zipf_indices(&mut rng, 2, n, 2.5)
        .into_iter()
        .map(|x| x as i64)
        .collect();
    let suspension: Vec<i64> = zipf_indices(&mut rng, 2, n, 2.2)
        .into_iter()
        .map(|x| x as i64)
        .collect();
    let revocation = correlated(&mut rng, &suspension, 0.8, 0.0, 0.2, 0, 1);

    let schema = Schema::new(
        "dmv",
        vec![table(
            "vehicles",
            &["id"],
            &[],
            &[
                "record_type",
                "reg_class",
                "state",
                "county",
                "body_type",
                "fuel_type",
                "reg_year",
                "color",
                "scofflaw",
                "suspension",
                "revocation",
            ],
        )],
        vec![],
    );
    let t = Table::from_columns(vec![
        ids(n),
        record_type,
        reg_class,
        state,
        county,
        body_type,
        fuel_type,
        reg_year,
        color,
        scofflaw,
        suspension,
        revocation,
    ]);
    Dataset::new(schema, vec![t])
}

/// IMDB: the 21-table JOB schema as a PK–FK tree.
pub fn imdb(scale: Scale, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1bdb);
    let n = scale.fact_rows;
    // Dimension sizes.
    let n_kind = 7;
    let n_ctype = 4;
    let n_itype = 20;
    let n_role = 12;
    let n_cctype = 4;
    let n_ltype = 18;
    let n_company = (n / 10).max(8);
    let n_keyword = (n / 5).max(10);
    let n_name = n * 2;
    let n_char = n;

    let schema = Schema::new(
        "imdb",
        vec![
            table(
                "title",
                &["id"],
                &["kind_id"],
                &["production_year", "imdb_index"],
            ), // 0
            table("kind_type", &["id"], &[], &["kind"]), // 1
            table(
                "movie_companies",
                &["id"],
                &["movie_id", "company_id", "company_type_id"],
                &["note"],
            ), // 2
            table("company_name", &["id"], &[], &["country_code"]), // 3
            table("company_type", &["id"], &[], &["kind"]), // 4
            table(
                "movie_info",
                &["id"],
                &["movie_id", "info_type_id"],
                &["info"],
            ), // 5
            table("info_type", &["id"], &[], &["code"]), // 6
            table("movie_info_idx", &["id"], &["movie_id"], &["info_val"]), // 7
            table("movie_keyword", &["id"], &["movie_id", "keyword_id"], &[]), // 8
            table("keyword", &["id"], &[], &["phonetic"]), // 9
            table(
                "cast_info",
                &["id"],
                &["movie_id", "person_id", "role_id", "person_role_id"],
                &["nr_order"],
            ), // 10
            table("name", &["id"], &[], &["gender"]),    // 11
            table("role_type", &["id"], &[], &["role"]), // 12
            table("char_name", &["id"], &[], &["name_pcode"]), // 13
            table("complete_cast", &["id"], &["movie_id", "subject_id"], &[]), // 14
            table("comp_cast_type", &["id"], &[], &["kind"]), // 15
            table("aka_title", &["id"], &["movie_id"], &["year"]), // 16
            table("movie_link", &["id"], &["movie_id", "link_type_id"], &[]), // 17
            table("link_type", &["id"], &[], &["link"]), // 18
            table("aka_name", &["id"], &["person_id"], &["pcode"]), // 19
            table("person_info", &["id"], &["person_id"], &["note"]), // 20
        ],
        vec![
            JoinEdge {
                left: (0, 1),
                right: (1, 0),
            }, // title.kind_id = kind_type.id
            JoinEdge {
                left: (2, 1),
                right: (0, 0),
            }, // movie_companies.movie_id = title.id
            JoinEdge {
                left: (2, 2),
                right: (3, 0),
            }, // movie_companies.company_id = company_name.id
            JoinEdge {
                left: (2, 3),
                right: (4, 0),
            }, // movie_companies.company_type_id = company_type.id
            JoinEdge {
                left: (5, 1),
                right: (0, 0),
            }, // movie_info.movie_id = title.id
            JoinEdge {
                left: (5, 2),
                right: (6, 0),
            }, // movie_info.info_type_id = info_type.id
            JoinEdge {
                left: (7, 1),
                right: (0, 0),
            }, // movie_info_idx.movie_id = title.id
            JoinEdge {
                left: (8, 1),
                right: (0, 0),
            }, // movie_keyword.movie_id = title.id
            JoinEdge {
                left: (8, 2),
                right: (9, 0),
            }, // movie_keyword.keyword_id = keyword.id
            JoinEdge {
                left: (10, 1),
                right: (0, 0),
            }, // cast_info.movie_id = title.id
            JoinEdge {
                left: (10, 2),
                right: (11, 0),
            }, // cast_info.person_id = name.id
            JoinEdge {
                left: (10, 3),
                right: (12, 0),
            }, // cast_info.role_id = role_type.id
            JoinEdge {
                left: (10, 4),
                right: (13, 0),
            }, // cast_info.person_role_id = char_name.id
            JoinEdge {
                left: (14, 1),
                right: (0, 0),
            }, // complete_cast.movie_id = title.id
            JoinEdge {
                left: (14, 2),
                right: (15, 0),
            }, // complete_cast.subject_id = comp_cast_type.id
            JoinEdge {
                left: (16, 1),
                right: (0, 0),
            }, // aka_title.movie_id = title.id
            JoinEdge {
                left: (17, 1),
                right: (0, 0),
            }, // movie_link.movie_id = title.id
            JoinEdge {
                left: (17, 2),
                right: (18, 0),
            }, // movie_link.link_type_id = link_type.id
            JoinEdge {
                left: (19, 1),
                right: (11, 0),
            }, // aka_name.person_id = name.id
            JoinEdge {
                left: (20, 1),
                right: (11, 0),
            }, // person_info.person_id = name.id
        ],
    );

    let prod_year = gaussian_mixture(
        &mut rng,
        &[
            MixtureComponent {
                mean: 2010.0,
                std: 8.0,
                weight: 3.0,
            },
            MixtureComponent {
                mean: 1975.0,
                std: 15.0,
                weight: 1.0,
            },
        ],
        1900,
        2023,
        n,
    );
    let title = Table::from_columns(vec![
        ids(n),
        fk(&mut rng, n_kind, n, 1.3),
        prod_year,
        uniform_ints(&mut rng, 0, 25, n),
    ]);
    let kind_type = Table::from_columns(vec![ids(n_kind), ids(n_kind)]);

    let mc_rows = n * 2;
    let mc_movie = fk(&mut rng, n, mc_rows, 0.8);
    let mc_note = correlated(&mut rng, &mc_movie, 0.01, 0.0, 2.0, 0, 50);
    let movie_companies = Table::from_columns(vec![
        ids(mc_rows),
        mc_movie,
        fk(&mut rng, n_company, mc_rows, 1.1),
        fk(&mut rng, n_ctype, mc_rows, 1.0),
        mc_note,
    ]);
    let company_name = Table::from_columns(vec![
        ids(n_company),
        uniform_ints(&mut rng, 0, 80, n_company),
    ]);
    let company_type = Table::from_columns(vec![ids(n_ctype), ids(n_ctype)]);

    let mi_rows = n * 3;
    let mi_movie = fk(&mut rng, n, mi_rows, 0.7);
    let mi_info = correlated(&mut rng, &mi_movie, 0.05, 10.0, 20.0, 0, 500);
    let movie_info = Table::from_columns(vec![
        ids(mi_rows),
        mi_movie,
        fk(&mut rng, n_itype, mi_rows, 1.2),
        mi_info,
    ]);
    let info_type = Table::from_columns(vec![ids(n_itype), ids(n_itype)]);

    let mii_rows = n;
    let mii_movie = fk(&mut rng, n, mii_rows, 0.5);
    let mii_val = gaussian_mixture(
        &mut rng,
        &[
            MixtureComponent {
                mean: 60.0,
                std: 15.0,
                weight: 2.0,
            },
            MixtureComponent {
                mean: 300.0,
                std: 60.0,
                weight: 1.0,
            },
        ],
        0,
        1000,
        mii_rows,
    );
    let movie_info_idx = Table::from_columns(vec![ids(mii_rows), mii_movie, mii_val]);

    let mk_rows = n * 2;
    let movie_keyword = Table::from_columns(vec![
        ids(mk_rows),
        fk(&mut rng, n, mk_rows, 0.9),
        fk(&mut rng, n_keyword, mk_rows, 1.3),
    ]);
    let keyword = Table::from_columns(vec![
        ids(n_keyword),
        uniform_ints(&mut rng, 0, 99, n_keyword),
    ]);

    let ci_rows = n * 5;
    let ci_movie = fk(&mut rng, n, ci_rows, 0.6);
    let ci_order = correlated(&mut rng, &ci_movie, 0.0, 10.0, 8.0, 0, 100);
    let cast_info = Table::from_columns(vec![
        ids(ci_rows),
        ci_movie,
        fk(&mut rng, n_name, ci_rows, 1.0),
        fk(&mut rng, n_role, ci_rows, 1.5),
        fk(&mut rng, n_char, ci_rows, 1.0),
        ci_order,
    ]);
    let name = Table::from_columns(vec![ids(n_name), zipf_to_i64(&mut rng, 3, n_name, 0.7)]);
    let role_type = Table::from_columns(vec![ids(n_role), ids(n_role)]);
    let char_name = Table::from_columns(vec![ids(n_char), uniform_ints(&mut rng, 0, 25, n_char)]);

    let cc_rows = n / 2;
    let complete_cast = Table::from_columns(vec![
        ids(cc_rows),
        fk(&mut rng, n, cc_rows, 0.4),
        fk(&mut rng, n_cctype, cc_rows, 1.0),
    ]);
    let comp_cast_type = Table::from_columns(vec![ids(n_cctype), ids(n_cctype)]);

    let at_rows = (n / 3).max(4);
    let aka_title = Table::from_columns(vec![
        ids(at_rows),
        fk(&mut rng, n, at_rows, 1.0),
        uniform_ints(&mut rng, 1950, 2023, at_rows),
    ]);

    let ml_rows = (n / 4).max(4);
    let movie_link = Table::from_columns(vec![
        ids(ml_rows),
        fk(&mut rng, n, ml_rows, 1.2),
        fk(&mut rng, n_ltype, ml_rows, 1.0),
    ]);
    let link_type = Table::from_columns(vec![ids(n_ltype), ids(n_ltype)]);

    let an_rows = n;
    let aka_name = Table::from_columns(vec![
        ids(an_rows),
        fk(&mut rng, n_name, an_rows, 1.1),
        uniform_ints(&mut rng, 0, 25, an_rows),
    ]);
    let pi_rows = n * 2;
    let pi_person = fk(&mut rng, n_name, pi_rows, 0.8);
    let pi_note = correlated(&mut rng, &pi_person, 0.02, 0.0, 5.0, 0, 120);
    let person_info = Table::from_columns(vec![ids(pi_rows), pi_person, pi_note]);

    Dataset::new(
        schema,
        vec![
            title,
            kind_type,
            movie_companies,
            company_name,
            company_type,
            movie_info,
            info_type,
            movie_info_idx,
            movie_keyword,
            keyword,
            cast_info,
            name,
            role_type,
            char_name,
            complete_cast,
            comp_cast_type,
            aka_title,
            movie_link,
            link_type,
            aka_name,
            person_info,
        ],
    )
}

fn zipf_to_i64(rng: &mut StdRng, n: usize, count: usize, s: f64) -> Vec<i64> {
    zipf_indices(rng, n, count, s)
        .into_iter()
        .map(|x| x as i64)
        .collect()
}

/// TPC-H: 8 tables, cycle-broken into the tree documented at module level.
pub fn tpch(scale: Scale, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x79c4);
    let n = scale.fact_rows; // customer count
    let n_region = 5;
    let n_nation = 25;
    let n_cust = n;
    let n_orders = n * 2;
    let n_line = n * 8;
    let n_supp = (n / 10).max(5);
    let n_part = (n / 2).max(10);
    let n_psupp = n;

    let schema = Schema::new(
        "tpch",
        vec![
            table("region", &["r_regionkey"], &[], &["r_size"]), // 0
            table("nation", &["n_nationkey"], &["n_regionkey"], &["n_zone"]), // 1
            table(
                "customer",
                &["c_custkey"],
                &["c_nationkey"],
                &["c_acctbal", "c_mktsegment"],
            ), // 2
            table(
                "orders",
                &["o_orderkey"],
                &["o_custkey"],
                &["o_totalprice", "o_orderdate", "o_orderstatus"],
            ), // 3
            table(
                "lineitem",
                &["l_linekey"],
                &["l_orderkey", "l_suppkey", "l_partkey"],
                &["l_quantity", "l_extendedprice", "l_discount", "l_shipdate"],
            ), // 4
            table("supplier", &["s_suppkey"], &[], &["s_acctbal"]), // 5
            table("part", &["p_partkey"], &[], &["p_size", "p_retailprice"]), // 6
            table(
                "partsupp",
                &["ps_key"],
                &["ps_partkey"],
                &["ps_availqty", "ps_supplycost"],
            ), // 7
        ],
        vec![
            JoinEdge {
                left: (1, 1),
                right: (0, 0),
            }, // nation.regionkey = region.regionkey
            JoinEdge {
                left: (2, 1),
                right: (1, 0),
            }, // customer.nationkey = nation.nationkey
            JoinEdge {
                left: (3, 1),
                right: (2, 0),
            }, // orders.custkey = customer.custkey
            JoinEdge {
                left: (4, 1),
                right: (3, 0),
            }, // lineitem.orderkey = orders.orderkey
            JoinEdge {
                left: (4, 2),
                right: (5, 0),
            }, // lineitem.suppkey = supplier.suppkey
            JoinEdge {
                left: (4, 3),
                right: (6, 0),
            }, // lineitem.partkey = part.partkey
            JoinEdge {
                left: (7, 1),
                right: (6, 0),
            }, // partsupp.partkey = part.partkey
        ],
    );

    let region = Table::from_columns(vec![ids(n_region), uniform_ints(&mut rng, 0, 9, n_region)]);
    let nation = Table::from_columns(vec![
        ids(n_nation),
        fk(&mut rng, n_region, n_nation, 0.3),
        uniform_ints(&mut rng, 0, 4, n_nation),
    ]);
    let c_nation = fk(&mut rng, n_nation, n_cust, 0.6);
    let c_acctbal = gaussian_mixture(
        &mut rng,
        &[MixtureComponent {
            mean: 4500.0,
            std: 3200.0,
            weight: 1.0,
        }],
        -999,
        9999,
        n_cust,
    );
    let customer = Table::from_columns(vec![
        ids(n_cust),
        c_nation,
        c_acctbal,
        zipf_to_i64(&mut rng, 5, n_cust, 0.5),
    ]);
    let o_cust = fk(&mut rng, n_cust, n_orders, 0.8);
    let o_date = uniform_ints(&mut rng, 0, 2555, n_orders); // days over 7 years
    let o_price = correlated(&mut rng, &o_date, 8.0, 1000.0, 20_000.0, 900, 450_000);
    let o_status = zipf_to_i64(&mut rng, 3, n_orders, 0.9);
    let orders = Table::from_columns(vec![ids(n_orders), o_cust, o_price, o_date, o_status]);
    let l_order = fk(&mut rng, n_orders, n_line, 0.4);
    let l_qty = uniform_ints(&mut rng, 1, 50, n_line);
    let l_price = correlated(&mut rng, &l_qty, 900.0, 100.0, 5000.0, 900, 105_000);
    let l_disc = uniform_ints(&mut rng, 0, 10, n_line);
    let l_ship = correlated(
        &mut rng,
        &l_order,
        2555.0 / n_orders as f64,
        15.0,
        30.0,
        0,
        2620,
    );
    let lineitem = Table::from_columns(vec![
        ids(n_line),
        l_order,
        fk(&mut rng, n_supp, n_line, 0.7),
        fk(&mut rng, n_part, n_line, 0.9),
        l_qty,
        l_price,
        l_disc,
        l_ship,
    ]);
    let supplier = Table::from_columns(vec![
        ids(n_supp),
        gaussian_mixture(
            &mut rng,
            &[MixtureComponent {
                mean: 4500.0,
                std: 3200.0,
                weight: 1.0,
            }],
            -999,
            9999,
            n_supp,
        ),
    ]);
    let p_size = uniform_ints(&mut rng, 1, 50, n_part);
    let p_retail = correlated(&mut rng, &p_size, 18.0, 900.0, 80.0, 900, 2000);
    let part = Table::from_columns(vec![ids(n_part), p_size, p_retail]);
    let ps_part = fk(&mut rng, n_part, n_psupp, 0.5);
    let ps_avail = uniform_ints(&mut rng, 1, 9999, n_psupp);
    let ps_cost = correlated(&mut rng, &ps_avail, 0.05, 100.0, 120.0, 1, 1000);
    let partsupp = Table::from_columns(vec![ids(n_psupp), ps_part, ps_avail, ps_cost]);

    Dataset::new(
        schema,
        vec![
            region, nation, customer, orders, lineitem, supplier, part, partsupp,
        ],
    )
}

/// STATS: 8 tables of the Stack Exchange network dump, tree-shaped around
/// `posts`.
pub fn stats(scale: Scale, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x57a7);
    let n = scale.fact_rows; // users count
    let n_users = n;
    let n_posts = n * 3;
    let n_comments = n * 5;
    let n_badges = n;
    let n_votes = n * 4;
    let n_hist = n * 3;
    let n_links = (n / 2).max(5);
    let n_tags = (n / 10).max(5);

    let schema = Schema::new(
        "stats",
        vec![
            table(
                "users",
                &["id"],
                &[],
                &["reputation", "upvotes", "creation_year"],
            ), // 0
            table(
                "posts",
                &["id"],
                &["owner_user_id"],
                &["score", "view_count", "answer_count", "creation_year"],
            ), // 1
            table(
                "comments",
                &["id"],
                &["post_id"],
                &["score", "creation_year"],
            ), // 2
            table("badges", &["id"], &["user_id"], &["class"]), // 3
            table(
                "votes",
                &["id"],
                &["post_id"],
                &["vote_type", "creation_year"],
            ), // 4
            table("post_history", &["id"], &["post_id"], &["type"]), // 5
            table("post_links", &["id"], &["post_id"], &["link_type"]), // 6
            table("tags", &["id"], &["excerpt_post_id"], &["count"]), // 7
        ],
        vec![
            JoinEdge {
                left: (1, 1),
                right: (0, 0),
            }, // posts.owner = users.id
            JoinEdge {
                left: (2, 1),
                right: (1, 0),
            }, // comments.post = posts.id
            JoinEdge {
                left: (3, 1),
                right: (0, 0),
            }, // badges.user = users.id
            JoinEdge {
                left: (4, 1),
                right: (1, 0),
            }, // votes.post = posts.id
            JoinEdge {
                left: (5, 1),
                right: (1, 0),
            }, // post_history.post = posts.id
            JoinEdge {
                left: (6, 1),
                right: (1, 0),
            }, // post_links.post = posts.id
            JoinEdge {
                left: (7, 1),
                right: (1, 0),
            }, // tags.excerpt_post = posts.id
        ],
    );

    let reputation = gaussian_mixture(
        &mut rng,
        &[
            MixtureComponent {
                mean: 1.0,
                std: 30.0,
                weight: 5.0,
            },
            MixtureComponent {
                mean: 2000.0,
                std: 1500.0,
                weight: 1.0,
            },
        ],
        1,
        90_000,
        n_users,
    );
    let upvotes = correlated(&mut rng, &reputation, 0.08, 0.0, 20.0, 0, 8000);
    let users = Table::from_columns(vec![
        ids(n_users),
        reputation,
        upvotes,
        uniform_ints(&mut rng, 2008, 2014, n_users),
    ]);
    let p_owner = fk(&mut rng, n_users, n_posts, 1.0);
    let p_score = gaussian_mixture(
        &mut rng,
        &[MixtureComponent {
            mean: 2.0,
            std: 5.0,
            weight: 1.0,
        }],
        -10,
        200,
        n_posts,
    );
    let p_views = correlated(&mut rng, &p_score, 90.0, 100.0, 250.0, 0, 25_000);
    let p_answers = correlated(&mut rng, &p_score, 0.15, 1.0, 1.0, 0, 20);
    let posts = Table::from_columns(vec![
        ids(n_posts),
        p_owner,
        p_score,
        p_views,
        p_answers,
        uniform_ints(&mut rng, 2008, 2014, n_posts),
    ]);
    let c_post = fk(&mut rng, n_posts, n_comments, 0.9);
    let comments = Table::from_columns(vec![
        ids(n_comments),
        c_post,
        gaussian_mixture(
            &mut rng,
            &[MixtureComponent {
                mean: 0.5,
                std: 1.5,
                weight: 1.0,
            }],
            0,
            60,
            n_comments,
        ),
        uniform_ints(&mut rng, 2008, 2014, n_comments),
    ]);
    let badges = Table::from_columns(vec![
        ids(n_badges),
        fk(&mut rng, n_users, n_badges, 1.2),
        zipf_to_i64(&mut rng, 3, n_badges, 0.8),
    ]);
    let votes = Table::from_columns(vec![
        ids(n_votes),
        fk(&mut rng, n_posts, n_votes, 0.8),
        zipf_to_i64(&mut rng, 10, n_votes, 1.6),
        uniform_ints(&mut rng, 2008, 2014, n_votes),
    ]);
    let post_history = Table::from_columns(vec![
        ids(n_hist),
        fk(&mut rng, n_posts, n_hist, 0.7),
        zipf_to_i64(&mut rng, 8, n_hist, 1.1),
    ]);
    let post_links = Table::from_columns(vec![
        ids(n_links),
        fk(&mut rng, n_posts, n_links, 1.0),
        zipf_to_i64(&mut rng, 2, n_links, 0.5),
    ]);
    let tags = Table::from_columns(vec![
        ids(n_tags),
        fk(&mut rng, n_posts, n_tags, 0.6),
        gaussian_mixture(
            &mut rng,
            &[MixtureComponent {
                mean: 50.0,
                std: 80.0,
                weight: 1.0,
            }],
            1,
            2000,
            n_tags,
        ),
    ]);

    Dataset::new(
        schema,
        vec![
            users,
            posts,
            comments,
            badges,
            votes,
            post_history,
            post_links,
            tags,
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnRole;

    #[test]
    fn dmv_shape() {
        let d = dmv(Scale::tiny(), 1);
        assert_eq!(d.schema.num_tables(), 1);
        assert_eq!(d.schema.num_attributes(), 11);
        assert_eq!(d.tables[0].num_rows(), 600);
    }

    #[test]
    fn imdb_shape() {
        let d = imdb(Scale::tiny(), 1);
        assert_eq!(d.schema.num_tables(), 21);
        assert_eq!(d.schema.edges.len(), 20); // spanning tree
        assert!(d.schema.num_attributes() >= 18);
    }

    #[test]
    fn tpch_shape() {
        let d = tpch(Scale::tiny(), 1);
        assert_eq!(d.schema.num_tables(), 8);
        assert_eq!(d.schema.edges.len(), 7);
        assert_eq!(d.schema.num_attributes(), 16);
    }

    #[test]
    fn stats_shape() {
        let d = stats(Scale::tiny(), 1);
        assert_eq!(d.schema.num_tables(), 8);
        assert_eq!(d.schema.edges.len(), 7);
        assert_eq!(d.schema.num_attributes(), 15);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = tpch(Scale::tiny(), 9);
        let b = tpch(Scale::tiny(), 9);
        for (ta, tb) in a.tables.iter().zip(&b.tables) {
            for c in 0..ta.num_cols() {
                assert_eq!(ta.col(c), tb.col(c));
            }
        }
        let c = tpch(Scale::tiny(), 10);
        assert_ne!(
            a.tables[2].col(2),
            c.tables[2].col(2),
            "seeds should differ"
        );
    }

    #[test]
    fn fks_reference_valid_parent_rows() {
        for kind in DatasetKind::all() {
            let d = build(kind, Scale::tiny(), 3);
            for e in &d.schema.edges {
                for &(t, c) in [&e.left, &e.right] {
                    let role = d.schema.tables[t].columns[c].role;
                    assert_ne!(role, ColumnRole::Attribute, "join over attribute column");
                    if role == ColumnRole::ForeignKey {
                        // Opposite endpoint is the key side.
                        let (pt, _) = if (t, c) == e.left { e.right } else { e.left };
                        let parent_rows = d.tables[pt].num_rows() as i64;
                        assert!(
                            d.tables[t]
                                .col(c)
                                .iter()
                                .all(|&v| v >= 0 && v < parent_rows),
                            "dangling FK in {}.{}",
                            d.schema.tables[t].name,
                            d.schema.tables[t].columns[c].name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn join_patterns_exist_for_all_datasets() {
        for kind in DatasetKind::all() {
            let d = build(kind, Scale::tiny(), 3);
            let pats = d.schema.connected_patterns(3);
            assert!(!pats.is_empty());
            for p in &pats {
                assert!(d.schema.is_connected(p));
            }
        }
    }
}
