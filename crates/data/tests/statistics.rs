//! Statistical properties of the synthetic datasets: the skew and
//! correlation structure that makes the query→cardinality mapping
//! non-trivial (DESIGN.md's faithfulness argument) must actually be present.

use pace_data::{build, dmv, stats, tpch, DatasetKind, Scale};

fn pearson(xs: &[i64], ys: &[i64]) -> f64 {
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<i64>() as f64 / n;
    let my = ys.iter().sum::<i64>() as f64 / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        cov += (x as f64 - mx) * (y as f64 - my);
        vx += (x as f64 - mx).powi(2);
        vy += (y as f64 - my).powi(2);
    }
    cov / (vx.sqrt() * vy.sqrt()).max(1e-12)
}

/// Fraction of mass on the most frequent value — a cheap skew measure.
fn top_value_mass(xs: &[i64]) -> f64 {
    use std::collections::HashMap;
    let mut counts: HashMap<i64, usize> = HashMap::new();
    for &x in xs {
        *counts.entry(x).or_default() += 1;
    }
    *counts.values().max().expect("non-empty") as f64 / xs.len() as f64
}

#[test]
fn dmv_has_documented_correlations() {
    let ds = dmv(Scale::quick(), 11);
    let t = &ds.tables[0];
    let body_type = t.col(ds.schema.tables[0].col("body_type"));
    let reg_class = t.col(ds.schema.tables[0].col("reg_class"));
    assert!(
        pearson(reg_class, body_type) > 0.5,
        "body_type should correlate with reg_class: {}",
        pearson(reg_class, body_type)
    );
    let susp = t.col(ds.schema.tables[0].col("suspension"));
    let revo = t.col(ds.schema.tables[0].col("revocation"));
    assert!(
        pearson(susp, revo) > 0.5,
        "revocation should track suspension"
    );
}

#[test]
fn dmv_state_column_is_heavily_skewed() {
    let ds = dmv(Scale::quick(), 12);
    let state = ds.tables[0].col(ds.schema.tables[0].col("state"));
    // Zipf s=2.0: the home state dominates.
    assert!(
        top_value_mass(state) > 0.5,
        "state skew missing: {}",
        top_value_mass(state)
    );
}

#[test]
fn tpch_price_tracks_quantity() {
    let ds = tpch(Scale::quick(), 13);
    let li = ds.schema.table("lineitem");
    let qty = ds.tables[li].col(ds.schema.tables[li].col("l_quantity"));
    let price = ds.tables[li].col(ds.schema.tables[li].col("l_extendedprice"));
    assert!(
        pearson(qty, price) > 0.8,
        "extendedprice ~ quantity: {}",
        pearson(qty, price)
    );
}

#[test]
fn stats_reputation_is_long_tailed() {
    let ds = stats(Scale::quick(), 14);
    let u = ds.schema.table("users");
    let rep = ds.tables[u].col(ds.schema.tables[u].col("reputation"));
    let mean = rep.iter().sum::<i64>() as f64 / rep.len() as f64;
    let mut sorted = rep.to_vec();
    sorted.sort_unstable();
    let median = sorted[sorted.len() / 2] as f64;
    assert!(
        mean > 2.0 * median.max(1.0),
        "reputation should be long-tailed: mean {mean}, median {median}"
    );
}

#[test]
fn fk_skew_means_hot_parents_exist() {
    // Zipf-distributed FKs: some parents have far more children than the
    // mean — the property that makes join cardinalities non-uniform.
    let ds = tpch(Scale::quick(), 15);
    let orders = ds.schema.table("orders");
    let custkey = ds.tables[orders].col(ds.schema.tables[orders].col("o_custkey"));
    let n_cust = ds.tables[ds.schema.table("customer")].num_rows();
    let mut counts = vec![0usize; n_cust];
    for &c in custkey {
        counts[c as usize] += 1;
    }
    let mean = custkey.len() as f64 / n_cust as f64;
    let max = *counts.iter().max().expect("non-empty") as f64;
    assert!(max > 4.0 * mean, "FK skew missing: max {max}, mean {mean}");
}

#[test]
fn scales_order_row_counts() {
    for kind in DatasetKind::all() {
        let tiny = build(kind, Scale::tiny(), 16);
        let quick = build(kind, Scale::quick(), 16);
        assert!(
            quick.total_rows() > tiny.total_rows() * 3,
            "{}: scaling broken ({} vs {})",
            kind.name(),
            quick.total_rows(),
            tiny.total_rows()
        );
    }
}

#[test]
fn column_stats_match_data_extremes() {
    let ds = build(DatasetKind::Stats, Scale::tiny(), 17);
    for (t, table) in ds.tables.iter().enumerate() {
        for c in 0..table.num_cols() {
            let s = ds.col_stats(t, c);
            let (lo, hi) = table.col_min_max(c);
            assert_eq!((s.min, s.max), (lo, hi));
        }
    }
}
