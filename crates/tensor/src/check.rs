//! Numerical gradient checking utilities.
//!
//! Used throughout the workspace's test suites to validate both first- and
//! second-order derivatives of graph-built functions against central finite
//! differences.

use crate::graph::{Graph, Var};
use crate::matrix::Matrix;

/// Central finite-difference gradient of `f` at `x`, perturbing one element
/// at a time.
///
/// `f` receives a fresh graph and a leaf for the (perturbed) input and must
/// return a scalar output var.
pub fn numeric_grad(x: &Matrix, eps: f32, f: impl Fn(&mut Graph, Var) -> Var) -> Matrix {
    let mut out = Matrix::zeros(x.rows(), x.cols());
    for i in 0..x.len() {
        let mut hi = x.clone();
        hi.data_mut()[i] += eps;
        let mut lo = x.clone();
        lo.data_mut()[i] -= eps;
        let fh = eval_scalar(&hi, &f);
        let fl = eval_scalar(&lo, &f);
        out.data_mut()[i] = (fh - fl) / (2.0 * eps);
    }
    out
}

fn eval_scalar(x: &Matrix, f: &impl Fn(&mut Graph, Var) -> Var) -> f32 {
    let mut g = Graph::new();
    let v = g.leaf(x.clone());
    let out = f(&mut g, v);
    g.value(out).as_scalar()
}

/// Analytic (autograd) gradient of `f` at `x`.
pub fn analytic_grad(x: &Matrix, f: impl Fn(&mut Graph, Var) -> Var) -> Matrix {
    let mut g = Graph::new();
    let v = g.leaf(x.clone());
    let out = f(&mut g, v);
    let grads = g.grad(out, &[v]);
    g.value(grads[0]).clone()
}

/// Asserts that the autograd gradient of `f` matches finite differences to a
/// mixed absolute/relative tolerance.
///
/// # Panics
/// Panics with a labelled message when any element disagrees.
pub fn assert_grad_close(
    label: &str,
    x: &Matrix,
    tol: f32,
    f: impl Fn(&mut Graph, Var) -> Var + Copy,
) {
    let ana = analytic_grad(x, f);
    let num = numeric_grad(x, 1e-2, f);
    for i in 0..x.len() {
        let a = ana.data()[i];
        let n = num.data()[i];
        let denom = 1.0f32.max(a.abs()).max(n.abs());
        assert!(
            (a - n).abs() / denom <= tol,
            "{label}: gradient mismatch at {i}: analytic {a} vs numeric {n}"
        );
    }
}

/// Asserts that `d/dx [d f/dx · w]` (a second-order quantity obtained via
/// double backward) matches finite differences of the first-order autograd
/// gradient.
///
/// # Panics
/// Panics with a labelled message when any element disagrees.
pub fn assert_second_order_close(
    label: &str,
    x: &Matrix,
    w: &Matrix,
    tol: f32,
    f: impl Fn(&mut Graph, Var) -> Var + Copy,
) {
    assert_eq!(x.shape(), w.shape());
    // Analytic: build f, take grad, dot with w, take grad again.
    let analytic = {
        let mut g = Graph::new();
        let v = g.leaf(x.clone());
        let out = f(&mut g, v);
        let g1 = g.grad(out, &[v])[0];
        let wv = g.leaf(w.clone());
        let dot = g.mul(g1, wv);
        let dot = g.sum_all(dot);
        let g2 = g.grad(dot, &[v])[0];
        g.value(g2).clone()
    };
    // Numeric: finite-difference the analytic first gradient dotted with w.
    let eps = 1e-2;
    let dir_grad = |pt: &Matrix| -> f32 {
        let grad = analytic_grad(pt, f);
        grad.data().iter().zip(w.data()).map(|(a, b)| a * b).sum()
    };
    for i in 0..x.len() {
        let mut hi = x.clone();
        hi.data_mut()[i] += eps;
        let mut lo = x.clone();
        lo.data_mut()[i] -= eps;
        let n = (dir_grad(&hi) - dir_grad(&lo)) / (2.0 * eps);
        let a = analytic.data()[i];
        let denom = 1.0f32.max(a.abs()).max(n.abs());
        assert!(
            (a - n).abs() / denom <= tol,
            "{label}: second-order mismatch at {i}: analytic {a} vs numeric {n}"
        );
    }
}
