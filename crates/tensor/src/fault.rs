//! Deterministic fault injection (`PACE_FAULTS`).
//!
//! The PACE reproduction models a long-running campaign against a remote
//! black-box victim. To test that the campaign runtime survives operational
//! failures — lost oracle responses, corrupted probe results, non-finite
//! gradients, a killed process — this module injects those failures *on
//! purpose*, deterministically, from a seeded spec. The same spec + seed
//! always produces the same fault schedule, so every recovery path is
//! reproducible in CI (`xtask chaos`) and in unit tests.
//!
//! # Spec grammar
//!
//! `PACE_FAULTS` joins the [`crate::flags`] family: unset/empty/`0` means
//! off, the variable is read once, and tests override it via
//! [`install`]. A non-off value is a `;`-separated list of entries. Each
//! entry is a fault kind followed by `,`-separated `key=value` options:
//!
//! ```text
//! PACE_FAULTS="seed=42;timeout,site=explain,every=3,lat=0.05;nan,at=10,site=ce-train"
//! ```
//!
//! Kinds: `timeout`, `error`, `corrupt` (oracle-level, consumed through
//! [`probe`]); `nan` (gradient corruption, [`poison_grads`]); `crash`
//! (hard process exit, [`crash_point`]); and the serving-shaped kinds
//! consumed by `pace-serve` — `overload` (burst arrivals, [`overload`]),
//! `slow_consumer` (the batch consumer stalls for `lat=` virtual seconds,
//! [`slow_consumer`]), and `bad_update` (a candidate model snapshot is
//! corrupted before validation, [`bad_update`]). Options:
//!
//! * `site=S` — only fire at sites whose label contains `S` (default: all);
//! * `every=K` — fire on every `K`-th matching visit (deterministic);
//! * `at=N` — fire exactly on the `N`-th matching visit (1-based);
//! * `p=P` — fire with probability `P` per visit, decided by a hash of
//!   `(seed, entry, visit)` — random-looking but fully reproducible;
//! * `lat=SECS` — injected latency for `timeout` faults (default 0.05 s);
//! * `seed=N` — standalone entry setting the schedule seed (default 0).
//!
//! An entry must carry at least one trigger (`every`/`at`/`p`). Malformed
//! specs panic at first use with the offending fragment — a chaos run with a
//! typo'd spec silently testing nothing would be worse.

use crate::flags;
use crate::matrix::Matrix;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

/// Exit code used by [`crash_point`] when a `crash` fault fires. The chaos
/// harness treats this code as "injected crash, resume expected".
pub const CRASH_EXIT_CODE: i32 = 86;

/// The failure taxonomy the campaign runtime must survive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Oracle probe exceeds its deadline (injected latency, then failure).
    Timeout,
    /// Oracle probe returns a hard error.
    Error,
    /// Oracle probe returns a corrupted (non-finite / absurd) response.
    Corrupt,
    /// A training step produces non-finite gradients.
    NanGrad,
    /// The process dies mid-campaign (simulated `kill -9`).
    Crash,
    /// A burst of extra arrivals hits the serving runtime's admission queue.
    Overload,
    /// The serving runtime's batch consumer stalls (extra `lat=` virtual
    /// seconds per fired visit), so the admission queue backs up.
    SlowConsumer,
    /// A candidate model snapshot is corrupted before shadow validation —
    /// the hot-swap path must reject and roll back.
    BadUpdate,
}

impl FaultKind {
    fn parse(s: &str) -> Option<Self> {
        match s {
            "timeout" => Some(Self::Timeout),
            "error" => Some(Self::Error),
            "corrupt" => Some(Self::Corrupt),
            "nan" | "nangrad" => Some(Self::NanGrad),
            "crash" => Some(Self::Crash),
            "overload" => Some(Self::Overload),
            "slow_consumer" | "slow" => Some(Self::SlowConsumer),
            "bad_update" | "badupdate" => Some(Self::BadUpdate),
            _ => None,
        }
    }

    /// The spec spelling of this kind.
    pub fn name(self) -> &'static str {
        match self {
            Self::Timeout => "timeout",
            Self::Error => "error",
            Self::Corrupt => "corrupt",
            Self::NanGrad => "nan",
            Self::Crash => "crash",
            Self::Overload => "overload",
            Self::SlowConsumer => "slow_consumer",
            Self::BadUpdate => "bad_update",
        }
    }
}

/// A fault produced by the injector at a probe site.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Fault {
    /// The probe hangs for `seconds`, then fails with a timeout.
    Timeout {
        /// Injected latency in (virtual) seconds.
        seconds: f64,
    },
    /// The probe fails outright.
    Error,
    /// The probe "succeeds" but the response is garbage.
    Corrupt,
}

/// One parsed spec entry.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultEntry {
    /// Which failure to inject.
    pub kind: FaultKind,
    /// Substring filter on the site label (`None` matches every site).
    pub site: Option<String>,
    /// Fire on every `K`-th matching visit.
    pub every: Option<u64>,
    /// Fire exactly on the `N`-th matching visit (1-based).
    pub at: Option<u64>,
    /// Fire with this probability per matching visit.
    pub p: Option<f64>,
    /// Injected latency in seconds (timeout faults).
    pub latency: f64,
}

impl FaultEntry {
    fn matches(&self, site: &str) -> bool {
        self.site.as_deref().is_none_or(|s| site.contains(s))
    }
}

/// A parsed `PACE_FAULTS` value: a seed plus a list of entries.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultSpec {
    /// Seed for probabilistic (`p=`) triggers.
    pub seed: u64,
    /// The fault entries, in spec order.
    pub entries: Vec<FaultEntry>,
}

impl FaultSpec {
    /// Parses the grammar described in the module docs.
    ///
    /// # Errors
    /// Returns a human-readable description of the first malformed fragment.
    pub fn parse(raw: &str) -> Result<Self, String> {
        let mut spec = FaultSpec::default();
        for part in raw.split(';') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            if let Some(seed) = part.strip_prefix("seed=") {
                spec.seed = seed
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad seed {seed:?}"))?;
                continue;
            }
            let mut fields = part.split(',');
            let kind_str = fields.next().unwrap_or("").trim();
            let kind = FaultKind::parse(kind_str)
                .ok_or_else(|| format!("unknown fault kind {kind_str:?} in {part:?}"))?;
            let mut entry = FaultEntry {
                kind,
                site: None,
                every: None,
                at: None,
                p: None,
                latency: 0.05,
            };
            for field in fields {
                let field = field.trim();
                let (key, val) = field
                    .split_once('=')
                    .ok_or_else(|| format!("expected key=value, got {field:?} in {part:?}"))?;
                match key.trim() {
                    "site" => entry.site = Some(val.trim().to_string()),
                    "every" => {
                        let k: u64 = val
                            .trim()
                            .parse()
                            .map_err(|_| format!("bad every={val:?} in {part:?}"))?;
                        if k == 0 {
                            return Err(format!("every=0 in {part:?}"));
                        }
                        entry.every = Some(k);
                    }
                    "at" => {
                        let n: u64 = val
                            .trim()
                            .parse()
                            .map_err(|_| format!("bad at={val:?} in {part:?}"))?;
                        if n == 0 {
                            return Err(format!("at=0 in {part:?} (visits are 1-based)"));
                        }
                        entry.at = Some(n);
                    }
                    "p" => {
                        let p: f64 = val
                            .trim()
                            .parse()
                            .map_err(|_| format!("bad p={val:?} in {part:?}"))?;
                        if !(0.0..=1.0).contains(&p) {
                            return Err(format!("p={p} out of [0,1] in {part:?}"));
                        }
                        entry.p = Some(p);
                    }
                    "lat" => {
                        entry.latency = val
                            .trim()
                            .parse()
                            .map_err(|_| format!("bad lat={val:?} in {part:?}"))?;
                    }
                    other => return Err(format!("unknown option {other:?} in {part:?}")),
                }
            }
            if entry.every.is_none() && entry.at.is_none() && entry.p.is_none() {
                return Err(format!(
                    "entry {part:?} has no trigger (need every=, at=, or p=)"
                ));
            }
            spec.entries.push(entry);
        }
        Ok(spec)
    }
}

#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The deterministic fault scheduler. Most code uses the process-global
/// instance through the free functions ([`probe`], [`poison_grads`],
/// [`crash_point`]); tests can also drive a private instance directly.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    spec: FaultSpec,
    /// Per-entry count of matching visits.
    counters: Vec<u64>,
}

impl FaultInjector {
    /// Builds an injector with all counters at zero.
    pub fn new(spec: FaultSpec) -> Self {
        let counters = vec![0; spec.entries.len()];
        Self { spec, counters }
    }

    fn entry_fires(&mut self, idx: usize, site: &str) -> bool {
        let e = &self.spec.entries[idx];
        if !e.matches(site) {
            return false;
        }
        self.counters[idx] += 1;
        let visit = self.counters[idx];
        let e = &self.spec.entries[idx];
        if e.at == Some(visit) {
            return true;
        }
        if let Some(k) = e.every {
            if visit.is_multiple_of(k) {
                return true;
            }
        }
        if let Some(p) = e.p {
            let h = splitmix64(
                self.spec
                    .seed
                    .wrapping_mul(0xd1b5_4a32_d192_ed03)
                    .wrapping_add((idx as u64) << 32)
                    .wrapping_add(visit),
            );
            let unit = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            if unit < p {
                return true;
            }
        }
        false
    }

    /// Consults the oracle-level entries (`timeout`/`error`/`corrupt`) for a
    /// probe at `site`. Every matching entry's visit counter advances; the
    /// first entry that fires decides the fault.
    pub fn probe(&mut self, site: &str) -> Option<Fault> {
        let mut fault = None;
        for idx in 0..self.spec.entries.len() {
            let kind = self.spec.entries[idx].kind;
            let oracle = matches!(
                kind,
                FaultKind::Timeout | FaultKind::Error | FaultKind::Corrupt
            );
            if !oracle {
                continue;
            }
            let fired = self.entry_fires(idx, site);
            if fired && fault.is_none() {
                fault = Some(match kind {
                    FaultKind::Timeout => Fault::Timeout {
                        seconds: self.spec.entries[idx].latency,
                    },
                    FaultKind::Error => Fault::Error,
                    _ => Fault::Corrupt,
                });
            }
        }
        fault
    }

    /// Consults entries of exactly `kind` (used for `nan` and `crash`)
    /// for a visit at `site`.
    pub fn fires(&mut self, kind: FaultKind, site: &str) -> bool {
        self.fires_with_latency(kind, site).is_some()
    }

    /// Like [`Self::fires`], but returns the firing entry's `lat=` payload
    /// (the first firing entry wins). Every matching entry's visit counter
    /// advances whether or not an earlier entry already fired.
    pub fn fires_with_latency(&mut self, kind: FaultKind, site: &str) -> Option<f64> {
        let mut lat = None;
        for idx in 0..self.spec.entries.len() {
            if self.spec.entries[idx].kind != kind {
                continue;
            }
            let fired = self.entry_fires(idx, site);
            if fired && lat.is_none() {
                lat = Some(self.spec.entries[idx].latency);
            }
        }
        lat
    }
}

struct GlobalState {
    loaded: bool,
    injector: Option<FaultInjector>,
}

static GLOBAL: Mutex<GlobalState> = Mutex::new(GlobalState {
    loaded: false,
    injector: None,
});

// Lock-free fast path: every oracle probe and gradient step consults the
// hooks below, so the common no-faults case must not pay a mutex. The flag
// starts `UNKNOWN` (the env var hasn't been read yet); the first hook call
// resolves it through the mutex and from then on a disarmed process answers
// with one relaxed atomic load.
const ARMED_UNKNOWN: u8 = 0;
const ARMED_OFF: u8 = 1;
const ARMED_ON: u8 = 2;
static ARMED: AtomicU8 = AtomicU8::new(ARMED_UNKNOWN);

#[inline]
fn disarmed() -> bool {
    match ARMED.load(Ordering::Relaxed) {
        ARMED_OFF => true,
        ARMED_ON => false,
        _ => !with_global(|inj| inj.is_some()),
    }
}

fn with_global<T>(f: impl FnOnce(&mut Option<FaultInjector>) -> T) -> T {
    let mut g = match GLOBAL.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    if !g.loaded {
        g.loaded = true;
        g.injector = flags::FAULTS.get().map(|raw| {
            let spec = FaultSpec::parse(&raw).unwrap_or_else(|e| {
                panic!("malformed {} spec: {e}", flags::FAULTS.name());
            });
            FaultInjector::new(spec)
        });
    }
    let armed = if g.injector.is_some() {
        ARMED_ON
    } else {
        ARMED_OFF
    };
    ARMED.store(armed, Ordering::Relaxed);
    f(&mut g.injector)
}

/// Installs (or clears, with `None`) the process-global injector, resetting
/// all visit counters. Overrides whatever `PACE_FAULTS` said.
pub fn install(spec: Option<FaultSpec>) {
    let mut g = match GLOBAL.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    g.loaded = true;
    g.injector = spec.map(FaultInjector::new);
    let armed = if g.injector.is_some() {
        ARMED_ON
    } else {
        ARMED_OFF
    };
    ARMED.store(armed, Ordering::Relaxed);
}

/// True when fault injection is configured for this process.
pub fn active() -> bool {
    with_global(|inj| inj.is_some())
}

/// Oracle-probe hook: the fault (if any) scheduled for this visit to `site`.
pub fn probe(site: &str) -> Option<Fault> {
    if disarmed() {
        return None;
    }
    with_global(|inj| inj.as_mut().and_then(|i| i.probe(site)))
}

/// Gradient hook: when a `nan` fault is scheduled for this visit to `site`,
/// overwrites the first entry of each gradient with NaN and returns `true`.
///
/// Call this *after* gradient sanitization/clipping — the training loop's
/// divergence detector, not the sanitizer, is the recovery path under test.
pub fn poison_grads(site: &str, grads: &mut [Matrix]) -> bool {
    if disarmed() {
        return false;
    }
    let fired = with_global(|inj| {
        inj.as_mut()
            .map(|i| i.fires(FaultKind::NanGrad, site))
            .unwrap_or(false)
    });
    if fired {
        for g in grads.iter_mut() {
            if let Some(x) = g.data_mut().first_mut() {
                *x = f32::NAN;
            }
        }
    }
    fired
}

/// Serving-arrival hook: true when an `overload` burst is scheduled for
/// this visit to `site`. The load generator responds by emitting a burst of
/// extra arrivals at the same (virtual) instant.
pub fn overload(site: &str) -> bool {
    if disarmed() {
        return false;
    }
    with_global(|inj| {
        inj.as_mut()
            .map(|i| i.fires(FaultKind::Overload, site))
            .unwrap_or(false)
    })
}

/// Serving-consumer hook: the extra virtual seconds (`lat=`, default 0.05)
/// a `slow_consumer` fault charges this visit to `site`, if one fires. The
/// batch executor adds this to its service time, backing up the admission
/// queue.
pub fn slow_consumer(site: &str) -> Option<f64> {
    if disarmed() {
        return None;
    }
    with_global(|inj| {
        inj.as_mut()
            .and_then(|i| i.fires_with_latency(FaultKind::SlowConsumer, site))
    })
}

/// Hot-swap hook: true when a `bad_update` fault is scheduled for this visit
/// to `site`. The serving runtime responds by corrupting the candidate
/// snapshot *before* shadow validation — validation must then reject it.
pub fn bad_update(site: &str) -> bool {
    if disarmed() {
        return false;
    }
    with_global(|inj| {
        inj.as_mut()
            .map(|i| i.fires(FaultKind::BadUpdate, site))
            .unwrap_or(false)
    })
}

/// Crash hook: when a `crash` fault is scheduled for this visit to `site`,
/// exits the process with [`CRASH_EXIT_CODE`] — simulating `kill -9` at a
/// chosen point. Callers place this *after* persisting state they expect a
/// resumed process to find.
pub fn crash_point(site: &str) {
    if disarmed() {
        return;
    }
    let fired = with_global(|inj| {
        inj.as_mut()
            .map(|i| i.fires(FaultKind::Crash, site))
            .unwrap_or(false)
    });
    if fired {
        eprintln!("pace-tensor: injected crash at site {site:?}");
        std::process::exit(CRASH_EXIT_CODE);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests that install the process-global injector must not interleave.
    static INSTALL_LOCK: Mutex<()> = Mutex::new(());

    fn install_lock() -> std::sync::MutexGuard<'static, ()> {
        match INSTALL_LOCK.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    #[test]
    fn parses_full_grammar() {
        let spec = FaultSpec::parse(
            "seed=42; timeout,site=explain,every=3,lat=0.25; nan,at=10; corrupt,p=0.5",
        )
        .expect("valid spec");
        assert_eq!(spec.seed, 42);
        assert_eq!(spec.entries.len(), 3);
        assert_eq!(spec.entries[0].kind, FaultKind::Timeout);
        assert_eq!(spec.entries[0].site.as_deref(), Some("explain"));
        assert_eq!(spec.entries[0].every, Some(3));
        assert_eq!(spec.entries[0].latency, 0.25);
        assert_eq!(spec.entries[1].kind, FaultKind::NanGrad);
        assert_eq!(spec.entries[1].at, Some(10));
        assert_eq!(spec.entries[2].p, Some(0.5));
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "bogus,every=2",
            "timeout",
            "timeout,every=0",
            "timeout,at=0",
            "corrupt,p=1.5",
            "timeout,every=x",
            "seed=abc",
            "timeout,every=2,wat=1",
            "timeout,every",
        ] {
            assert!(FaultSpec::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn every_fires_deterministically() {
        let spec = FaultSpec::parse("error,every=3").expect("spec");
        let mut inj = FaultInjector::new(spec);
        let pattern: Vec<bool> = (0..9).map(|_| inj.probe("explain").is_some()).collect();
        assert_eq!(
            pattern,
            [false, false, true, false, false, true, false, false, true]
        );
    }

    #[test]
    fn at_fires_exactly_once() {
        let spec = FaultSpec::parse("corrupt,at=2").expect("spec");
        let mut inj = FaultInjector::new(spec);
        let fired: Vec<bool> = (0..5).map(|_| inj.probe("count").is_some()).collect();
        assert_eq!(fired, [false, true, false, false, false]);
    }

    #[test]
    fn site_filter_scopes_visits() {
        let spec = FaultSpec::parse("timeout,site=explain,at=1").expect("spec");
        let mut inj = FaultInjector::new(spec);
        assert_eq!(inj.probe("count"), None, "non-matching site must not fire");
        assert!(
            matches!(inj.probe("explain"), Some(Fault::Timeout { .. })),
            "first matching visit fires"
        );
        assert_eq!(inj.probe("explain"), None);
    }

    #[test]
    fn probabilistic_schedule_is_reproducible() {
        let run = || {
            let spec = FaultSpec::parse("seed=7;error,p=0.3").expect("spec");
            let mut inj = FaultInjector::new(spec);
            (0..200)
                .map(|_| inj.probe("explain").is_some())
                .collect::<Vec<_>>()
        };
        let a = run();
        assert_eq!(a, run(), "same seed, same schedule");
        let fired = a.iter().filter(|&&f| f).count();
        assert!(
            (30..=90).contains(&fired),
            "p=0.3 over 200 visits fired {fired} times"
        );
    }

    #[test]
    fn nan_and_crash_use_exact_kind_matching() {
        let spec = FaultSpec::parse("nan,at=1").expect("spec");
        let mut inj = FaultInjector::new(spec);
        assert_eq!(
            inj.probe("train"),
            None,
            "nan entries are not oracle faults"
        );
        assert!(inj.fires(FaultKind::NanGrad, "train"));
        assert!(!inj.fires(FaultKind::Crash, "train"));
    }

    #[test]
    fn serving_kinds_parse_and_fire_by_exact_kind() {
        let spec = FaultSpec::parse(
            "overload,site=serve-arrival,every=2;slow_consumer,site=serve-batch,at=1,lat=0.25;\
             bad_update,site=serve-update,at=2",
        )
        .expect("valid serving spec");
        assert_eq!(spec.entries[0].kind, FaultKind::Overload);
        assert_eq!(spec.entries[1].kind, FaultKind::SlowConsumer);
        assert_eq!(spec.entries[2].kind, FaultKind::BadUpdate);
        let mut inj = FaultInjector::new(spec);
        // Serving kinds are not oracle faults: probe() ignores them.
        assert_eq!(inj.probe("serve-arrival"), None);
        assert!(!inj.fires(FaultKind::Overload, "serve-arrival"));
        assert!(inj.fires(FaultKind::Overload, "serve-arrival"), "every=2");
        assert_eq!(
            inj.fires_with_latency(FaultKind::SlowConsumer, "serve-batch"),
            Some(0.25),
            "slow_consumer carries its lat= payload"
        );
        assert_eq!(
            inj.fires_with_latency(FaultKind::SlowConsumer, "serve-batch"),
            None,
            "at=1 fires once"
        );
        assert!(!inj.fires(FaultKind::BadUpdate, "serve-update"));
        assert!(inj.fires(FaultKind::BadUpdate, "serve-update"), "at=2");
    }

    #[test]
    fn serving_hooks_consult_the_global_injector() {
        let _g = install_lock();
        install(Some(
            FaultSpec::parse(
                "overload,site=hook-arrival,at=1;slow,site=hook-batch,at=1,lat=0.5;\
                 badupdate,site=hook-update,at=1",
            )
            .expect("spec with aliases"),
        ));
        assert!(!overload("hook-other"), "site filter scopes the burst");
        assert!(overload("hook-arrival"));
        assert_eq!(slow_consumer("hook-batch"), Some(0.5));
        assert!(bad_update("hook-update"));
        install(None);
        assert!(!overload("hook-arrival"));
        assert_eq!(slow_consumer("hook-batch"), None);
        assert!(!bad_update("hook-update"));
    }

    #[test]
    fn poison_grads_writes_nan_after_install() {
        let _g = install_lock();
        install(Some(
            FaultSpec::parse("nan,at=1,site=poison-test").expect("spec"),
        ));
        let mut grads = vec![Matrix::row(&[1.0, 2.0])];
        assert!(poison_grads("poison-test", &mut grads));
        assert!(grads[0].data()[0].is_nan());
        assert_eq!(grads[0].data()[1], 2.0);
        assert!(!poison_grads("poison-test", &mut grads), "at=1 fires once");
        install(None);
        assert!(!active());
    }
}
