//! Elementwise fusion: collapsing map/zip chains into single super-steps.
//!
//! The optimized tape ([`crate::opt`]) still executes one op per step, so a
//! chain like `relu(add(mul_scalar(x, a), b))` walks memory three times —
//! every intermediate is written to an arena slot and immediately read back
//! by its only consumer. The PACE hypergradient tapes are exactly these
//! memory-bound elementwise chains (the unrolled SGD updates are long runs
//! of `Mul`/`Sub`/`AddScalar` over same-shaped matrices), so the fusion
//! pass rewrites them into **fused super-steps**:
//!
//! * **Legality** comes from the same liveness facts the buffer allocator
//!   uses: a producer step may be inlined into its consumer iff it is a
//!   map/zip-class op (shape-preserving, one output element per input
//!   element), its value has exactly **one** use (that consumer), and it is
//!   not a plan output. Multi-use intermediates are never crossed — their
//!   value must materialize for the other readers. Chains are maximal
//!   producer→consumer paths of such links.
//! * **Arena interaction**: fusion runs *before* buffer assignment, so the
//!   rewritten plan has no slots for the vanished intermediates at all; the
//!   fused node claims one destination slot like any other step, operand
//!   live ranges extend to the fused step that now reads them, and the
//!   existing [`crate::dataflow::check_slot_interference`] proof covers the
//!   plan unchanged.
//! * **Accumulation-order contract**: a fused chain computes, per element,
//!   the *same scalar dataflow* the step-at-a-time interpreter computes —
//!   the same `f32` operations in the same order, only without the
//!   round-trip through memory between links. Elementwise ops carry no
//!   cross-element reduction, so fused replay is **bit-identical** to
//!   [`crate::opt::TapePlan::replay`] at any block size, chunk grid,
//!   thread count, or `PACE_SCHED` seed (`prop_fuse` enforces this).
//!
//! Execution uses a blocked interpreter: elements are processed in
//! [`FUSE_BLOCK`]-wide stack blocks, applying each link's kernel over the
//! whole block before the next link. Each source operand is read once and
//! the destination written once per block — one pass over memory for the
//! whole chain — while the carried block stays L1-resident and every
//! per-link inner loop is a branch-free straight-line sweep the
//! autovectorizer can widen. Fused super-steps also surface to the static
//! scheduler ([`crate::sched`]) as single coarse nodes, giving the
//! profitability oracle stages with enough work per item to fan out.
//!
//! Classifying an op for fusibility is an exhaustive match — `xtask lint`
//! extends its Op-coverage rule to this file so a new op cannot silently
//! land without a fusion verdict.

use crate::dataflow::TRANSCENDENTAL_FLOPS;
use crate::graph::{Op, Var};
use crate::matrix::Matrix;
use crate::opt::{plan_inputs, Arena, PlanKind, PlanNode, TapePlan};
use pace_runtime as pool;

/// Elements per stack block of the fused interpreter. One `f32` block is
/// 512 bytes — resident in L1 across every link of a chain. Blocking
/// changes only the visit order of independent elements, never a value.
pub(crate) const FUSE_BLOCK: usize = 128;

/// A unary map kernel: `carry -> carry`, exactly the closures
/// `TapePlan::eval_into` uses for the corresponding ops.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) enum MapKind {
    /// `-x`
    Neg,
    /// `x + c`
    AddScalar(f32),
    /// `x * c`
    MulScalar(f32),
    /// `x.powf(p)`
    PowScalar(f32),
    /// `1 / (1 + e^(-x))`
    Sigmoid,
    /// `tanh(x)`
    Tanh,
    /// `x.max(0.0)`
    Relu,
    /// `e^x`
    Exp,
    /// `ln(x)`
    Ln,
    /// `sqrt(x)`
    Sqrt,
    /// `|x|`
    Abs,
}

/// A binary zip kernel over same-shaped operands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ZipKind {
    /// `l + r`
    Add,
    /// `l - r`
    Sub,
    /// `l * r`
    Mul,
    /// `l / r`
    Div,
    /// `f32::max(l, r)`
    Max,
    /// `f32::min(l, r)`
    Min,
}

/// The elementwise form of a fusible op: which kernel it applies and which
/// operands it reads. `None` for every op that is not map/zip-class
/// (contractions, reductions, broadcasts, movement, leaves).
#[derive(Clone, Copy, Debug)]
pub(crate) enum ElemForm {
    /// Unary map over one operand.
    Map(MapKind, Var),
    /// Binary zip over two same-shaped operands `(left, right)`.
    Zip(ZipKind, Var, Var),
}

/// Classifies one op for fusion. Exhaustive over the op vocabulary
/// (enforced by `xtask lint`): map/zip-class ops fuse; everything else —
/// ops that contract, reduce, broadcast, or move data across positions —
/// must materialize.
pub(crate) fn elem_form(op: &Op) -> Option<ElemForm> {
    match *op {
        Op::Neg(a) => Some(ElemForm::Map(MapKind::Neg, a)),
        Op::AddScalar(a, c) => Some(ElemForm::Map(MapKind::AddScalar(c), a)),
        Op::MulScalar(a, c) => Some(ElemForm::Map(MapKind::MulScalar(c), a)),
        Op::PowScalar(a, p) => Some(ElemForm::Map(MapKind::PowScalar(p), a)),
        Op::Sigmoid(a) => Some(ElemForm::Map(MapKind::Sigmoid, a)),
        Op::Tanh(a) => Some(ElemForm::Map(MapKind::Tanh, a)),
        Op::Relu(a) => Some(ElemForm::Map(MapKind::Relu, a)),
        Op::Exp(a) => Some(ElemForm::Map(MapKind::Exp, a)),
        Op::Ln(a) => Some(ElemForm::Map(MapKind::Ln, a)),
        Op::Sqrt(a) => Some(ElemForm::Map(MapKind::Sqrt, a)),
        Op::Abs(a) => Some(ElemForm::Map(MapKind::Abs, a)),
        Op::Add(a, b) => Some(ElemForm::Zip(ZipKind::Add, a, b)),
        Op::Sub(a, b) => Some(ElemForm::Zip(ZipKind::Sub, a, b)),
        Op::Mul(a, b) => Some(ElemForm::Zip(ZipKind::Mul, a, b)),
        Op::Div(a, b) => Some(ElemForm::Zip(ZipKind::Div, a, b)),
        Op::Maximum(a, b) => Some(ElemForm::Zip(ZipKind::Max, a, b)),
        Op::Minimum(a, b) => Some(ElemForm::Zip(ZipKind::Min, a, b)),
        // Not elementwise in the one-in-one-out sense: contraction,
        // reduction, broadcast, and movement ops must materialize.
        Op::Leaf => None,
        Op::MatMul(..)
        | Op::Transpose(_)
        | Op::SumAll(_)
        | Op::MeanAll(_)
        | Op::SumRows(_)
        | Op::MeanRows(_)
        | Op::SumCols(_)
        | Op::RepeatRows(..)
        | Op::RepeatCols(..)
        | Op::BroadcastScalar(..)
        | Op::AddRow(..)
        | Op::MulRow(..)
        | Op::MulCol(..)
        | Op::ConcatCols(_)
        | Op::ConcatRows(_)
        | Op::SliceCols(..)
        | Op::SliceRows(..) => None,
    }
}

/// One link of a fused chain: how the carried element is transformed.
/// Binary links record which side the carry sits on, so NaN-payload and
/// signed-zero semantics of the original operand order are preserved
/// exactly.
#[derive(Clone, Copy, Debug)]
pub(crate) enum FusedLink {
    /// `carry = map(carry)`
    Map(MapKind),
    /// `carry = zip(carry, src[j])` — carry was the left operand.
    ZipL(ZipKind, Var),
    /// `carry = zip(src[j], carry)` — carry was the right operand.
    ZipR(ZipKind, Var),
}

impl FusedLink {
    fn src(&self) -> Option<Var> {
        match self {
            FusedLink::Map(_) => None,
            FusedLink::ZipL(_, v) | FusedLink::ZipR(_, v) => Some(*v),
        }
    }

    fn flops_per_elem(&self) -> u64 {
        let kind = match self {
            FusedLink::Map(k) => k,
            FusedLink::ZipL(..) | FusedLink::ZipR(..) => return 1,
        };
        match kind {
            MapKind::PowScalar(_)
            | MapKind::Sigmoid
            | MapKind::Tanh
            | MapKind::Exp
            | MapKind::Ln
            | MapKind::Sqrt => TRANSCENDENTAL_FLOPS,
            MapKind::Neg
            | MapKind::AddScalar(_)
            | MapKind::MulScalar(_)
            | MapKind::Relu
            | MapKind::Abs => 1,
        }
    }
}

/// A fused super-step: `links.len()` original steps collapsed into one
/// plan node that computes, per element, `links` applied in order to the
/// value loaded from `lead`.
#[derive(Clone, Debug)]
pub(crate) struct FusedChain {
    /// Plan index whose value seeds the per-element carry.
    pub(crate) lead: Var,
    /// Kernels applied in order; the first is the chain head's own op.
    pub(crate) links: Vec<FusedLink>,
    /// Op names of the collapsed steps, head → tail (for profiles/stats).
    pub(crate) names: Vec<&'static str>,
}

impl FusedChain {
    /// Original steps this super-step replaces.
    pub(crate) fn steps(&self) -> usize {
        self.links.len()
    }

    /// Every plan index the fused step reads: the lead plus each zip
    /// link's side operand.
    pub(crate) fn inputs(&self) -> Vec<Var> {
        let mut out = vec![self.lead];
        out.extend(self.links.iter().filter_map(FusedLink::src));
        out
    }

    /// Modeled FLOPs per output element across every link.
    pub(crate) fn flops_per_elem(&self) -> u64 {
        self.links.iter().map(FusedLink::flops_per_elem).sum()
    }

    /// `f32` reads per output element: the lead plus one per zip link.
    pub(crate) fn reads_per_elem(&self) -> u64 {
        1 + self.links.iter().filter(|l| l.src().is_some()).count() as u64
    }

    /// True when any link is transcendental-weight (compute-bound chains
    /// schedule differently from bandwidth-bound ones).
    pub(crate) fn has_transcendental(&self) -> bool {
        self.links.iter().any(|l| l.flops_per_elem() > 1)
    }

    /// Cost spec of executing this chain over `len` elements, for the
    /// profitability oracle: all reads plus the single write, one memory
    /// pass total.
    pub(crate) fn region(&self, len: usize) -> pool::cost::RegionCost {
        pool::cost::RegionCost {
            items: len,
            flops_per_item: self.flops_per_elem() as f64,
            bytes_per_item: ((self.reads_per_elem() + 1) as usize * size_of::<f32>()) as f64,
        }
    }
}

// ---- the fusion pass --------------------------------------------------------

/// What the fusion pass did to one plan, for [`crate::opt::OptStats`].
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct FuseOutcome {
    /// Fused chains emitted.
    pub(crate) chains: usize,
    /// Original steps absorbed into those chains.
    pub(crate) steps_fused: usize,
    /// Full-buffer memory passes eliminated: one intermediate write plus
    /// one read-back per interior link.
    pub(crate) passes_saved: u64,
}

/// Rewrites maximal single-use map/zip chains in a compacted (pre-buffer)
/// plan into [`PlanKind::Fused`] nodes. Operand `Var`s of the returned
/// nodes are re-indexed into the compacted output; `outputs` is remapped
/// alongside.
pub(crate) fn fuse_plan_nodes(
    nodes: Vec<PlanNode>,
    outputs: &[usize],
) -> (Vec<PlanNode>, Vec<usize>, FuseOutcome) {
    let n = nodes.len();
    let mut uses = vec![0usize; n];
    for node in &nodes {
        for v in plan_inputs(&node.kind) {
            uses[v.index()] += 1;
        }
    }
    let mut is_output = vec![false; n];
    for &o in outputs {
        is_output[o] = true;
    }

    // Link selection: each fusible step absorbs at most one producer — a
    // fusible, single-use, non-output step of the same shape sitting in one
    // of its operand slots. `uses` counts operand *occurrences*, so a step
    // reading the same value twice (e.g. `Mul(p, p)`) can never absorb it:
    // the chain carries one value, and a multi-use intermediate must
    // materialize for its other reader anyway.
    let mut pred: Vec<Option<usize>> = vec![None; n];
    let mut succ: Vec<Option<usize>> = vec![None; n];
    for i in 0..n {
        let PlanKind::Step { op, .. } = &nodes[i].kind else {
            continue;
        };
        let Some(form) = elem_form(op) else {
            continue;
        };
        let cands = match form {
            ElemForm::Map(_, a) => [Some(a), None],
            ElemForm::Zip(_, a, b) => [Some(a), Some(b)],
        };
        for cand in cands.into_iter().flatten() {
            let p = cand.index();
            if uses[p] != 1 || is_output[p] || succ[p].is_some() {
                continue;
            }
            let PlanKind::Step { op: pop, .. } = &nodes[p].kind else {
                continue;
            };
            if elem_form(pop).is_none() || nodes[p].shape != nodes[i].shape {
                continue;
            }
            pred[i] = Some(p);
            succ[p] = Some(i);
            break;
        }
    }

    // Materialize chains at their tails (a fusible step that absorbed a
    // producer but is not itself absorbed), walking the pred links back to
    // the head. Interior members are deleted from the plan; their external
    // operands become operands of the fused node, which executes at the
    // tail's position — every operand index precedes it, so plan order
    // stays topological.
    let mut removed = vec![false; n];
    let mut chain_at: Vec<Option<FusedChain>> = (0..n).map(|_| None).collect();
    let mut outcome = FuseOutcome::default();
    for i in 0..n {
        if succ[i].is_some() || pred[i].is_none() {
            continue;
        }
        let mut members = vec![i];
        let mut cur = i;
        while let Some(p) = pred[cur] {
            members.push(p);
            cur = p;
        }
        members.reverse();
        let mut lead = Var::from_index(0);
        let mut links = Vec::with_capacity(members.len());
        let mut names = Vec::with_capacity(members.len());
        for (pos, &m) in members.iter().enumerate() {
            let PlanKind::Step { op, .. } = &nodes[m].kind else {
                unreachable!("chain members are steps");
            };
            names.push(op.name());
            let Some(form) = elem_form(op) else {
                unreachable!("chain members are fusible");
            };
            let carry = if pos == 0 {
                None
            } else {
                Some(members[pos - 1])
            };
            let link = match (form, carry) {
                (ElemForm::Map(k, a), None) => {
                    lead = a;
                    FusedLink::Map(k)
                }
                (ElemForm::Map(k, _), Some(_)) => FusedLink::Map(k),
                (ElemForm::Zip(k, a, b), None) => {
                    lead = a;
                    FusedLink::ZipL(k, b)
                }
                (ElemForm::Zip(k, a, b), Some(c)) => {
                    if a.index() == c {
                        FusedLink::ZipL(k, b)
                    } else {
                        FusedLink::ZipR(k, a)
                    }
                }
            };
            links.push(link);
        }
        for &m in &members[..members.len() - 1] {
            removed[m] = true;
        }
        let chain = FusedChain { lead, links, names };
        outcome.chains += 1;
        outcome.steps_fused += chain.steps();
        outcome.passes_saved += 2 * (chain.steps() as u64 - 1);
        chain_at[i] = Some(chain);
    }
    if outcome.chains == 0 {
        return (nodes, outputs.to_vec(), outcome);
    }

    // Compact, dropping interior members and re-indexing every operand.
    let mut final_of = vec![usize::MAX; n];
    let mut kept = 0usize;
    for j in 0..n {
        if !removed[j] {
            final_of[j] = kept;
            kept += 1;
        }
    }
    let remap = |v: Var| Var::from_index(final_of[v.index()]);
    let mut out_nodes: Vec<PlanNode> = Vec::with_capacity(kept);
    for (j, node) in nodes.into_iter().enumerate() {
        if removed[j] {
            continue;
        }
        let kind = match chain_at[j].take() {
            Some(mut chain) => {
                chain.lead = remap(chain.lead);
                for link in &mut chain.links {
                    match link {
                        FusedLink::Map(_) => {}
                        FusedLink::ZipL(_, v) | FusedLink::ZipR(_, v) => *v = remap(*v),
                    }
                }
                PlanKind::Fused {
                    chain,
                    buffer: usize::MAX,
                }
            }
            None => match node.kind {
                PlanKind::Step { op, buffer } => PlanKind::Step {
                    op: crate::opt::remap_op(&op, &final_of),
                    buffer,
                },
                other => other,
            },
        };
        out_nodes.push(PlanNode {
            kind,
            shape: node.shape,
        });
    }
    let out_outputs: Vec<usize> = outputs.iter().map(|&o| final_of[o]).collect();
    (out_nodes, out_outputs, outcome)
}

// ---- the fused interpreter --------------------------------------------------

#[inline]
fn apply_map(kind: MapKind, acc: &mut [f32]) {
    match kind {
        MapKind::Neg => acc.iter_mut().for_each(|x| *x = -*x),
        MapKind::AddScalar(c) => acc.iter_mut().for_each(|x| *x += c),
        MapKind::MulScalar(c) => acc.iter_mut().for_each(|x| *x *= c),
        MapKind::PowScalar(p) => acc.iter_mut().for_each(|x| *x = x.powf(p)),
        MapKind::Sigmoid => acc.iter_mut().for_each(|x| *x = 1.0 / (1.0 + (-*x).exp())),
        MapKind::Tanh => acc.iter_mut().for_each(|x| *x = x.tanh()),
        MapKind::Relu => acc.iter_mut().for_each(|x| *x = x.max(0.0)),
        MapKind::Exp => acc.iter_mut().for_each(|x| *x = x.exp()),
        MapKind::Ln => acc.iter_mut().for_each(|x| *x = x.ln()),
        MapKind::Sqrt => acc.iter_mut().for_each(|x| *x = x.sqrt()),
        MapKind::Abs => acc.iter_mut().for_each(|x| *x = x.abs()),
    }
}

#[inline]
fn apply_zip(kind: ZipKind, carry_left: bool, acc: &mut [f32], src: &[f32]) {
    // One branch-free sweep per (kind, side); the carried side matters for
    // Sub/Div values and for NaN-payload/signed-zero fidelity everywhere.
    match (kind, carry_left) {
        (ZipKind::Add, true) => bin(acc, src, |x, y| x + y),
        (ZipKind::Add, false) => bin(acc, src, |x, y| y + x),
        (ZipKind::Sub, true) => bin(acc, src, |x, y| x - y),
        (ZipKind::Sub, false) => bin(acc, src, |x, y| y - x),
        (ZipKind::Mul, true) => bin(acc, src, |x, y| x * y),
        (ZipKind::Mul, false) => bin(acc, src, |x, y| y * x),
        (ZipKind::Div, true) => bin(acc, src, |x, y| x / y),
        (ZipKind::Div, false) => bin(acc, src, |x, y| y / x),
        (ZipKind::Max, true) => bin(acc, src, f32::max),
        (ZipKind::Max, false) => bin(acc, src, |x, y| f32::max(y, x)),
        (ZipKind::Min, true) => bin(acc, src, f32::min),
        (ZipKind::Min, false) => bin(acc, src, |x, y| f32::min(y, x)),
    }
}

#[inline]
fn bin(acc: &mut [f32], src: &[f32], f: impl Fn(f32, f32) -> f32) {
    for (x, &y) in acc.iter_mut().zip(src) {
        *x = f(*x, y);
    }
}

/// Executes one fused super-step: one pass over memory for the whole
/// chain, block by block. Fans out over the pool when the oracle deems the
/// region profitable; per-element results are independent of blocking and
/// chunking, so parallel and sequential outputs are bit-identical.
pub(crate) fn eval_chain(
    plan: &TapePlan,
    arena: &Arena,
    chain: &FusedChain,
    shape: (usize, usize),
    dst: &mut Matrix,
) {
    dst.reset_shape(shape.0, shape.1);
    let len = dst.len();
    let lead: &[f32] = plan.node_value(arena, chain.lead.index()).data();
    debug_assert_eq!(
        lead.len(),
        len,
        "fused lead shape mismatch in chain {:?}",
        chain.names
    );
    // Operand slices are resolved per block straight from the links: an
    // arena lookup per (block, zip link) is noise next to the block's own
    // memory traffic, and skipping the up-front resolution buffer keeps
    // the per-chain cost allocation-free — these tapes fuse hundreds of
    // chains over matrices small enough for a malloc to show up.
    let run = |lo: usize, out: &mut [f32]| {
        let mut acc = [0.0f32; FUSE_BLOCK];
        let mut base = lo;
        for block in out.chunks_mut(FUSE_BLOCK) {
            let w = block.len();
            acc[..w].copy_from_slice(&lead[base..base + w]);
            for link in &chain.links {
                match *link {
                    FusedLink::Map(k) => apply_map(k, &mut acc[..w]),
                    FusedLink::ZipL(k, v) => {
                        let s = plan.node_value(arena, v.index()).data();
                        apply_zip(k, true, &mut acc[..w], &s[base..base + w]);
                    }
                    FusedLink::ZipR(k, v) => {
                        let s = plan.node_value(arena, v.index()).data();
                        apply_zip(k, false, &mut acc[..w], &s[base..base + w]);
                    }
                }
            }
            block.copy_from_slice(&acc[..w]);
            base += w;
        }
    };
    let decision = pool::cost::decide(chain.region(len));
    if decision.is_parallel() && !pool::in_worker() && pool::threads() > 1 {
        let grain = decision.grain(len);
        let grid = pool::chunk_ranges(len, grain);
        pool::for_each_split(dst.data_mut(), &grid, |lo, chunk| run(lo, chunk));
    } else {
        run(0, dst.data_mut());
    }
}

// ---- the replay-time model --------------------------------------------------

/// Modeled sequential replay time of a plan under a set of calibrated cost
/// constants: per executable node, one step overhead (`task_ns`) plus the
/// larger of its compute time and its memory time (all operand bytes read
/// plus output bytes written). Comparing the model over a fused and an
/// unfused compile of the same tape predicts the fused replay speedup on
/// this hardware — `xtask tape-report` uses it to condition the
/// BENCH_fuse.json speedup gate, so a machine whose calibrated throughput
/// makes the speedup unattainable falls back to a no-regression bound.
pub fn modeled_replay_ns(plan: &TapePlan, consts: &pool::cost::CostConstants) -> f64 {
    let mut total = 0.0f64;
    for i in 0..plan.len() {
        let Some(cost) = plan.node_cost_at(i) else {
            continue;
        };
        let compute = cost.flops as f64 / consts.flops_per_ns.max(1e-9);
        let memory = (cost.in_bytes + cost.out_bytes) as f64 / consts.bytes_per_ns.max(1e-9);
        total += consts.task_ns + compute.max(memory);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opt::{optimize, optimize_with, OptConfig, VERIFY_TOL};
    use crate::{Graph, Matrix};

    fn fused_chains(plan: &TapePlan) -> Vec<&FusedChain> {
        (0..plan.len())
            .filter_map(|i| match &plan.nodes[i].kind {
                PlanKind::Fused { chain, .. } => Some(chain),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn straight_chain_fuses_into_one_super_step() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::from_vec(2, 3, vec![0.2, -0.4, 1.1, 0.9, -1.3, 0.5]));
        let a = g.mul_scalar(x, 2.0);
        let b = g.add_scalar(a, -0.5);
        let c = g.relu(b);
        let d = g.sigmoid(c);
        let out = g.sum_all(d);
        let plan = optimize(&g, &[out], &[x], "fuse::chain");
        let chains = fused_chains(&plan);
        assert_eq!(chains.len(), 1, "one maximal chain expected");
        assert_eq!(chains[0].steps(), 4, "{:?}", chains[0].names);
        assert_eq!(plan.stats().fused_chains, 1);
        assert_eq!(plan.stats().fused_steps, 4);
        plan.verify(&g, VERIFY_TOL).expect("fused replay parity");
        // Fused and unfused compiles agree bit-for-bit.
        let unfused = optimize_with(
            &g,
            &[out],
            &[x],
            "fuse::chain_off",
            OptConfig {
                fuse: false,
                ..OptConfig::default()
            },
        );
        let mut fa = Arena::new();
        let mut ua = Arena::new();
        plan.replay(&mut fa);
        unfused.replay(&mut ua);
        assert_eq!(
            plan.output_value(&fa, 0).data()[0].to_bits(),
            unfused.output_value(&ua, 0).data()[0].to_bits()
        );
    }

    /// Fail-on-old-code pin: a chain must never fuse *across* a multi-use
    /// intermediate — its value has a second reader, so it has to
    /// materialize. An eager fuser that only checked op classes would
    /// inline `sigmoid` into both consumers and either duplicate work or
    /// read a never-written buffer.
    #[test]
    fn multi_use_intermediate_is_never_fused_across() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::from_vec(1, 8, vec![0.3; 8]));
        let s = g.sigmoid(x); // two readers below: must materialize
        let a = g.add_scalar(s, 1.0);
        let b = g.mul_scalar(s, 2.0);
        let joined = g.add(a, b);
        let out = g.sum_all(joined);
        let plan = optimize(&g, &[out], &[x], "fuse::multiuse");
        // Sigmoid survives as its own (unfused) step…
        let sigmoid_steps = (0..plan.len())
            .filter(|&i| {
                matches!(
                    &plan.nodes[i].kind,
                    PlanKind::Step {
                        op: Op::Sigmoid(_),
                        ..
                    }
                )
            })
            .count();
        assert_eq!(sigmoid_steps, 1, "multi-use sigmoid must materialize");
        // …and no fused chain claims it.
        for chain in fused_chains(&plan) {
            assert!(
                !chain.names.contains(&"Sigmoid"),
                "chain crossed a multi-use intermediate: {:?}",
                chain.names
            );
        }
        plan.verify(&g, VERIFY_TOL).expect("fused replay parity");
    }

    #[test]
    fn plan_outputs_are_never_absorbed() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::from_vec(1, 4, vec![0.1, 0.7, -0.2, 0.4]));
        let mid = g.tanh(x); // requested output: must stay addressable
        let y = g.mul_scalar(mid, 3.0);
        let out = g.sum_all(y);
        let plan = optimize(&g, &[out, mid], &[x], "fuse::outputs");
        plan.verify(&g, VERIFY_TOL).expect("fused replay parity");
        let mut arena = Arena::new();
        plan.replay(&mut arena);
        assert_eq!(plan.output_value(&arena, 1).shape(), (1, 4));
    }

    #[test]
    fn carry_side_of_noncommutative_zips_is_preserved() {
        // sub(ln(x), y) carries on the left; sub(y, ln(x)) on the right —
        // both must replay to exactly the recorded values.
        let mut g = Graph::new();
        let x = g.leaf(Matrix::from_vec(1, 6, vec![0.5, 1.5, 2.5, 0.7, 1.1, 3.0]));
        let y = g.leaf(Matrix::from_vec(1, 6, vec![5.0, 4.0, 3.0, 2.0, 1.0, 0.5]));
        let lx = g.ln(x);
        let l = g.sub(lx, y);
        let lx2 = g.exp(x);
        let r = g.sub(y, lx2);
        let j = g.mul(l, r);
        let out = g.sum_all(j);
        let plan = optimize(&g, &[out], &[x, y], "fuse::carry_side");
        assert!(
            !fused_chains(&plan).is_empty(),
            "expected at least one fused chain"
        );
        plan.verify(&g, VERIFY_TOL).expect("fused replay parity");
    }

    #[test]
    fn squaring_via_self_mul_is_not_fused_across() {
        // Mul(p, p): p occurs twice in the operand list, so `uses[p] == 2`
        // and the chain must stop — the carry holds one value per element.
        let mut g = Graph::new();
        let x = g.leaf(Matrix::from_vec(1, 4, vec![0.2, 0.4, 0.6, 0.8]));
        let t = g.tanh(x);
        let sq = g.mul(t, t);
        let out = g.sum_all(sq);
        let plan = optimize(&g, &[out], &[x], "fuse::self_mul");
        for chain in fused_chains(&plan) {
            assert!(
                !chain.names.contains(&"Tanh"),
                "self-mul absorbed its operand: {:?}",
                chain.names
            );
        }
        plan.verify(&g, VERIFY_TOL).expect("fused replay parity");
    }

    #[test]
    fn fused_region_counts_one_memory_pass() {
        let chain = FusedChain {
            lead: Var::from_index(0),
            links: vec![
                FusedLink::Map(MapKind::Relu),
                FusedLink::ZipL(ZipKind::Add, Var::from_index(1)),
                FusedLink::Map(MapKind::Sigmoid),
            ],
            names: vec!["Relu", "Add", "Sigmoid"],
        };
        assert_eq!(chain.reads_per_elem(), 2, "lead + one zip side");
        assert_eq!(chain.flops_per_elem(), 1 + 1 + TRANSCENDENTAL_FLOPS);
        assert!(chain.has_transcendental());
        let r = chain.region(1000);
        assert_eq!(r.items, 1000);
        assert_eq!(r.bytes_per_item, 12.0, "two reads + one write");
    }
}
