//! Dense row-major `f32` matrix used as the value type of every graph node.
//!
//! The matrix is deliberately minimal: the autograd graph in [`crate::graph`]
//! is responsible for composition; this type only knows how to hold data and
//! perform the eager value computations each op needs.
//!
//! The heavy kernels (matmul, elementwise map/zip) fan out over the
//! deterministic pool ([`crate::pool`]) above a size threshold. Both the
//! chunk grid and the per-element accumulation order are derived from the
//! input shape alone, so parallel results are bit-identical to sequential
//! ones at every `PACE_THREADS` setting, and the optimized-tape replay
//! interpreter ([`crate::opt`]) reuses the same kernel for exact parity.

use pace_runtime as pool;
use std::fmt;

/// Height of one `b`-row panel of the blocked matmul kernel: the panel
/// (`MATMUL_PANEL × m` floats of `b`) stays resident in L1/L2 while every
/// output row streams over it. Blocking reorders the *loop nest*, not the
/// per-element accumulation: each `out[i][j]` still sums its `k` products in
/// ascending-`k` order, so blocked, unblocked, and row-parallel results are
/// bit-identical.
const MATMUL_PANEL: usize = 128;

// Whether (and how coarsely) matmul and map/zip fan out over the pool is
// decided by the calibrated profitability oracle (`pool::cost::decide`)
// instead of hand-picked FLOP thresholds: on machines where dispatch
// overhead outweighs the region, the oracle answers `Sequential` and the
// kernels stay inline. The resulting grids are still pure functions of the
// shape and the per-process cost constants — never of the thread count —
// and these regions' results are chunking-independent, so determinism
// across `PACE_THREADS` settings is preserved.

/// Accumulates `av · b_row` into `out_row` — one rank-1 row update of the
/// panel kernel, in ascending-`j` order.
#[inline]
fn axpy_row(out_row: &mut [f32], av: f32, b_row: &[f32]) {
    for (o, &bv) in out_row.iter_mut().zip(b_row) {
        *o += av * bv;
    }
}

/// Computes output rows `[lo, hi)` of `a · b` into `out`, which is the
/// row-major storage of exactly those rows.
///
/// The zero-skip fast path is gated per `b` row: `0 · x` contributes exactly
/// `+0.0` only when `x` is finite (IEEE-754 addition of `+0.0`/`-0.0`
/// products to a non-negative-zero accumulator is the identity), so skipping
/// is bit-transparent there — but `0 · NaN` and `0 · ±Inf` are NaN and must
/// reach the accumulator for non-finite values to propagate (the contract
/// `Graph::push`'s producer tracking and `PACE_FINITE` rely on).
///
/// The skip decision is hoisted out of the inner loop into a per-row-panel
/// mask (`use_k`), so the hot `j`-loop carries no data-dependent branch and
/// the autovectorizer sees straight-line multiply-adds. Runs of four
/// unskipped `b` rows are processed together with the accumulator kept in a
/// register across all four updates — per output element that is the *same
/// sequence* of ascending-`k` adds the scalar path performs, so blocked,
/// unrolled, masked, and row-parallel results stay bit-identical.
fn matmul_rows(out: &mut [f32], a: &Matrix, b: &Matrix, lo: usize, hi: usize, b_finite: &[bool]) {
    let (k, m) = (a.cols, b.cols);
    out.fill(0.0);
    let mut use_k = [false; MATMUL_PANEL];
    for panel in (0..k).step_by(MATMUL_PANEL) {
        let panel_end = (panel + MATMUL_PANEL).min(k);
        let plen = panel_end - panel;
        for i in lo..hi {
            let a_row = &a.data[i * k + panel..i * k + panel_end];
            // Per-(row, panel) skip mask: exactly the products the scalar
            // path skipped (`+0.0` contributions with finite `b`), decided
            // once per `a` element instead of inside the `j`-loop.
            let mut any = false;
            for (off, &av) in a_row.iter().enumerate() {
                let keep = !(av == 0.0 && b_finite[panel + off]);
                use_k[off] = keep;
                any |= keep;
            }
            if !any {
                continue;
            }
            let out_row = &mut out[(i - lo) * m..(i - lo + 1) * m];
            let mut off = 0;
            while off + 4 <= plen {
                if use_k[off] && use_k[off + 1] && use_k[off + 2] && use_k[off + 3] {
                    let kk = panel + off;
                    let (a0, a1, a2, a3) =
                        (a_row[off], a_row[off + 1], a_row[off + 2], a_row[off + 3]);
                    let b0 = &b.data[kk * m..(kk + 1) * m];
                    let b1 = &b.data[(kk + 1) * m..(kk + 2) * m];
                    let b2 = &b.data[(kk + 2) * m..(kk + 3) * m];
                    let b3 = &b.data[(kk + 3) * m..(kk + 4) * m];
                    for ((((o, &v0), &v1), &v2), &v3) in
                        out_row.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3)
                    {
                        // Four sequential adds in ascending-k order — the
                        // accumulator stays in a register, the order is the
                        // scalar path's.
                        let mut acc = *o;
                        acc += a0 * v0;
                        acc += a1 * v1;
                        acc += a2 * v2;
                        acc += a3 * v3;
                        *o = acc;
                    }
                } else {
                    for u in off..off + 4 {
                        if use_k[u] {
                            let kk = panel + u;
                            axpy_row(out_row, a_row[u], &b.data[kk * m..(kk + 1) * m]);
                        }
                    }
                }
                off += 4;
            }
            while off < plen {
                if use_k[off] {
                    let kk = panel + off;
                    axpy_row(out_row, a_row[off], &b.data[kk * m..(kk + 1) * m]);
                }
                off += 1;
            }
        }
    }
}

/// Modeled FLOPs of an `n×k · k×m` product (two per multiply-add), computed
/// entirely in saturating `u64`. The counter once computed `2 * flops` with
/// `flops` saturated in `usize` arithmetic — at `usize::MAX` the doubling
/// wrapped in release and panicked in debug despite the upstream
/// `saturating_mul`s; clamping every stage in `u64` makes pathological
/// shapes saturate instead.
pub(crate) fn matmul_flop_count(n: usize, k: usize, m: usize) -> u64 {
    (n as u64)
        .saturating_mul(k as u64)
        .saturating_mul(m as u64)
        .saturating_mul(2)
}

/// Writes `a · b` into `dst`, reusing `dst`'s allocation. This is the one
/// matmul kernel in the workspace: [`Matrix::matmul`] and the replay
/// interpreter ([`crate::opt`]) both call it, so eager, replayed, sequential
/// and parallel products are bit-identical.
///
/// # Panics
/// Panics when inner dimensions differ.
pub(crate) fn matmul_into(dst: &mut Matrix, a: &Matrix, b: &Matrix) {
    assert_eq!(
        a.cols, b.rows,
        "matmul shape mismatch: {}x{} . {}x{}",
        a.rows, a.cols, b.rows, b.cols
    );
    let (n, k, m) = (a.rows, a.cols, b.cols);
    dst.reset_shape(n, m);
    let b_finite: Vec<bool> = (0..k)
        .map(|r| b.data[r * m..(r + 1) * m].iter().all(|x| x.is_finite()))
        .collect();
    pace_trace::MATMUL_FLOPS.add(matmul_flop_count(n, k, m));
    let decision = pool::cost::decide(pool::cost::RegionCost {
        items: n,
        flops_per_item: 2.0 * k.saturating_mul(m) as f64,
        bytes_per_item: ((k + m) * size_of::<f32>()) as f64,
    });
    if decision.is_parallel() && n > 1 && m > 0 && !pool::in_worker() && pool::threads() > 1 {
        let min_rows = decision.grain(n);
        // Row grid scaled to element offsets, so the pool's write-set
        // checker sees the ranges in output-element coordinates.
        let grid: Vec<(usize, usize)> = pool::chunk_ranges(n, min_rows)
            .into_iter()
            .map(|(lo, hi)| (lo * m, hi * m))
            .collect();
        pool::for_each_split(dst.data.as_mut_slice(), &grid, |lo, chunk| {
            let lo_row = lo / m;
            let hi_row = lo_row + chunk.len() / m;
            matmul_rows(chunk, a, b, lo_row, hi_row, &b_finite);
        });
    } else {
        matmul_rows(&mut dst.data, a, b, 0, n, &b_finite);
    }
}

/// Cost spec of a unary elementwise map over `len` elements: one flop and
/// two `f32` transfers (one read + one write) per element.
pub(crate) fn map_region(len: usize) -> pool::cost::RegionCost {
    pool::cost::RegionCost {
        items: len,
        flops_per_item: 1.0,
        bytes_per_item: (2 * size_of::<f32>()) as f64,
    }
}

/// Cost spec of a binary elementwise zip over `len` elements: one flop and
/// *three* `f32` transfers (two reads + one write) per element. Zips were
/// once costed with the map spec's two transfers, under-counting bandwidth
/// by a third and biasing the oracle toward unprofitable fan-out of
/// bandwidth-bound zips.
pub(crate) fn zip_region(len: usize) -> pool::cost::RegionCost {
    pool::cost::RegionCost {
        items: len,
        flops_per_item: 1.0,
        bytes_per_item: (3 * size_of::<f32>()) as f64,
    }
}

/// The oracle's verdict for a unary map. Callers still gate the fan-out on
/// `!pool::in_worker()` and `pool::threads() > 1` at the site, keeping
/// those checks outside the pool-call span.
fn map_decision(len: usize) -> pool::cost::Decision {
    pool::cost::decide(map_region(len))
}

/// The oracle's verdict for a binary zip (see [`zip_region`]).
fn zip_decision(len: usize) -> pool::cost::Decision {
    pool::cost::decide(zip_region(len))
}

/// Edge of the square tiles [`transpose_into`] blocks the copy into: a
/// 32×32 `f32` tile is 4 KiB read + 4 KiB written, resident in L1 while
/// both the source rows and the destination rows of the tile are streamed.
const TRANSPOSE_TILE: usize = 32;

/// Writes `src`ᵀ into `dst`, reusing `dst`'s allocation. Blocked into
/// [`TRANSPOSE_TILE`]² tiles like the matmul panel kernel: the naive loop
/// walks one side of the copy at a column stride, missing cache on every
/// element for matrices wider than a cache line — and a transpose sits on
/// every gradient path through `Op::MatMul`. Element values are
/// position-copies, so tiling changes only the visit order, never the
/// result.
pub(crate) fn transpose_into(dst: &mut Matrix, src: &Matrix) {
    let (r, c) = src.shape();
    dst.reset_shape(c, r);
    let out = dst.data.as_mut_slice();
    for ci in (0..c).step_by(TRANSPOSE_TILE) {
        let ce = (ci + TRANSPOSE_TILE).min(c);
        for ri in (0..r).step_by(TRANSPOSE_TILE) {
            let re = (ri + TRANSPOSE_TILE).min(r);
            for cc in ci..ce {
                let out_row = &mut out[cc * r + ri..cc * r + re];
                for (rr, o) in (ri..re).zip(out_row) {
                    *o = src.data[rr * c + cc];
                }
            }
        }
    }
}

/// A dense, row-major matrix of `f32` values.
///
/// Scalars are represented as `1×1`, row vectors as `1×n`. All autograd ops
/// operate on this type; shape errors panic with a descriptive message since
/// they are programming errors, not runtime conditions.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: data length {} does not match shape {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::full(rows, cols, 0.0)
    }

    /// Creates a matrix of ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::full(rows, cols, 1.0)
    }

    /// Creates a `1×1` matrix holding a single scalar.
    pub fn scalar(value: f32) -> Self {
        Self::from_vec(1, 1, vec![value])
    }

    /// Creates a `1×n` row vector from a slice.
    pub fn row(values: &[f32]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// True when the matrix is `1×1`.
    #[inline]
    pub fn is_scalar(&self) -> bool {
        self.rows == 1 && self.cols == 1
    }

    /// The single element of a `1×1` matrix.
    ///
    /// # Panics
    /// Panics if the matrix is not `1×1`.
    pub fn as_scalar(&self) -> f32 {
        assert!(
            self.is_scalar(),
            "as_scalar called on {}x{} matrix",
            self.rows,
            self.cols
        );
        self.data[0]
    }

    /// Borrow the underlying row-major data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the underlying row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow one row as a slice.
    #[inline]
    pub fn row_slice(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Applies `f` elementwise, returning a new matrix. Fans out over the
    /// pool for large matrices; elementwise results are independent of the
    /// chunking, so parallel and sequential outputs are identical.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Self {
        let mut data = vec![0.0f32; self.len()];
        let decision = map_decision(self.len());
        if decision.is_parallel() && !pool::in_worker() && pool::threads() > 1 {
            let grain = decision.grain(self.len());
            let grid = pool::chunk_ranges(self.len(), grain);
            pool::for_each_split(&mut data, &grid, |lo, chunk| {
                for (j, o) in chunk.iter_mut().enumerate() {
                    *o = f(self.data[lo + j]);
                }
            });
        } else {
            for (o, &x) in data.iter_mut().zip(&self.data) {
                *o = f(x);
            }
        }
        Self {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Combines two same-shaped matrices elementwise. Fans out over the pool
    /// for large matrices (see [`Matrix::map`]).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn zip(&self, other: &Self, f: impl Fn(f32, f32) -> f32 + Sync) -> Self {
        assert_eq!(
            self.shape(),
            other.shape(),
            "elementwise op on mismatched shapes {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        let mut data = vec![0.0f32; self.len()];
        let decision = zip_decision(self.len());
        if decision.is_parallel() && !pool::in_worker() && pool::threads() > 1 {
            let grain = decision.grain(self.len());
            let grid = pool::chunk_ranges(self.len(), grain);
            pool::for_each_split(&mut data, &grid, |lo, chunk| {
                for (j, o) in chunk.iter_mut().enumerate() {
                    *o = f(self.data[lo + j], other.data[lo + j]);
                }
            });
        } else {
            for ((o, &a), &b) in data.iter_mut().zip(&self.data).zip(&other.data) {
                *o = f(a, b);
            }
        }
        Self {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Matrix product `self · other` — the blocked, pool-parallel kernel
    /// ([`matmul_into`]); `0 · NaN` and `0 · Inf` propagate as NaN.
    ///
    /// # Panics
    /// Panics when inner dimensions differ.
    pub fn matmul(&self, other: &Self) -> Self {
        let mut out = Self {
            rows: 0,
            cols: 0,
            data: Vec::new(),
        };
        matmul_into(&mut out, self, other);
        out
    }

    /// Transposed copy — the tiled kernel ([`transpose_into`]), shared with
    /// the optimized-tape replay interpreter.
    pub fn transpose(&self) -> Self {
        let mut out = Self {
            rows: 0,
            cols: 0,
            data: Vec::new(),
        };
        transpose_into(&mut out, self);
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Column-wise sum, producing a `1×cols` row vector.
    pub fn sum_rows(&self) -> Self {
        let mut out = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            for (o, &x) in out.iter_mut().zip(self.row_slice(r)) {
                *o += x;
            }
        }
        Self {
            rows: 1,
            cols: self.cols,
            data: out,
        }
    }

    /// Stacks `n` copies of a `1×cols` row vector into an `n×cols` matrix.
    ///
    /// # Panics
    /// Panics if the matrix is not a single row.
    pub fn repeat_rows(&self, n: usize) -> Self {
        assert_eq!(self.rows, 1, "repeat_rows requires a 1xN matrix");
        let mut data = Vec::with_capacity(n * self.cols);
        for _ in 0..n {
            data.extend_from_slice(&self.data);
        }
        Self {
            rows: n,
            cols: self.cols,
            data,
        }
    }

    /// Horizontal concatenation of matrices sharing a row count.
    ///
    /// # Panics
    /// Panics when `parts` is empty or row counts differ.
    pub fn concat_cols(parts: &[&Matrix]) -> Self {
        assert!(!parts.is_empty(), "concat_cols of zero matrices");
        let rows = parts[0].rows;
        assert!(
            parts.iter().all(|p| p.rows == rows),
            "concat_cols row mismatch: {:?}",
            parts.iter().map(|p| p.shape()).collect::<Vec<_>>()
        );
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for p in parts {
                data.extend_from_slice(p.row_slice(r));
            }
        }
        Self { rows, cols, data }
    }

    /// Vertical concatenation of matrices sharing a column count.
    ///
    /// # Panics
    /// Panics when `parts` is empty or column counts differ.
    pub fn concat_rows(parts: &[&Matrix]) -> Self {
        assert!(!parts.is_empty(), "concat_rows of zero matrices");
        let cols = parts[0].cols;
        assert!(
            parts.iter().all(|p| p.cols == cols),
            "concat_rows col mismatch: {:?}",
            parts.iter().map(|p| p.shape()).collect::<Vec<_>>()
        );
        let rows: usize = parts.iter().map(|p| p.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            data.extend_from_slice(&p.data);
        }
        Self { rows, cols, data }
    }

    /// Copy of columns `[start, end)`.
    pub fn slice_cols(&self, start: usize, end: usize) -> Self {
        assert!(
            start <= end && end <= self.cols,
            "slice_cols [{start},{end}) out of {}",
            self.cols
        );
        let cols = end - start;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(&self.row_slice(r)[start..end]);
        }
        Self {
            rows: self.rows,
            cols,
            data,
        }
    }

    /// Copy of rows `[start, end)`.
    pub fn slice_rows(&self, start: usize, end: usize) -> Self {
        assert!(
            start <= end && end <= self.rows,
            "slice_rows [{start},{end}) out of {}",
            self.rows
        );
        Self {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }

    /// Reshapes this matrix in place to `rows×cols`, reusing the existing
    /// allocation where possible. Element contents are unspecified afterwards;
    /// callers must overwrite every element. Used by the optimized-tape
    /// replay interpreter ([`crate::opt`]) to recycle arena buffers.
    pub(crate) fn reset_shape(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// True when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.len() <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_roundtrip() {
        let m = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.get(1, 0), 4.0);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_bad_len_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn matmul_known_result() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_vec(2, 2, vec![3., -1., 2., 5.]);
        let i = Matrix::from_vec(2, 2, vec![1., 0., 0., 1.]);
        assert_eq!(a.matmul(&i).data(), a.data());
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn sum_rows_matches_manual() {
        let a = Matrix::from_vec(3, 2, vec![1., 10., 2., 20., 3., 30.]);
        assert_eq!(a.sum_rows().data(), &[6., 60.]);
    }

    #[test]
    fn repeat_rows_stacks() {
        let v = Matrix::row(&[1., 2.]);
        let m = v.repeat_rows(3);
        assert_eq!(m.shape(), (3, 2));
        assert_eq!(m.row_slice(2), &[1., 2.]);
    }

    #[test]
    fn concat_and_slice_cols_roundtrip() {
        let a = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let b = Matrix::from_vec(2, 1, vec![5., 6.]);
        let c = Matrix::concat_cols(&[&a, &b]);
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.row_slice(1), &[3., 4., 6.]);
        assert_eq!(c.slice_cols(0, 2), a);
        assert_eq!(c.slice_cols(2, 3), b);
    }

    #[test]
    fn concat_and_slice_rows_roundtrip() {
        let a = Matrix::from_vec(1, 2, vec![1., 2.]);
        let b = Matrix::from_vec(2, 2, vec![3., 4., 5., 6.]);
        let c = Matrix::concat_rows(&[&a, &b]);
        assert_eq!(c.shape(), (3, 2));
        assert_eq!(c.slice_rows(0, 1), a);
        assert_eq!(c.slice_rows(1, 3), b);
    }

    /// Regression: the zero-skip fast path used to swallow `0 · NaN` and
    /// `0 · Inf` (IEEE says both are NaN), so a non-finite `b` never
    /// propagated through rows of `a` containing zeros — contradicting the
    /// non-finite producer tracking in `Graph::push` and `PACE_FINITE`.
    #[test]
    fn matmul_zero_times_nan_propagates() {
        let a = Matrix::from_vec(1, 2, vec![0.0, 1.0]);
        let b = Matrix::from_vec(2, 2, vec![f32::NAN, 2.0, 3.0, 4.0]);
        let c = a.matmul(&b);
        assert!(
            c.get(0, 0).is_nan(),
            "0·NaN must be NaN, got {}",
            c.get(0, 0)
        );
        assert_eq!(c.get(0, 1), 4.0);

        let inf = Matrix::from_vec(2, 1, vec![f32::INFINITY, 5.0]);
        let z = Matrix::from_vec(1, 2, vec![0.0, 0.0]);
        assert!(z.matmul(&inf).get(0, 0).is_nan(), "0·Inf must be NaN");
    }

    /// The zero-skip must still fire (and stay bit-transparent) when `b` is
    /// finite: a zero row of `a` yields exactly +0.0.
    #[test]
    fn matmul_zero_row_with_finite_b_stays_zero() {
        let a = Matrix::from_vec(2, 2, vec![0.0, 0.0, 1.0, 1.0]);
        let b = Matrix::from_vec(2, 2, vec![-3.0, 7.0, 11.0, -2.0]);
        let c = a.matmul(&b);
        assert_eq!(c.row_slice(0), &[0.0, 0.0]);
        assert_eq!(c.row_slice(1), &[8.0, 5.0]);
    }

    /// Parallel matmul must be bit-identical to sequential for every thread
    /// count — the pool's chunk grid is derived from the shape alone.
    #[test]
    fn matmul_bit_identical_across_thread_counts() {
        // Big enough that a parallel-friendly cost model engages the
        // fan-out; identity must hold whichever way the oracle decides.
        let (n, k, m) = (96, 64, 80);
        let mut state = 0x243f_6a88u32;
        let mut next = || {
            state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            (state >> 8) as f32 / (1 << 24) as f32 - 0.5
        };
        let mut av: Vec<f32> = (0..n * k).map(|_| next()).collect();
        let mut bv: Vec<f32> = (0..k * m).map(|_| next()).collect();
        // Exercise both the skip and NaN paths.
        for i in (0..av.len()).step_by(17) {
            av[i] = 0.0;
        }
        bv[5 * m + 3] = f32::NAN;
        let a = Matrix::from_vec(n, k, av);
        let b = Matrix::from_vec(k, m, bv);
        // Force a parallel-friendly cost model so the fan-out path runs
        // even on machines where calibration would answer Sequential.
        pool::cost::set_constants(Some(pool::cost::CostConstants {
            dispatch_ns: 100.0,
            task_ns: 10.0,
            flops_per_ns: 1.0,
            bytes_per_ns: 1.0,
            effective_parallelism: 8.0,
        }));
        pool::set_threads(1);
        let reference = a.matmul(&b);
        for t in [2usize, 3, 8] {
            pool::set_threads(t);
            let c = a.matmul(&b);
            assert!(
                c.data()
                    .iter()
                    .zip(reference.data())
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "matmul diverged at {t} threads"
            );
        }
        pool::set_threads(0);
        pool::cost::set_constants(None);
    }

    /// Regression: the FLOP counter computed `2 * flops` after `flops` had
    /// already saturated — at `usize::MAX` the doubling wrapped in release
    /// (to `u64::MAX - 1`) and panicked in debug. The whole computation now
    /// runs in saturating `u64`, so pathological shapes clamp to `u64::MAX`.
    #[test]
    fn matmul_flop_count_saturates_instead_of_wrapping() {
        assert_eq!(matmul_flop_count(usize::MAX, usize::MAX, 2), u64::MAX);
        assert_eq!(matmul_flop_count(usize::MAX, 1, 1), u64::MAX);
        // Non-saturating shapes are exact: 2·n·k·m.
        assert_eq!(matmul_flop_count(3, 4, 5), 120);
        assert_eq!(matmul_flop_count(0, 100, 100), 0);
    }

    /// Regression: zips were costed with the map spec (two `f32` transfers
    /// per element), under-counting the two-reads-one-write traffic by a
    /// third and biasing the oracle toward fanning out bandwidth-bound zips.
    #[test]
    fn zip_region_counts_three_float_transfers() {
        let map = map_region(1024);
        let zip = zip_region(1024);
        assert_eq!(map.bytes_per_item, 8.0, "map: one read + one write");
        assert_eq!(zip.bytes_per_item, 12.0, "zip: two reads + one write");
        assert_eq!(map.items, 1024);
        assert_eq!(zip.items, 1024);
        assert_eq!(zip.flops_per_item, 1.0);
    }

    /// The tiled transpose must agree with the naive definition on shapes
    /// around the tile edge (including tall/wide remainders).
    #[test]
    fn transpose_tiled_matches_naive_on_odd_shapes() {
        for &(r, c) in &[(1usize, 1usize), (3, 70), (70, 3), (33, 65), (64, 32)] {
            let src = Matrix::from_vec(r, c, (0..r * c).map(|i| i as f32 * 0.5 - 7.0).collect());
            let t = src.transpose();
            assert_eq!(t.shape(), (c, r));
            for i in 0..r {
                for j in 0..c {
                    assert_eq!(t.get(j, i).to_bits(), src.get(i, j).to_bits());
                }
            }
        }
    }

    #[test]
    fn mean_and_norm() {
        let a = Matrix::from_vec(1, 4, vec![3., 4., 0., 0.]);
        assert!((a.mean() - 1.75).abs() < 1e-6);
        assert!((a.norm() - 5.0).abs() < 1e-6);
    }
}
