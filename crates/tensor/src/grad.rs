//! Reverse-mode differentiation.
//!
//! [`Graph::grad`] walks the tape in reverse topological order and *appends*
//! the gradient computation to the same tape: every vector-Jacobian product
//! is built out of the graph's own primitive ops. The returned gradients are
//! therefore ordinary [`Var`]s and can participate in further computation —
//! including being differentiated again, which is how the PACE bivariate
//! optimization obtains hypergradients through unrolled model updates.

use crate::graph::{Graph, Op, Var};
use crate::matrix::Matrix;
use std::collections::HashMap;

pub(crate) fn op_inputs(op: &Op) -> Vec<Var> {
    match op {
        Op::Leaf => vec![],
        Op::Add(a, b)
        | Op::Sub(a, b)
        | Op::Mul(a, b)
        | Op::Div(a, b)
        | Op::Maximum(a, b)
        | Op::Minimum(a, b)
        | Op::MatMul(a, b)
        | Op::AddRow(a, b)
        | Op::MulRow(a, b)
        | Op::MulCol(a, b) => vec![*a, *b],
        Op::Neg(a)
        | Op::AddScalar(a, _)
        | Op::MulScalar(a, _)
        | Op::PowScalar(a, _)
        | Op::Transpose(a)
        | Op::Sigmoid(a)
        | Op::Tanh(a)
        | Op::Relu(a)
        | Op::Exp(a)
        | Op::Ln(a)
        | Op::Sqrt(a)
        | Op::Abs(a)
        | Op::SumAll(a)
        | Op::MeanAll(a)
        | Op::SumRows(a)
        | Op::MeanRows(a)
        | Op::RepeatRows(a, _)
        | Op::SumCols(a)
        | Op::RepeatCols(a, _)
        | Op::BroadcastScalar(a, _, _)
        | Op::SliceCols(a, _, _)
        | Op::SliceRows(a, _, _) => vec![*a],
        Op::ConcatCols(parts) | Op::ConcatRows(parts) => parts.clone(),
    }
}

impl Graph {
    /// Gradients of a scalar `output` with respect to each var in `wrt`.
    ///
    /// The gradients are new graph nodes (double-backward capable). Vars in
    /// `wrt` that `output` does not depend on receive zero gradients of the
    /// appropriate shape.
    ///
    /// # Panics
    /// Panics when `output` is not a `1×1` scalar node; use
    /// [`Graph::grad_seeded`] for matrix-valued outputs.
    pub fn grad(&mut self, output: Var, wrt: &[Var]) -> Vec<Var> {
        assert_eq!(
            self.shape(output),
            (1, 1),
            "grad requires a scalar output; got {:?}. Use grad_seeded.",
            self.shape(output)
        );
        let seed = self.leaf(Matrix::scalar(1.0));
        self.grad_seeded(output, seed, wrt)
    }

    /// Vector-Jacobian product: gradients of `sum(output ⊙ seed)` w.r.t. `wrt`.
    ///
    /// # Panics
    /// Panics when `seed` and `output` shapes differ.
    pub fn grad_seeded(&mut self, output: Var, seed: Var, wrt: &[Var]) -> Vec<Var> {
        assert_eq!(
            self.shape(output),
            self.shape(seed),
            "grad seed shape {:?} does not match output shape {:?}",
            self.shape(seed),
            self.shape(output)
        );
        let order = self.reverse_topo(output);
        let mut grads: HashMap<usize, Var> = HashMap::with_capacity(order.len());
        grads.insert(output.0, seed);

        for node in order {
            let Some(&g) = grads.get(&node.0) else {
                continue;
            };
            let op = self.op(node).clone();
            self.accumulate_vjp(&op, node, g, &mut grads);
        }

        wrt.iter()
            .map(|w| {
                grads
                    .get(&w.0)
                    .copied()
                    .unwrap_or_else(|| self.zeros_like(*w))
            })
            .collect()
    }

    /// Post-order DFS from `output`, reversed: each node precedes its inputs.
    fn reverse_topo(&self, output: Var) -> Vec<Var> {
        let mut visited = vec![false; self.len()];
        let mut post = Vec::new();
        // (node, inputs_expanded) explicit stack to avoid recursion depth limits.
        let mut stack = vec![(output, false)];
        while let Some((v, expanded)) = stack.pop() {
            if expanded {
                post.push(v);
                continue;
            }
            if visited[v.0] {
                continue;
            }
            visited[v.0] = true;
            stack.push((v, true));
            for inp in op_inputs(self.op(v)) {
                if !visited[inp.0] {
                    stack.push((inp, false));
                }
            }
        }
        post.reverse();
        post
    }

    fn add_grad(&mut self, grads: &mut HashMap<usize, Var>, target: Var, piece: Var) {
        match grads.get(&target.0) {
            Some(&existing) => {
                let sum = self.add(existing, piece);
                grads.insert(target.0, sum);
            }
            None => {
                grads.insert(target.0, piece);
            }
        }
    }

    /// Leaf holding 1.0 where `pred(value)` and 0.0 elsewhere; treated as a
    /// constant by further differentiation (the a.e.-correct sub-gradient).
    fn mask_leaf(&mut self, of: Var, pred: impl Fn(f32) -> bool + Sync) -> Var {
        let m = self.value(of).map(|x| if pred(x) { 1.0 } else { 0.0 });
        self.leaf(m)
    }

    fn accumulate_vjp(&mut self, op: &Op, node: Var, g: Var, grads: &mut HashMap<usize, Var>) {
        match *op {
            Op::Leaf => {}
            Op::Add(a, b) => {
                self.add_grad(grads, a, g);
                self.add_grad(grads, b, g);
            }
            Op::Sub(a, b) => {
                self.add_grad(grads, a, g);
                let nb = self.neg(g);
                self.add_grad(grads, b, nb);
            }
            Op::Mul(a, b) => {
                let ga = self.mul(g, b);
                let gb = self.mul(g, a);
                self.add_grad(grads, a, ga);
                self.add_grad(grads, b, gb);
            }
            Op::Div(a, b) => {
                let ga = self.div(g, b);
                self.add_grad(grads, a, ga);
                // d/db (a/b) = -a / b^2
                let b2 = self.mul(b, b);
                let num = self.mul(g, a);
                let frac = self.div(num, b2);
                let gb = self.neg(frac);
                self.add_grad(grads, b, gb);
            }
            Op::Neg(a) => {
                let ga = self.neg(g);
                self.add_grad(grads, a, ga);
            }
            Op::AddScalar(a, _) => self.add_grad(grads, a, g),
            Op::MulScalar(a, c) => {
                let ga = self.mul_scalar(g, c);
                self.add_grad(grads, a, ga);
            }
            Op::PowScalar(a, p) => {
                // d/da a^p = p * a^(p-1)
                let am1 = self.pow_scalar(a, p - 1.0);
                let scaled = self.mul_scalar(am1, p);
                let ga = self.mul(g, scaled);
                self.add_grad(grads, a, ga);
            }
            Op::MatMul(a, b) => {
                let bt = self.transpose(b);
                let ga = self.matmul(g, bt);
                let at = self.transpose(a);
                let gb = self.matmul(at, g);
                self.add_grad(grads, a, ga);
                self.add_grad(grads, b, gb);
            }
            Op::Transpose(a) => {
                let ga = self.transpose(g);
                self.add_grad(grads, a, ga);
            }
            Op::Sigmoid(a) => {
                // y' = y (1 - y), expressed via the output node itself.
                let ny = self.neg(node);
                let one_minus = self.add_scalar(ny, 1.0);
                let dy = self.mul(node, one_minus);
                let ga = self.mul(g, dy);
                self.add_grad(grads, a, ga);
            }
            Op::Tanh(a) => {
                let y2 = self.mul(node, node);
                let ny2 = self.neg(y2);
                let dy = self.add_scalar(ny2, 1.0);
                let ga = self.mul(g, dy);
                self.add_grad(grads, a, ga);
            }
            Op::Relu(a) => {
                let mask = self.mask_leaf(a, |x| x > 0.0);
                let ga = self.mul(g, mask);
                self.add_grad(grads, a, ga);
            }
            Op::Exp(a) => {
                let ga = self.mul(g, node);
                self.add_grad(grads, a, ga);
            }
            Op::Ln(a) => {
                let ga = self.div(g, a);
                self.add_grad(grads, a, ga);
            }
            Op::Sqrt(a) => {
                // d sqrt = 1 / (2 sqrt(a)) = 0.5 / y
                let half = self.mul_scalar(g, 0.5);
                let ga = self.div(half, node);
                self.add_grad(grads, a, ga);
            }
            Op::Abs(a) => {
                let sign = {
                    let m = self.value(a).map(|x| if x >= 0.0 { 1.0 } else { -1.0 });
                    self.leaf(m)
                };
                let ga = self.mul(g, sign);
                self.add_grad(grads, a, ga);
            }
            Op::Maximum(a, b) => {
                // Ties route the gradient to `a` (consistent with value picking).
                let mask_a = {
                    let va = self.value(a).clone();
                    let m = va.zip(self.value(b), |x, y| if x >= y { 1.0 } else { 0.0 });
                    self.leaf(m)
                };
                let ones = {
                    let (r, c) = self.shape(mask_a);
                    self.leaf(Matrix::ones(r, c))
                };
                let mask_b = self.sub(ones, mask_a);
                let ga = self.mul(g, mask_a);
                let gb = self.mul(g, mask_b);
                self.add_grad(grads, a, ga);
                self.add_grad(grads, b, gb);
            }
            Op::Minimum(a, b) => {
                let mask_a = {
                    let va = self.value(a).clone();
                    let m = va.zip(self.value(b), |x, y| if x <= y { 1.0 } else { 0.0 });
                    self.leaf(m)
                };
                let ones = {
                    let (r, c) = self.shape(mask_a);
                    self.leaf(Matrix::ones(r, c))
                };
                let mask_b = self.sub(ones, mask_a);
                let ga = self.mul(g, mask_a);
                let gb = self.mul(g, mask_b);
                self.add_grad(grads, a, ga);
                self.add_grad(grads, b, gb);
            }
            Op::SumAll(a) => {
                let (r, c) = self.shape(a);
                let ga = self.broadcast_scalar(g, r, c);
                self.add_grad(grads, a, ga);
            }
            Op::MeanAll(a) => {
                let (r, c) = self.shape(a);
                let b = self.broadcast_scalar(g, r, c);
                let ga = self.mul_scalar(b, 1.0 / (r * c) as f32);
                self.add_grad(grads, a, ga);
            }
            Op::SumRows(a) => {
                let n = self.shape(a).0;
                let ga = self.repeat_rows(g, n);
                self.add_grad(grads, a, ga);
            }
            Op::MeanRows(a) => {
                let n = self.shape(a).0;
                let rep = self.repeat_rows(g, n);
                let ga = self.mul_scalar(rep, 1.0 / n as f32);
                self.add_grad(grads, a, ga);
            }
            Op::RepeatRows(a, _) => {
                let ga = self.sum_rows(g);
                self.add_grad(grads, a, ga);
            }
            Op::BroadcastScalar(a, _, _) => {
                let ga = self.sum_all(g);
                self.add_grad(grads, a, ga);
            }
            Op::AddRow(a, row) => {
                self.add_grad(grads, a, g);
                let gr = self.sum_rows(g);
                self.add_grad(grads, row, gr);
            }
            Op::MulRow(a, row) => {
                let n = self.shape(a).0;
                let rep = self.repeat_rows(row, n);
                let ga = self.mul(g, rep);
                self.add_grad(grads, a, ga);
                let prod = self.mul(g, a);
                let gr = self.sum_rows(prod);
                self.add_grad(grads, row, gr);
            }
            Op::MulCol(a, col) => {
                let d = self.shape(a).1;
                let rep = self.repeat_cols(col, d);
                let ga = self.mul(g, rep);
                self.add_grad(grads, a, ga);
                let prod = self.mul(g, a);
                let gc = self.sum_cols(prod);
                self.add_grad(grads, col, gc);
            }
            Op::SumCols(a) => {
                let d = self.shape(a).1;
                let ga = self.repeat_cols(g, d);
                self.add_grad(grads, a, ga);
            }
            Op::RepeatCols(a, _) => {
                let ga = self.sum_cols(g);
                self.add_grad(grads, a, ga);
            }
            Op::ConcatCols(ref parts) => {
                let mut start = 0;
                for &p in parts {
                    let w = self.shape(p).1;
                    let gp = self.slice_cols(g, start, start + w);
                    self.add_grad(grads, p, gp);
                    start += w;
                }
            }
            Op::ConcatRows(ref parts) => {
                let mut start = 0;
                for &p in parts {
                    let h = self.shape(p).0;
                    let gp = self.slice_rows(g, start, start + h);
                    self.add_grad(grads, p, gp);
                    start += h;
                }
            }
            Op::SliceCols(a, start, end) => {
                // Pad the gradient back into the input's column span.
                let (r, c) = self.shape(a);
                let mut parts = Vec::with_capacity(3);
                if start > 0 {
                    parts.push(self.leaf(Matrix::zeros(r, start)));
                }
                parts.push(g);
                if end < c {
                    parts.push(self.leaf(Matrix::zeros(r, c - end)));
                }
                let ga = if parts.len() == 1 {
                    parts[0]
                } else {
                    self.concat_cols(&parts)
                };
                self.add_grad(grads, a, ga);
            }
            Op::SliceRows(a, start, end) => {
                let (r, c) = self.shape(a);
                let mut parts = Vec::with_capacity(3);
                if start > 0 {
                    parts.push(self.leaf(Matrix::zeros(start, c)));
                }
                parts.push(g);
                if end < r {
                    parts.push(self.leaf(Matrix::zeros(r - end, c)));
                }
                let ga = if parts.len() == 1 {
                    parts[0]
                } else {
                    self.concat_rows(&parts)
                };
                self.add_grad(grads, a, ga);
            }
        }
    }
}
