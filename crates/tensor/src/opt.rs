//! Verified optimizing pass pipeline over the tape IR.
//!
//! [`optimize`] compiles a built tape ([`crate::Graph`]) into a [`TapePlan`]
//! — a compact, replayable program — through three classic passes driven by
//! the analyses in [`crate::dataflow`]:
//!
//! 1. **Constant folding**: nodes that do not depend on any designated
//!    *input* (model parameters, the poisoning batch) are materialized as
//!    constants from their recorded values; replay never recomputes them.
//! 2. **Common-subexpression elimination**: structural hashing of
//!    `(op, canonical operands, scalar/size payloads)` merges nodes that
//!    provably compute the same value (all tape ops are pure), and equal
//!    constants are interned by value. The gradient builder is a prolific
//!    duplicator — `transpose(x)` appears once per unrolled SGD step of the
//!    PACE hypergradient, every step re-creates the same `1.0`/`0.0`
//!    scalars — so this pass carries most of the node reduction.
//! 3. **Dead-node elimination**: only ancestors of the requested outputs
//!    survive, including nodes orphaned by folding and merging.
//!
//! The surviving steps are then laid onto a **liveness-driven buffer plan**:
//! each step writes into an [`Arena`] slot, and slots are recycled the
//! moment their value dies, so a replay allocates nothing after warm-up and
//! touches a working set bounded by the tape's peak live bytes rather than
//! its total bytes.
//!
//! Soundness is *checked, not assumed*: [`TapePlan::verify`] replays the
//! plan and compares every requested output against the value eager
//! execution recorded. [`optimize_if_enabled`] — the `PACE_OPT` choke-point
//! hook mirroring `PACE_AUDIT` — verifies on every call, reports mismatches
//! to stderr, and panics under `PACE_OPT=strict`.

use crate::dataflow::{self, expr_key_with, ExprKey};
use crate::grad::op_inputs;
use crate::graph::{Graph, Op, Var};
use crate::matrix::Matrix;
use std::collections::HashMap;

/// Which passes [`optimize_with`] runs. [`OptConfig::default`] enables all
/// of them; [`OptConfig::baseline`] disables all of them, yielding a plan
/// that replays the reachable tape verbatim (the benchmark control).
#[derive(Clone, Copy, Debug)]
pub struct OptConfig {
    /// Materialize input-independent subgraphs as constants.
    pub fold: bool,
    /// Merge structurally identical expressions and equal constants.
    pub cse: bool,
    /// Drop nodes the outputs do not depend on.
    pub dce: bool,
    /// Recycle arena buffers the moment their value dies.
    pub reuse_buffers: bool,
    /// Collapse single-use map/zip chains into fused super-steps executed
    /// in one pass over memory ([`crate::fuse`]).
    pub fuse: bool,
}

impl Default for OptConfig {
    fn default() -> Self {
        Self {
            fold: true,
            cse: true,
            dce: true,
            reuse_buffers: true,
            fuse: true,
        }
    }
}

impl OptConfig {
    /// All passes off: the identity plan over the full tape.
    pub fn baseline() -> Self {
        Self {
            fold: false,
            cse: false,
            dce: false,
            reuse_buffers: false,
            fuse: false,
        }
    }
}

/// What one plan node is.
pub(crate) enum PlanKind {
    /// A materialized value (leaf, designated input, or folded subgraph).
    Const(Matrix),
    /// An op to execute; operand [`Var`]s are *plan* indices, `buffer` is
    /// the arena slot the result is written to.
    Step { op: Op, buffer: usize },
    /// A fused elementwise super-step: a single-use map/zip chain executed
    /// in one pass over memory by [`crate::fuse::eval_chain`]. Writes its
    /// arena slot exactly like a `Step`.
    Fused {
        chain: crate::fuse::FusedChain,
        buffer: usize,
    },
}

pub(crate) struct PlanNode {
    pub(crate) kind: PlanKind,
    pub(crate) shape: (usize, usize),
}

impl PlanNode {
    /// Arena slot this node writes — `None` for constants.
    pub(crate) fn write_buffer(&self) -> Option<usize> {
        match &self.kind {
            PlanKind::Const(_) => None,
            PlanKind::Step { buffer, .. } | PlanKind::Fused { buffer, .. } => Some(*buffer),
        }
    }
}

/// Plan indices a node reads: a step's operands, or a fused chain's lead
/// plus every zip-side source. The interference checker, the buffer
/// allocator, and the scheduler all walk reads through this one lens so
/// fused super-steps inherit their guarantees unchanged.
pub(crate) fn plan_inputs(kind: &PlanKind) -> Vec<Var> {
    match kind {
        PlanKind::Const(_) => Vec::new(),
        PlanKind::Step { op, .. } => op_inputs(op),
        PlanKind::Fused { chain, .. } => chain.inputs(),
    }
}

/// Everything the pipeline measured, for reports and acceptance gates.
#[derive(Clone, Debug, Default)]
pub struct OptStats {
    /// Caller-supplied label of the graph-construction site.
    pub context: String,
    /// Nodes on the original tape.
    pub nodes_before: usize,
    /// Original nodes reachable from the requested outputs.
    pub reachable_before: usize,
    /// Nodes in the optimized plan (constants + steps).
    pub nodes_after: usize,
    /// Plan nodes that are executed ops (the rest are constants).
    pub steps_after: usize,
    /// Non-leaf nodes materialized as constants by folding.
    pub folded: usize,
    /// Nodes merged into an earlier structurally identical node.
    pub cse_merged: usize,
    /// Nodes dropped as dead (unreachable, or orphaned by fold/CSE).
    pub dead_removed: usize,
    /// Estimated FLOPs to execute the reachable original tape.
    pub flops_before: u64,
    /// Estimated FLOPs to execute the plan's steps.
    pub flops_after: u64,
    /// Peak live bytes of the original tape (alloc at def, free at last use).
    pub peak_live_bytes_before: usize,
    /// Plan working set: arena buffer bytes plus resident constant bytes.
    pub peak_live_bytes_after: usize,
    /// Number of arena buffers the plan's steps share.
    pub buffers: usize,
    /// Op histogram of the reachable original tape, most frequent first.
    pub op_histogram: Vec<(&'static str, usize)>,
    /// Fused elementwise super-steps in the plan ([`crate::fuse`]).
    pub fused_chains: usize,
    /// Original steps those chains absorbed.
    pub fused_steps: usize,
    /// Full-buffer memory passes fusion eliminated (one intermediate write
    /// plus one read-back per interior link).
    pub fused_passes_saved: u64,
}

impl OptStats {
    /// Percentage of tape nodes the pipeline removed.
    pub fn node_reduction_pct(&self) -> f64 {
        if self.nodes_before == 0 {
            0.0
        } else {
            100.0 * (self.nodes_before - self.nodes_after) as f64 / self.nodes_before as f64
        }
    }

    /// Renders the stats as a human-readable multi-line report.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== tape opt: {} == {} -> {} nodes (-{:.1}%), {} steps",
            self.context,
            self.nodes_before,
            self.nodes_after,
            self.node_reduction_pct(),
            self.steps_after,
        );
        let _ = writeln!(
            out,
            "   passes: fold {} | cse {} | dce {} (reachable {}/{})",
            self.folded,
            self.cse_merged,
            self.dead_removed,
            self.reachable_before,
            self.nodes_before,
        );
        let _ = writeln!(
            out,
            "   est flops: {} -> {} | peak live: {:.1} KiB -> {:.1} KiB | {} arena buffer(s)",
            self.flops_before,
            self.flops_after,
            self.peak_live_bytes_before as f64 / 1024.0,
            self.peak_live_bytes_after as f64 / 1024.0,
            self.buffers,
        );
        if self.fused_chains > 0 {
            let _ = writeln!(
                out,
                "   fused: {} chain(s) over {} step(s), {} memory pass(es) saved",
                self.fused_chains, self.fused_steps, self.fused_passes_saved,
            );
        }
        let top: Vec<String> = self
            .op_histogram
            .iter()
            .take(10)
            .map(|(name, n)| format!("{name}\u{00d7}{n}"))
            .collect();
        let _ = writeln!(out, "   ops: {}", top.join(" "));
        out
    }
}

/// One row of a profiled replay ([`TapePlan::replay_profiled`]): an op
/// family's measured replay time joined against the `dataflow` static cost
/// model, aggregated over every executed step of that family.
#[derive(Clone, Debug)]
pub struct OpProfile {
    /// Op family name (as in [`OptStats::op_histogram`]).
    pub op: &'static str,
    /// Steps of this family the replay executed.
    pub count: u64,
    /// Modeled FLOPs across those steps ([`dataflow::node_cost`] weights).
    pub flops: u64,
    /// Modeled output bytes across those steps.
    pub out_bytes: u64,
    /// Measured wall time across those steps, nanoseconds.
    pub measured_ns: u64,
}

/// Recycled execution buffers for [`TapePlan::replay`]. Keep one per
/// context and replays allocate nothing once every buffer has been sized.
#[derive(Default)]
pub struct Arena {
    pub(crate) buffers: Vec<Matrix>,
}

impl Arena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes currently held by arena buffers.
    pub fn bytes(&self) -> usize {
        self.buffers
            .iter()
            .map(|b| b.len() * size_of::<f32>())
            .sum()
    }
}

/// A compiled, replayable form of (part of) a tape: the optimized program
/// produced by [`optimize`]. Replaying executes only the surviving steps,
/// writing into recycled [`Arena`] buffers.
pub struct TapePlan {
    pub(crate) nodes: Vec<PlanNode>,
    /// Plan index of each requested output.
    pub(crate) outputs: Vec<usize>,
    /// Original tape index of each requested output (for [`TapePlan::verify`]).
    pub(crate) orig_outputs: Vec<usize>,
    pub(crate) n_buffers: usize,
    pub(crate) stats: OptStats,
}

impl TapePlan {
    /// The pipeline's measurements.
    pub fn stats(&self) -> &OptStats {
        &self.stats
    }

    /// Number of plan nodes (constants + steps).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the plan holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of requested outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Proves the plan's arena assignment race-free: no slot is handed to a
    /// step while a previous tenant's value is still live (see
    /// [`dataflow::check_slot_interference`] for the exact condition). This
    /// is the static half of the concurrency-safety auditor: it guarantees
    /// that [`TapePlan::replay`]'s take-out-the-destination write borrow can
    /// never alias a live operand, for any chunk grid the step's internal
    /// fan-out may choose. `xtask race-report` runs it over the demo tapes;
    /// [`optimize_if_enabled`] runs it at the `PACE_OPT` choke point.
    ///
    /// # Errors
    /// Returns every colliding slot pair when the assignment is dirty.
    pub fn check_interference(
        &self,
    ) -> Result<dataflow::InterferenceStats, Vec<dataflow::SlotInterference>> {
        let mut last_use: Vec<usize> = (0..self.nodes.len()).collect();
        for (j, node) in self.nodes.iter().enumerate() {
            for inp in plan_inputs(&node.kind) {
                last_use[inp.index()] = last_use[inp.index()].max(j);
            }
        }
        for &o in &self.outputs {
            last_use[o] = usize::MAX;
        }
        let steps: Vec<dataflow::SlotStep> = self
            .nodes
            .iter()
            .enumerate()
            .filter_map(|(j, node)| {
                node.write_buffer().map(|slot| dataflow::SlotStep {
                    step: j,
                    slot,
                    last_use: last_use[j],
                })
            })
            .collect();
        dataflow::check_slot_interference(&steps)
    }

    /// Executes every step in order, writing results into `arena`.
    pub fn replay(&self, arena: &mut Arena) {
        if arena.buffers.len() < self.n_buffers {
            arena
                .buffers
                .resize_with(self.n_buffers, || Matrix::zeros(0, 0));
        }
        for i in 0..self.nodes.len() {
            let Some(buffer) = self.nodes[i].write_buffer() else {
                continue;
            };
            // The buffer plan guarantees the destination never aliases a
            // live operand, so it can be taken out for the write borrow.
            let mut dst = std::mem::replace(&mut arena.buffers[buffer], Matrix::zeros(0, 0));
            self.exec_into(arena, i, &mut dst);
            arena.buffers[buffer] = dst;
        }
        pace_trace::REPLAY_NODE_VISITS.add(self.stats.steps_after as u64);
    }

    /// [`TapePlan::replay`] with per-op timing: every executed step is timed
    /// and aggregated by op family, with the `dataflow` static cost model's
    /// FLOP/byte estimate alongside — the join `xtask trace-report` uses to
    /// surface cost-model-vs-reality divergences. Rows are emitted to the
    /// trace ([`pace_trace::emit_op_profile`]) under the plan's context and
    /// returned sorted by measured time, descending.
    ///
    /// Timing is per *step family*, not per element, so the numbers carry
    /// overhead of ~one `Instant` read per step; use `replay` in hot loops.
    pub fn replay_profiled(&self, arena: &mut Arena) -> Vec<OpProfile> {
        if arena.buffers.len() < self.n_buffers {
            arena
                .buffers
                .resize_with(self.n_buffers, || Matrix::zeros(0, 0));
        }
        // BTreeMap keyed by op name: deterministic aggregation order.
        let mut rows: std::collections::BTreeMap<&'static str, OpProfile> =
            std::collections::BTreeMap::new();
        for i in 0..self.nodes.len() {
            let node = &self.nodes[i];
            let name = match &node.kind {
                PlanKind::Const(_) => continue,
                PlanKind::Step { op, .. } => op.name(),
                PlanKind::Fused { .. } => "Fused",
            };
            let Some(buffer) = node.write_buffer() else {
                continue;
            };
            let mut dst = std::mem::replace(&mut arena.buffers[buffer], Matrix::zeros(0, 0));
            let t0 = std::time::Instant::now();
            self.exec_into(arena, i, &mut dst);
            let ns = t0.elapsed().as_nanos() as u64;
            arena.buffers[buffer] = dst;
            let cost = self.node_cost_at(i).unwrap_or_default();
            let row = rows.entry(name).or_insert(OpProfile {
                op: name,
                count: 0,
                flops: 0,
                out_bytes: 0,
                measured_ns: 0,
            });
            row.count += 1;
            row.flops += cost.flops;
            row.out_bytes += cost.out_bytes as u64;
            row.measured_ns += ns;
        }
        pace_trace::REPLAY_NODE_VISITS.add(self.stats.steps_after as u64);
        let mut out: Vec<OpProfile> = rows.into_values().collect();
        out.sort_by(|a, b| b.measured_ns.cmp(&a.measured_ns).then(a.op.cmp(b.op)));
        for row in &out {
            pace_trace::emit_op_profile(
                &self.stats.context,
                row.op,
                row.count,
                row.flops,
                row.out_bytes,
                row.measured_ns,
            );
        }
        out
    }

    /// Static cost of one plan step, mirroring [`dataflow::node_cost`] but
    /// reading shapes from plan nodes (operand [`Var`]s are plan indices).
    pub(crate) fn step_cost(&self, op: &Op, out_shape: (usize, usize)) -> dataflow::Cost {
        let out = (out_shape.0 * out_shape.1) as u64;
        let in_len = |x: Var| {
            let (r, c) = self.nodes[x.index()].shape;
            (r * c) as u64
        };
        let flops = match *op {
            Op::Leaf => 0,
            Op::Sigmoid(_)
            | Op::Tanh(_)
            | Op::Exp(_)
            | Op::Ln(_)
            | Op::Sqrt(_)
            | Op::PowScalar(..) => out * dataflow::TRANSCENDENTAL_FLOPS,
            Op::MatMul(a, b) => {
                let (n, k) = self.nodes[a.index()].shape;
                let m = self.nodes[b.index()].shape.1;
                2 * (n * k * m) as u64
            }
            Op::Transpose(a)
            | Op::SumAll(a)
            | Op::MeanAll(a)
            | Op::SumRows(a)
            | Op::MeanRows(a)
            | Op::SumCols(a) => in_len(a),
            // Everything else (elementwise arithmetic, broadcasts, moves)
            // costs one flop per output element, as in the dataflow model.
            _ => out,
        };
        let in_bytes: usize = op_inputs(op)
            .iter()
            .map(|x| {
                let (r, c) = self.nodes[x.index()].shape;
                r * c * size_of::<f32>()
            })
            .sum();
        dataflow::Cost {
            flops,
            out_bytes: (out_shape.0 * out_shape.1) * size_of::<f32>(),
            in_bytes,
        }
    }

    /// Static cost of executing plan node `idx` — `None` for constants.
    /// Fused super-steps are priced as one pass: the sum of their links'
    /// per-element FLOP weights, reading each source once and writing the
    /// destination once, with no intermediate traffic.
    pub(crate) fn node_cost_at(&self, idx: usize) -> Option<dataflow::Cost> {
        let node = &self.nodes[idx];
        match &node.kind {
            PlanKind::Const(_) => None,
            PlanKind::Step { op, .. } => Some(self.step_cost(op, node.shape)),
            PlanKind::Fused { chain, .. } => {
                let out = (node.shape.0 * node.shape.1) as u64;
                Some(dataflow::Cost {
                    flops: out * chain.flops_per_elem(),
                    out_bytes: node.shape.0 * node.shape.1 * size_of::<f32>(),
                    in_bytes: (out * chain.reads_per_elem()) as usize * size_of::<f32>(),
                })
            }
        }
    }

    /// Value of the `k`-th requested output after [`TapePlan::replay`].
    pub fn output_value<'a>(&'a self, arena: &'a Arena, k: usize) -> &'a Matrix {
        self.node_value(arena, self.outputs[k])
    }

    pub(crate) fn node_value<'a>(&'a self, arena: &'a Arena, idx: usize) -> &'a Matrix {
        match &self.nodes[idx].kind {
            PlanKind::Const(m) => m,
            PlanKind::Step { buffer, .. } | PlanKind::Fused { buffer, .. } => {
                &arena.buffers[*buffer]
            }
        }
    }

    /// Executes plan node `idx` (an op step or a fused super-step), writing
    /// the result into `dst` in place.
    pub(crate) fn exec_into(&self, arena: &Arena, idx: usize, dst: &mut Matrix) {
        let node = &self.nodes[idx];
        match &node.kind {
            PlanKind::Const(_) => unreachable!("constants are never executed"),
            PlanKind::Step { op, .. } => self.eval_into(arena, op, dst),
            PlanKind::Fused { chain, .. } => {
                crate::fuse::eval_chain(self, arena, chain, node.shape, dst)
            }
        }
    }

    /// Replays the plan and compares every output against the value the
    /// eager execution recorded on `g`, within absolute-relative tolerance
    /// `tol`. This is the soundness harness every enabled choke point runs.
    ///
    /// # Errors
    /// Returns a description of the first mismatching output element.
    pub fn verify(&self, g: &Graph, tol: f32) -> Result<(), String> {
        let mut arena = Arena::new();
        self.replay(&mut arena);
        for (k, &orig) in self.orig_outputs.iter().enumerate() {
            let want = g.value(Var::from_index(orig));
            let got = self.output_value(&arena, k);
            if want.shape() != got.shape() {
                return Err(format!(
                    "output {k} (tape n{orig}): replayed shape {:?} != recorded {:?}",
                    got.shape(),
                    want.shape()
                ));
            }
            for (i, (&a, &b)) in got.data().iter().zip(want.data()).enumerate() {
                if !close(a, b, tol) {
                    return Err(format!(
                        "output {k} (tape n{orig}) element {i}: replayed {a} vs recorded {b} \
                         (tol {tol})"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Executes one remapped op, reading operands from constants or arena
    /// buffers and writing the result into `dst` in place.
    pub(crate) fn eval_into(&self, arena: &Arena, op: &Op, dst: &mut Matrix) {
        let v = |x: Var| self.node_value(arena, x.index());
        match *op {
            Op::Leaf => unreachable!("leaves are materialized as plan constants"),
            Op::Add(a, b) => ew2(dst, v(a), v(b), |x, y| x + y),
            Op::Sub(a, b) => ew2(dst, v(a), v(b), |x, y| x - y),
            Op::Mul(a, b) => ew2(dst, v(a), v(b), |x, y| x * y),
            Op::Div(a, b) => ew2(dst, v(a), v(b), |x, y| x / y),
            Op::Maximum(a, b) => ew2(dst, v(a), v(b), f32::max),
            Op::Minimum(a, b) => ew2(dst, v(a), v(b), f32::min),
            Op::Neg(a) => ew1(dst, v(a), |x| -x),
            Op::AddScalar(a, c) => ew1(dst, v(a), |x| x + c),
            Op::MulScalar(a, c) => ew1(dst, v(a), |x| x * c),
            Op::PowScalar(a, p) => ew1(dst, v(a), |x| x.powf(p)),
            Op::Sigmoid(a) => ew1(dst, v(a), |x| 1.0 / (1.0 + (-x).exp())),
            Op::Tanh(a) => ew1(dst, v(a), f32::tanh),
            Op::Relu(a) => ew1(dst, v(a), |x| x.max(0.0)),
            Op::Exp(a) => ew1(dst, v(a), f32::exp),
            Op::Ln(a) => ew1(dst, v(a), f32::ln),
            Op::Sqrt(a) => ew1(dst, v(a), f32::sqrt),
            Op::Abs(a) => ew1(dst, v(a), f32::abs),
            Op::MatMul(a, b) => matmul_into(dst, v(a), v(b)),
            Op::Transpose(a) => crate::matrix::transpose_into(dst, v(a)),
            Op::SumAll(a) => {
                let s: f32 = v(a).data().iter().sum();
                dst.reset_shape(1, 1);
                dst.data_mut()[0] = s;
            }
            Op::MeanAll(a) => {
                let m = v(a);
                dst.reset_shape(1, 1);
                dst.data_mut()[0] = m.mean();
            }
            Op::SumRows(a) => {
                let m = v(a);
                dst.reset_shape(1, m.cols());
                dst.data_mut().fill(0.0);
                for r in 0..m.rows() {
                    for (o, &x) in dst.data_mut().iter_mut().zip(m.row_slice(r)) {
                        *o += x;
                    }
                }
            }
            Op::MeanRows(a) => {
                let m = v(a);
                let n = m.rows() as f32;
                dst.reset_shape(1, m.cols());
                dst.data_mut().fill(0.0);
                for r in 0..m.rows() {
                    for (o, &x) in dst.data_mut().iter_mut().zip(m.row_slice(r)) {
                        *o += x;
                    }
                }
                for o in dst.data_mut() {
                    *o /= n;
                }
            }
            Op::RepeatRows(a, n) => {
                let m = v(a);
                let c = m.cols();
                dst.reset_shape(n, c);
                for r in 0..n {
                    dst.data_mut()[r * c..(r + 1) * c].copy_from_slice(m.data());
                }
            }
            Op::BroadcastScalar(a, r, c) => {
                let s = v(a).as_scalar();
                dst.reset_shape(r, c);
                dst.data_mut().fill(s);
            }
            Op::AddRow(a, row) => {
                let (m, rv) = (v(a), v(row));
                let (n, c) = m.shape();
                dst.reset_shape(n, c);
                for i in 0..n {
                    let base = i * c;
                    for j in 0..c {
                        dst.data_mut()[base + j] = m.data()[base + j] + rv.data()[j];
                    }
                }
            }
            Op::MulRow(a, row) => {
                let (m, rv) = (v(a), v(row));
                let (n, c) = m.shape();
                dst.reset_shape(n, c);
                for i in 0..n {
                    let base = i * c;
                    for j in 0..c {
                        dst.data_mut()[base + j] = m.data()[base + j] * rv.data()[j];
                    }
                }
            }
            Op::MulCol(a, col) => {
                let (m, cv) = (v(a), v(col));
                let (n, c) = m.shape();
                dst.reset_shape(n, c);
                for i in 0..n {
                    let f = cv.data()[i];
                    let base = i * c;
                    for j in 0..c {
                        dst.data_mut()[base + j] = m.data()[base + j] * f;
                    }
                }
            }
            Op::SumCols(a) => {
                let m = v(a);
                dst.reset_shape(m.rows(), 1);
                for r in 0..m.rows() {
                    dst.data_mut()[r] = m.row_slice(r).iter().sum();
                }
            }
            Op::RepeatCols(a, d) => {
                let m = v(a);
                let n = m.rows();
                dst.reset_shape(n, d);
                for r in 0..n {
                    let x = m.data()[r];
                    dst.data_mut()[r * d..(r + 1) * d].fill(x);
                }
            }
            Op::ConcatCols(ref parts) => {
                let mats: Vec<&Matrix> = parts.iter().map(|&p| v(p)).collect();
                let rows = mats[0].rows();
                let cols: usize = mats.iter().map(|m| m.cols()).sum();
                dst.reset_shape(rows, cols);
                let mut cursor = 0;
                for r in 0..rows {
                    for m in &mats {
                        let w = m.cols();
                        dst.data_mut()[cursor..cursor + w].copy_from_slice(m.row_slice(r));
                        cursor += w;
                    }
                }
            }
            Op::ConcatRows(ref parts) => {
                let mats: Vec<&Matrix> = parts.iter().map(|&p| v(p)).collect();
                let cols = mats[0].cols();
                let rows: usize = mats.iter().map(|m| m.rows()).sum();
                dst.reset_shape(rows, cols);
                let mut cursor = 0;
                for m in &mats {
                    dst.data_mut()[cursor..cursor + m.data().len()].copy_from_slice(m.data());
                    cursor += m.data().len();
                }
            }
            Op::SliceCols(a, start, end) => {
                let m = v(a);
                let w = end - start;
                dst.reset_shape(m.rows(), w);
                for r in 0..m.rows() {
                    dst.data_mut()[r * w..(r + 1) * w].copy_from_slice(&m.row_slice(r)[start..end]);
                }
            }
            Op::SliceRows(a, start, end) => {
                let m = v(a);
                let c = m.cols();
                dst.reset_shape(end - start, c);
                dst.data_mut()
                    .copy_from_slice(&m.data()[start * c..end * c]);
            }
        }
    }
}

fn ew1(dst: &mut Matrix, a: &Matrix, f: impl Fn(f32) -> f32) {
    dst.reset_shape(a.rows(), a.cols());
    for (o, &x) in dst.data_mut().iter_mut().zip(a.data()) {
        *o = f(x);
    }
}

fn ew2(dst: &mut Matrix, a: &Matrix, b: &Matrix, f: impl Fn(f32, f32) -> f32) {
    debug_assert_eq!(a.shape(), b.shape());
    dst.reset_shape(a.rows(), a.cols());
    for ((o, &x), &y) in dst.data_mut().iter_mut().zip(a.data()).zip(b.data()) {
        *o = f(x, y);
    }
}

/// The replay interpreter shares [`crate::matrix::matmul_into`] — the one
/// blocked, pool-parallel, NaN-propagating kernel — with eager execution,
/// so replayed values are bit-identical to `Matrix::matmul` at every
/// `PACE_THREADS` setting.
fn matmul_into(dst: &mut Matrix, a: &Matrix, b: &Matrix) {
    crate::matrix::matmul_into(dst, a, b);
}

fn close(a: f32, b: f32, tol: f32) -> bool {
    a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan()) || {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }
}

// ---- the pipeline -----------------------------------------------------------

/// Runs the full pipeline (fold + CSE + DCE + buffer reuse) — see
/// [`optimize_with`].
pub fn optimize(g: &Graph, outputs: &[Var], inputs: &[Var], context: &str) -> TapePlan {
    optimize_with(g, outputs, inputs, context, OptConfig::default())
}

/// Compiles the sub-tape that computes `outputs` into a [`TapePlan`].
///
/// `inputs` are the nodes the caller considers *variable* (parameters, the
/// poisoning batch): they and everything downstream of them stay executable
/// steps; everything else is constant-foldable. Replay reproduces the
/// recorded execution — it is a re-execution of the same values, cheaper by
/// whatever the passes removed, not an evaluation at new inputs.
pub fn optimize_with(
    g: &Graph,
    outputs: &[Var],
    inputs: &[Var],
    context: &str,
    cfg: OptConfig,
) -> TapePlan {
    let n = g.len();
    let mut is_input = vec![false; n];
    for v in inputs {
        if v.index() < n {
            is_input[v.index()] = true;
        }
    }

    // Reachability (the DCE frontier) and the pre-pass measurements.
    let live = dataflow::liveness(g, outputs);
    let reachable: Vec<bool> = if cfg.dce {
        live.reachable.clone()
    } else {
        vec![true; n]
    };
    let reachable_count = live.reachable.iter().filter(|&&r| r).count();
    let mut histogram: HashMap<&'static str, usize> = HashMap::new();
    let cost_before = dataflow::tape_cost(g, outputs);
    for i in 0..n {
        if live.reachable[i] {
            *histogram
                .entry(g.op(Var::from_index(i)).name())
                .or_insert(0) += 1;
        }
    }
    let mut op_histogram: Vec<(&'static str, usize)> = histogram.into_iter().collect();
    op_histogram.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));

    // Forward canonicalization: fold + CSE in one pass over the kept nodes.
    // `canon[i]` is the virtual-plan index original node `i` resolved to.
    enum VKind {
        Const(Matrix),
        Step(Op),
    }
    let mut vnodes: Vec<(VKind, (usize, usize), usize)> = Vec::new(); // kind, shape, orig id
    let mut canon: Vec<usize> = vec![usize::MAX; n];
    let mut varying = vec![false; n];
    let mut expr_table: HashMap<ExprKey, usize> = HashMap::new();
    let mut const_table: HashMap<(usize, usize, Vec<u32>), usize> = HashMap::new();
    let mut folded = 0usize;
    let mut cse_merged = 0usize;

    for i in 0..n {
        if !reachable[i] {
            continue;
        }
        let var = Var::from_index(i);
        let op = g.op(var);
        let is_leaf = matches!(op, Op::Leaf);
        varying[i] = is_input[i]
            || (!is_leaf && (!cfg.fold || op_inputs(op).iter().any(|x| varying[x.index()])));

        if is_leaf || (!varying[i] && cfg.fold) {
            // Constant: a leaf (inputs included — replay re-executes the
            // recorded values), or a foldable input-independent subgraph.
            if !is_leaf {
                folded += 1;
            }
            let value = g.value(var).clone();
            if cfg.cse && !is_input[i] {
                let key = (
                    value.rows(),
                    value.cols(),
                    value
                        .data()
                        .iter()
                        .map(|x| x.to_bits())
                        .collect::<Vec<u32>>(),
                );
                if let Some(&existing) = const_table.get(&key) {
                    cse_merged += 1;
                    canon[i] = existing;
                    continue;
                }
                const_table.insert(key, vnodes.len());
            }
            canon[i] = vnodes.len();
            let shape = value.shape();
            vnodes.push((VKind::Const(value), shape, i));
            continue;
        }

        // Executable step: remap operands, then hash-cons.
        let remapped = remap_op(op, &canon);
        if cfg.cse {
            let mut identity = |j: usize| j;
            if let Some(key) = expr_key_with(&remapped, &mut identity) {
                if let Some(&existing) = expr_table.get(&key) {
                    cse_merged += 1;
                    canon[i] = existing;
                    continue;
                }
                expr_table.insert(key, vnodes.len());
            }
        }
        canon[i] = vnodes.len();
        vnodes.push((VKind::Step(remapped), g.shape(var), i));
    }

    // Plan-level DCE: folding and merging orphan previously-emitted nodes.
    let v_outputs: Vec<usize> = outputs.iter().map(|o| canon[o.index()]).collect();
    let mut v_keep = vec![false; vnodes.len()];
    let mut stack: Vec<usize> = v_outputs.clone();
    while let Some(j) = stack.pop() {
        if v_keep[j] {
            continue;
        }
        v_keep[j] = true;
        if let (VKind::Step(op), ..) = &vnodes[j] {
            for inp in op_inputs(op) {
                if !v_keep[inp.index()] {
                    stack.push(inp.index());
                }
            }
        }
    }
    if !cfg.dce {
        v_keep.iter_mut().for_each(|k| *k = true);
    }

    // Compact into the final plan, remapping operands once more.
    let mut final_of: Vec<usize> = vec![usize::MAX; vnodes.len()];
    let mut nodes: Vec<PlanNode> = Vec::new();
    let mut flops_after = 0u64;
    let mut const_bytes = 0usize;
    for (j, (kind, shape, orig)) in vnodes.into_iter().enumerate() {
        if !v_keep[j] {
            continue;
        }
        final_of[j] = nodes.len();
        match kind {
            VKind::Const(m) => {
                const_bytes += m.len() * size_of::<f32>();
                nodes.push(PlanNode {
                    kind: PlanKind::Const(m),
                    shape,
                });
            }
            VKind::Step(op) => {
                flops_after += dataflow::node_cost(g, Var::from_index(orig)).flops;
                let op = remap_op_final(&op, &final_of);
                nodes.push(PlanNode {
                    kind: PlanKind::Step {
                        op,
                        buffer: usize::MAX,
                    },
                    shape,
                });
            }
        }
    }
    let outputs_final: Vec<usize> = v_outputs.iter().map(|&j| final_of[j]).collect();

    // Elementwise fusion over the compacted plan, *before* buffers exist:
    // absorbed intermediates never get arena slots at all, operand live
    // ranges extend to the fused super-step that now reads them, and the
    // allocator + interference checker below see fused nodes through the
    // same `plan_inputs`/`write_buffer` lens as ordinary steps.
    let nodes_pre_fuse = nodes.len();
    let (mut nodes, outputs_final, fuse_outcome) = if cfg.fuse {
        crate::fuse::fuse_plan_nodes(nodes, &outputs_final)
    } else {
        (nodes, outputs_final, crate::fuse::FuseOutcome::default())
    };

    // Liveness-driven buffer assignment over the final steps.
    let mut last_use: Vec<usize> = (0..nodes.len()).collect();
    for (j, node) in nodes.iter().enumerate() {
        for inp in plan_inputs(&node.kind) {
            last_use[inp.index()] = last_use[inp.index()].max(j);
        }
    }
    for &o in &outputs_final {
        last_use[o] = usize::MAX;
    }
    let mut free: HashMap<(usize, usize), Vec<usize>> = HashMap::new();
    let mut buffer_shapes: Vec<(usize, usize)> = Vec::new();
    for j in 0..nodes.len() {
        let shape = nodes[j].shape;
        if !matches!(nodes[j].kind, PlanKind::Const(_)) {
            let slot = if cfg.reuse_buffers {
                free.get_mut(&shape).and_then(Vec::pop)
            } else {
                None
            };
            let slot = slot.unwrap_or_else(|| {
                buffer_shapes.push(shape);
                buffer_shapes.len() - 1
            });
            match &mut nodes[j].kind {
                PlanKind::Step { buffer, .. } | PlanKind::Fused { buffer, .. } => *buffer = slot,
                PlanKind::Const(_) => {}
            }
        }
        // Release operands whose last use is this step (after assigning the
        // destination, so a dying operand's buffer is never the destination).
        let dying: Vec<usize> = {
            let mut d: Vec<usize> = plan_inputs(&nodes[j].kind)
                .iter()
                .map(|v| v.index())
                .filter(|&o| last_use[o] == j)
                .collect();
            d.sort_unstable();
            d.dedup();
            d
        };
        for o in dying {
            if let Some(buffer) = nodes[o].write_buffer() {
                free.entry(nodes[o].shape).or_default().push(buffer);
            }
        }
    }

    let steps_after = nodes
        .iter()
        .filter(|nd| !matches!(nd.kind, PlanKind::Const(_)))
        .count();
    let arena_bytes: usize = buffer_shapes
        .iter()
        .map(|(r, c)| r * c * size_of::<f32>())
        .sum();
    let nodes_after = nodes.len();
    let stats = OptStats {
        context: context.to_string(),
        nodes_before: n,
        reachable_before: reachable_count,
        nodes_after,
        steps_after,
        folded,
        cse_merged,
        // Counted against the pre-fusion plan: fusion removes nodes too,
        // but those were live, not dead.
        dead_removed: n.saturating_sub(nodes_pre_fuse + cse_merged),
        flops_before: cost_before.flops,
        flops_after,
        peak_live_bytes_before: live.peak_live_bytes,
        peak_live_bytes_after: arena_bytes + const_bytes,
        buffers: buffer_shapes.len(),
        op_histogram,
        fused_chains: fuse_outcome.chains,
        fused_steps: fuse_outcome.steps_fused,
        fused_passes_saved: fuse_outcome.passes_saved,
    };

    TapePlan {
        nodes,
        outputs: outputs_final,
        orig_outputs: outputs.iter().map(|o| o.index()).collect(),
        n_buffers: buffer_shapes.len(),
        stats,
    }
}

/// Rewrites an op's operand [`Var`]s through `map` (tape index → plan index).
pub(crate) fn remap_op(op: &Op, map: &[usize]) -> Op {
    let m = |v: Var| Var::from_index(map[v.index()]);
    match *op {
        Op::Leaf => Op::Leaf,
        Op::Add(a, b) => Op::Add(m(a), m(b)),
        Op::Sub(a, b) => Op::Sub(m(a), m(b)),
        Op::Mul(a, b) => Op::Mul(m(a), m(b)),
        Op::Div(a, b) => Op::Div(m(a), m(b)),
        Op::Neg(a) => Op::Neg(m(a)),
        Op::AddScalar(a, c) => Op::AddScalar(m(a), c),
        Op::MulScalar(a, c) => Op::MulScalar(m(a), c),
        Op::PowScalar(a, p) => Op::PowScalar(m(a), p),
        Op::MatMul(a, b) => Op::MatMul(m(a), m(b)),
        Op::Transpose(a) => Op::Transpose(m(a)),
        Op::Sigmoid(a) => Op::Sigmoid(m(a)),
        Op::Tanh(a) => Op::Tanh(m(a)),
        Op::Relu(a) => Op::Relu(m(a)),
        Op::Exp(a) => Op::Exp(m(a)),
        Op::Ln(a) => Op::Ln(m(a)),
        Op::Sqrt(a) => Op::Sqrt(m(a)),
        Op::Abs(a) => Op::Abs(m(a)),
        Op::Maximum(a, b) => Op::Maximum(m(a), m(b)),
        Op::Minimum(a, b) => Op::Minimum(m(a), m(b)),
        Op::SumAll(a) => Op::SumAll(m(a)),
        Op::MeanAll(a) => Op::MeanAll(m(a)),
        Op::SumRows(a) => Op::SumRows(m(a)),
        Op::MeanRows(a) => Op::MeanRows(m(a)),
        Op::RepeatRows(a, k) => Op::RepeatRows(m(a), k),
        Op::BroadcastScalar(a, r, c) => Op::BroadcastScalar(m(a), r, c),
        Op::AddRow(a, b) => Op::AddRow(m(a), m(b)),
        Op::MulRow(a, b) => Op::MulRow(m(a), m(b)),
        Op::MulCol(a, b) => Op::MulCol(m(a), m(b)),
        Op::SumCols(a) => Op::SumCols(m(a)),
        Op::RepeatCols(a, k) => Op::RepeatCols(m(a), k),
        Op::ConcatCols(ref parts) => Op::ConcatCols(parts.iter().map(|&p| m(p)).collect()),
        Op::ConcatRows(ref parts) => Op::ConcatRows(parts.iter().map(|&p| m(p)).collect()),
        Op::SliceCols(a, s, e) => Op::SliceCols(m(a), s, e),
        Op::SliceRows(a, s, e) => Op::SliceRows(m(a), s, e),
    }
}

fn remap_op_final(op: &Op, map: &[usize]) -> Op {
    remap_op(op, map)
}

// ---- the PACE_OPT choke-point hook -----------------------------------------

/// True when the optimizing pipeline is enabled (`PACE_OPT`, shared
/// `0/1/strict` grammar — see [`crate::flags`]).
pub fn opt_enabled() -> bool {
    crate::flags::OPT.enabled()
}

/// Forces the pipeline on or off for this process, overriding `PACE_OPT`.
pub fn set_opt_enabled(enabled: bool) {
    crate::flags::OPT.set(if enabled {
        crate::flags::FlagMode::On
    } else {
        crate::flags::FlagMode::Off
    });
}

/// Tolerance the choke-point hook verifies optimized replay within.
pub const VERIFY_TOL: f32 = 1e-5;

/// Runs the pipeline and its soundness check when `PACE_OPT` is enabled —
/// the choke-point hook mirroring [`crate::analysis::audit_if_enabled`].
/// Free when disabled. A verification mismatch prints to stderr (and panics
/// under `PACE_OPT=strict`); the first optimization per context prints a
/// one-line summary so an ignored flag is distinguishable from silence.
pub fn optimize_if_enabled(
    g: &Graph,
    outputs: &[Var],
    inputs: &[Var],
    context: &str,
) -> Option<OptStats> {
    if !opt_enabled() {
        return None;
    }
    let plan = optimize(g, outputs, inputs, context);
    if let Err(violations) = plan.check_interference() {
        let rendered: Vec<String> = violations.iter().map(|v| v.to_string()).collect();
        assert!(
            !crate::flags::OPT.strict(),
            "PACE_OPT=strict: arena interference in {context}: {}",
            rendered.join("; ")
        );
        eprintln!(
            "tape opt [{context}]: ARENA INTERFERENCE ({} pair(s)): {}",
            rendered.len(),
            rendered.join("; ")
        );
    }
    if let Err(msg) = plan.verify(g, VERIFY_TOL) {
        assert!(
            !crate::flags::OPT.strict(),
            "PACE_OPT=strict: optimized replay diverged in {context}: {msg}\n{}",
            plan.stats().render()
        );
        eprintln!("tape opt [{context}]: VERIFICATION MISMATCH: {msg}");
        eprintln!("{}", plan.stats().render());
        return Some(plan.stats().clone());
    }
    static SEEN: std::sync::Mutex<Option<Vec<String>>> = std::sync::Mutex::new(None);
    let mut seen = SEEN
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let seen = seen.get_or_insert_with(Vec::new);
    if !seen.iter().any(|c| c == context) {
        seen.push(context.to_string());
        let s = plan.stats();
        eprintln!(
            "tape opt [{context}]: verified — {} -> {} nodes (-{:.1}%), {} steps, \
             fold {} cse {} dce {} (first of many; further clean runs in this context are silent)",
            s.nodes_before,
            s.nodes_after,
            s.node_reduction_pct(),
            s.steps_after,
            s.folded,
            s.cse_merged,
            s.dead_removed,
        );
    }
    Some(plan.stats().clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn replay_outputs(plan: &TapePlan) -> Vec<Matrix> {
        let mut arena = Arena::new();
        plan.replay(&mut arena);
        (0..plan.num_outputs())
            .map(|k| plan.output_value(&arena, k).clone())
            .collect()
    }

    #[test]
    fn dce_drops_dead_nodes() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::row(&[1.0, 2.0]));
        let _dead = g.exp(x);
        let _also_dead = g.tanh(x);
        let y = g.mul(x, x);
        let out = g.sum_all(y);
        let plan = optimize(&g, &[out], &[x], "test::dce");
        assert!(plan.stats().nodes_after < g.len());
        assert!(plan.stats().dead_removed >= 2, "{:?}", plan.stats());
        plan.verify(&g, VERIFY_TOL).expect("replay parity");
    }

    #[test]
    fn cse_merges_identical_expressions() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::row(&[0.5, 1.5]));
        let a = g.sigmoid(x);
        let b = g.sigmoid(x);
        let y = g.add(a, b);
        let out = g.sum_all(y);
        let plan = optimize(&g, &[out], &[x], "test::cse");
        assert!(plan.stats().cse_merged >= 1, "{:?}", plan.stats());
        plan.verify(&g, VERIFY_TOL).expect("replay parity");
    }

    #[test]
    fn cse_merges_across_add_row_broadcast() {
        // Two AddRow broadcasts of the same row onto the same matrix — the
        // broadcast op must participate in structural hashing, not only the
        // plain elementwise ops.
        let mut g = Graph::new();
        let m = g.leaf(Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]));
        let row = g.leaf(Matrix::row(&[10., 20.]));
        let y1 = g.add_row(m, row);
        let y2 = g.add_row(m, row);
        let prod = g.mul(y1, y2);
        let out = g.sum_all(prod);
        let before_nodes = g.len();
        let plan = optimize(&g, &[out], &[m, row], "test::cse_add_row");
        assert!(plan.stats().cse_merged >= 1, "{:?}", plan.stats());
        assert!(plan.stats().nodes_after < before_nodes);
        plan.verify(&g, VERIFY_TOL).expect("replay parity");
    }

    #[test]
    fn folding_materializes_input_independent_subgraphs() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::row(&[1.0, 2.0]));
        let k1 = g.leaf(Matrix::row(&[3.0, 4.0]));
        let k2 = g.leaf(Matrix::row(&[5.0, 6.0]));
        let kprod = g.mul(k1, k2); // input-independent: folds
        let y = g.mul(x, kprod);
        let out = g.sum_all(y);
        let plan = optimize(&g, &[out], &[x], "test::fold");
        assert!(plan.stats().folded >= 1, "{:?}", plan.stats());
        // The folded product replaces the k1/k2 leaves entirely.
        assert!(plan.stats().nodes_after < g.len());
        plan.verify(&g, VERIFY_TOL).expect("replay parity");
    }

    #[test]
    fn constant_interning_merges_equal_leaves() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::row(&[1.0, 2.0]));
        let one_a = g.scalar(1.0);
        let one_b = g.scalar(1.0); // same value, separate leaf
        let sa = g.sum_all(x);
        let t1 = g.add(sa, one_a);
        let t2 = g.add(t1, one_b);
        let plan = optimize(&g, &[t2], &[x], "test::intern");
        assert!(plan.stats().cse_merged >= 1, "{:?}", plan.stats());
        plan.verify(&g, VERIFY_TOL).expect("replay parity");
    }

    #[test]
    fn inputs_are_never_merged_even_when_equal() {
        let mut g = Graph::new();
        let p = g.leaf(Matrix::row(&[1.0]));
        let q = g.leaf(Matrix::row(&[1.0])); // equal value, distinct input
        let s = g.add(p, q);
        let plan = optimize(&g, &[s], &[p, q], "test::inputs");
        // p and q must stay distinct plan nodes.
        assert_eq!(plan.stats().cse_merged, 0, "{:?}", plan.stats());
        plan.verify(&g, VERIFY_TOL).expect("replay parity");
    }

    #[test]
    fn buffer_plan_reuses_slots_on_chains() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::from_vec(4, 4, vec![0.1; 16]));
        let mut h = x;
        for _ in 0..8 {
            h = g.sigmoid(h);
            h = g.add(h, x);
        }
        let out = g.sum_all(h);
        // Fusion off: this test exercises the allocator on a long chain of
        // distinct steps, which fusion would otherwise collapse to one.
        let cfg = OptConfig {
            fuse: false,
            ..OptConfig::default()
        };
        let plan = optimize_with(&g, &[out], &[x], "test::buffers", cfg);
        assert!(
            plan.stats().buffers < plan.stats().steps_after,
            "16 chained steps must share buffers: {:?}",
            plan.stats()
        );
        plan.verify(&g, VERIFY_TOL).expect("replay parity");
    }

    #[test]
    fn interference_check_clean_on_reusing_plan() {
        // Heavy slot reuse (chained same-shape steps) must still prove
        // interference-free: the allocator only frees a slot strictly after
        // its tenant's last use.
        let mut g = Graph::new();
        let x = g.leaf(Matrix::from_vec(4, 4, vec![0.1; 16]));
        let mut h = x;
        for _ in 0..8 {
            h = g.sigmoid(h);
            h = g.add(h, x);
        }
        let out = g.sum_all(h);
        // Fusion off, as in `buffer_plan_reuses_slots_on_chains`: the test
        // needs many reusing steps, not one fused super-step.
        let cfg = OptConfig {
            fuse: false,
            ..OptConfig::default()
        };
        let plan = optimize_with(&g, &[out], &[x], "test::interference", cfg);
        let stats = plan.check_interference().expect("clean arena assignment");
        assert_eq!(stats.steps, plan.stats().steps_after);
        assert_eq!(stats.slots, plan.stats().buffers);
        assert!(
            stats.checked_pairs > 0,
            "a reusing plan must have reuse pairs to check: {stats:?}"
        );
    }

    #[test]
    fn interference_check_catches_seeded_overlap() {
        // Hand-build a plan whose second step takes slot 0 while the first
        // step's value is still live (step 2 reads it) — the fail-on-old-code
        // witness for the static checker.
        let shape = (1, 2);
        let nodes = vec![
            PlanNode {
                kind: PlanKind::Const(Matrix::row(&[1.0, 2.0])),
                shape,
            },
            PlanNode {
                kind: PlanKind::Step {
                    op: Op::Neg(Var::from_index(0)),
                    buffer: 0,
                },
                shape,
            },
            PlanNode {
                kind: PlanKind::Step {
                    op: Op::Neg(Var::from_index(1)),
                    buffer: 0,
                },
                shape,
            },
        ];
        let plan = TapePlan {
            nodes,
            outputs: vec![2],
            orig_outputs: vec![2],
            n_buffers: 1,
            stats: OptStats::default(),
        };
        let violations = plan.check_interference().expect_err("seeded overlap");
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].slot, 0);
        assert_eq!(violations[0].first.step, 1);
        assert_eq!(violations[0].second.step, 2);
        assert!(violations[0].to_string().contains("arena slot 0"));
    }

    #[test]
    fn baseline_config_is_identity() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::row(&[1.0, 2.0]));
        let _dead = g.exp(x);
        let a = g.sigmoid(x);
        let b = g.sigmoid(x);
        let y = g.add(a, b);
        let out = g.sum_all(y);
        let plan = optimize_with(&g, &[out], &[x], "test::baseline", OptConfig::baseline());
        assert_eq!(plan.stats().nodes_after, g.len());
        assert_eq!(plan.stats().cse_merged, 0);
        assert_eq!(plan.stats().folded, 0);
        plan.verify(&g, VERIFY_TOL).expect("replay parity");
    }

    #[test]
    fn replay_covers_whole_op_vocabulary() {
        // The same all-ops graph the auditor's closure test uses: every op
        // kind must round-trip through the interpreter bit-exactly.
        let mut g = Graph::new();
        let a = g.leaf(Matrix::from_vec(2, 3, vec![0.6, 1.1, 0.9, 1.4, 0.7, 1.2]));
        let b = g.leaf(Matrix::from_vec(2, 3, vec![1.3, 0.8, 1.6, 0.9, 1.1, 0.7]));
        let mut acc = g.add(a, b);
        acc = g.mul(acc, a);
        acc = g.sub(acc, b);
        acc = g.div(acc, b);
        acc = g.abs(acc);
        acc = g.add_scalar(acc, 1.0);
        acc = g.sqrt(acc);
        acc = g.ln(acc);
        acc = g.exp(acc);
        acc = g.sigmoid(acc);
        acc = g.tanh(acc);
        acc = g.relu(acc);
        acc = g.neg(acc);
        acc = g.mul_scalar(acc, 0.5);
        acc = g.pow_scalar(acc, 2.0);
        let w = g.leaf(Matrix::from_vec(3, 2, vec![0.4, 1.0, 0.8, 0.5, 1.2, 0.6]));
        let mm = g.matmul(acc, w);
        let mt = g.transpose(mm);
        let mx = g.maximum(mt, mt);
        let mn = g.minimum(mx, mt);
        let sr = g.sum_rows(mn);
        let mr = g.mean_rows(mn);
        let rep = g.repeat_rows(sr, 2);
        let ar = g.add_row(rep, mr);
        let mrow = g.mul_row(ar, mr);
        let sc = g.sum_cols(mrow);
        let mcol = g.mul_col(mrow, sc);
        let rc = g.repeat_cols(sc, 2);
        let cc = g.concat_cols(&[mcol, rc]);
        let cr = g.concat_rows(&[cc, cc]);
        let s1 = g.slice_cols(cr, 0, 2);
        let s2 = g.slice_rows(s1, 0, 2);
        let ma = g.mean_all(s2);
        let bs = g.broadcast_scalar(ma, 2, 2);
        let out = g.sum_all(bs);
        let grads = g.grad(out, &[a, b]);
        let gsum0 = g.sum_all(grads[0]);
        let gsum1 = g.sum_all(grads[1]);
        let gtot = g.add(gsum0, gsum1);
        let grad2 = g.grad(gtot, &[a, b]);

        let mut outputs = vec![out, grads[0], grads[1]];
        outputs.extend(&grad2);
        let plan = optimize(&g, &outputs, &[a, b], "test::vocabulary");
        plan.verify(&g, VERIFY_TOL).expect("replay parity");
        let vals = replay_outputs(&plan);
        assert_eq!(vals[0].shape(), (1, 1));
        assert_eq!(vals[1].shape(), g.shape(a));
        // Replays into a reused arena must stay stable.
        let mut arena = Arena::new();
        plan.replay(&mut arena);
        plan.replay(&mut arena);
        for (k, val) in vals.iter().enumerate() {
            assert_eq!(plan.output_value(&arena, k).data(), val.data());
        }
    }

    #[test]
    fn gradient_tape_optimizes_and_verifies() {
        // A miniature training-step tape: forward + first-order grads.
        let mut g = Graph::new();
        let x = g.leaf(Matrix::from_vec(4, 3, vec![0.3; 12]));
        let w = g.leaf(Matrix::from_vec(3, 2, vec![0.5; 6]));
        let bias = g.leaf(Matrix::row(&[0.1, -0.2]));
        let h = g.matmul(x, w);
        let hb = g.add_row(h, bias);
        let s = g.sigmoid(hb);
        let loss = g.mean_all(s);
        let grads = g.grad(loss, &[w, bias]);
        let mut outputs = vec![loss];
        outputs.extend(&grads);
        let plan = optimize(&g, &outputs, &[w, bias], "test::gradtape");
        plan.verify(&g, VERIFY_TOL).expect("replay parity");
        assert!(plan.stats().nodes_after <= plan.stats().nodes_before);
    }

    #[test]
    fn opt_toggle_controls_hook() {
        set_opt_enabled(false);
        let mut g = Graph::new();
        let x = g.leaf(Matrix::row(&[1.0, 2.0]));
        let y = g.mul(x, x);
        let out = g.sum_all(y);
        assert!(optimize_if_enabled(&g, &[out], &[x], "test::hook_off").is_none());
        set_opt_enabled(true);
        let stats = optimize_if_enabled(&g, &[out], &[x], "test::hook_on").expect("enabled");
        assert_eq!(stats.context, "test::hook_on");
        set_opt_enabled(false);
    }
}
