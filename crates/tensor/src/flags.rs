//! The tape-instrumentation switches, sharing the workspace's `PACE_*`
//! env-flag grammar.
//!
//! The parsing machinery ([`EnvFlag`], [`EnvSpec`], [`FlagMode`]) lives in
//! [`pace_runtime::flags`] — the bottom of the crate stack, so the pool's
//! own switches (`PACE_RACE`, `PACE_SCHED`; see `pace_runtime::race`) can
//! use it too — and is re-exported here unchanged. The grammar, shared by
//! every switch:
//!
//! * `0` (or unset, or anything unrecognized) — off;
//! * `1` / `true` / `on` — enabled: findings are *reported* (a dirty audit
//!   or a pass-verification mismatch prints to stderr, execution continues);
//! * `strict` — enabled, and findings are *fatal*: a dirty audit or an
//!   optimized-replay mismatch panics at the choke point, so CI and
//!   experiment runs cannot silently proceed on a corrupted tape.
//!
//! Each env variable is read once, on first query; tests and embedders can
//! override at any time with [`EnvFlag::set`] / [`EnvSpec::set`].

pub use pace_runtime::flags::{EnvFlag, EnvSpec, FlagMode};

/// The tape-auditor switch (`PACE_AUDIT`); see [`crate::analysis`].
pub static AUDIT: EnvFlag = EnvFlag::new("PACE_AUDIT");

/// The optimizing-pipeline switch (`PACE_OPT`); see [`crate::opt`].
pub static OPT: EnvFlag = EnvFlag::new("PACE_OPT");

/// The snapshot finiteness gate (`PACE_FINITE`); when enabled,
/// [`crate::serialize`] readers reject payloads containing NaN/Inf values
/// instead of loading them into a model.
pub static FINITE: EnvFlag = EnvFlag::new("PACE_FINITE");

/// The fault-injection spec (`PACE_FAULTS`); see [`crate::fault`].
pub static FAULTS: EnvSpec = EnvSpec::new("PACE_FAULTS");
