//! Shared runtime-flag parsing for the tape-instrumentation switches.
//!
//! Both the auditor (`PACE_AUDIT`, [`crate::analysis`]) and the optimizing
//! pass pipeline (`PACE_OPT`, [`crate::opt`]) are opt-in at the workspace's
//! graph-construction choke points and share one env-variable grammar:
//!
//! * `0` (or unset, or anything unrecognized) — off;
//! * `1` / `true` / `on` — enabled: findings are *reported* (a dirty audit
//!   or a pass-verification mismatch prints to stderr, execution continues);
//! * `strict` — enabled, and findings are *fatal*: a dirty audit or an
//!   optimized-replay mismatch panics at the choke point, so CI and
//!   experiment runs cannot silently proceed on a corrupted tape.
//!
//! The env variable is read once, on first query; tests and embedders can
//! override it at any time with [`EnvFlag::set`].

use std::sync::atomic::{AtomicU8, Ordering};

/// The three states a tape-instrumentation flag can be in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlagMode {
    /// Instrumentation disabled (the default).
    Off,
    /// Instrumentation enabled; findings are reported on stderr.
    On,
    /// Instrumentation enabled; findings panic at the choke point.
    Strict,
}

const UNREAD: u8 = 0;
const OFF: u8 = 1;
const ON: u8 = 2;
const STRICT: u8 = 3;

/// A lazily-read, process-global on/off/strict switch backed by an
/// environment variable.
pub struct EnvFlag {
    name: &'static str,
    state: AtomicU8,
}

impl EnvFlag {
    /// Declares a flag backed by the environment variable `name`.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            state: AtomicU8::new(UNREAD),
        }
    }

    /// The environment variable this flag reads.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Parses the shared `0/1/strict` grammar (see the module docs).
    pub fn parse(raw: &str) -> FlagMode {
        match raw.trim().to_ascii_lowercase().as_str() {
            "1" | "true" | "on" => FlagMode::On,
            "strict" => FlagMode::Strict,
            _ => FlagMode::Off,
        }
    }

    /// Current mode, reading the environment variable on first use.
    pub fn mode(&self) -> FlagMode {
        match self.state.load(Ordering::Relaxed) {
            UNREAD => {
                let mode = std::env::var(self.name)
                    .map(|v| Self::parse(&v))
                    .unwrap_or(FlagMode::Off);
                self.state.store(encode(mode), Ordering::Relaxed);
                mode
            }
            OFF => FlagMode::Off,
            ON => FlagMode::On,
            _ => FlagMode::Strict,
        }
    }

    /// Forces the flag for this process, overriding the environment.
    pub fn set(&self, mode: FlagMode) {
        self.state.store(encode(mode), Ordering::Relaxed);
    }

    /// True in [`FlagMode::On`] and [`FlagMode::Strict`].
    pub fn enabled(&self) -> bool {
        self.mode() != FlagMode::Off
    }

    /// True only in [`FlagMode::Strict`].
    pub fn strict(&self) -> bool {
        self.mode() == FlagMode::Strict
    }
}

fn encode(mode: FlagMode) -> u8 {
    match mode {
        FlagMode::Off => OFF,
        FlagMode::On => ON,
        FlagMode::Strict => STRICT,
    }
}

/// The tape-auditor switch (`PACE_AUDIT`); see [`crate::analysis`].
pub static AUDIT: EnvFlag = EnvFlag::new("PACE_AUDIT");

/// The optimizing-pipeline switch (`PACE_OPT`); see [`crate::opt`].
pub static OPT: EnvFlag = EnvFlag::new("PACE_OPT");

/// The snapshot finiteness gate (`PACE_FINITE`); when enabled,
/// [`crate::serialize`] readers reject payloads containing NaN/Inf values
/// instead of loading them into a model.
pub static FINITE: EnvFlag = EnvFlag::new("PACE_FINITE");

/// A lazily-read, process-global *string-valued* environment switch — the
/// free-form companion of [`EnvFlag`] for instrumentation that needs a spec
/// rather than an on/off/strict mode (e.g. the `PACE_FAULTS` fault matrix,
/// [`crate::fault`]). Shares the flag conventions: the variable is read once
/// on first query, unset/`0` means "off", and tests or embedders can override
/// the value at any time with [`EnvSpec::set`].
pub struct EnvSpec {
    name: &'static str,
    state: std::sync::Mutex<Option<Option<String>>>,
}

impl EnvSpec {
    /// Declares a spec backed by the environment variable `name`.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            state: std::sync::Mutex::new(None),
        }
    }

    /// The environment variable this spec reads.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Current value, reading the environment variable on first use. Unset,
    /// empty, and `0` (the [`EnvFlag`] "off" spelling) all yield `None`.
    pub fn get(&self) -> Option<String> {
        let mut state = match self.state.lock() {
            Ok(s) => s,
            Err(poisoned) => poisoned.into_inner(),
        };
        if state.is_none() {
            let raw = std::env::var(self.name).ok();
            let normalized = raw.filter(|v| {
                let t = v.trim();
                !t.is_empty() && t != "0"
            });
            *state = Some(normalized);
        }
        state.as_ref().and_then(Clone::clone)
    }

    /// Forces the value for this process, overriding the environment.
    /// `None` turns the spec off.
    pub fn set(&self, value: Option<String>) {
        let mut state = match self.state.lock() {
            Ok(s) => s,
            Err(poisoned) => poisoned.into_inner(),
        };
        *state = Some(value.filter(|v| {
            let t = v.trim();
            !t.is_empty() && t != "0"
        }));
    }
}

/// The fault-injection spec (`PACE_FAULTS`); see [`crate::fault`].
pub static FAULTS: EnvSpec = EnvSpec::new("PACE_FAULTS");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grammar_covers_on_off_strict() {
        assert_eq!(EnvFlag::parse("1"), FlagMode::On);
        assert_eq!(EnvFlag::parse("true"), FlagMode::On);
        assert_eq!(EnvFlag::parse("ON"), FlagMode::On);
        assert_eq!(EnvFlag::parse("strict"), FlagMode::Strict);
        assert_eq!(EnvFlag::parse("STRICT "), FlagMode::Strict);
        assert_eq!(EnvFlag::parse("0"), FlagMode::Off);
        assert_eq!(EnvFlag::parse(""), FlagMode::Off);
        assert_eq!(EnvFlag::parse("yes?"), FlagMode::Off);
    }

    #[test]
    fn set_overrides_and_sticks() {
        static F: EnvFlag = EnvFlag::new("PACE_TEST_FLAG_NEVER_SET");
        assert!(!F.enabled());
        F.set(FlagMode::Strict);
        assert!(F.enabled());
        assert!(F.strict());
        F.set(FlagMode::On);
        assert!(F.enabled());
        assert!(!F.strict());
        F.set(FlagMode::Off);
        assert!(!F.enabled());
    }
}
