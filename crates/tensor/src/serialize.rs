//! Minimal binary persistence for [`ParamStore`] values and training
//! checkpoints.
//!
//! Trained CE models and attack generators can be snapshotted to disk and
//! restored into an identically-constructed model (same architecture/seed
//! path), without pulling in a serialization framework. Two formats live
//! here:
//!
//! * **`PACEPAR1`** ([`write_params`]/[`read_params`]) — parameter values
//!   only: a magic tag, a parameter count, then per parameter the name
//!   (UTF-8, length-prefixed), shape, and little-endian `f32` data.
//! * **`PACECKP2`** ([`write_checkpoint`]/[`read_checkpoint`]) — a full
//!   training checkpoint: the `PACEPAR1` parameter body plus the Adam
//!   optimizer state (step count, learning rate, first/second moments) and
//!   the `StdRng` state words, wrapped in a length-prefixed, FNV-1a
//!   checksummed envelope so torn writes and bit rot surface as
//!   `InvalidData` instead of a silently wrong resume.
//!
//! Both readers treat *any* malformed input — truncation, oversized length
//! fields, checksum mismatch — as `InvalidData`; they never panic and never
//! allocate more than the receiving store implies. With the `PACE_FINITE`
//! flag enabled ([`crate::flags::FINITE`]) they additionally reject
//! non-finite payload values.

use crate::flags;
use crate::matrix::Matrix;
use crate::optim::AdamState;
use crate::param::ParamStore;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"PACEPAR1";
const CKP_MAGIC: &[u8; 8] = b"PACECKP2";

/// Upper bound on a checkpoint envelope, far above any model in this
/// workspace; length fields past it are corruption, not data.
const MAX_PAYLOAD: u64 = 1 << 31;

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// `read_exact` that reports truncation as `InvalidData`: a short stream is
/// a corrupt snapshot, not an I/O condition the caller can retry.
fn read_bytes(r: &mut impl Read, buf: &mut [u8]) -> io::Result<()> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            invalid("truncated snapshot")
        } else {
            e
        }
    })
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    read_bytes(r, &mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn read_f32(r: &mut impl Read) -> io::Result<f32> {
    let mut buf = [0u8; 4];
    read_bytes(r, &mut buf)?;
    Ok(f32::from_le_bytes(buf))
}

fn check_finite(x: f32, what: &str) -> io::Result<f32> {
    if flags::FINITE.enabled() && !x.is_finite() {
        return Err(invalid(format!("non-finite value in {what} payload")));
    }
    Ok(x)
}

/// Writes every parameter of `store` to `w`.
///
/// # Errors
/// Propagates I/O errors from the writer.
pub fn write_params(store: &ParamStore, w: &mut impl Write) -> io::Result<()> {
    w.write_all(MAGIC)?;
    write_param_body(store, w)
}

fn write_param_body(store: &ParamStore, w: &mut impl Write) -> io::Result<()> {
    w.write_all(&(store.len() as u64).to_le_bytes())?;
    for (id, m) in store.iter() {
        let name = store.name(id).as_bytes();
        w.write_all(&(name.len() as u64).to_le_bytes())?;
        w.write_all(name)?;
        write_matrix(m, w)?;
    }
    Ok(())
}

fn write_matrix(m: &Matrix, w: &mut impl Write) -> io::Result<()> {
    w.write_all(&(m.rows() as u64).to_le_bytes())?;
    w.write_all(&(m.cols() as u64).to_le_bytes())?;
    for &x in m.data() {
        w.write_all(&x.to_le_bytes())?;
    }
    Ok(())
}

/// Reads parameter values written by [`write_params`] into `store`, matching
/// by position and validating names and shapes.
///
/// # Errors
/// Returns `InvalidData` on magic/name/shape mismatches, truncation, and any
/// length field the receiving store doesn't imply (nothing is allocated on
/// the file's say-so alone); propagates genuine I/O errors from the reader.
pub fn read_params(store: &mut ParamStore, r: &mut impl Read) -> io::Result<()> {
    let mut magic = [0u8; 8];
    read_bytes(r, &mut magic)?;
    if &magic != MAGIC {
        return Err(invalid("bad magic"));
    }
    read_param_body(store, r)
}

fn read_param_body(store: &mut ParamStore, r: &mut impl Read) -> io::Result<()> {
    let count = read_u64(r)? as usize;
    if count != store.len() {
        return Err(invalid(format!(
            "parameter count mismatch: file {count}, store {}",
            store.len()
        )));
    }
    let ids: Vec<_> = store.iter().map(|(id, _)| id).collect();
    for id in ids {
        let expected_name = store.name(id).to_string();
        let name_len = read_u64(r)? as usize;
        // Validate the length against the store *before* allocating, so a
        // corrupted length field cannot demand an absurd buffer.
        if name_len != expected_name.len() {
            return Err(invalid(format!(
                "parameter name length mismatch: file {name_len}, store {} ({expected_name:?})",
                expected_name.len()
            )));
        }
        let mut name = vec![0u8; name_len];
        read_bytes(r, &mut name)?;
        let name = String::from_utf8(name).map_err(|_| invalid("non-UTF-8 name"))?;
        if name != expected_name {
            return Err(invalid(format!(
                "parameter name mismatch: file {name:?}, store {expected_name:?}"
            )));
        }
        let expected_shape = store.get(id).shape();
        let m = read_matrix(r, expected_shape, &name)?;
        *store.get_mut(id) = m;
    }
    Ok(())
}

fn read_matrix(r: &mut impl Read, expected: (usize, usize), what: &str) -> io::Result<Matrix> {
    let rows = read_u64(r)? as usize;
    let cols = read_u64(r)? as usize;
    if (rows, cols) != expected {
        return Err(invalid(format!(
            "shape mismatch for {what}: file {rows}x{cols}, expected {}x{}",
            expected.0, expected.1
        )));
    }
    let mut data = vec![0.0f32; rows * cols];
    for x in &mut data {
        *x = check_finite(read_f32(r)?, what)?;
    }
    Ok(Matrix::from_vec(rows, cols, data))
}

/// A training checkpoint: everything mutable in a (model, Adam, RNG) triple.
/// Restoring all three makes the continued run bit-identical to the original.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// Caller-defined position (training step or campaign round).
    pub step: u64,
    /// Adam state, when the training loop uses Adam.
    pub adam: Option<AdamState>,
    /// `StdRng` state words ([`rand::rngs::StdRng::state`]).
    pub rng: [u64; 4],
}

/// Writes a `PACECKP2` checkpoint: `store`'s parameters plus `extras`,
/// wrapped in a length-prefixed, FNV-1a checksummed envelope.
///
/// # Errors
/// Propagates I/O errors from the writer.
pub fn write_checkpoint(
    store: &ParamStore,
    extras: &Checkpoint,
    w: &mut impl Write,
) -> io::Result<()> {
    let mut payload = Vec::new();
    payload.extend_from_slice(&extras.step.to_le_bytes());
    for word in extras.rng {
        payload.extend_from_slice(&word.to_le_bytes());
    }
    write_param_body(store, &mut payload)?;
    match &extras.adam {
        None => payload.push(0),
        Some(adam) => {
            payload.push(1);
            payload.extend_from_slice(&adam.lr.to_le_bytes());
            payload.extend_from_slice(&adam.t.to_le_bytes());
            payload.extend_from_slice(&(adam.m.len() as u64).to_le_bytes());
            for m in adam.m.iter().chain(adam.v.iter()) {
                write_matrix(m, &mut payload)?;
            }
        }
    }
    w.write_all(CKP_MAGIC)?;
    w.write_all(&(payload.len() as u64).to_le_bytes())?;
    w.write_all(&payload)?;
    w.write_all(&fnv1a(&payload).to_le_bytes())?;
    Ok(())
}

/// Reads a checkpoint written by [`write_checkpoint`] into `store`,
/// returning the optimizer/RNG extras. The envelope checksum is verified
/// before any of the payload is interpreted.
///
/// # Errors
/// Returns `InvalidData` for any corruption (bad magic, oversized or
/// truncated envelope, checksum mismatch, malformed payload) and propagates
/// genuine I/O errors from the reader.
pub fn read_checkpoint(store: &mut ParamStore, r: &mut impl Read) -> io::Result<Checkpoint> {
    let mut magic = [0u8; 8];
    read_bytes(r, &mut magic)?;
    if &magic != CKP_MAGIC {
        return Err(invalid("bad checkpoint magic"));
    }
    let len = read_u64(r)?;
    if len > MAX_PAYLOAD {
        return Err(invalid(format!("unreasonable checkpoint size {len}")));
    }
    let mut payload = vec![0u8; len as usize];
    read_bytes(r, &mut payload)?;
    let stored_sum = read_u64(r)?;
    if fnv1a(&payload) != stored_sum {
        return Err(invalid("checkpoint checksum mismatch"));
    }
    let r = &mut payload.as_slice();
    let step = read_u64(r)?;
    let mut rng = [0u64; 4];
    for word in &mut rng {
        *word = read_u64(r)?;
    }
    read_param_body(store, r)?;
    let mut tag = [0u8; 1];
    read_bytes(r, &mut tag)?;
    let adam = match tag[0] {
        0 => None,
        1 => {
            let lr = check_finite(read_f32(r)?, "adam lr")?;
            let t = read_u64(r)?;
            let n = read_u64(r)? as usize;
            if n != 0 && n != store.len() {
                return Err(invalid(format!(
                    "Adam moment count mismatch: file {n}, store {}",
                    store.len()
                )));
            }
            let shapes: Vec<_> = store.iter().map(|(_, p)| p.shape()).collect();
            let mut m = Vec::with_capacity(n);
            for &shape in shapes.iter().take(n) {
                m.push(read_matrix(&mut *r, shape, "adam m")?);
            }
            let mut v = Vec::with_capacity(n);
            for &shape in shapes.iter().take(n) {
                v.push(read_matrix(&mut *r, shape, "adam v")?);
            }
            Some(AdamState { lr, t, m, v })
        }
        other => return Err(invalid(format!("bad Adam presence tag {other}"))),
    };
    if !r.is_empty() {
        return Err(invalid("trailing bytes in checkpoint payload"));
    }
    Ok(Checkpoint { step, adam, rng })
}

/// FNV-1a over `bytes` — a fast non-cryptographic integrity check; it
/// catches torn writes and flipped bits, not adversarial tampering.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> ParamStore {
        let mut ps = ParamStore::new();
        ps.alloc(
            "w",
            Matrix::from_vec(2, 3, vec![1., -2., 3., 0.5, 0.25, -0.125]),
        );
        ps.alloc("b", Matrix::row(&[9.0, -9.0]));
        ps
    }

    #[test]
    fn roundtrip_preserves_values() {
        let src = store();
        let mut buf = Vec::new();
        write_params(&src, &mut buf).expect("write");
        let mut dst = store();
        for (id, _) in dst
            .iter()
            .map(|(id, m)| (id, m.clone()))
            .collect::<Vec<_>>()
        {
            dst.get_mut(id).data_mut().fill(0.0);
        }
        read_params(&mut dst, &mut buf.as_slice()).expect("read");
        for ((_, a), (_, b)) in src.iter().zip(dst.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let mut dst = store();
        let err = read_params(&mut dst, &mut &b"NOTPACE1xxxx"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_mismatched_store() {
        let src = store();
        let mut buf = Vec::new();
        write_params(&src, &mut buf).expect("write");
        let mut other = ParamStore::new();
        other.alloc("w", Matrix::zeros(2, 3));
        let err = read_params(&mut other, &mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_wrong_shape() {
        let src = store();
        let mut buf = Vec::new();
        write_params(&src, &mut buf).expect("write");
        let mut other = ParamStore::new();
        other.alloc("w", Matrix::zeros(3, 2));
        other.alloc("b", Matrix::zeros(1, 2));
        let err = read_params(&mut other, &mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_stream_is_invalid_data() {
        let src = store();
        let mut buf = Vec::new();
        write_params(&src, &mut buf).expect("write");
        buf.truncate(buf.len() - 3);
        let mut dst = store();
        let err = read_params(&mut dst, &mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversized_name_length_is_rejected_without_allocation() {
        // Hand-build a stream whose name length claims 2^60 bytes: the
        // reader must reject it from the store's expectation, not try to
        // allocate.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&2u64.to_le_bytes());
        buf.extend_from_slice(&(1u64 << 60).to_le_bytes());
        let mut dst = store();
        let err = read_params(&mut dst, &mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn finite_flag_rejects_nan_payload() {
        let mut src = store();
        let id = src.iter().next().map(|(id, _)| id).expect("param");
        src.get_mut(id).data_mut()[0] = f32::NAN;
        let mut buf = Vec::new();
        write_params(&src, &mut buf).expect("write");
        let mut dst = store();
        flags::FINITE.set(flags::FlagMode::On);
        let err = read_params(&mut dst, &mut buf.as_slice()).unwrap_err();
        flags::FINITE.set(flags::FlagMode::Off);
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        read_params(&mut dst, &mut buf.as_slice()).expect("flag off admits NaN");
    }

    fn checkpoint_fixture() -> (ParamStore, Checkpoint) {
        let ps = store();
        let adam = AdamState {
            lr: 1e-3,
            t: 17,
            m: ps.iter().map(|(_, p)| p.clone()).collect(),
            v: ps
                .iter()
                .map(|(_, p)| Matrix::zeros(p.rows(), p.cols()))
                .collect(),
        };
        let extras = Checkpoint {
            step: 42,
            adam: Some(adam),
            rng: [1, 2, 3, u64::MAX],
        };
        (ps, extras)
    }

    #[test]
    fn checkpoint_roundtrip_preserves_everything() {
        let (src, extras) = checkpoint_fixture();
        let mut buf = Vec::new();
        write_checkpoint(&src, &extras, &mut buf).expect("write");
        let mut dst = store();
        for (id, _) in dst
            .iter()
            .map(|(id, m)| (id, m.clone()))
            .collect::<Vec<_>>()
        {
            dst.get_mut(id).data_mut().fill(0.0);
        }
        let restored = read_checkpoint(&mut dst, &mut buf.as_slice()).expect("read");
        assert_eq!(restored, extras);
        for ((_, a), (_, b)) in src.iter().zip(dst.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn checkpoint_without_adam_roundtrips() {
        let src = store();
        let extras = Checkpoint {
            step: 7,
            adam: None,
            rng: [0; 4],
        };
        let mut buf = Vec::new();
        write_checkpoint(&src, &extras, &mut buf).expect("write");
        let mut dst = store();
        let restored = read_checkpoint(&mut dst, &mut buf.as_slice()).expect("read");
        assert_eq!(restored, extras);
    }

    #[test]
    fn checkpoint_corruption_fuzz_every_byte() {
        // Flip every byte of a small checkpoint (one at a time) and require
        // the reader to fail with InvalidData — never panic, never succeed
        // with silently different state... with one principled exception: a
        // flip confined to f32 payload bytes changes values without breaking
        // the structure, which only the checksum can catch — and it does.
        let (src, extras) = checkpoint_fixture();
        let mut clean = Vec::new();
        write_checkpoint(&src, &extras, &mut clean).expect("write");
        for i in 0..clean.len() {
            for bit in [0x01u8, 0x80u8] {
                let mut corrupt = clean.clone();
                corrupt[i] ^= bit;
                let mut dst = store();
                let err = read_checkpoint(&mut dst, &mut corrupt.as_slice())
                    .expect_err(&format!("byte {i} flipped by {bit:#04x} accepted"));
                assert_eq!(
                    err.kind(),
                    io::ErrorKind::InvalidData,
                    "byte {i} flip produced {err:?}"
                );
            }
        }
    }

    #[test]
    fn checkpoint_truncation_fuzz() {
        let (src, extras) = checkpoint_fixture();
        let mut clean = Vec::new();
        write_checkpoint(&src, &extras, &mut clean).expect("write");
        for cut in 0..clean.len() {
            let mut dst = store();
            let err = read_checkpoint(&mut dst, &mut &clean[..cut])
                .expect_err(&format!("truncation at {cut} accepted"));
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "cut at {cut}");
        }
    }
}
