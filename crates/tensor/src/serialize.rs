//! Minimal binary persistence for [`ParamStore`] values.
//!
//! Trained CE models and attack generators can be snapshotted to disk and
//! restored into an identically-constructed model (same architecture/seed
//! path), without pulling in a serialization framework. The format is
//! deliberately simple: a magic tag, a parameter count, then per parameter
//! the name (UTF-8, length-prefixed), shape, and little-endian `f32` data.

use crate::matrix::Matrix;
use crate::param::ParamStore;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"PACEPAR1";

/// Writes every parameter of `store` to `w`.
///
/// # Errors
/// Propagates I/O errors from the writer.
pub fn write_params(store: &ParamStore, w: &mut impl Write) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&(store.len() as u64).to_le_bytes())?;
    for (id, m) in store.iter() {
        let name = store.name(id).as_bytes();
        w.write_all(&(name.len() as u64).to_le_bytes())?;
        w.write_all(name)?;
        w.write_all(&(m.rows() as u64).to_le_bytes())?;
        w.write_all(&(m.cols() as u64).to_le_bytes())?;
        for &x in m.data() {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Reads parameter values written by [`write_params`] into `store`, matching
/// by position and validating names and shapes.
///
/// # Errors
/// Returns `InvalidData` on magic/name/shape mismatches, and propagates I/O
/// errors from the reader.
pub fn read_params(store: &mut ParamStore, r: &mut impl Read) -> io::Result<()> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let count = read_u64(r)? as usize;
    if count != store.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "parameter count mismatch: file {count}, store {}",
                store.len()
            ),
        ));
    }
    let ids: Vec<_> = store.iter().map(|(id, _)| id).collect();
    for id in ids {
        let name_len = read_u64(r)? as usize;
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name = String::from_utf8(name)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 name"))?;
        if name != store.name(id) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "parameter name mismatch: file {name:?}, store {:?}",
                    store.name(id)
                ),
            ));
        }
        let rows = read_u64(r)? as usize;
        let cols = read_u64(r)? as usize;
        if (rows, cols) != store.get(id).shape() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("shape mismatch for {name}: file {rows}x{cols}"),
            ));
        }
        let mut data = vec![0.0f32; rows * cols];
        let mut buf = [0u8; 4];
        for x in &mut data {
            r.read_exact(&mut buf)?;
            *x = f32::from_le_bytes(buf);
        }
        *store.get_mut(id) = Matrix::from_vec(rows, cols, data);
    }
    Ok(())
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> ParamStore {
        let mut ps = ParamStore::new();
        ps.alloc(
            "w",
            Matrix::from_vec(2, 3, vec![1., -2., 3., 0.5, 0.25, -0.125]),
        );
        ps.alloc("b", Matrix::row(&[9.0, -9.0]));
        ps
    }

    #[test]
    fn roundtrip_preserves_values() {
        let src = store();
        let mut buf = Vec::new();
        write_params(&src, &mut buf).expect("write");
        let mut dst = store();
        for (id, _) in dst
            .iter()
            .map(|(id, m)| (id, m.clone()))
            .collect::<Vec<_>>()
        {
            dst.get_mut(id).data_mut().fill(0.0);
        }
        read_params(&mut dst, &mut buf.as_slice()).expect("read");
        for ((_, a), (_, b)) in src.iter().zip(dst.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let mut dst = store();
        let err = read_params(&mut dst, &mut &b"NOTPACE1xxxx"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_mismatched_store() {
        let src = store();
        let mut buf = Vec::new();
        write_params(&src, &mut buf).expect("write");
        let mut other = ParamStore::new();
        other.alloc("w", Matrix::zeros(2, 3));
        let err = read_params(&mut other, &mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_wrong_shape() {
        let src = store();
        let mut buf = Vec::new();
        write_params(&src, &mut buf).expect("write");
        let mut other = ParamStore::new();
        other.alloc("w", Matrix::zeros(3, 2));
        other.alloc("b", Matrix::zeros(1, 2));
        let err = read_params(&mut other, &mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_stream_errors_cleanly() {
        let src = store();
        let mut buf = Vec::new();
        write_params(&src, &mut buf).expect("write");
        buf.truncate(buf.len() - 3);
        let mut dst = store();
        assert!(read_params(&mut dst, &mut buf.as_slice()).is_err());
    }
}
