//! The autograd graph.
//!
//! Values are computed eagerly: every op appends a node holding its result,
//! and returns a [`Var`] handle. Differentiation ([`Graph::grad`]) *builds new
//! nodes* for the gradients — the vector-Jacobian product of every op is
//! itself expressed through graph ops — so gradients are first-class values
//! that can be differentiated again. This double-backward capability is what
//! lets the PACE attack differentiate through unrolled SGD updates of a
//! surrogate model (a hypergradient).

use crate::matrix::Matrix;

/// Handle to a node in a [`Graph`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Var(pub(crate) usize);

impl Var {
    /// Position of this node on its tape (nodes are appended in creation
    /// order, so indices double as topological order).
    pub fn index(self) -> usize {
        self.0
    }

    pub(crate) fn from_index(i: usize) -> Self {
        Var(i)
    }
}

/// The primitive operations of the graph.
///
/// Every op's VJP is expressible in terms of other ops in this enum, which is
/// the invariant that makes higher-order differentiation work.
#[derive(Clone, Debug)]
pub(crate) enum Op {
    /// Input / constant. Gradients do not flow past leaves.
    Leaf,
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    Div(Var, Var),
    Neg(Var),
    AddScalar(Var, f32),
    MulScalar(Var, f32),
    PowScalar(Var, f32),
    MatMul(Var, Var),
    Transpose(Var),
    Sigmoid(Var),
    Tanh(Var),
    Relu(Var),
    Exp(Var),
    Ln(Var),
    Sqrt(Var),
    Abs(Var),
    Maximum(Var, Var),
    Minimum(Var, Var),
    SumAll(Var),
    MeanAll(Var),
    SumRows(Var),
    MeanRows(Var),
    /// Stacks a `1×d` row the recorded number of times into `n×d`.
    RepeatRows(Var, usize),
    /// Broadcasts a `1×1` scalar to the recorded `r×c` shape.
    BroadcastScalar(Var, usize, usize),
    /// `n×d` plus a `1×d` row broadcast over every row (bias add).
    AddRow(Var, Var),
    /// `n×d` times a `1×d` row broadcast over every row.
    MulRow(Var, Var),
    /// `n×d` times an `n×1` column broadcast over every column.
    MulCol(Var, Var),
    /// Row-wise sum: `n×d → n×1`.
    SumCols(Var),
    /// Stacks an `n×1` column the recorded number of times into `n×d`.
    RepeatCols(Var, usize),
    ConcatCols(Vec<Var>),
    ConcatRows(Vec<Var>),
    SliceCols(Var, usize, usize),
    SliceRows(Var, usize, usize),
}

impl Op {
    /// The variant's bare name (without operands), for reports and counters.
    pub(crate) fn name(&self) -> &'static str {
        match self {
            Op::Leaf => "Leaf",
            Op::Add(..) => "Add",
            Op::Sub(..) => "Sub",
            Op::Mul(..) => "Mul",
            Op::Div(..) => "Div",
            Op::Neg(_) => "Neg",
            Op::AddScalar(..) => "AddScalar",
            Op::MulScalar(..) => "MulScalar",
            Op::PowScalar(..) => "PowScalar",
            Op::MatMul(..) => "MatMul",
            Op::Transpose(_) => "Transpose",
            Op::Sigmoid(_) => "Sigmoid",
            Op::Tanh(_) => "Tanh",
            Op::Relu(_) => "Relu",
            Op::Exp(_) => "Exp",
            Op::Ln(_) => "Ln",
            Op::Sqrt(_) => "Sqrt",
            Op::Abs(_) => "Abs",
            Op::Maximum(..) => "Maximum",
            Op::Minimum(..) => "Minimum",
            Op::SumAll(_) => "SumAll",
            Op::MeanAll(_) => "MeanAll",
            Op::SumRows(_) => "SumRows",
            Op::MeanRows(_) => "MeanRows",
            Op::RepeatRows(..) => "RepeatRows",
            Op::BroadcastScalar(..) => "BroadcastScalar",
            Op::AddRow(..) => "AddRow",
            Op::MulRow(..) => "MulRow",
            Op::MulCol(..) => "MulCol",
            Op::SumCols(_) => "SumCols",
            Op::RepeatCols(..) => "RepeatCols",
            Op::ConcatCols(_) => "ConcatCols",
            Op::ConcatRows(_) => "ConcatRows",
            Op::SliceCols(..) => "SliceCols",
            Op::SliceRows(..) => "SliceRows",
        }
    }
}

struct Node {
    op: Op,
    value: Matrix,
}

/// An append-only autograd tape.
///
/// A `Graph` is cheap to create; training loops typically build one per step
/// and drop it afterwards. All [`Var`] handles are only meaningful with the
/// graph that created them.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
    /// First node whose value contains a non-finite element, with the op's
    /// name — set once and kept, so the *origin* of a NaN/Inf cascade stays
    /// attributable (see [`Graph::first_nonfinite`]).
    first_nonfinite: Option<(Var, &'static str)>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes currently on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, op: Op, value: Matrix) -> Var {
        // Non-finite values are recorded, not rejected: `Ln`/`Div`/`Sqrt` on
        // degenerate inputs legitimately occur mid-training (and are often
        // masked out downstream), but the *first* producer must stay
        // attributable so a poisoned-loss NaN can be traced to its origin
        // instead of surfacing as a mystery deep inside an attack loop.
        if self.first_nonfinite.is_none() && !value.all_finite() {
            self.first_nonfinite = Some((Var(self.nodes.len()), op.name()));
        }
        self.nodes.push(Node { op, value });
        Var(self.nodes.len() - 1)
    }

    /// The first node whose value contains a NaN or ±Inf, with the producing
    /// op's name — `None` while every value on the tape is finite. Surfaced
    /// by [`crate::analysis::audit`] so non-finite losses are attributable.
    pub fn first_nonfinite(&self) -> Option<(Var, &'static str)> {
        self.first_nonfinite
    }

    /// Appends a node without executing its op — the test hook that lets the
    /// analysis suite seed tapes whose recorded values *disagree* with their
    /// op semantics. Never used by the real op constructors.
    #[cfg(test)]
    pub(crate) fn push_raw(&mut self, op: Op, value: Matrix) -> Var {
        self.push(op, value)
    }

    /// Value of a node (eagerly computed at creation time).
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// Shape of a node's value.
    pub fn shape(&self, v: Var) -> (usize, usize) {
        self.nodes[v.0].value.shape()
    }

    // ---- leaves -----------------------------------------------------------

    /// Registers a constant/input leaf.
    pub fn leaf(&mut self, value: Matrix) -> Var {
        self.push(Op::Leaf, value)
    }

    /// Convenience scalar leaf.
    pub fn scalar(&mut self, value: f32) -> Var {
        self.leaf(Matrix::scalar(value))
    }

    /// A leaf of zeros with the same shape as `like`.
    pub fn zeros_like(&mut self, like: Var) -> Var {
        let (r, c) = self.shape(like);
        self.leaf(Matrix::zeros(r, c))
    }

    // ---- elementwise binary ----------------------------------------------

    /// Elementwise sum of equal-shaped operands.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0]
            .value
            .zip(&self.nodes[b.0].value, |x, y| x + y);
        self.push(Op::Add(a, b), v)
    }

    /// Elementwise difference of equal-shaped operands.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0]
            .value
            .zip(&self.nodes[b.0].value, |x, y| x - y);
        self.push(Op::Sub(a, b), v)
    }

    /// Elementwise product of equal-shaped operands.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0]
            .value
            .zip(&self.nodes[b.0].value, |x, y| x * y);
        self.push(Op::Mul(a, b), v)
    }

    /// Elementwise quotient of equal-shaped operands.
    pub fn div(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0]
            .value
            .zip(&self.nodes[b.0].value, |x, y| x / y);
        self.push(Op::Div(a, b), v)
    }

    /// Elementwise maximum of equal-shaped operands.
    pub fn maximum(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.zip(&self.nodes[b.0].value, f32::max);
        self.push(Op::Maximum(a, b), v)
    }

    /// Elementwise minimum of equal-shaped operands.
    pub fn minimum(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.zip(&self.nodes[b.0].value, f32::min);
        self.push(Op::Minimum(a, b), v)
    }

    // ---- elementwise unary -------------------------------------------------

    /// Elementwise negation.
    pub fn neg(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(|x| -x);
        self.push(Op::Neg(a), v)
    }

    /// Adds a scalar constant to every element.
    pub fn add_scalar(&mut self, a: Var, c: f32) -> Var {
        let v = self.nodes[a.0].value.map(|x| x + c);
        self.push(Op::AddScalar(a, c), v)
    }

    /// Multiplies every element by a scalar constant.
    pub fn mul_scalar(&mut self, a: Var, c: f32) -> Var {
        let v = self.nodes[a.0].value.map(|x| x * c);
        self.push(Op::MulScalar(a, c), v)
    }

    /// Raises every element to a constant power.
    pub fn pow_scalar(&mut self, a: Var, p: f32) -> Var {
        let v = self.nodes[a.0].value.map(|x| x.powf(p));
        self.push(Op::PowScalar(a, p), v)
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(Op::Sigmoid(a), v)
    }

    /// Elementwise hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(f32::tanh);
        self.push(Op::Tanh(a), v)
    }

    /// Elementwise rectifier.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(|x| x.max(0.0));
        self.push(Op::Relu(a), v)
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(f32::exp);
        self.push(Op::Exp(a), v)
    }

    /// Elementwise natural logarithm.
    pub fn ln(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(f32::ln);
        self.push(Op::Ln(a), v)
    }

    /// Elementwise square root.
    pub fn sqrt(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(f32::sqrt);
        self.push(Op::Sqrt(a), v)
    }

    /// Elementwise absolute value (sub-gradient `sign(x)` at 0).
    pub fn abs(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(f32::abs);
        self.push(Op::Abs(a), v)
    }

    // ---- linear algebra ----------------------------------------------------

    /// Matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        self.push(Op::MatMul(a, b), v)
    }

    /// Transpose.
    pub fn transpose(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.transpose();
        self.push(Op::Transpose(a), v)
    }

    // ---- reductions & broadcasts -------------------------------------------

    /// Sum of all elements, producing a `1×1` scalar node.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let v = Matrix::scalar(self.nodes[a.0].value.sum());
        self.push(Op::SumAll(a), v)
    }

    /// Mean of all elements, producing a `1×1` scalar node.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let v = Matrix::scalar(self.nodes[a.0].value.mean());
        self.push(Op::MeanAll(a), v)
    }

    /// Column sums: `n×d → 1×d`.
    pub fn sum_rows(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.sum_rows();
        self.push(Op::SumRows(a), v)
    }

    /// Column means: `n×d → 1×d`.
    pub fn mean_rows(&mut self, a: Var) -> Var {
        let m = &self.nodes[a.0].value;
        let n = m.rows() as f32;
        let mut v = m.sum_rows();
        for x in v.data_mut() {
            *x /= n;
        }
        self.push(Op::MeanRows(a), v)
    }

    /// Stacks a `1×d` row `n` times into `n×d`.
    pub fn repeat_rows(&mut self, a: Var, n: usize) -> Var {
        let v = self.nodes[a.0].value.repeat_rows(n);
        self.push(Op::RepeatRows(a, n), v)
    }

    /// Broadcasts a `1×1` scalar node to an `r×c` matrix.
    pub fn broadcast_scalar(&mut self, a: Var, r: usize, c: usize) -> Var {
        let s = self.nodes[a.0].value.as_scalar();
        self.push(Op::BroadcastScalar(a, r, c), Matrix::full(r, c, s))
    }

    /// Adds a `1×d` row vector to every row of an `n×d` matrix.
    pub fn add_row(&mut self, a: Var, row: Var) -> Var {
        let m = &self.nodes[a.0].value;
        let r = &self.nodes[row.0].value;
        assert_eq!(r.rows(), 1, "add_row rhs must be 1xN");
        assert_eq!(m.cols(), r.cols(), "add_row dim mismatch");
        let mut out = m.clone();
        for i in 0..out.rows() {
            let base = i * out.cols();
            for j in 0..out.cols() {
                out.data_mut()[base + j] += r.data()[j];
            }
        }
        self.push(Op::AddRow(a, row), out)
    }

    /// Multiplies every row of an `n×d` matrix by a `1×d` row vector.
    pub fn mul_row(&mut self, a: Var, row: Var) -> Var {
        let m = &self.nodes[a.0].value;
        let r = &self.nodes[row.0].value;
        assert_eq!(r.rows(), 1, "mul_row rhs must be 1xN");
        assert_eq!(m.cols(), r.cols(), "mul_row dim mismatch");
        let mut out = m.clone();
        for i in 0..out.rows() {
            let base = i * out.cols();
            for j in 0..out.cols() {
                out.data_mut()[base + j] *= r.data()[j];
            }
        }
        self.push(Op::MulRow(a, row), out)
    }

    /// Multiplies every column of an `n×d` matrix by an `n×1` column vector.
    pub fn mul_col(&mut self, a: Var, col: Var) -> Var {
        let m = &self.nodes[a.0].value;
        let c = &self.nodes[col.0].value;
        assert_eq!(c.cols(), 1, "mul_col rhs must be Nx1");
        assert_eq!(m.rows(), c.rows(), "mul_col dim mismatch");
        let mut out = m.clone();
        for r in 0..out.rows() {
            let f = c.data()[r];
            let base = r * out.cols();
            for j in 0..out.cols() {
                out.data_mut()[base + j] *= f;
            }
        }
        self.push(Op::MulCol(a, col), out)
    }

    /// Row sums: `n×d → n×1`.
    pub fn sum_cols(&mut self, a: Var) -> Var {
        let m = &self.nodes[a.0].value;
        let data: Vec<f32> = (0..m.rows()).map(|r| m.row_slice(r).iter().sum()).collect();
        let v = Matrix::from_vec(m.rows(), 1, data);
        self.push(Op::SumCols(a), v)
    }

    /// Stacks an `n×1` column `d` times into `n×d`.
    pub fn repeat_cols(&mut self, a: Var, d: usize) -> Var {
        let m = &self.nodes[a.0].value;
        assert_eq!(m.cols(), 1, "repeat_cols requires Nx1");
        let mut data = Vec::with_capacity(m.rows() * d);
        for r in 0..m.rows() {
            let x = m.data()[r];
            data.extend(std::iter::repeat_n(x, d));
        }
        let v = Matrix::from_vec(m.rows(), d, data);
        self.push(Op::RepeatCols(a, d), v)
    }

    // ---- structural ----------------------------------------------------------

    /// Horizontal concatenation.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        let mats: Vec<&Matrix> = parts.iter().map(|p| &self.nodes[p.0].value).collect();
        let v = Matrix::concat_cols(&mats);
        self.push(Op::ConcatCols(parts.to_vec()), v)
    }

    /// Vertical concatenation.
    pub fn concat_rows(&mut self, parts: &[Var]) -> Var {
        let mats: Vec<&Matrix> = parts.iter().map(|p| &self.nodes[p.0].value).collect();
        let v = Matrix::concat_rows(&mats);
        self.push(Op::ConcatRows(parts.to_vec()), v)
    }

    /// Copy of columns `[start, end)`.
    pub fn slice_cols(&mut self, a: Var, start: usize, end: usize) -> Var {
        let v = self.nodes[a.0].value.slice_cols(start, end);
        self.push(Op::SliceCols(a, start, end), v)
    }

    /// Copy of rows `[start, end)`.
    pub fn slice_rows(&mut self, a: Var, start: usize, end: usize) -> Var {
        let v = self.nodes[a.0].value.slice_rows(start, end);
        self.push(Op::SliceRows(a, start, end), v)
    }

    pub(crate) fn op(&self, v: Var) -> &Op {
        &self.nodes[v.0].op
    }

    /// Renders the tape as Graphviz DOT — a debugging aid for inspecting the
    /// structure the attack's unrolled updates build. Large graphs render
    /// slowly in viewers; prefer dumping small repros.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out =
            String::from("digraph tape {\n  rankdir=LR;\n  node [shape=box, fontsize=9];\n");
        for (i, node) in self.nodes.iter().enumerate() {
            let (r, c) = node.value.shape();
            let label = format!("{:?}", node.op);
            let op_name = label.split(['(', ' ']).next().unwrap_or("?");
            let _ = writeln!(out, "  n{i} [label=\"{i}: {op_name} {r}x{c}\"];");
        }
        for (i, node) in self.nodes.iter().enumerate() {
            for inp in crate::grad::op_inputs(&node.op) {
                let _ = writeln!(out, "  n{} -> n{i};", inp.0);
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eager_values() {
        let mut g = Graph::new();
        let a = g.leaf(Matrix::row(&[1.0, 2.0]));
        let b = g.leaf(Matrix::row(&[3.0, 4.0]));
        let c = g.add(a, b);
        assert_eq!(g.value(c).data(), &[4.0, 6.0]);
        let d = g.mul(c, c);
        assert_eq!(g.value(d).data(), &[16.0, 36.0]);
        let s = g.sum_all(d);
        assert_eq!(g.value(s).as_scalar(), 52.0);
    }

    #[test]
    fn add_row_broadcasts() {
        let mut g = Graph::new();
        let m = g.leaf(Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]));
        let b = g.leaf(Matrix::row(&[10., 20.]));
        let out = g.add_row(m, b);
        assert_eq!(g.value(out).data(), &[11., 22., 13., 24.]);
    }

    #[test]
    fn mul_row_broadcasts() {
        let mut g = Graph::new();
        let m = g.leaf(Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]));
        let b = g.leaf(Matrix::row(&[10., 0.]));
        let out = g.mul_row(m, b);
        assert_eq!(g.value(out).data(), &[10., 0., 30., 0.]);
    }

    #[test]
    fn broadcast_scalar_fills() {
        let mut g = Graph::new();
        let s = g.scalar(2.5);
        let m = g.broadcast_scalar(s, 2, 3);
        assert_eq!(g.shape(m), (2, 3));
        assert!(g.value(m).data().iter().all(|&x| x == 2.5));
    }
}

#[cfg(test)]
mod dot_tests {
    use super::*;

    #[test]
    fn to_dot_emits_every_node_and_edge() {
        let mut g = Graph::new();
        let a = g.leaf(Matrix::row(&[1.0, 2.0]));
        let b = g.sigmoid(a);
        let c = g.mul(a, b);
        let _ = g.sum_all(c);
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph tape {"));
        assert!(dot.contains("n0 [label=\"0: Leaf 1x2\"]"));
        assert!(dot.contains("n0 -> n1;"));
        assert!(dot.contains("n1 -> n2;"));
        assert_eq!(dot.matches("->").count(), 4); // sigmoid + mul(2) + sum
    }
}
