//! `pace-tensor` — a minimal, dependency-light autograd engine.
//!
//! This crate is the deep-learning substrate of the PACE reproduction. It
//! provides:
//!
//! * [`Matrix`] — a dense row-major `f32` matrix;
//! * [`Graph`]/[`Var`] — an eager, append-only autograd tape whose backward
//!   pass *builds graph nodes*, so gradients are differentiable again
//!   (double backward). This property is load-bearing: PACE's bivariate
//!   optimization (paper Eq. 10) needs hypergradients through `K` unrolled
//!   SGD updates of a surrogate cardinality-estimation model;
//! * [`nn`] — dense/MLP/RNN/LSTM building blocks whose forward passes read
//!   parameters through a [`Binding`], allowing evaluation at parameters
//!   that only exist inside a graph;
//! * [`optim`] — SGD and Adam, plus gradient clipping;
//! * [`check`] — finite-difference gradient checkers used by test suites;
//! * [`analysis`] — the tape auditor (`PACE_AUDIT`): shape inference,
//!   numerical-hazard scan, zero-gradient detection, double-backward closure;
//! * [`dataflow`] / [`opt`] — compiler-style static analyses (use-def,
//!   liveness, available expressions, cost model) and the verified
//!   optimizing pass pipeline (`PACE_OPT`): constant folding, CSE, dead-node
//!   elimination, liveness-driven buffer reuse, replay verification;
//! * [`flags`] — the shared `0/1/strict` environment-flag grammar;
//! * [`fault`] — deterministic, seeded fault injection (`PACE_FAULTS`) for
//!   chaos-testing the campaign runtime's recovery paths;
//! * [`pool`] — the deterministic parallel runtime (`PACE_THREADS`,
//!   re-exported from `pace-runtime`): fixed size-derived chunk grids and
//!   ordered reductions make parallel matmul/elementwise kernels and batch
//!   labeling bit-identical to sequential execution at any thread count.
//!   Its concurrency-safety auditor rides along: `PACE_RACE` verifies every
//!   fan-out's write set (pairwise-disjoint, exact cover), `PACE_SCHED`
//!   fuzzes chunk-pull order with an adversarial seeded scheduler, and the
//!   [`dataflow`] arena-interference check proves the optimizer's
//!   buffer-reuse plans free of liveness overlaps;
//! * [`sched`] — the static tape scheduler: a dependence DAG (use-def RAW
//!   plus WAR/WAW from arena-slot reuse) partitioned into proved-independent
//!   level-set stages, with a calibrated profitability oracle
//!   (`pace_runtime::cost`, `PACE_SCHED_COST`) deciding which stages — and
//!   which kernels — are worth fanning out;
//! * [`trace`] — the structured tracing and metrics layer (`PACE_TRACE`,
//!   re-exported from `pace-trace`): scoped spans, lock-free
//!   counters/histograms, and per-op tape profiles, all emitted as JSONL
//!   and guaranteed not to perturb results.
//!
//! # Example
//!
//! ```
//! use pace_tensor::{Graph, Matrix};
//!
//! let mut g = Graph::new();
//! let x = g.leaf(Matrix::row(&[2.0]));
//! let y = g.mul(x, x);            // y = x²
//! let y = g.sum_all(y);
//! let dy = g.grad(y, &[x])[0];    // dy/dx = 2x = 4
//! assert_eq!(g.value(dy).data(), &[4.0]);
//! // Double backward: d²y/dx² = 2
//! let dy_sum = g.sum_all(dy);
//! let d2y = g.grad(dy_sum, &[x])[0];
//! assert_eq!(g.value(d2y).data(), &[2.0]);
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod check;
pub mod dataflow;
pub mod fault;
pub mod flags;
pub mod fuse;
mod grad;
mod graph;
pub mod init;
mod matrix;
pub mod nn;
pub mod opt;
pub mod optim;
mod param;
pub mod sched;
pub mod serialize;

pub use graph::{Graph, Var};
pub use matrix::Matrix;
pub use pace_runtime as pool;
pub use pace_trace as trace;
pub use param::{Binding, ParamId, ParamStore};
