//! Weight initialization schemes.

use crate::matrix::Matrix;
use rand::Rng;

/// Xavier/Glorot uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`. The default for sigmoid/tanh layers.
pub fn xavier_uniform(rng: &mut impl Rng, rows: usize, cols: usize) -> Matrix {
    let a = (6.0 / (rows + cols) as f32).sqrt();
    Matrix::from_vec(
        rows,
        cols,
        (0..rows * cols).map(|_| rng.random_range(-a..a)).collect(),
    )
}

/// He/Kaiming uniform initialization: `U(-a, a)` with `a = sqrt(6 / fan_in)`.
/// The default for ReLU layers.
pub fn he_uniform(rng: &mut impl Rng, rows: usize, cols: usize) -> Matrix {
    let a = (6.0 / rows as f32).sqrt();
    Matrix::from_vec(
        rows,
        cols,
        (0..rows * cols).map(|_| rng.random_range(-a..a)).collect(),
    )
}

/// Uniform `U(-a, a)` initialization with explicit bound.
pub fn uniform(rng: &mut impl Rng, rows: usize, cols: usize, a: f32) -> Matrix {
    Matrix::from_vec(
        rows,
        cols,
        (0..rows * cols).map(|_| rng.random_range(-a..a)).collect(),
    )
}

/// Standard Gaussian noise matrix (the generator's latent input).
pub fn gaussian(rng: &mut impl Rng, rows: usize, cols: usize) -> Matrix {
    // Box-Muller transform; avoids a rand_distr dependency.
    let mut data = Vec::with_capacity(rows * cols);
    while data.len() < rows * cols {
        let u1: f32 = rng.random_range(f32::EPSILON..1.0);
        let u2: f32 = rng.random_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(r * theta.cos());
        if data.len() < rows * cols {
            data.push(r * theta.sin());
        }
    }
    Matrix::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_within_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = xavier_uniform(&mut rng, 30, 20);
        let a = (6.0f32 / 50.0).sqrt();
        assert!(m.data().iter().all(|&x| x.abs() <= a));
        // Not all identical.
        assert!(m.data().iter().any(|&x| x != m.data()[0]));
    }

    #[test]
    fn gaussian_moments_roughly_standard() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = gaussian(&mut rng, 100, 100);
        let mean = m.mean();
        let var = m
            .data()
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f32>()
            / (m.len() - 1) as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn gaussian_odd_count() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = gaussian(&mut rng, 3, 3);
        assert_eq!(m.len(), 9);
        assert!(m.all_finite());
    }
}
