//! Dataflow analyses over the autograd tape IR.
//!
//! The tape ([`crate::Graph`]) is a pure, append-only SSA program: every node
//! is defined exactly once, operands always precede consumers, and node
//! indices double as topological order. That makes the classic compiler
//! analyses almost free, and this module computes the four the optimizing
//! pass pipeline ([`crate::opt`]) is built on:
//!
//! * **Use-def chains** ([`use_def`]) — for every node, the operands it reads
//!   (defs it uses) and the consumers that read it (its uses);
//! * **Liveness** ([`liveness`]) — reverse-topological live intervals: the
//!   tape position at which each value dies, plus the peak number of bytes
//!   simultaneously live under an alloc-at-def / free-at-last-use discipline
//!   (the memory high-water mark a buffer-reusing executor can reach);
//! * **Available expressions** ([`available_expr_sources`]) — structural
//!   hashing of `(op, operands, scalar/size payloads)` ([`ExprKey`]) that
//!   maps every node to the earliest node computing the same value, the
//!   substrate of common-subexpression elimination;
//! * **Static cost model** ([`node_cost`], [`tape_cost`]) — estimated FLOPs
//!   and output bytes per node from operand shapes alone.
//!
//! All analyses are read-only; none require executing the tape.

use crate::grad::op_inputs;
use crate::graph::{Graph, Op, Var};
use std::collections::HashMap;

/// The operands every node reads and the consumers that read it.
#[derive(Clone, Debug, Default)]
pub struct UseDef {
    /// `operands[i]` — tape indices node `i` reads (its use of earlier defs).
    pub operands: Vec<Vec<usize>>,
    /// `uses[i]` — tape indices of the nodes that read node `i`.
    pub uses: Vec<Vec<usize>>,
}

/// Builds use-def chains for the whole tape in one forward pass.
pub fn use_def(g: &Graph) -> UseDef {
    let n = g.len();
    let mut ud = UseDef {
        operands: Vec::with_capacity(n),
        uses: vec![Vec::new(); n],
    };
    for i in 0..n {
        let ops: Vec<usize> = op_inputs(g.op(Var::from_index(i)))
            .iter()
            .map(|v| v.index())
            .collect();
        for &o in &ops {
            ud.uses[o].push(i);
        }
        ud.operands.push(ops);
    }
    ud
}

/// Public view of a node's operand list (the tape edges), by index.
pub fn operands(g: &Graph, v: Var) -> Vec<Var> {
    op_inputs(g.op(v))
}

/// Live intervals of every tape value relative to a set of root outputs.
#[derive(Clone, Debug)]
pub struct Liveness {
    /// Whether each node is an ancestor of (or is) one of the outputs.
    pub reachable: Vec<bool>,
    /// Tape index of the last consumer of each reachable node; outputs (and
    /// only outputs) carry `usize::MAX` — they stay live past the end.
    /// Unreachable nodes carry their own index (they die at definition).
    pub last_use: Vec<usize>,
    /// Peak bytes simultaneously live when values are materialized at their
    /// defining index and freed right after their last use.
    pub peak_live_bytes: usize,
}

/// Computes [`Liveness`] for the sub-tape reachable from `outputs`.
pub fn liveness(g: &Graph, outputs: &[Var]) -> Liveness {
    let n = g.len();
    let mut reachable = vec![false; n];
    let mut stack: Vec<Var> = outputs.iter().copied().filter(|v| v.index() < n).collect();
    while let Some(v) = stack.pop() {
        if reachable[v.index()] {
            continue;
        }
        reachable[v.index()] = true;
        for inp in op_inputs(g.op(v)) {
            if !reachable[inp.index()] {
                stack.push(inp);
            }
        }
    }

    let mut last_use: Vec<usize> = (0..n).collect();
    for (i, &r) in reachable.iter().enumerate() {
        if !r {
            continue;
        }
        for inp in op_inputs(g.op(Var::from_index(i))) {
            last_use[inp.index()] = last_use[inp.index()].max(i);
        }
    }
    for out in outputs {
        if out.index() < n {
            last_use[out.index()] = usize::MAX;
        }
    }

    // Forward sweep: allocate at def, free after last use.
    let mut live_bytes = 0usize;
    let mut peak = 0usize;
    let mut frees: HashMap<usize, Vec<usize>> = HashMap::new();
    for i in 0..n {
        if !reachable[i] {
            continue;
        }
        live_bytes += value_bytes(g, Var::from_index(i));
        peak = peak.max(live_bytes);
        if last_use[i] != usize::MAX {
            frees.entry(last_use[i]).or_default().push(i);
        }
        if let Some(dead) = frees.remove(&i) {
            for d in dead {
                live_bytes -= value_bytes(g, Var::from_index(d));
            }
        }
    }

    Liveness {
        reachable,
        last_use,
        peak_live_bytes: peak,
    }
}

fn value_bytes(g: &Graph, v: Var) -> usize {
    let (r, c) = g.shape(v);
    r * c * size_of::<f32>()
}

// ---- available expressions -------------------------------------------------

/// Structural identity of a non-leaf node: op kind, canonical operand ids,
/// and every scalar/size payload the op carries. Two nodes with equal keys
/// compute equal values (all tape ops are pure and deterministic).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ExprKey {
    name: &'static str,
    operands: Vec<usize>,
    /// `f32` payloads as raw bits (exact identity, no NaN/−0 hazards).
    scalars: Vec<u32>,
    sizes: Vec<usize>,
}

/// Builds the structural key of a non-leaf op, remapping each operand index
/// through `remap` (identity for plain availability, the canonicalization
/// map inside CSE). Returns `None` for [`Op::Leaf`] — leaf identity is the
/// stored *value*, not structure, and is interned separately by the passes.
pub(crate) fn expr_key_with(op: &Op, remap: &mut dyn FnMut(usize) -> usize) -> Option<ExprKey> {
    let mut key = ExprKey {
        name: op.name(),
        operands: op_inputs(op).iter().map(|v| remap(v.index())).collect(),
        scalars: Vec::new(),
        sizes: Vec::new(),
    };
    match *op {
        Op::Leaf => return None,
        // Structure fully captured by name + operands.
        Op::Add(..)
        | Op::Sub(..)
        | Op::Mul(..)
        | Op::Div(..)
        | Op::Neg(_)
        | Op::MatMul(..)
        | Op::Transpose(_)
        | Op::Sigmoid(_)
        | Op::Tanh(_)
        | Op::Relu(_)
        | Op::Exp(_)
        | Op::Ln(_)
        | Op::Sqrt(_)
        | Op::Abs(_)
        | Op::Maximum(..)
        | Op::Minimum(..)
        | Op::SumAll(_)
        | Op::MeanAll(_)
        | Op::SumRows(_)
        | Op::MeanRows(_)
        | Op::AddRow(..)
        | Op::MulRow(..)
        | Op::MulCol(..)
        | Op::SumCols(_)
        | Op::ConcatCols(_)
        | Op::ConcatRows(_) => {}
        // Scalar payloads.
        Op::AddScalar(_, c) | Op::MulScalar(_, c) | Op::PowScalar(_, c) => {
            key.scalars.push(c.to_bits());
        }
        // Size payloads.
        Op::RepeatRows(_, n) | Op::RepeatCols(_, n) => key.sizes.push(n),
        Op::BroadcastScalar(_, r, c) => key.sizes.extend([r, c]),
        Op::SliceCols(_, s, e) | Op::SliceRows(_, s, e) => key.sizes.extend([s, e]),
    }
    Some(key)
}

/// For every node, the earliest tape index computing a structurally identical
/// expression (`source[i] == i` when node `i` is the first of its kind).
/// Designated `inputs` and leaves are their own sources; equal-valued leaves
/// are *not* merged here — value interning is a pass decision, not an
/// analysis fact.
pub fn available_expr_sources(g: &Graph, inputs: &[Var]) -> Vec<usize> {
    let is_input: Vec<bool> = {
        let mut m = vec![false; g.len()];
        for v in inputs {
            if v.index() < g.len() {
                m[v.index()] = true;
            }
        }
        m
    };
    let mut source: Vec<usize> = (0..g.len()).collect();
    let mut table: HashMap<ExprKey, usize> = HashMap::new();
    for i in 0..g.len() {
        if is_input[i] {
            continue;
        }
        let mut remap = |j: usize| source[j];
        if let Some(key) = expr_key_with(g.op(Var::from_index(i)), &mut remap) {
            match table.get(&key) {
                Some(&first) => source[i] = first,
                None => {
                    table.insert(key, i);
                }
            }
        }
    }
    source
}

// ---- static cost model ------------------------------------------------------

/// Estimated execution cost of one node.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Cost {
    /// Floating-point operations (moves count as 1 per element; the four
    /// transcendental families are weighted [`TRANSCENDENTAL_FLOPS`] each).
    pub flops: u64,
    /// Bytes of the node's output value.
    pub out_bytes: usize,
    /// Bytes of every operand the node reads (summed over occurrences). A
    /// bandwidth-bound elementwise step moves `in_bytes + out_bytes`, not
    /// `out_bytes` — the scheduler's stage totals and the fusion replay
    /// model count both sides.
    pub in_bytes: usize,
}

/// Per-element weight charged for `exp`/`ln`/`sqrt`/`powf`/`sigmoid`/`tanh`.
pub const TRANSCENDENTAL_FLOPS: u64 = 8;

/// Static cost of computing node `v`, derived from operand shapes alone.
pub fn node_cost(g: &Graph, v: Var) -> Cost {
    let (r, c) = g.shape(v);
    let out = (r * c) as u64;
    let in_len = |x: Var| {
        let (ir, ic) = g.shape(x);
        (ir * ic) as u64
    };
    let flops = match *g.op(v) {
        Op::Leaf => 0,
        Op::Add(..)
        | Op::Sub(..)
        | Op::Mul(..)
        | Op::Div(..)
        | Op::Maximum(..)
        | Op::Minimum(..)
        | Op::Neg(_)
        | Op::AddScalar(..)
        | Op::MulScalar(..)
        | Op::Relu(_)
        | Op::Abs(_)
        | Op::AddRow(..)
        | Op::MulRow(..)
        | Op::MulCol(..) => out,
        Op::Sigmoid(_) | Op::Tanh(_) | Op::Exp(_) | Op::Ln(_) | Op::Sqrt(_) | Op::PowScalar(..) => {
            out * TRANSCENDENTAL_FLOPS
        }
        Op::MatMul(a, b) => {
            let (n, k) = g.shape(a);
            let m = g.shape(b).1;
            2 * (n * k * m) as u64
        }
        Op::Transpose(a) => in_len(a),
        Op::SumAll(a) | Op::MeanAll(a) | Op::SumRows(a) | Op::MeanRows(a) | Op::SumCols(a) => {
            in_len(a)
        }
        Op::RepeatRows(..) | Op::RepeatCols(..) | Op::BroadcastScalar(..) => out,
        Op::ConcatCols(_) | Op::ConcatRows(_) | Op::SliceCols(..) | Op::SliceRows(..) => out,
    };
    let in_bytes: usize = op_inputs(g.op(v))
        .iter()
        .map(|&x| {
            let (ir, ic) = g.shape(x);
            ir * ic * size_of::<f32>()
        })
        .sum();
    Cost {
        flops,
        out_bytes: (r * c) * size_of::<f32>(),
        in_bytes,
    }
}

/// Summed [`node_cost`] over the nodes reachable from `outputs`.
pub fn tape_cost(g: &Graph, outputs: &[Var]) -> Cost {
    let live = liveness(g, outputs);
    let mut total = Cost::default();
    for (i, &r) in live.reachable.iter().enumerate() {
        if r {
            let c = node_cost(g, Var::from_index(i));
            total.flops += c.flops;
            total.out_bytes += c.out_bytes;
            total.in_bytes += c.in_bytes;
        }
    }
    total
}

// ---- arena-slot interference ------------------------------------------------

/// One plan step's claim on an arena slot: the step writes `slot` at plan
/// index `step`, and the value it produces is last read at plan index
/// `last_use` (`usize::MAX` for plan outputs, which stay live past the end).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlotStep {
    /// Plan index of the step that writes the slot.
    pub step: usize,
    /// Arena slot the step writes.
    pub slot: usize,
    /// Plan index of the last read of the produced value (`usize::MAX` for
    /// outputs).
    pub last_use: usize,
}

/// Two steps whose liveness intervals collide on one arena slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlotInterference {
    /// The contested arena slot.
    pub slot: usize,
    /// The earlier writer, still live when the slot is reassigned.
    pub first: SlotStep,
    /// The later writer that takes the slot too early.
    pub second: SlotStep,
}

impl std::fmt::Display for SlotInterference {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "arena slot {} interference: step {} (live through {}) vs step {}",
            self.slot, self.first.step, self.first.last_use, self.second.step
        )
    }
}

/// Size of a clean interference check, for reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InterferenceStats {
    /// Slot-writing steps examined.
    pub steps: usize,
    /// Distinct arena slots in use.
    pub slots: usize,
    /// Consecutive same-slot reuse pairs checked.
    pub checked_pairs: usize,
}

/// Proves the buffer-reuse arena assignment race-free: no arena slot is
/// handed to a step while a previous tenant of that slot is still live.
///
/// For two steps `s1 < s2` sharing a slot, safety requires
/// `last_use(s1) < s2` **strictly**: at `last_use(s1) == s2` the step would
/// read its operand out of the very buffer it is writing, and any overlap
/// beyond that clobbers a live value outright. Under that condition every
/// chunk grid a step's internal fan-out may choose is safe — each step owns
/// its destination slot exclusively for its whole execution, so intra-step
/// parallelism can never alias another live value. Plan outputs carry
/// `last_use == usize::MAX` and must never be reassigned at all.
///
/// # Errors
/// Returns every colliding pair (not just the first) when the assignment is
/// dirty.
pub fn check_slot_interference(
    steps: &[SlotStep],
) -> Result<InterferenceStats, Vec<SlotInterference>> {
    let mut by_slot: HashMap<usize, Vec<SlotStep>> = HashMap::new();
    for s in steps {
        by_slot.entry(s.slot).or_default().push(*s);
    }
    let mut stats = InterferenceStats {
        steps: steps.len(),
        slots: by_slot.len(),
        checked_pairs: 0,
    };
    let mut violations = Vec::new();
    for tenants in by_slot.values_mut() {
        tenants.sort_by_key(|s| s.step);
        for pair in tenants.windows(2) {
            stats.checked_pairs += 1;
            let (first, second) = (pair[0], pair[1]);
            if first.last_use >= second.step {
                violations.push(SlotInterference {
                    slot: first.slot,
                    first,
                    second,
                });
            }
        }
    }
    if violations.is_empty() {
        Ok(stats)
    } else {
        violations.sort_by_key(|v| (v.second.step, v.slot));
        Err(violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    fn small_graph() -> (Graph, Var, Var, Var, Var) {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]));
        let w = g.leaf(Matrix::from_vec(3, 2, vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6]));
        let h = g.matmul(x, w); // n2
        let s = g.sigmoid(h); // n3
        let out = g.sum_all(s); // n4
        (g, x, w, h, out)
    }

    #[test]
    fn use_def_chains_match_structure() {
        let (g, x, w, h, out) = small_graph();
        let ud = use_def(&g);
        assert_eq!(ud.operands[h.index()], vec![x.index(), w.index()]);
        assert_eq!(ud.uses[x.index()], vec![h.index()]);
        assert_eq!(ud.uses[h.index()], vec![h.index() + 1]);
        assert!(ud.uses[out.index()].is_empty());
        assert_eq!(operands(&g, h), vec![x, w]);
    }

    #[test]
    fn liveness_intervals_and_peak() {
        let (g, x, _w, h, out) = small_graph();
        let live = liveness(&g, &[out]);
        assert!(live.reachable.iter().all(|&r| r));
        assert_eq!(live.last_use[x.index()], h.index());
        assert_eq!(live.last_use[out.index()], usize::MAX);
        // Peak must cover every co-live pair but stay below the whole tape.
        let all: usize = (0..g.len())
            .map(|i| g.value(Var::from_index(i)).len() * size_of::<f32>())
            .sum();
        assert!(live.peak_live_bytes > 0 && live.peak_live_bytes <= all);
    }

    #[test]
    fn liveness_marks_detached_nodes() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::row(&[1.0, 2.0]));
        let dead = g.neg(x);
        let y = g.mul(x, x);
        let out = g.sum_all(y);
        let live = liveness(&g, &[out]);
        assert!(!live.reachable[dead.index()]);
        assert!(live.reachable[y.index()]);
    }

    #[test]
    fn available_sources_find_duplicates() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::row(&[1.0, 2.0]));
        let a = g.sigmoid(x);
        let b = g.sigmoid(x); // structurally identical
        let c = g.add(a, b);
        let src = available_expr_sources(&g, &[x]);
        assert_eq!(src[b.index()], a.index());
        assert_eq!(src[a.index()], a.index());
        assert_eq!(src[c.index()], c.index());
    }

    #[test]
    fn available_sources_chase_through_chains() {
        // Duplicated two-op chains canonicalize bottom-up: the second chain's
        // tail maps to the first chain's tail.
        let mut g = Graph::new();
        let x = g.leaf(Matrix::row(&[0.5, 1.5]));
        let a1 = g.exp(x);
        let b1 = g.mul_scalar(a1, 2.0);
        let a2 = g.exp(x);
        let b2 = g.mul_scalar(a2, 2.0);
        let different = g.mul_scalar(a2, 3.0);
        let src = available_expr_sources(&g, &[x]);
        assert_eq!(src[a2.index()], a1.index());
        assert_eq!(src[b2.index()], b1.index());
        assert_eq!(src[different.index()], different.index());
    }

    #[test]
    fn scalar_payload_distinguishes_expressions() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::row(&[1.0]));
        let a = g.add_scalar(x, 1.0);
        let b = g.add_scalar(x, 2.0);
        let src = available_expr_sources(&g, &[x]);
        assert_eq!(src[a.index()], a.index());
        assert_eq!(src[b.index()], b.index());
    }

    fn slot(step: usize, slot: usize, last_use: usize) -> SlotStep {
        SlotStep {
            step,
            slot,
            last_use,
        }
    }

    #[test]
    fn interference_clean_reuse_passes() {
        // Slot 0 is reused twice, each time strictly after the previous
        // tenant's last use; slot 1 holds an output and is never reused.
        let steps = [
            slot(0, 0, 1),
            slot(2, 0, 3),
            slot(4, 0, 5),
            slot(1, 1, usize::MAX),
        ];
        let stats = check_slot_interference(&steps).expect("clean assignment");
        assert_eq!(stats.steps, 4);
        assert_eq!(stats.slots, 2);
        assert_eq!(stats.checked_pairs, 2);
    }

    #[test]
    fn interference_catches_live_overlap_and_exact_touch() {
        // Step 5 takes slot 0 while step 0's value is live through step 7.
        let overlap = [slot(0, 0, 7), slot(5, 0, 6)];
        let v = check_slot_interference(&overlap).expect_err("overlap");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].slot, 0);
        assert_eq!((v[0].first.step, v[0].second.step), (0, 5));
        // Reassignment exactly at the last use is also unsafe: the new step
        // would read its operand out of the buffer it writes.
        let touch = [slot(0, 3, 4), slot(4, 3, 9)];
        assert_eq!(check_slot_interference(&touch).expect_err("touch").len(), 1);
        // An output slot (live forever) must never be reassigned.
        let output = [slot(0, 2, usize::MAX), slot(9, 2, 10)];
        assert_eq!(
            check_slot_interference(&output)
                .expect_err("output reuse")
                .len(),
            1
        );
    }

    #[test]
    fn cost_model_matmul_and_transcendentals() {
        let (g, _x, _w, h, out) = small_graph();
        assert_eq!(node_cost(&g, h).flops, 2 * 2 * 3 * 2);
        assert_eq!(node_cost(&g, h).out_bytes, 2 * 2 * 4);
        // MatMul reads the (2,3) and (3,2) operands: 12 floats.
        assert_eq!(node_cost(&g, h).in_bytes, (6 + 6) * 4);
        let sig = Var::from_index(h.index() + 1);
        assert_eq!(node_cost(&g, sig).flops, 4 * TRANSCENDENTAL_FLOPS);
        // Sigmoid reads its (2,2) operand and writes (2,2): both sides count.
        assert_eq!(node_cost(&g, sig).in_bytes, 2 * 2 * 4);
        let total = tape_cost(&g, &[out]);
        assert!(total.flops >= 2 * 2 * 3 * 2 + 4 * TRANSCENDENTAL_FLOPS);
        assert!(total.in_bytes >= node_cost(&g, h).in_bytes + node_cost(&g, sig).in_bytes);
    }
}
