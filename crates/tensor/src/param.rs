//! Parameter storage decoupled from the autograd tape.
//!
//! Training loops build a fresh [`crate::Graph`] per step; persistent model
//! parameters therefore live in a [`ParamStore`] and are *bound* into a graph
//! as leaves (or, for the attack's differentiable update unrolling, bound to
//! arbitrary intermediate vars) through a [`Binding`].

use crate::graph::{Graph, Var};
use crate::matrix::Matrix;

/// Stable identifier of one parameter matrix within a [`ParamStore`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ParamId(usize);

impl ParamId {
    /// Position of the parameter in store order.
    pub fn index(self) -> usize {
        self.0
    }
}

/// An ordered collection of named parameter matrices.
#[derive(Default, Clone)]
pub struct ParamStore {
    mats: Vec<Matrix>,
    names: Vec<String>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter, returning its id.
    pub fn alloc(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        self.mats.push(value);
        self.names.push(name.into());
        ParamId(self.mats.len() - 1)
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.mats.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.mats.is_empty()
    }

    /// Current value of a parameter.
    pub fn get(&self, id: ParamId) -> &Matrix {
        &self.mats[id.0]
    }

    /// Mutable access to a parameter's value.
    pub fn get_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.mats[id.0]
    }

    /// Name given at allocation time.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Iterates over `(id, value)` pairs in allocation order.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Matrix)> {
        self.mats.iter().enumerate().map(|(i, m)| (ParamId(i), m))
    }

    /// Binds every parameter into `g` as a leaf, in store order.
    pub fn bind(&self, g: &mut Graph) -> Binding {
        Binding {
            vars: self.mats.iter().map(|m| g.leaf(m.clone())).collect(),
        }
    }

    /// Copies all current values (used to snapshot a model before poisoning).
    pub fn snapshot(&self) -> Vec<Matrix> {
        self.mats.clone()
    }

    /// Restores values captured by [`ParamStore::snapshot`].
    ///
    /// # Panics
    /// Panics when the snapshot has a different parameter count or shapes.
    pub fn restore(&mut self, snapshot: &[Matrix]) {
        assert_eq!(snapshot.len(), self.mats.len(), "snapshot size mismatch");
        for (cur, snap) in self.mats.iter_mut().zip(snapshot) {
            assert_eq!(cur.shape(), snap.shape(), "snapshot shape mismatch");
            *cur = snap.clone();
        }
    }

    /// Total number of scalar parameters across all matrices.
    pub fn num_scalars(&self) -> usize {
        self.mats.iter().map(Matrix::len).sum()
    }
}

/// Maps [`ParamId`]s to the graph vars a forward pass should read.
///
/// A binding is usually produced by [`ParamStore::bind`], but the attack code
/// constructs bindings over *updated* parameter vars (`θ_k`) to evaluate a
/// model at parameters that exist only inside the graph.
#[derive(Clone)]
pub struct Binding {
    vars: Vec<Var>,
}

impl Binding {
    /// Builds a binding directly from vars in store order.
    pub fn from_vars(vars: Vec<Var>) -> Self {
        Self { vars }
    }

    /// The var bound to `id`.
    pub fn var(&self, id: ParamId) -> Var {
        self.vars[id.0]
    }

    /// All bound vars, in store order.
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }

    /// Number of bound parameters.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// True when nothing is bound.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_get_roundtrip() {
        let mut ps = ParamStore::new();
        let a = ps.alloc("w", Matrix::ones(2, 2));
        let b = ps.alloc("b", Matrix::zeros(1, 2));
        assert_eq!(ps.len(), 2);
        assert_eq!(ps.name(a), "w");
        assert_eq!(ps.get(b).shape(), (1, 2));
        assert_eq!(ps.num_scalars(), 6);
    }

    #[test]
    fn snapshot_restore() {
        let mut ps = ParamStore::new();
        let a = ps.alloc("w", Matrix::ones(1, 2));
        let snap = ps.snapshot();
        ps.get_mut(a).data_mut()[0] = 42.0;
        assert_eq!(ps.get(a).data()[0], 42.0);
        ps.restore(&snap);
        assert_eq!(ps.get(a).data()[0], 1.0);
    }

    #[test]
    fn bind_creates_leaves_in_order() {
        let mut ps = ParamStore::new();
        let a = ps.alloc("a", Matrix::scalar(1.0));
        let b = ps.alloc("b", Matrix::scalar(2.0));
        let mut g = Graph::new();
        let bind = ps.bind(&mut g);
        assert_eq!(g.value(bind.var(a)).as_scalar(), 1.0);
        assert_eq!(g.value(bind.var(b)).as_scalar(), 2.0);
    }
}
