//! Static analysis of autograd tapes — the *graph auditor*.
//!
//! The whole PACE reproduction leans on one invariant of [`crate::Graph`]:
//! every op's VJP is expressed through the same op set, so gradients — and
//! gradients of gradients, the Eq. 10 hypergradient through `K` unrolled SGD
//! steps — always build. Violations of that invariant, operand-shape
//! inconsistencies, and numerical hazards otherwise surface only as panics or
//! silent NaNs deep inside attack loops. [`audit`] makes them visible *at the
//! graph*, with the offending node named:
//!
//! 1. **Shape inference** ([`inferred_shape`]): recomputes every node's
//!    result shape from its operands per op semantics and reports the first
//!    disagreement with the recorded value, including the op chain that led
//!    there.
//! 2. **Numerical hazards**: `Ln`/`Sqrt` on non-positive inputs, division by
//!    (near-)zero, fractional powers of negative bases, `Exp` overflow —
//!    the places a poisoned loss turns into NaN.
//! 3. **Gradient flow**: parameters in `wrt` the output does not depend on
//!    (they would silently receive zero hypergradient) and the number of
//!    tape nodes detached from the output.
//! 4. **Double-backward closure**: every op kind reachable from the output
//!    is symbolically differentiated twice on a scratch tape, asserting the
//!    grad-of-grad graph still builds.
//!
//! Auditing is opt-in at the workspace's graph-construction choke points
//! (model training steps, surrogate imitation, attack hypergradient
//! assembly): set `PACE_AUDIT=1` or call [`set_audit_enabled`]. A dirty
//! report is printed to stderr; [`AuditReport::assert_clean`] turns it into
//! a panic for tests.

use crate::grad::op_inputs;
use crate::graph::{Graph, Op, Var};
use crate::matrix::Matrix;
use std::collections::HashMap;

/// A node whose recorded shape (or operand shapes) contradict its op.
#[derive(Clone, Debug)]
pub struct ShapeIssue {
    /// Tape index of the offending node.
    pub node: usize,
    /// Name of the offending op.
    pub op: &'static str,
    /// What is inconsistent, with expected-vs-actual detail.
    pub message: String,
    /// The op chain from the offending node back toward its leaves
    /// (first-operand path), rendered as `n<i> <Op> <r>x<c>` entries.
    pub chain: Vec<String>,
}

/// The kinds of numerical hazard the auditor recognizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HazardKind {
    /// `Ln` applied to a value ≤ 0 (−Inf / NaN).
    LnNonPositive,
    /// `Sqrt` applied to a negative value (NaN).
    SqrtNegative,
    /// `Sqrt` applied to an exact zero — the value is fine but its VJP
    /// divides by `sqrt(0)`.
    SqrtZeroGradient,
    /// Division whose denominator contains zeros or near-zeros.
    DivByNearZero,
    /// Fractional power of a negative base (NaN).
    PowFractionalNegativeBase,
    /// Negative power of an exact zero (Inf).
    PowNegativeZeroBase,
    /// `Exp` of a value beyond f32 range (overflow to Inf).
    ExpOverflow,
}

/// A node whose current operand values sit in a numerically dangerous domain.
#[derive(Clone, Debug)]
pub struct Hazard {
    /// Tape index of the hazardous node.
    pub node: usize,
    /// Name of the hazardous op.
    pub op: &'static str,
    /// Hazard classification.
    pub kind: HazardKind,
    /// Human-readable specifics (offending extreme value, element counts).
    pub detail: String,
}

/// A `wrt` parameter the audited output does not depend on.
#[derive(Clone, Debug)]
pub struct NoGradParam {
    /// Position in the `wrt` slice passed to [`audit`].
    pub wrt_index: usize,
    /// Tape index of the parameter node.
    pub node: usize,
    /// Shape of the parameter.
    pub shape: (usize, usize),
}

/// A double-backward closure violation for one op kind.
#[derive(Clone, Debug)]
pub struct ClosureFailure {
    /// The op kind whose grad-of-grad graph failed to build.
    pub op: &'static str,
    /// The panic message (or shape mismatch) captured from the scratch tape.
    pub message: String,
}

/// Everything [`audit`] finds, plus tape-level statistics.
#[derive(Clone, Debug, Default)]
pub struct AuditReport {
    /// Caller-supplied label of the graph-construction site.
    pub context: String,
    /// Number of nodes on the tape.
    pub nodes: usize,
    /// Approximate tape memory (values + node overhead), in bytes.
    pub tape_bytes: usize,
    /// Node counts by op name, most frequent first.
    pub op_counts: Vec<(&'static str, usize)>,
    /// Shape-inference disagreements (empty on a healthy tape).
    pub shape_issues: Vec<ShapeIssue>,
    /// Numerical hazards found from current node values.
    pub hazards: Vec<Hazard>,
    /// `wrt` parameters with no path to the output.
    pub no_grad_params: Vec<NoGradParam>,
    /// Tape nodes the output does not depend on (informational — gradient
    /// tapes legitimately carry nodes for other outputs).
    pub detached_nodes: usize,
    /// Nodes whose stored value contains NaN/Inf.
    pub nonfinite_nodes: usize,
    /// First non-finite producer recorded by the graph, `(node, op)`.
    pub first_nonfinite: Option<(usize, &'static str)>,
    /// Op kinds whose double-backward scratch build failed.
    pub closure_failures: Vec<ClosureFailure>,
    /// Number of distinct op kinds reachable from the output that the
    /// closure audit exercised.
    pub closure_checked: usize,
}

impl AuditReport {
    /// True when no shape issue, hazard, missing gradient, non-finite value,
    /// or closure failure was found.
    pub fn is_clean(&self) -> bool {
        self.shape_issues.is_empty()
            && self.hazards.is_empty()
            && self.no_grad_params.is_empty()
            && self.closure_failures.is_empty()
            && self.first_nonfinite.is_none()
    }

    /// Panics with the rendered report when the audit is not clean.
    pub fn assert_clean(&self) {
        assert!(self.is_clean(), "{}", self.render());
    }

    /// Renders the report as a human-readable multi-line string.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== tape audit: {} == {} nodes, ~{:.1} KiB, {} detached",
            self.context,
            self.nodes,
            self.tape_bytes as f64 / 1024.0,
            self.detached_nodes,
        );
        let top: Vec<String> = self
            .op_counts
            .iter()
            .take(10)
            .map(|(name, n)| format!("{name}\u{00d7}{n}"))
            .collect();
        let _ = writeln!(out, "   ops: {}", top.join(" "));
        if let Some((node, op)) = self.first_nonfinite {
            let _ = writeln!(
                out,
                "   FIRST NON-FINITE at n{node} ({op}); {} node(s) hold non-finite values",
                self.nonfinite_nodes
            );
        }
        for issue in &self.shape_issues {
            let _ = writeln!(
                out,
                "   SHAPE n{} {}: {}",
                issue.node, issue.op, issue.message
            );
            if !issue.chain.is_empty() {
                let _ = writeln!(out, "      chain: {}", issue.chain.join(" \u{2190} "));
            }
        }
        for h in &self.hazards {
            let _ = writeln!(
                out,
                "   HAZARD n{} {} ({:?}): {}",
                h.node, h.op, h.kind, h.detail
            );
        }
        for p in &self.no_grad_params {
            let _ = writeln!(
                out,
                "   NO-GRAD param wrt[{}] = n{} ({}x{}): output does not depend on it; \
                 its gradient will be silently zero",
                p.wrt_index, p.node, p.shape.0, p.shape.1
            );
        }
        for c in &self.closure_failures {
            let _ = writeln!(
                out,
                "   CLOSURE {}: double-backward graph failed to build: {}",
                c.op, c.message
            );
        }
        if self.closure_failures.is_empty() {
            let _ = writeln!(
                out,
                "   double-backward closure: OK for {} reachable op kind(s)",
                self.closure_checked
            );
        }
        out
    }
}

// ---- enablement -----------------------------------------------------------

/// Forces auditing on or off for this process, overriding `PACE_AUDIT`.
pub fn set_audit_enabled(enabled: bool) {
    crate::flags::AUDIT.set(if enabled {
        crate::flags::FlagMode::On
    } else {
        crate::flags::FlagMode::Off
    });
}

/// True when tape auditing is enabled (via [`set_audit_enabled`] or the
/// `PACE_AUDIT` environment variable — see [`crate::flags`] for the shared
/// `0/1/strict` grammar).
pub fn audit_enabled() -> bool {
    crate::flags::AUDIT.enabled()
}

/// Runs [`audit`] when auditing is enabled; prints a dirty report to stderr
/// (and panics on one under `PACE_AUDIT=strict`).
///
/// This is the hook the workspace's graph-construction choke points call —
/// free when auditing is off.
pub fn audit_if_enabled(g: &Graph, output: Var, wrt: &[Var], context: &str) -> Option<AuditReport> {
    if !audit_enabled() {
        return None;
    }
    let report = audit(g, output, wrt, context);
    if !report.is_clean() {
        assert!(
            !crate::flags::AUDIT.strict(),
            "PACE_AUDIT=strict: dirty tape audit\n{}",
            report.render()
        );
        eprintln!("{}", report.render());
    } else {
        // Confirm once per context that auditing is live — silence would be
        // indistinguishable from the flag being ignored — without spamming
        // one line per training step.
        static SEEN: std::sync::Mutex<Option<Vec<String>>> = std::sync::Mutex::new(None);
        let mut seen = SEEN
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let seen = seen.get_or_insert_with(Vec::new);
        if !seen.iter().any(|c| c == context) {
            seen.push(context.to_string());
            eprintln!(
                "tape audit [{context}]: clean — {} nodes, {} op kind(s) closure-checked \
                 (first of many; further clean audits in this context are silent)",
                report.nodes, report.closure_checked
            );
        }
    }
    Some(report)
}

// ---- shape inference ------------------------------------------------------

/// The shape a node's value *should* have given its operands' recorded
/// shapes, or a description of the operand inconsistency that prevents one.
///
/// Disagreement between this and [`Graph::shape`] means an op implementation
/// (or a hand-seeded tape) broke the tape invariant.
pub fn inferred_shape(g: &Graph, v: Var) -> Result<(usize, usize), String> {
    let sh = |x: Var| g.shape(x);
    let same = |a: Var, b: Var, what: &str| -> Result<(usize, usize), String> {
        let (sa, sb) = (sh(a), sh(b));
        if sa == sb {
            Ok(sa)
        } else {
            Err(format!(
                "{what} operands must share a shape: lhs n{} is {}x{}, rhs n{} is {}x{}",
                a.index(),
                sa.0,
                sa.1,
                b.index(),
                sb.0,
                sb.1
            ))
        }
    };
    match *g.op(v) {
        Op::Leaf => Ok(g.shape(v)),
        Op::Add(a, b) => same(a, b, "Add"),
        Op::Sub(a, b) => same(a, b, "Sub"),
        Op::Mul(a, b) => same(a, b, "Mul"),
        Op::Div(a, b) => same(a, b, "Div"),
        Op::Maximum(a, b) => same(a, b, "Maximum"),
        Op::Minimum(a, b) => same(a, b, "Minimum"),
        Op::Neg(a)
        | Op::AddScalar(a, _)
        | Op::MulScalar(a, _)
        | Op::PowScalar(a, _)
        | Op::Sigmoid(a)
        | Op::Tanh(a)
        | Op::Relu(a)
        | Op::Exp(a)
        | Op::Ln(a)
        | Op::Sqrt(a)
        | Op::Abs(a) => Ok(sh(a)),
        Op::MatMul(a, b) => {
            let (sa, sb) = (sh(a), sh(b));
            if sa.1 == sb.0 {
                Ok((sa.0, sb.1))
            } else {
                Err(format!(
                    "MatMul inner dimensions disagree: lhs n{} is {}x{}, rhs n{} is {}x{}",
                    a.index(),
                    sa.0,
                    sa.1,
                    b.index(),
                    sb.0,
                    sb.1
                ))
            }
        }
        Op::Transpose(a) => {
            let (r, c) = sh(a);
            Ok((c, r))
        }
        Op::SumAll(_) | Op::MeanAll(_) => Ok((1, 1)),
        Op::SumRows(a) | Op::MeanRows(a) => Ok((1, sh(a).1)),
        Op::RepeatRows(a, n) => {
            let (r, c) = sh(a);
            if r != 1 {
                Err(format!(
                    "RepeatRows input n{} must be 1xN, got {r}x{c}",
                    a.index()
                ))
            } else {
                Ok((n, c))
            }
        }
        Op::BroadcastScalar(a, r, c) => {
            let s = sh(a);
            if s != (1, 1) {
                Err(format!(
                    "BroadcastScalar input n{} must be 1x1, got {}x{}",
                    a.index(),
                    s.0,
                    s.1
                ))
            } else {
                Ok((r, c))
            }
        }
        Op::AddRow(a, row) | Op::MulRow(a, row) => {
            let (sa, sr) = (sh(a), sh(row));
            if sr.0 != 1 || sr.1 != sa.1 {
                Err(format!(
                    "row operand n{} must be 1x{}, got {}x{}",
                    row.index(),
                    sa.1,
                    sr.0,
                    sr.1
                ))
            } else {
                Ok(sa)
            }
        }
        Op::MulCol(a, col) => {
            let (sa, sc) = (sh(a), sh(col));
            if sc.1 != 1 || sc.0 != sa.0 {
                Err(format!(
                    "column operand n{} must be {}x1, got {}x{}",
                    col.index(),
                    sa.0,
                    sc.0,
                    sc.1
                ))
            } else {
                Ok(sa)
            }
        }
        Op::SumCols(a) => Ok((sh(a).0, 1)),
        Op::RepeatCols(a, d) => {
            let (r, c) = sh(a);
            if c != 1 {
                Err(format!(
                    "RepeatCols input n{} must be Nx1, got {r}x{c}",
                    a.index()
                ))
            } else {
                Ok((r, d))
            }
        }
        Op::ConcatCols(ref parts) => {
            if parts.is_empty() {
                return Err("ConcatCols of zero parts".to_string());
            }
            let r = sh(parts[0]).0;
            let mut cols = 0;
            for &p in parts {
                let s = sh(p);
                if s.0 != r {
                    return Err(format!(
                        "ConcatCols parts disagree on rows: n{} is {}x{}, expected {} rows",
                        p.index(),
                        s.0,
                        s.1,
                        r
                    ));
                }
                cols += s.1;
            }
            Ok((r, cols))
        }
        Op::ConcatRows(ref parts) => {
            if parts.is_empty() {
                return Err("ConcatRows of zero parts".to_string());
            }
            let c = sh(parts[0]).1;
            let mut rows = 0;
            for &p in parts {
                let s = sh(p);
                if s.1 != c {
                    return Err(format!(
                        "ConcatRows parts disagree on cols: n{} is {}x{}, expected {} cols",
                        p.index(),
                        s.0,
                        s.1,
                        c
                    ));
                }
                rows += s.0;
            }
            Ok((rows, c))
        }
        Op::SliceCols(a, start, end) => {
            let (r, c) = sh(a);
            if start >= end || end > c {
                Err(format!(
                    "SliceCols [{start}, {end}) out of bounds for n{} with {c} cols",
                    a.index()
                ))
            } else {
                Ok((r, end - start))
            }
        }
        Op::SliceRows(a, start, end) => {
            let (r, c) = sh(a);
            if start >= end || end > r {
                Err(format!(
                    "SliceRows [{start}, {end}) out of bounds for n{} with {r} rows",
                    a.index()
                ))
            } else {
                Ok((end - start, c))
            }
        }
    }
}

/// The first-operand chain from `v` back toward the leaves, newest first.
fn op_chain(g: &Graph, v: Var, max_depth: usize) -> Vec<String> {
    let mut chain = Vec::new();
    let mut cur = v;
    for _ in 0..max_depth {
        let (r, c) = g.shape(cur);
        chain.push(format!("n{} {} {r}x{c}", cur.index(), g.op(cur).name()));
        match op_inputs(g.op(cur)).first() {
            Some(&next) => cur = next,
            None => break,
        }
    }
    chain
}

// ---- hazard scan ----------------------------------------------------------

fn extremes(m: &Matrix) -> (f32, f32) {
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    for &x in m.data() {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    (lo, hi)
}

fn count_where(m: &Matrix, pred: impl Fn(f32) -> bool) -> usize {
    m.data().iter().filter(|&&x| pred(x)).count()
}

/// Largest f32 exponent argument that does not overflow (`ln(f32::MAX)`).
const EXP_OVERFLOW_AT: f32 = 88.722_84;
/// Denominator magnitude below which a division is flagged.
const DIV_EPS: f32 = 1e-30;

fn scan_hazards(g: &Graph, node: Var, hazards: &mut Vec<Hazard>) {
    let push = |hazards: &mut Vec<Hazard>, kind, detail| {
        hazards.push(Hazard {
            node: node.index(),
            op: g.op(node).name(),
            kind,
            detail,
        });
    };
    match *g.op(node) {
        Op::Ln(a) => {
            let v = g.value(a);
            let (lo, _) = extremes(v);
            if lo <= 0.0 {
                let n = count_where(v, |x| x <= 0.0);
                push(
                    hazards,
                    HazardKind::LnNonPositive,
                    format!(
                        "input n{} has {n}/{} element(s) \u{2264} 0 (min {lo})",
                        a.index(),
                        v.len()
                    ),
                );
            }
        }
        Op::Sqrt(a) => {
            let v = g.value(a);
            let (lo, _) = extremes(v);
            if lo < 0.0 {
                let n = count_where(v, |x| x < 0.0);
                push(
                    hazards,
                    HazardKind::SqrtNegative,
                    format!(
                        "input n{} has {n}/{} negative element(s) (min {lo})",
                        a.index(),
                        v.len()
                    ),
                );
            } else if count_where(v, |x| x == 0.0) > 0 {
                push(
                    hazards,
                    HazardKind::SqrtZeroGradient,
                    format!(
                        "input n{} contains exact zeros; the VJP divides by sqrt(0)",
                        a.index()
                    ),
                );
            }
        }
        Op::Div(_, b) => {
            let v = g.value(b);
            let n = count_where(v, |x| x.abs() < DIV_EPS);
            if n > 0 {
                push(
                    hazards,
                    HazardKind::DivByNearZero,
                    format!(
                        "denominator n{} has {n}/{} element(s) with |x| < {DIV_EPS}",
                        b.index(),
                        v.len()
                    ),
                );
            }
        }
        Op::PowScalar(a, p) => {
            let v = g.value(a);
            if p.fract() != 0.0 {
                let n = count_where(v, |x| x < 0.0);
                if n > 0 {
                    push(
                        hazards,
                        HazardKind::PowFractionalNegativeBase,
                        format!(
                            "base n{} has {n} negative element(s) raised to {p}",
                            a.index()
                        ),
                    );
                }
            }
            if p < 0.0 {
                let n = count_where(v, |x| x == 0.0);
                if n > 0 {
                    push(
                        hazards,
                        HazardKind::PowNegativeZeroBase,
                        format!("base n{} has {n} zero element(s) raised to {p}", a.index()),
                    );
                }
            }
        }
        Op::Exp(a) => {
            let (_, hi) = extremes(g.value(a));
            if hi > EXP_OVERFLOW_AT {
                push(
                    hazards,
                    HazardKind::ExpOverflow,
                    format!(
                        "input n{} reaches {hi} > ln(f32::MAX) \u{2248} {EXP_OVERFLOW_AT}",
                        a.index()
                    ),
                );
            }
        }
        _ => {}
    }
}

// ---- double-backward closure ----------------------------------------------

/// Builds a representative instance of the op kind on a scratch tape and
/// differentiates it twice. Returns the captured failure, if any.
fn closure_check(kind: &'static str) -> Option<ClosureFailure> {
    let attempt = std::panic::catch_unwind(|| {
        let mut g = Graph::new();
        // Positive, non-degenerate values keep Ln/Sqrt/Div in-domain so the
        // check isolates *closure*, not hazards.
        let a = g.leaf(Matrix::from_vec(2, 3, vec![0.6, 1.1, 0.9, 1.4, 0.7, 1.2]));
        let b = g.leaf(Matrix::from_vec(2, 3, vec![1.3, 0.8, 1.6, 0.9, 1.1, 0.7]));
        let y = match kind {
            "Leaf" => a,
            "Add" => g.add(a, b),
            "Sub" => g.sub(a, b),
            "Mul" => g.mul(a, b),
            "Div" => g.div(a, b),
            "Neg" => g.neg(a),
            "AddScalar" => g.add_scalar(a, 0.7),
            "MulScalar" => g.mul_scalar(a, 1.3),
            "PowScalar" => g.pow_scalar(a, 2.5),
            "MatMul" => {
                let w = g.leaf(Matrix::from_vec(3, 2, vec![0.4, 1.0, 0.8, 0.5, 1.2, 0.6]));
                g.matmul(a, w)
            }
            "Transpose" => g.transpose(a),
            "Sigmoid" => g.sigmoid(a),
            "Tanh" => g.tanh(a),
            "Relu" => g.relu(a),
            "Exp" => g.exp(a),
            "Ln" => g.ln(a),
            "Sqrt" => g.sqrt(a),
            "Abs" => g.abs(a),
            "Maximum" => g.maximum(a, b),
            "Minimum" => g.minimum(a, b),
            "SumAll" => g.sum_all(a),
            "MeanAll" => g.mean_all(a),
            "SumRows" => g.sum_rows(a),
            "MeanRows" => g.mean_rows(a),
            "RepeatRows" => {
                let row = g.slice_rows(a, 0, 1);
                g.repeat_rows(row, 4)
            }
            "BroadcastScalar" => {
                let s = g.sum_all(a);
                g.broadcast_scalar(s, 2, 2)
            }
            "AddRow" => {
                let row = g.slice_rows(b, 0, 1);
                g.add_row(a, row)
            }
            "MulRow" => {
                let row = g.slice_rows(b, 0, 1);
                g.mul_row(a, row)
            }
            "MulCol" => {
                let col = g.slice_cols(b, 0, 1);
                g.mul_col(a, col)
            }
            "SumCols" => g.sum_cols(a),
            "RepeatCols" => {
                let col = g.slice_cols(a, 0, 1);
                g.repeat_cols(col, 3)
            }
            "ConcatCols" => g.concat_cols(&[a, b]),
            "ConcatRows" => g.concat_rows(&[a, b]),
            "SliceCols" => g.slice_cols(a, 1, 3),
            "SliceRows" => g.slice_rows(a, 0, 1),
            other => panic!("closure_check: unknown op kind {other}"),
        };
        let s = g.sum_all(y);
        let first = g.grad(s, &[a, b]);
        let fa = g.sum_all(first[0]);
        let fb = g.sum_all(first[1]);
        let total = g.add(fa, fb);
        let second = g.grad(total, &[a, b]);
        for (grad, leaf) in second.iter().zip([a, b]) {
            assert_eq!(
                g.shape(*grad),
                g.shape(leaf),
                "second-order gradient shape diverged from its leaf"
            );
        }
    });
    match attempt {
        Ok(()) => None,
        Err(payload) => {
            let message = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "panic with non-string payload".to_string());
            Some(ClosureFailure { op: kind, message })
        }
    }
}

// ---- the audit ------------------------------------------------------------

/// Audits a built tape against `output` and the parameters `wrt` whose
/// gradients the caller is about to request.
///
/// Pure inspection: the graph is not modified, and the double-backward
/// closure pass runs on scratch tapes. See the module docs for the pass
/// list; use [`audit_if_enabled`] at runtime choke points and
/// [`AuditReport::assert_clean`] in tests.
pub fn audit(g: &Graph, output: Var, wrt: &[Var], context: &str) -> AuditReport {
    let mut report = AuditReport {
        context: context.to_string(),
        nodes: g.len(),
        ..Default::default()
    };

    // Statistics, shape inference, and hazards in one pass over the tape.
    let mut counts: HashMap<&'static str, usize> = HashMap::new();
    for i in 0..g.len() {
        let v = Var::from_index(i);
        let op = g.op(v);
        *counts.entry(op.name()).or_insert(0) += 1;
        report.tape_bytes += g.value(v).len() * size_of::<f32>() + 64;
        if !g.value(v).all_finite() {
            report.nonfinite_nodes += 1;
        }
        if let Some(&bad) = op_inputs(op).iter().find(|inp| inp.index() >= i) {
            report.shape_issues.push(ShapeIssue {
                node: i,
                op: op.name(),
                message: format!(
                    "operand n{} does not precede its consumer on the tape",
                    bad.index()
                ),
                chain: Vec::new(),
            });
            continue;
        }
        match inferred_shape(g, v) {
            Ok(expected) => {
                let actual = g.shape(v);
                if expected != actual {
                    report.shape_issues.push(ShapeIssue {
                        node: i,
                        op: op.name(),
                        message: format!(
                            "recorded value is {}x{} but operands imply {}x{}",
                            actual.0, actual.1, expected.0, expected.1
                        ),
                        chain: op_chain(g, v, 8),
                    });
                }
            }
            Err(message) => {
                report.shape_issues.push(ShapeIssue {
                    node: i,
                    op: op.name(),
                    message,
                    chain: op_chain(g, v, 8),
                });
            }
        }
        scan_hazards(g, v, &mut report.hazards);
    }
    let mut op_counts: Vec<(&'static str, usize)> = counts.into_iter().collect();
    op_counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    report.op_counts = op_counts;
    report.first_nonfinite = g.first_nonfinite().map(|(v, op)| (v.index(), op));

    // Gradient flow: ancestors of the output.
    let mut reachable = vec![false; g.len()];
    if output.index() < g.len() {
        let mut stack = vec![output];
        while let Some(v) = stack.pop() {
            if reachable[v.index()] {
                continue;
            }
            reachable[v.index()] = true;
            for inp in op_inputs(g.op(v)) {
                if inp.index() < g.len() && !reachable[inp.index()] {
                    stack.push(inp);
                }
            }
        }
    }
    report.detached_nodes = reachable.iter().filter(|&&r| !r).count();
    for (wrt_index, &p) in wrt.iter().enumerate() {
        if p.index() >= g.len() || !reachable[p.index()] {
            report.no_grad_params.push(NoGradParam {
                wrt_index,
                node: p.index(),
                shape: if p.index() < g.len() {
                    g.shape(p)
                } else {
                    (0, 0)
                },
            });
        }
    }

    // Double-backward closure over reachable op kinds.
    let mut kinds: Vec<&'static str> = Vec::new();
    for (i, &r) in reachable.iter().enumerate() {
        if r {
            let name = g.op(Var::from_index(i)).name();
            if name != "Leaf" && !kinds.contains(&name) {
                kinds.push(name);
            }
        }
    }
    report.closure_checked = kinds.len();
    for kind in kinds {
        if let Some(failure) = closure_check(kind) {
            report.closure_failures.push(failure);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Op;

    fn clean_graph() -> (Graph, Var, Var, Var) {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::from_vec(2, 3, vec![0.5, 1.0, 1.5, 2.0, 2.5, 3.0]));
        let w = g.leaf(Matrix::from_vec(3, 1, vec![0.2, 0.4, 0.6]));
        let h = g.matmul(x, w);
        let s = g.sigmoid(h);
        let out = g.sum_all(s);
        (g, out, x, w)
    }

    #[test]
    fn clean_tape_audits_clean() {
        let (g, out, x, w) = clean_graph();
        let report = audit(&g, out, &[x, w], "test::clean");
        report.assert_clean();
        assert_eq!(report.nodes, g.len());
        assert!(
            report.closure_checked >= 2,
            "MatMul + Sigmoid + SumAll reachable"
        );
        assert!(report.tape_bytes > 0);
        assert!(report.render().contains("test::clean"));
    }

    #[test]
    fn detects_seeded_shape_mismatch() {
        let (mut g, _, x, w) = clean_graph();
        // A 2x3 + 3x1 elementwise add cannot exist through the public API;
        // seed it directly to prove the auditor catches corrupted tapes.
        let bad = g.push_raw(Op::Add(x, w), Matrix::zeros(2, 3));
        let out = g.sum_all(bad);
        let report = audit(&g, out, &[x, w], "test::shape");
        assert!(!report.is_clean());
        let issue = &report.shape_issues[0];
        assert_eq!(
            issue.node,
            bad.index(),
            "report must name the offending node"
        );
        assert_eq!(issue.op, "Add");
        assert!(
            issue.message.contains("share a shape"),
            "got: {}",
            issue.message
        );
        assert!(!issue.chain.is_empty());
        assert!(report.render().contains(&format!("SHAPE n{}", bad.index())));
    }

    #[test]
    fn detects_recorded_result_disagreement() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::zeros(2, 2));
        // Neg preserves shape; record a wrong result shape.
        let bad = g.push_raw(Op::Neg(x), Matrix::zeros(4, 1));
        let out = g.sum_all(bad);
        let report = audit(&g, out, &[x], "test::recorded");
        let issue = report
            .shape_issues
            .iter()
            .find(|i| i.node == bad.index())
            .expect("mismatch reported");
        assert!(
            issue.message.contains("operands imply 2x2"),
            "got: {}",
            issue.message
        );
    }

    #[test]
    fn detects_detached_parameter() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::row(&[1.0, 2.0]));
        let orphan = g.leaf(Matrix::zeros(4, 4));
        let y = g.mul(x, x);
        let out = g.sum_all(y);
        let report = audit(&g, out, &[x, orphan], "test::detached");
        assert!(!report.is_clean());
        assert_eq!(report.no_grad_params.len(), 1);
        let p = &report.no_grad_params[0];
        assert_eq!(p.wrt_index, 1);
        assert_eq!(p.node, orphan.index(), "report must name the detached node");
        assert_eq!(p.shape, (4, 4));
        assert_eq!(report.detached_nodes, 1);
        assert!(report.render().contains("NO-GRAD param wrt[1]"));
    }

    #[test]
    fn detects_ln_hazard() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::row(&[0.5, -1.0, 2.0]));
        let y = g.ln(x);
        let out = g.sum_all(y);
        let report = audit(&g, out, &[x], "test::hazard");
        assert!(!report.is_clean());
        let hazard = report
            .hazards
            .iter()
            .find(|h| h.kind == HazardKind::LnNonPositive)
            .expect("ln hazard");
        assert_eq!(
            hazard.node,
            y.index(),
            "report must name the hazardous node"
        );
        assert!(hazard.detail.contains("1/3"), "got: {}", hazard.detail);
        // ln(-1) = NaN: the graph's diagnostic slot pins the producer too.
        assert_eq!(report.first_nonfinite, Some((y.index(), "Ln")));
    }

    #[test]
    fn detects_div_exp_pow_hazards() {
        let mut g = Graph::new();
        let a = g.leaf(Matrix::row(&[1.0, 2.0]));
        let zero = g.leaf(Matrix::row(&[0.0, 1.0]));
        let _ = g.div(a, zero);
        let big = g.leaf(Matrix::row(&[100.0, 1.0]));
        let e = g.exp(big);
        let neg = g.leaf(Matrix::row(&[-2.0, 1.0]));
        let _ = g.pow_scalar(neg, 0.5);
        let out = g.sum_all(e);
        let report = audit(&g, out, &[], "test::hazards");
        let kinds: Vec<HazardKind> = report.hazards.iter().map(|h| h.kind).collect();
        assert!(kinds.contains(&HazardKind::DivByNearZero), "{kinds:?}");
        assert!(kinds.contains(&HazardKind::ExpOverflow), "{kinds:?}");
        assert!(
            kinds.contains(&HazardKind::PowFractionalNegativeBase),
            "{kinds:?}"
        );
    }

    #[test]
    fn closure_holds_for_every_op_kind() {
        // Exercise the closure audit across the full op vocabulary at once.
        let mut g = Graph::new();
        let a = g.leaf(Matrix::from_vec(2, 3, vec![0.6, 1.1, 0.9, 1.4, 0.7, 1.2]));
        let b = g.leaf(Matrix::from_vec(2, 3, vec![1.3, 0.8, 1.6, 0.9, 1.1, 0.7]));
        let mut acc = g.add(a, b);
        acc = g.mul(acc, a);
        acc = g.sub(acc, b);
        acc = g.div(acc, b);
        acc = g.abs(acc);
        acc = g.add_scalar(acc, 1.0);
        acc = g.sqrt(acc);
        acc = g.ln(acc);
        acc = g.exp(acc);
        acc = g.sigmoid(acc);
        acc = g.tanh(acc);
        acc = g.relu(acc);
        acc = g.neg(acc);
        acc = g.mul_scalar(acc, 0.5);
        acc = g.pow_scalar(acc, 2.0);
        let w = g.leaf(Matrix::from_vec(3, 2, vec![0.4, 1.0, 0.8, 0.5, 1.2, 0.6]));
        let mm = g.matmul(acc, w);
        let mt = g.transpose(mm);
        let mx = g.maximum(mt, mt);
        let mn = g.minimum(mx, mt);
        let sr = g.sum_rows(mn);
        let mr = g.mean_rows(mn);
        let rep = g.repeat_rows(sr, 2);
        let ar = g.add_row(rep, mr);
        let mrow = g.mul_row(ar, mr);
        let sc = g.sum_cols(mrow);
        let mcol = g.mul_col(mrow, sc);
        let rc = g.repeat_cols(sc, 2);
        let cc = g.concat_cols(&[mcol, rc]);
        let cr = g.concat_rows(&[cc, cc]);
        let s1 = g.slice_cols(cr, 0, 2);
        let s2 = g.slice_rows(s1, 0, 2);
        let ma = g.mean_all(s2);
        let bs = g.broadcast_scalar(ma, 2, 2);
        let sa = g.sum_all(bs);
        let report = audit(&g, sa, &[a, b], "test::closure");
        assert!(report.closure_failures.is_empty(), "{}", report.render());
        assert_eq!(
            report.closure_checked,
            34,
            "every non-Leaf op kind is reachable: {}",
            report.render()
        );
    }

    #[test]
    fn audit_toggle_controls_hook() {
        set_audit_enabled(false);
        let (g, out, x, w) = clean_graph();
        assert!(audit_if_enabled(&g, out, &[x, w], "test::off").is_none());
        set_audit_enabled(true);
        let report = audit_if_enabled(&g, out, &[x, w], "test::on").expect("enabled");
        assert!(report.is_clean());
        set_audit_enabled(false);
    }
}
