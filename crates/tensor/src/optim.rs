//! First-order optimizers operating on a [`ParamStore`].
//!
//! A training step materializes gradient matrices from the graph (via
//! [`crate::Graph::grad`] + [`crate::Graph::value`]) and hands them to an
//! optimizer together with the store. Optimizer state (Adam moments) is keyed
//! by parameter order, so one optimizer must stay paired with one store.

use crate::matrix::Matrix;
use crate::param::ParamStore;

/// A stateful gradient-descent rule.
pub trait Optimizer {
    /// Applies one update. `grads[i]` must correspond to the `i`-th parameter
    /// of `params` in allocation order.
    ///
    /// # Panics
    /// Panics when `grads.len() != params.len()` or shapes mismatch.
    fn step(&mut self, params: &mut ParamStore, grads: &[Matrix]);

    /// The base learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the base learning rate (used for "large steps in the case of
    /// small gradients" escapes from local optima — Section 5.3).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Plain stochastic gradient descent: `θ ← θ − lr·g`.
#[derive(Clone, Debug)]
pub struct Sgd {
    lr: f32,
}

impl Sgd {
    /// Creates SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Self { lr }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut ParamStore, grads: &[Matrix]) {
        assert_eq!(grads.len(), params.len(), "gradient count mismatch");
        let ids: Vec<_> = params.iter().map(|(id, _)| id).collect();
        for (i, id) in ids.into_iter().enumerate() {
            let g = &grads[i];
            let p = params.get_mut(id);
            assert_eq!(p.shape(), g.shape(), "gradient shape mismatch at {i}");
            for (pv, gv) in p.data_mut().iter_mut().zip(g.data()) {
                *pv -= self.lr * gv;
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba, 2014) with bias correction — the optimizer the paper
/// applies to both CE models and the generator (learning rate `1e-3`).
#[derive(Clone, Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    /// Creates Adam with the paper's defaults (`β₁=0.9, β₂=0.999, ε=1e-8`).
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    fn ensure_state(&mut self, params: &ParamStore) {
        if self.m.is_empty() {
            self.m = params
                .iter()
                .map(|(_, p)| Matrix::zeros(p.rows(), p.cols()))
                .collect();
            self.v = self.m.clone();
        }
    }

    /// Snapshots the optimizer's full mutable state. Restoring this snapshot
    /// via [`Adam::import_state`] makes subsequent steps bit-identical to the
    /// trajectory from the snapshot point — the contract the
    /// checkpoint/rollback machinery relies on.
    pub fn export_state(&self) -> AdamState {
        AdamState {
            lr: self.lr,
            t: self.t,
            m: self.m.clone(),
            v: self.v.clone(),
        }
    }

    /// Restores a snapshot taken by [`Adam::export_state`].
    pub fn import_state(&mut self, state: AdamState) {
        self.lr = state.lr;
        self.t = state.t;
        self.m = state.m;
        self.v = state.v;
    }
}

/// The mutable state of an [`Adam`] optimizer: learning rate, step count,
/// and the first/second moment estimates (in parameter allocation order).
/// `β`/`ε` are construction-time constants and are not part of the state.
#[derive(Clone, Debug, PartialEq)]
pub struct AdamState {
    /// Current learning rate (rollback recovery halves this).
    pub lr: f32,
    /// Bias-correction step count.
    pub t: u64,
    /// First-moment estimates.
    pub m: Vec<Matrix>,
    /// Second-moment estimates.
    pub v: Vec<Matrix>,
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut ParamStore, grads: &[Matrix]) {
        assert_eq!(grads.len(), params.len(), "gradient count mismatch");
        self.ensure_state(params);
        assert_eq!(self.m.len(), params.len(), "Adam state / store mismatch");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let ids: Vec<_> = params.iter().map(|(id, _)| id).collect();
        for (i, id) in ids.into_iter().enumerate() {
            let g = &grads[i];
            let p = params.get_mut(id);
            assert_eq!(p.shape(), g.shape(), "gradient shape mismatch at {i}");
            let (m, v) = (&mut self.m[i], &mut self.v[i]);
            for j in 0..g.len() {
                let gj = g.data()[j];
                m.data_mut()[j] = self.beta1 * m.data()[j] + (1.0 - self.beta1) * gj;
                v.data_mut()[j] = self.beta2 * v.data()[j] + (1.0 - self.beta2) * gj * gj;
                let mhat = m.data()[j] / bc1;
                let vhat = v.data()[j] / bc2;
                p.data_mut()[j] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Rescales `grads` in place so their global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm (saturating to `f32::INFINITY` only when the
/// true norm exceeds `f32::MAX`).
///
/// Squared magnitudes accumulate in `f64`: any single `f32` gradient entry
/// above `~1.8e19` squares past `f32::MAX`, and an `f32` accumulator would
/// overflow to `inf`, making `scale = max_norm / inf = 0` and silently
/// zeroing every gradient — the exact spikes clipping exists to tame.
pub fn clip_global_norm(grads: &mut [Matrix], max_norm: f32) -> f32 {
    let norm = grads
        .iter()
        .map(|g| {
            g.data()
                .iter()
                .map(|&x| f64::from(x) * f64::from(x))
                .sum::<f64>()
        })
        .sum::<f64>()
        .sqrt();
    if norm > f64::from(max_norm) && norm > 0.0 {
        let scale = f64::from(max_norm) / norm;
        for g in grads.iter_mut() {
            for x in g.data_mut() {
                *x = (f64::from(*x) * scale) as f32;
            }
        }
    }
    norm as f32
}

/// Replaces NaN/Inf gradient entries with zero. The attack's Q-error losses
/// can spike; this keeps a single bad batch from destroying the parameters.
pub fn sanitize(grads: &mut [Matrix]) {
    for g in grads.iter_mut() {
        for x in g.data_mut() {
            if !x.is_finite() {
                *x = 0.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    /// Minimizes (x-3)^2 and checks convergence.
    fn run_quadratic(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut ps = ParamStore::new();
        let x = ps.alloc("x", Matrix::scalar(0.0));
        for _ in 0..steps {
            let mut g = Graph::new();
            let bind = ps.bind(&mut g);
            let xv = bind.var(x);
            let diff = g.add_scalar(xv, -3.0);
            let loss = g.mul(diff, diff);
            let grads: Vec<Matrix> = g
                .grad(loss, bind.vars())
                .iter()
                .map(|&v| g.value(v).clone())
                .collect();
            opt.step(&mut ps, &grads);
        }
        ps.get(x).as_scalar()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let x = run_quadratic(&mut opt, 100);
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        let x = run_quadratic(&mut opt, 300);
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn clip_reduces_norm() {
        let mut grads = vec![Matrix::row(&[3.0, 4.0])];
        let pre = clip_global_norm(&mut grads, 1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        let post = grads[0].norm();
        assert!((post - 1.0).abs() < 1e-5);
    }

    #[test]
    fn clip_noop_below_threshold() {
        let mut grads = vec![Matrix::row(&[0.3, 0.4])];
        clip_global_norm(&mut grads, 1.0);
        assert_eq!(grads[0].data(), &[0.3, 0.4]);
    }

    /// Regression: with an `f32` accumulator, `(1e20)² = inf`, so the norm
    /// was `inf`, `scale = 1/inf = 0`, and every gradient was silently
    /// zeroed. The `f64` accumulator must instead rescale onto the ball.
    #[test]
    fn clip_survives_f32_overflow() {
        let mut grads = vec![Matrix::row(&[1e20, -1e20, 0.0])];
        let pre = clip_global_norm(&mut grads, 1.0);
        assert!(pre.is_infinite() || pre > 1e20, "pre-clip norm reported");
        let post = grads[0].norm();
        assert!(
            (post - 1.0).abs() < 1e-4,
            "gradients zeroed instead of clipped: {:?}",
            grads[0].data()
        );
        // Direction is preserved.
        assert!(grads[0].data()[0] > 0.0 && grads[0].data()[1] < 0.0);
        assert_eq!(grads[0].data()[2], 0.0);
    }

    #[test]
    fn sanitize_zeroes_nonfinite() {
        let mut grads = vec![Matrix::row(&[f32::NAN, 1.0, f32::INFINITY])];
        sanitize(&mut grads);
        assert_eq!(grads[0].data(), &[0.0, 1.0, 0.0]);
    }
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    #[test]
    fn learning_rate_is_adjustable_through_trait_objects() {
        let mut opts: Vec<Box<dyn Optimizer>> =
            vec![Box::new(Sgd::new(0.1)), Box::new(Adam::new(0.1))];
        for opt in &mut opts {
            assert_eq!(opt.learning_rate(), 0.1);
            opt.set_learning_rate(0.5);
            assert_eq!(opt.learning_rate(), 0.5);
        }
    }

    #[test]
    #[should_panic(expected = "gradient count mismatch")]
    fn wrong_gradient_count_is_rejected() {
        let mut ps = ParamStore::new();
        ps.alloc("x", Matrix::scalar(0.0));
        let mut opt = Sgd::new(0.1);
        opt.step(&mut ps, &[]);
    }
}
