//! Neural-network building blocks.
//!
//! Every layer stores only [`ParamId`]s; forward passes take a [`Binding`]
//! that maps ids to graph vars. Evaluating a model at parameters that exist
//! only inside a graph (the attack's `θ_k` chain) is therefore just a matter
//! of constructing a different binding.

use crate::graph::{Graph, Var};
use crate::init;
use crate::param::{Binding, ParamId, ParamStore};
use rand::Rng;

/// Activation applied after a [`Dense`] layer's affine transform.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Activation {
    /// Identity.
    None,
    /// Rectified linear unit.
    Relu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    /// Applies the activation as a graph op.
    pub fn apply(self, g: &mut Graph, x: Var) -> Var {
        match self {
            Activation::None => x,
            Activation::Relu => g.relu(x),
            Activation::Sigmoid => g.sigmoid(x),
            Activation::Tanh => g.tanh(x),
        }
    }
}

/// Fully connected layer `act(x·W + b)` over row-major batches (`n×in`).
#[derive(Clone, Debug)]
pub struct Dense {
    w: ParamId,
    b: ParamId,
    act: Activation,
    in_dim: usize,
    out_dim: usize,
}

impl Dense {
    /// Allocates a layer's parameters in `ps` (He init for ReLU, Xavier
    /// otherwise; zero bias).
    pub fn new(
        ps: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        act: Activation,
    ) -> Self {
        let w_init = match act {
            Activation::Relu => init::he_uniform(rng, in_dim, out_dim),
            _ => init::xavier_uniform(rng, in_dim, out_dim),
        };
        let w = ps.alloc(format!("{name}.w"), w_init);
        let b = ps.alloc(
            format!("{name}.b"),
            crate::matrix::Matrix::zeros(1, out_dim),
        );
        Self {
            w,
            b,
            act,
            in_dim,
            out_dim,
        }
    }

    /// Forward pass for a `n×in_dim` batch, producing `n×out_dim`.
    pub fn forward(&self, g: &mut Graph, bind: &Binding, x: Var) -> Var {
        debug_assert_eq!(g.shape(x).1, self.in_dim, "Dense input width mismatch");
        let wx = g.matmul(x, bind.var(self.w));
        let z = g.add_row(wx, bind.var(self.b));
        self.act.apply(g, z)
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }
}

/// A stack of [`Dense`] layers.
#[derive(Clone, Debug)]
pub struct Mlp {
    layers: Vec<Dense>,
}

impl Mlp {
    /// Builds an MLP through the widths in `dims` (length ≥ 2); every hidden
    /// layer uses `hidden_act`, the final layer uses `out_act`.
    ///
    /// # Panics
    /// Panics when fewer than two widths are supplied.
    pub fn new(
        ps: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        dims: &[usize],
        hidden_act: Activation,
        out_act: Activation,
    ) -> Self {
        assert!(
            dims.len() >= 2,
            "Mlp needs at least input and output widths"
        );
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| {
                let act = if i + 2 == dims.len() {
                    out_act
                } else {
                    hidden_act
                };
                Dense::new(ps, rng, &format!("{name}.{i}"), w[0], w[1], act)
            })
            .collect();
        Self { layers }
    }

    /// Forward pass through every layer.
    pub fn forward(&self, g: &mut Graph, bind: &Binding, x: Var) -> Var {
        self.layers
            .iter()
            .fold(x, |h, layer| layer.forward(g, bind, h))
    }

    /// The layers, for introspection.
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Input width of the first layer.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output width of the last layer.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }
}

/// Elman RNN cell: `h' = tanh(x·Wx + h·Wh + b)`.
#[derive(Clone, Debug)]
pub struct RnnCell {
    wx: ParamId,
    wh: ParamId,
    b: ParamId,
    hidden: usize,
}

impl RnnCell {
    /// Allocates cell parameters.
    pub fn new(
        ps: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        in_dim: usize,
        hidden: usize,
    ) -> Self {
        let wx = ps.alloc(
            format!("{name}.wx"),
            init::xavier_uniform(rng, in_dim, hidden),
        );
        let wh = ps.alloc(
            format!("{name}.wh"),
            init::xavier_uniform(rng, hidden, hidden),
        );
        let b = ps.alloc(format!("{name}.b"), crate::matrix::Matrix::zeros(1, hidden));
        Self { wx, wh, b, hidden }
    }

    /// One step: consumes `x` (`n×in`) and `h` (`n×hidden`), returns `h'`.
    pub fn step(&self, g: &mut Graph, bind: &Binding, x: Var, h: Var) -> Var {
        let xw = g.matmul(x, bind.var(self.wx));
        let hw = g.matmul(h, bind.var(self.wh));
        let s = g.add(xw, hw);
        let s = g.add_row(s, bind.var(self.b));
        g.tanh(s)
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// A zero initial hidden state for a batch of `n` rows.
    pub fn zero_state(&self, g: &mut Graph, n: usize) -> Var {
        g.leaf(crate::matrix::Matrix::zeros(n, self.hidden))
    }
}

/// LSTM cell with input/forget/output gates and a candidate cell state.
#[derive(Clone, Debug)]
pub struct LstmCell {
    // One (wx, wh, b) triple per gate: input, forget, output, candidate.
    gates: [(ParamId, ParamId, ParamId); 4],
    hidden: usize,
}

impl LstmCell {
    /// Allocates cell parameters. The forget-gate bias starts at 1.0, the
    /// standard trick to avoid early vanishing of the cell state.
    pub fn new(
        ps: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        in_dim: usize,
        hidden: usize,
    ) -> Self {
        let mut make = |gate: &str, bias: f32| {
            let wx = ps.alloc(
                format!("{name}.{gate}.wx"),
                init::xavier_uniform(rng, in_dim, hidden),
            );
            let wh = ps.alloc(
                format!("{name}.{gate}.wh"),
                init::xavier_uniform(rng, hidden, hidden),
            );
            let b = ps.alloc(
                format!("{name}.{gate}.b"),
                crate::matrix::Matrix::full(1, hidden, bias),
            );
            (wx, wh, b)
        };
        let gates = [
            make("i", 0.0),
            make("f", 1.0),
            make("o", 0.0),
            make("c", 0.0),
        ];
        Self { gates, hidden }
    }

    fn gate(&self, g: &mut Graph, bind: &Binding, idx: usize, x: Var, h: Var) -> Var {
        let (wx, wh, b) = self.gates[idx];
        let xw = g.matmul(x, bind.var(wx));
        let hw = g.matmul(h, bind.var(wh));
        let s = g.add(xw, hw);
        g.add_row(s, bind.var(b))
    }

    /// One step: `(h, c) → (h', c')` for an `n×in` input batch.
    pub fn step(&self, g: &mut Graph, bind: &Binding, x: Var, h: Var, c: Var) -> (Var, Var) {
        let i_pre = self.gate(g, bind, 0, x, h);
        let i = g.sigmoid(i_pre);
        let f_pre = self.gate(g, bind, 1, x, h);
        let f = g.sigmoid(f_pre);
        let o_pre = self.gate(g, bind, 2, x, h);
        let o = g.sigmoid(o_pre);
        let cand_pre = self.gate(g, bind, 3, x, h);
        let cand = g.tanh(cand_pre);
        let fc = g.mul(f, c);
        let ic = g.mul(i, cand);
        let c_next = g.add(fc, ic);
        let c_act = g.tanh(c_next);
        let h_next = g.mul(o, c_act);
        (h_next, c_next)
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Zero `(h, c)` state for a batch of `n` rows.
    pub fn zero_state(&self, g: &mut Graph, n: usize) -> (Var, Var) {
        let h = g.leaf(crate::matrix::Matrix::zeros(n, self.hidden));
        let c = g.leaf(crate::matrix::Matrix::zeros(n, self.hidden));
        (h, c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::optim::{Optimizer, Sgd};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dense_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ps = ParamStore::new();
        let layer = Dense::new(&mut ps, &mut rng, "d", 3, 5, Activation::Relu);
        let mut g = Graph::new();
        let bind = ps.bind(&mut g);
        let x = g.leaf(Matrix::ones(4, 3));
        let y = layer.forward(&mut g, &bind, x);
        assert_eq!(g.shape(y), (4, 5));
    }

    #[test]
    fn mlp_learns_xor() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut ps = ParamStore::new();
        let mlp = Mlp::new(
            &mut ps,
            &mut rng,
            "m",
            &[2, 8, 1],
            Activation::Tanh,
            Activation::Sigmoid,
        );
        let xs = Matrix::from_vec(4, 2, vec![0., 0., 0., 1., 1., 0., 1., 1.]);
        let ys = Matrix::from_vec(4, 1, vec![0., 1., 1., 0.]);
        let mut opt = Sgd::new(1.0);
        let mut final_loss = f32::MAX;
        for _ in 0..800 {
            let mut g = Graph::new();
            let bind = ps.bind(&mut g);
            let x = g.leaf(xs.clone());
            let t = g.leaf(ys.clone());
            let pred = mlp.forward(&mut g, &bind, x);
            let diff = g.sub(pred, t);
            let sq = g.mul(diff, diff);
            let loss = g.mean_all(sq);
            final_loss = g.value(loss).as_scalar();
            let grads: Vec<Matrix> = g
                .grad(loss, bind.vars())
                .iter()
                .map(|&v| g.value(v).clone())
                .collect();
            opt.step(&mut ps, &grads);
        }
        assert!(final_loss < 0.05, "XOR loss did not converge: {final_loss}");
    }

    #[test]
    fn rnn_cell_shapes_and_state() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut ps = ParamStore::new();
        let cell = RnnCell::new(&mut ps, &mut rng, "r", 4, 6);
        let mut g = Graph::new();
        let bind = ps.bind(&mut g);
        let h0 = cell.zero_state(&mut g, 3);
        let x = g.leaf(Matrix::ones(3, 4));
        let h1 = cell.step(&mut g, &bind, x, h0);
        assert_eq!(g.shape(h1), (3, 6));
        // tanh output bounded.
        assert!(g.value(h1).data().iter().all(|&v| v.abs() <= 1.0));
    }

    #[test]
    fn lstm_cell_shapes() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut ps = ParamStore::new();
        let cell = LstmCell::new(&mut ps, &mut rng, "l", 4, 6);
        let mut g = Graph::new();
        let bind = ps.bind(&mut g);
        let (h0, c0) = cell.zero_state(&mut g, 2);
        let x = g.leaf(Matrix::ones(2, 4));
        let (h1, c1) = cell.step(&mut g, &bind, x, h0, c0);
        assert_eq!(g.shape(h1), (2, 6));
        assert_eq!(g.shape(c1), (2, 6));
    }

    #[test]
    fn lstm_remembers_longer_than_one_step() {
        // Feed a distinctive first input then zeros; the hidden state after
        // several steps must still depend on the first input.
        let mut rng = StdRng::seed_from_u64(5);
        let mut ps = ParamStore::new();
        let cell = LstmCell::new(&mut ps, &mut rng, "l", 2, 4);
        let run = |ps: &ParamStore, first: f32| -> Vec<f32> {
            let mut g = Graph::new();
            let bind = ps.bind(&mut g);
            let (mut h, mut c) = cell.zero_state(&mut g, 1);
            for t in 0..4 {
                let x = g.leaf(Matrix::row(&[if t == 0 { first } else { 0.0 }, 0.0]));
                let (h2, c2) = cell.step(&mut g, &bind, x, h, c);
                h = h2;
                c = c2;
            }
            g.value(h).data().to_vec()
        };
        let a = run(&ps, 1.0);
        let b = run(&ps, -1.0);
        assert_ne!(a, b, "LSTM forgot its first input entirely");
    }
}

#[cfg(test)]
mod activation_tests {
    use super::*;
    use crate::matrix::Matrix;

    #[test]
    fn activation_none_is_identity() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::row(&[-2.0, 3.0]));
        let y = Activation::None.apply(&mut g, x);
        assert_eq!(g.value(y).data(), &[-2.0, 3.0]);
    }

    #[test]
    fn activations_bound_outputs() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::row(&[-50.0, 50.0]));
        let s = Activation::Sigmoid.apply(&mut g, x);
        assert!(g.value(s).data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        let t = Activation::Tanh.apply(&mut g, x);
        assert!(g.value(t).data().iter().all(|&v| (-1.0..=1.0).contains(&v)));
        let r = Activation::Relu.apply(&mut g, x);
        assert_eq!(g.value(r).data(), &[0.0, 50.0]);
    }
}
