//! Static tape scheduler: dependence-DAG parallelism with a profitability
//! proof for every stage.
//!
//! [`TapePlan::replay`] executes steps strictly in plan order, which wastes
//! the independence the optimizer's DAG already encodes: sibling gradient
//! branches, per-layer forward steps, and the fan-out of an unrolled
//! hypergradient are all mutually independent, yet replay runs them one at
//! a time. This module recovers that parallelism *statically* — no runtime
//! speculation, no locks — in three analysis steps over a [`TapePlan`]:
//!
//! 1. **Dependence DAG** ([`analyze`]): one node per plan step, with three
//!    edge kinds. RAW edges come from use-def chains (a step depends on the
//!    steps computing its operands). WAR and WAW edges come from the
//!    *buffer-reuse plan*: when two steps share an arena slot, the later
//!    tenant must wait for the earlier tenant (WAW) **and for every reader
//!    of the earlier tenant's value** (WAR) — dropping either edge kind
//!    would let a stage overwrite a value another concurrent step is still
//!    reading.
//! 2. **Level-set stages**: each step's stage is `1 + max(stage of its
//!    predecessors)`. All steps of one stage are then *proved* mutually
//!    independent by the same [`dataflow::check_slot_interference`] logic
//!    that certifies the buffer plan — the schedule is collapsed to stage
//!    granularity (step index → stage index, last use → last *reading
//!    stage*) and the checker must find zero violations, which rules out
//!    both intra-stage slot sharing and any operand written in the stage
//!    that reads it. A plan that fails this proof is never parallelized:
//!    [`analyze`] returns the violations and callers fall back to the
//!    sequential [`TapePlan::replay`].
//! 3. **Profitability**: every stage is costed with the static FLOP/byte
//!    model ([`TapePlan::step_cost`]) and handed to the calibrated oracle
//!    ([`pool::cost::decide`]), which marks it `Sequential` or
//!    `Parallel { min_chunk }` from measured dispatch-overhead and
//!    throughput constants. Stages dominated by one big contraction stay
//!    sequential so the matmul kernel keeps its own (deeper) row-level
//!    fan-out instead of being flattened to one task.
//!
//! [`TapePlan::replay_scheduled`] then executes stage by stage. A parallel
//! stage takes all its destination buffers out of the arena (their slots
//! are pairwise distinct — proved), fans the steps over
//! [`pool::for_each_split`]'s disjoint `&mut` hand-offs with the whole
//! arena shared read-only, and restores the buffers after the join. Every
//! step computes exactly what sequential replay computes, from operands
//! finalized in earlier stages, so the result is bit-identical for any
//! thread count and any `PACE_SCHED` adversarial seed — `xtask
//! sched-report` and the `prop_sched` suite enforce this.
//!
//! Classifying an op for the cost model is an exhaustive match —
//! `xtask lint` extends its Op-coverage rule to this file so a new op
//! cannot silently land without a scheduling class.

use crate::dataflow::{self, SlotStep};
use crate::graph::Op;
use crate::matrix::Matrix;
use crate::opt::{plan_inputs, Arena, PlanKind, TapePlan};
use crate::pool;

/// The three hazard kinds a dependence edge can encode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeKind {
    /// Read-after-write: `to` reads the value `from` computes.
    Raw,
    /// Write-after-read: `to` overwrites an arena slot whose previous
    /// value `from` reads.
    War,
    /// Write-after-write: `to` overwrites a slot `from` wrote.
    Waw,
}

/// One edge of the step-level dependence DAG: `from` must complete before
/// `to` may start.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DepEdge {
    /// Plan index of the prerequisite step.
    pub from: usize,
    /// Plan index of the dependent step.
    pub to: usize,
    /// Which hazard forces the ordering.
    pub kind: EdgeKind,
}

/// How a step's kernel behaves inside a parallel stage — the scheduling
/// class the profitability analysis uses. The classifying match is
/// exhaustive over the op vocabulary (enforced by `xtask lint`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum StepClass {
    /// Cheap per-output-element arithmetic (adds, scalar maps, ReLU).
    Elementwise,
    /// Transcendental per-element math (several flops per element).
    Transcendental,
    /// A contraction (matmul) whose kernel has its own internal row-level
    /// fan-out; outer-level parallelism would flatten it to one task.
    Contraction,
    /// Whole-input reductions producing small outputs.
    Reduction,
    /// Pure data movement (transpose, broadcast, concat, slice).
    Movement,
}

/// Scheduling class of one plan node: ops classify by [`op_class`]; fused
/// super-steps ([`crate::fuse`]) are transcendental-class when any link
/// carries transcendental weight, elementwise otherwise — either way one
/// coarse node whose per-item work is the whole chain, which is exactly
/// what gives the profitability oracle grains worth fanning out.
pub(crate) fn node_class(kind: &PlanKind) -> StepClass {
    match kind {
        PlanKind::Const(_) => StepClass::Movement,
        PlanKind::Step { op, .. } => op_class(op),
        PlanKind::Fused { chain, .. } => {
            if chain.has_transcendental() {
                StepClass::Transcendental
            } else {
                StepClass::Elementwise
            }
        }
    }
}

/// Scheduling class of one op (see [`StepClass`]).
pub(crate) fn op_class(op: &Op) -> StepClass {
    match op {
        Op::Leaf => StepClass::Movement,
        Op::Add(..)
        | Op::Sub(..)
        | Op::Mul(..)
        | Op::Div(..)
        | Op::Maximum(..)
        | Op::Minimum(..)
        | Op::Neg(_)
        | Op::AddScalar(..)
        | Op::MulScalar(..)
        | Op::Relu(_)
        | Op::Abs(_)
        | Op::AddRow(..)
        | Op::MulRow(..)
        | Op::MulCol(..) => StepClass::Elementwise,
        Op::Sigmoid(_) | Op::Tanh(_) | Op::Exp(_) | Op::Ln(_) | Op::Sqrt(_) | Op::PowScalar(..) => {
            StepClass::Transcendental
        }
        Op::MatMul(..) => StepClass::Contraction,
        Op::SumAll(_) | Op::MeanAll(_) | Op::SumRows(_) | Op::MeanRows(_) | Op::SumCols(_) => {
            StepClass::Reduction
        }
        Op::Transpose(_)
        | Op::RepeatRows(..)
        | Op::RepeatCols(..)
        | Op::BroadcastScalar(..)
        | Op::ConcatCols(_)
        | Op::ConcatRows(_)
        | Op::SliceCols(..)
        | Op::SliceRows(..) => StepClass::Movement,
    }
}

/// One level set of the dependence DAG: steps proved mutually independent,
/// plus the profitability verdict for executing them concurrently.
#[derive(Clone, Debug)]
pub struct Stage {
    /// Plan indices of the stage's steps, ascending (= sequential order).
    pub steps: Vec<usize>,
    /// The oracle's verdict for fanning this stage out.
    pub decision: pool::cost::Decision,
    /// Modeled FLOPs across the stage's steps.
    pub flops: u64,
    /// Modeled bytes moved across the stage's steps: operand reads plus
    /// output writes. (Write-side-only counting under-costed bandwidth-bound
    /// stages and biased the oracle toward unprofitable fan-out.)
    pub bytes: u64,
}

/// A verified static schedule for one [`TapePlan`].
#[derive(Clone, Debug)]
pub struct Schedule {
    stages: Vec<Stage>,
    edges: Vec<DepEdge>,
    /// Stage index of each plan node (0 for constants).
    levels: Vec<usize>,
    /// Stats from the stage-collapsed interference proof.
    proof: dataflow::InterferenceStats,
}

/// Why a plan could not be scheduled; callers must fall back to the
/// sequential [`TapePlan::replay`].
#[derive(Clone, Debug)]
pub enum SchedError {
    /// A dependence edge points backwards — the plan order is corrupt.
    BackwardEdge(DepEdge),
    /// The stage-collapsed slot-interference proof found collisions.
    Interference(Vec<dataflow::SlotInterference>),
}

impl std::fmt::Display for SchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedError::BackwardEdge(e) => {
                write!(
                    f,
                    "backward dependence edge {} -> {} ({:?})",
                    e.from, e.to, e.kind
                )
            }
            SchedError::Interference(v) => {
                write!(
                    f,
                    "stage interference: {} collision(s), first: {}",
                    v.len(),
                    v[0]
                )
            }
        }
    }
}

impl Schedule {
    /// The verified stages, in execution order.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Every dependence edge the DAG holds (RAW ∪ WAR ∪ WAW).
    pub fn edges(&self) -> &[DepEdge] {
        &self.edges
    }

    /// Number of edges of one hazard kind.
    pub fn edge_count(&self, kind: EdgeKind) -> usize {
        self.edges.iter().filter(|e| e.kind == kind).count()
    }

    /// Stage index of a plan node (0 for constants).
    pub fn level(&self, node: usize) -> usize {
        self.levels[node]
    }

    /// Widest stage (steps per stage maximum).
    pub fn max_width(&self) -> usize {
        self.stages.iter().map(|s| s.steps.len()).max().unwrap_or(0)
    }

    /// Stages the oracle marked parallel.
    pub fn parallel_stages(&self) -> usize {
        self.stages
            .iter()
            .filter(|s| s.decision.is_parallel())
            .count()
    }

    /// Stats of the stage-collapsed interference proof that certified this
    /// schedule.
    pub fn proof_stats(&self) -> dataflow::InterferenceStats {
        self.proof
    }

    /// Predicted replay speedup of the scheduled execution vs. sequential,
    /// from the calibrated cost model: per-stage speedups weighted by the
    /// stage's share of modeled work. Sequential stages contribute 1×.
    pub fn predicted_speedup(&self) -> f64 {
        let total: f64 = self.stages.iter().map(|s| s.flops.max(1) as f64).sum();
        if total <= 0.0 {
            return 1.0;
        }
        let scaled: f64 = self
            .stages
            .iter()
            .map(|s| {
                let w = s.flops.max(1) as f64;
                if s.decision.is_parallel() {
                    let items = s.steps.len();
                    let r = pool::cost::RegionCost {
                        items,
                        flops_per_item: s.flops as f64 / items.max(1) as f64,
                        bytes_per_item: s.bytes as f64 / items.max(1) as f64,
                    };
                    w / pool::cost::predicted_speedup(&r).max(1.0)
                } else {
                    w
                }
            })
            .sum();
        (total / scaled.max(1e-9)).max(1.0)
    }

    /// Human-readable schedule summary for `xtask sched-report`.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "schedule: {} stages, max width {}, {} parallel | edges raw {} war {} waw {} | \
             proof: {} steps, {} slots, {} pairs",
            self.stages.len(),
            self.max_width(),
            self.parallel_stages(),
            self.edge_count(EdgeKind::Raw),
            self.edge_count(EdgeKind::War),
            self.edge_count(EdgeKind::Waw),
            self.proof.steps,
            self.proof.slots,
            self.proof.checked_pairs,
        );
        for (i, s) in self.stages.iter().enumerate() {
            let verdict = match s.decision {
                pool::cost::Decision::Sequential => "seq".to_string(),
                pool::cost::Decision::Parallel { min_chunk } => format!("par(grain {min_chunk})"),
            };
            let _ = writeln!(
                out,
                "  stage {i:>3}: {:>4} step(s) {verdict:<14} {:>12} flops",
                s.steps.len(),
                s.flops
            );
        }
        out
    }
}

/// Builds and verifies the static schedule of a plan (see the module docs
/// for the three analysis steps).
///
/// # Errors
/// [`SchedError`] when the dependence DAG is not a forward DAG or the
/// stage-collapsed interference proof fails; callers must then replay
/// sequentially.
pub fn analyze(plan: &TapePlan) -> Result<Schedule, SchedError> {
    let n = plan.nodes.len();
    // Readers of each node's value (step indices that take it as operand).
    let mut readers: Vec<Vec<usize>> = vec![Vec::new(); n];
    // Steps writing each arena slot, in plan order.
    let mut tenants: Vec<Vec<usize>> = vec![Vec::new(); plan.n_buffers];
    let mut edges: Vec<DepEdge> = Vec::new();

    for (i, node) in plan.nodes.iter().enumerate() {
        let Some(buffer) = node.write_buffer() else {
            continue;
        };
        for inp in plan_inputs(&node.kind) {
            let v = inp.index();
            readers[v].push(i);
            if plan.nodes[v].write_buffer().is_some() {
                edges.push(DepEdge {
                    from: v,
                    to: i,
                    kind: EdgeKind::Raw,
                });
            }
        }
        tenants[buffer].push(i);
    }
    // Arena-slot reuse: the next tenant waits for the previous tenant (WAW)
    // and for every reader of the previous tenant's value (WAR).
    for slot_tenants in &tenants {
        for pair in slot_tenants.windows(2) {
            let (prev, next) = (pair[0], pair[1]);
            edges.push(DepEdge {
                from: prev,
                to: next,
                kind: EdgeKind::Waw,
            });
            for &r in &readers[prev] {
                if r != next {
                    edges.push(DepEdge {
                        from: r,
                        to: next,
                        kind: EdgeKind::War,
                    });
                }
            }
        }
    }

    // Level assignment; every edge must point forward in plan order (the
    // plan is its own topological order), so one pass suffices.
    for e in &edges {
        if e.from >= e.to {
            return Err(SchedError::BackwardEdge(*e));
        }
    }
    let mut levels = vec![0usize; n];
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in &edges {
        preds[e.to].push(e.from);
    }
    for i in 0..n {
        if plan.nodes[i].write_buffer().is_some() {
            let base = preds[i].iter().map(|&p| levels[p]).max().unwrap_or(0);
            levels[i] = base + 1;
        }
    }

    // The independence proof: collapse to stage granularity and run the
    // arena-interference checker. A clean result proves no two same-stage
    // steps share a slot and no stage overwrites a slot whose previous
    // value is still read in (or after) that stage.
    let mut last_read_stage: Vec<usize> = levels.clone();
    for (v, rs) in readers.iter().enumerate() {
        for &r in rs {
            last_read_stage[v] = last_read_stage[v].max(levels[r]);
        }
    }
    for &o in &plan.outputs {
        last_read_stage[o] = usize::MAX;
    }
    let collapsed: Vec<SlotStep> = plan
        .nodes
        .iter()
        .enumerate()
        .filter_map(|(i, node)| {
            node.write_buffer().map(|slot| SlotStep {
                step: levels[i],
                slot,
                last_use: last_read_stage[i],
            })
        })
        .collect();
    let proof = dataflow::check_slot_interference(&collapsed).map_err(SchedError::Interference)?;
    // Defense in depth: RAW operands must be finalized in an earlier stage.
    for e in &edges {
        if levels[e.from] >= levels[e.to] {
            return Err(SchedError::BackwardEdge(*e));
        }
    }

    // Bucket steps into stages and run the profitability analysis.
    let max_level = levels.iter().copied().max().unwrap_or(0);
    let mut stages: Vec<Stage> = (0..max_level)
        .map(|_| Stage {
            steps: Vec::new(),
            decision: pool::cost::Decision::Sequential,
            flops: 0,
            bytes: 0,
        })
        .collect();
    for (i, node) in plan.nodes.iter().enumerate() {
        if node.write_buffer().is_none() {
            continue;
        }
        let stage = &mut stages[levels[i] - 1];
        stage.steps.push(i);
        let c = plan.node_cost_at(i).unwrap_or_default();
        stage.flops += c.flops;
        stage.bytes += (c.out_bytes + c.in_bytes) as u64;
    }
    for stage in &mut stages {
        stage.decision = stage_decision(plan, stage);
    }

    Ok(Schedule {
        stages,
        edges,
        levels,
        proof,
    })
}

/// The profitability verdict for one stage: the calibrated oracle over the
/// stage's modeled cost, with one static refinement — a stage whose work is
/// dominated by a single contraction stays sequential, so the matmul
/// kernel's own row-level fan-out (a much deeper source of parallelism)
/// is not flattened into one outer task.
fn stage_decision(plan: &TapePlan, stage: &Stage) -> pool::cost::Decision {
    let items = stage.steps.len();
    if items < 2 {
        return pool::cost::Decision::Sequential;
    }
    let mut max_contraction: u64 = 0;
    for &i in &stage.steps {
        if node_class(&plan.nodes[i].kind) == StepClass::Contraction {
            let c = plan.node_cost_at(i).unwrap_or_default();
            max_contraction = max_contraction.max(c.flops);
        }
    }
    if max_contraction.saturating_mul(2) > stage.flops {
        return pool::cost::Decision::Sequential;
    }
    pool::cost::decide(pool::cost::RegionCost {
        items,
        flops_per_item: stage.flops as f64 / items as f64,
        bytes_per_item: stage.bytes as f64 / items as f64,
    })
}

impl TapePlan {
    /// Builds the verified static schedule for this plan — shorthand for
    /// [`analyze`].
    ///
    /// # Errors
    /// See [`analyze`].
    pub fn schedule(&self) -> Result<Schedule, SchedError> {
        analyze(self)
    }

    /// Replays the plan stage by stage under a verified [`Schedule`],
    /// fanning parallel stages over the pool's disjoint `&mut` hand-offs.
    /// Results are bit-identical to [`TapePlan::replay`] for any thread
    /// count and any `PACE_SCHED` seed: each step reads only operands
    /// finalized in earlier stages (RAW edges), never a slot overwritten in
    /// its own stage (the interference proof), and writes only its own
    /// taken-out destination buffer.
    pub fn replay_scheduled(&self, sched: &Schedule, arena: &mut Arena) {
        if arena.buffers.len() < self.n_buffers {
            arena
                .buffers
                .resize_with(self.n_buffers, || Matrix::zeros(0, 0));
        }
        for stage in sched.stages() {
            let fan_out = stage.decision.is_parallel()
                && stage.steps.len() > 1
                && !pool::in_worker()
                && pool::threads() > 1;
            if !fan_out {
                for &i in &stage.steps {
                    let Some(buffer) = self.nodes[i].write_buffer() else {
                        continue;
                    };
                    let mut dst =
                        std::mem::replace(&mut arena.buffers[buffer], Matrix::zeros(0, 0));
                    self.exec_into(arena, i, &mut dst);
                    arena.buffers[buffer] = dst;
                }
                continue;
            }
            // Take every destination out of the arena (slots are pairwise
            // distinct within a stage — proved by the schedule), share the
            // remaining arena read-only, and hand each task its disjoint
            // chunk of (step, destination) pairs.
            let mut outs: Vec<(usize, Matrix)> = stage
                .steps
                .iter()
                .map(|&i| {
                    let buffer = self.nodes[i]
                        .write_buffer()
                        .unwrap_or_else(|| unreachable!("stages hold only executable nodes"));
                    (
                        i,
                        std::mem::replace(&mut arena.buffers[buffer], Matrix::zeros(0, 0)),
                    )
                })
                .collect();
            let grain = stage.decision.grain(outs.len());
            let grid = pool::chunk_ranges(outs.len(), grain);
            let shared: &Arena = arena;
            pool::for_each_split(&mut outs, &grid, |_lo, chunk| {
                for (i, dst) in chunk.iter_mut() {
                    self.exec_into(shared, *i, dst);
                }
            });
            for (i, m) in outs {
                if let Some(buffer) = self.nodes[i].write_buffer() {
                    arena.buffers[buffer] = m;
                }
            }
        }
        pace_trace::REPLAY_NODE_VISITS.add(self.stats().steps_after as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opt::{optimize, OptStats, PlanNode};
    use crate::{Graph, Var};

    /// Hand-built plan with a pure WAR hazard: n3 reuses n1's slot but
    /// reads only the constant, so *only* the WAR edge from n1's reader
    /// (n2) keeps n3 out of n2's stage. Dropping WAR edges from the DAG
    /// would let stage 2 run n2 (reading slot 0) concurrently with n3
    /// (overwriting slot 0) and diverge.
    fn war_plan() -> TapePlan {
        let shape = (1, 2);
        let nodes = vec![
            PlanNode {
                kind: PlanKind::Const(Matrix::row(&[1.0, 2.0])),
                shape,
            },
            PlanNode {
                kind: PlanKind::Step {
                    op: Op::Neg(Var::from_index(0)),
                    buffer: 0,
                },
                shape,
            },
            PlanNode {
                kind: PlanKind::Step {
                    op: Op::Neg(Var::from_index(1)),
                    buffer: 1,
                },
                shape,
            },
            PlanNode {
                kind: PlanKind::Step {
                    op: Op::Neg(Var::from_index(0)),
                    buffer: 0,
                },
                shape,
            },
        ];
        TapePlan {
            nodes,
            outputs: vec![2, 3],
            orig_outputs: vec![2, 3],
            n_buffers: 2,
            stats: OptStats::default(),
        }
    }

    #[test]
    fn seeded_war_slot_reuse_edge_is_present() {
        let plan = war_plan();
        let sched = analyze(&plan).expect("schedulable");
        // The witness: the WAR edge n2 -> n3 must exist …
        assert!(
            sched.edges().contains(&DepEdge {
                from: 2,
                to: 3,
                kind: EdgeKind::War
            }),
            "WAR edge from reader of previous slot tenant missing: {:?}",
            sched.edges()
        );
        // … and it must actually delay n3 past n2's stage.
        assert_eq!(sched.level(1), 1);
        assert_eq!(sched.level(2), 2);
        assert_eq!(
            sched.level(3),
            3,
            "n3 must be ordered after n2 (the reader of slot 0's previous value)"
        );
        assert!(sched.edges().contains(&DepEdge {
            from: 1,
            to: 3,
            kind: EdgeKind::Waw
        }));
    }

    #[test]
    fn interfering_plan_is_rejected() {
        // n2 reads n1 out of the very slot it overwrites — unschedulable
        // (and unsound for plain replay too; the static checker owns it).
        let shape = (1, 2);
        let nodes = vec![
            PlanNode {
                kind: PlanKind::Const(Matrix::row(&[1.0, 2.0])),
                shape,
            },
            PlanNode {
                kind: PlanKind::Step {
                    op: Op::Neg(Var::from_index(0)),
                    buffer: 0,
                },
                shape,
            },
            PlanNode {
                kind: PlanKind::Step {
                    op: Op::Neg(Var::from_index(1)),
                    buffer: 0,
                },
                shape,
            },
        ];
        let plan = TapePlan {
            nodes,
            outputs: vec![2],
            orig_outputs: vec![2],
            n_buffers: 1,
            stats: OptStats::default(),
        };
        match analyze(&plan) {
            Err(SchedError::Interference(v)) => {
                assert_eq!(v[0].slot, 0);
            }
            other => panic!("expected interference rejection, got {other:?}"),
        }
    }

    #[test]
    fn real_gradient_tape_schedules_and_matches_replay() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::from_vec(
            4,
            3,
            (0..12).map(|i| i as f32 * 0.17 - 1.0).collect(),
        ));
        let w = g.leaf(Matrix::from_vec(
            3,
            4,
            (0..12).map(|i| i as f32 * 0.11 - 0.5).collect(),
        ));
        let h = g.matmul(x, w);
        let s = g.sigmoid(h);
        let t = g.tanh(h);
        let joined = g.mul(s, t);
        let loss = g.mean_all(joined);
        let grads = g.grad(loss, &[x, w]);
        let plan = optimize(&g, &[loss, grads[0], grads[1]], &[x, w], "test::sched");
        let sched = plan.schedule().expect("clean plan schedules");
        assert!(!sched.stages().is_empty());
        assert_eq!(
            sched.proof_stats().steps,
            plan.stats().steps_after,
            "proof must cover every step"
        );

        let mut seq = Arena::new();
        plan.replay(&mut seq);
        let reference: Vec<Vec<u32>> = (0..plan.num_outputs())
            .map(|k| {
                plan.output_value(&seq, k)
                    .data()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect()
            })
            .collect();

        // Force a parallel-friendly cost model so fan-out paths execute.
        pool::cost::set_constants(Some(pool::cost::CostConstants {
            dispatch_ns: 100.0,
            task_ns: 10.0,
            flops_per_ns: 1.0,
            bytes_per_ns: 1.0,
            effective_parallelism: 8.0,
        }));
        let sched = plan.schedule().expect("schedules under parallel model");
        for threads in [1usize, 4] {
            pool::set_threads(threads);
            let mut arena = Arena::new();
            plan.replay_scheduled(&sched, &mut arena);
            for (k, want) in reference.iter().enumerate() {
                let got: Vec<u32> = plan
                    .output_value(&arena, k)
                    .data()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                assert_eq!(&got, want, "output {k} diverged at threads={threads}");
            }
        }
        pool::set_threads(0);
        pool::cost::set_constants(None);
    }

    #[test]
    fn op_classes_cover_cost_model_families() {
        let a = Var::from_index(0);
        assert_eq!(op_class(&Op::MatMul(a, a)), StepClass::Contraction);
        assert_eq!(op_class(&Op::Sigmoid(a)), StepClass::Transcendental);
        assert_eq!(op_class(&Op::SumAll(a)), StepClass::Reduction);
        assert_eq!(op_class(&Op::Transpose(a)), StepClass::Movement);
        assert_eq!(op_class(&Op::Add(a, a)), StepClass::Elementwise);
    }
}
