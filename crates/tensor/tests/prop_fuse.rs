//! Property test for elementwise fusion: on randomly built tapes (the same
//! generator the optimizer and scheduler property suites use), replaying a
//! fused plan must be **bit-identical** to replaying the unfused plan — for
//! the forward value, the gradient, and the gradient-of-gradient, across
//! thread counts and adversarial `PACE_SCHED` seeds, through both the
//! sequential interpreter and the staged scheduler. A single flipped bit
//! means a fused chain crossed a multi-use intermediate, picked the wrong
//! carry side of a non-commutative zip, or let blocking/chunking perturb a
//! per-element result.

use pace_tensor::opt::{optimize_with, Arena, OptConfig, TapePlan};
use pace_tensor::sched::analyze;
use pace_tensor::{pool, Graph, Matrix, Var};
use proptest::prelude::*;

/// Applies one randomly selected, always-well-formed op to the chain.
/// Biased toward map/zip runs (the fusible class) but still exercising
/// contraction, reduction, broadcast, and movement boundaries that must
/// break chains.
fn apply_op(g: &mut Graph, x: Var, pick: u8, all: &mut Vec<Var>) -> Var {
    let (r, c) = g.shape(x);
    let y = match pick % 16 {
        0 => g.add(x, x),
        1 => {
            let prev = all[all.len() / 2];
            if g.shape(prev) == (r, c) {
                g.sub(x, prev)
            } else {
                g.neg(x)
            }
        }
        2 => g.mul(x, x),
        3 => {
            let a = g.abs(x);
            let d = g.add_scalar(a, 1.0);
            g.div(x, d)
        }
        4 => g.sigmoid(x),
        5 => g.tanh(x),
        6 => {
            let t = g.transpose(x);
            g.matmul(x, t)
        }
        7 => {
            let s = g.sum_all(x);
            g.broadcast_scalar(s, r, c)
        }
        8 => {
            let row = g.sum_rows(x);
            let back = g.repeat_rows(row, r);
            g.add(back, x)
        }
        9 => {
            // A long straight map run: prime fusion bait.
            let a = g.mul_scalar(x, 0.75);
            let b = g.add_scalar(a, -0.25);
            let d = g.relu(b);
            g.sigmoid(d)
        }
        10 => {
            let row = g.mean_rows(x);
            g.add_row(x, row)
        }
        11 => {
            let prev = all[all.len() / 2];
            if g.shape(prev) == (r, c) {
                let t = g.tanh(x);
                g.maximum(t, prev)
            } else {
                let t = g.tanh(x);
                g.minimum(t, x)
            }
        }
        12 => g.concat_cols(&[x, x]),
        13 => g.concat_rows(&[x, x]),
        14 => {
            if c > 1 {
                g.slice_cols(x, 0, c - 1)
            } else {
                g.slice_rows(x, 0, r)
            }
        }
        _ => {
            let a = g.abs(x);
            let shifted = g.add_scalar(a, 0.5);
            g.ln(shifted)
        }
    };
    all.push(y);
    y
}

/// Random tape ending in a scalar loss, with first- and second-order
/// gradients as extra outputs (the shapes PACE actually replays).
fn random_grad_tape(r: usize, c: usize, seed_vals: &[f32], picks: &[u8]) -> (Graph, Var, Vec<Var>) {
    let mut g = Graph::new();
    let data: Vec<f32> = (0..r * c).map(|i| seed_vals[i % seed_vals.len()]).collect();
    let leaf = g.leaf(Matrix::from_vec(r, c, data));
    let mut all = vec![leaf];
    let mut head = leaf;
    for &p in picks {
        head = apply_op(&mut g, head, p, &mut all);
    }
    let loss = g.sum_all(head);
    let d1 = g.grad(loss, &[leaf])[0];
    let d1_sum = g.sum_all(d1);
    let d2 = g.grad(d1_sum, &[leaf])[0];
    (g, leaf, vec![loss, d1, d2])
}

fn output_bits(plan: &TapePlan, arena: &Arena) -> Vec<Vec<u32>> {
    (0..plan.num_outputs())
        .map(|k| {
            plan.output_value(arena, k)
                .data()
                .iter()
                .map(|v| v.to_bits())
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fused replay ≡ unfused replay, bit for bit — forward, grad, and
    /// grad-of-grad — across {1, 4, 8} threads and four adversarial
    /// `PACE_SCHED` seeds, through both `replay` and `replay_scheduled`,
    /// under a cost model that forces the fused chains' own fan-out path
    /// to really run.
    #[test]
    fn fused_replay_is_bit_identical_to_unfused(
        r in 1usize..4,
        c in 1usize..4,
        seed_vals in prop::collection::vec(-1.5f32..1.5, 9),
        picks in prop::collection::vec(0u8..=255, 1..10),
    ) {
        let (g, leaf, outputs) = random_grad_tape(r, c, &seed_vals, &picks);
        let unfused_cfg = OptConfig { fuse: false, ..OptConfig::default() };
        let unfused = optimize_with(&g, &outputs, &[leaf], "prop::fuse_off", unfused_cfg);
        let fused = optimize_with(&g, &outputs, &[leaf], "prop::fuse_on", OptConfig::default());
        prop_assert!(
            fused.check_interference().is_ok(),
            "fused plan failed the arena interference proof"
        );

        // Reference: the unfused plan, sequential, untouched cost model.
        pool::cost::set_constants(None);
        let mut seq = Arena::new();
        unfused.replay(&mut seq);
        let reference = output_bits(&unfused, &seq);

        // Aggressively parallel model: fused super-steps fan out over the
        // pool whenever remotely profitable, maximizing the chance a
        // chunking-dependent kernel would diverge.
        pool::cost::set_constants(Some(pool::cost::CostConstants {
            dispatch_ns: 1.0,
            task_ns: 1.0,
            flops_per_ns: 1.0,
            bytes_per_ns: 1.0,
            effective_parallelism: 8.0,
        }));
        let sched = analyze(&fused);
        prop_assert!(sched.is_ok(), "fused plan failed to schedule: {:?}", sched.err());
        let sched = sched.unwrap();

        for &threads in &[1usize, 4, 8] {
            pool::set_threads(threads);
            for &seed in &[1u64, 2, 0x5eed, 0xfeed_f00d] {
                pool::race::set_sched(Some(seed));
                let mut arena = Arena::new();
                fused.replay(&mut arena);
                let got = output_bits(&fused, &arena);
                prop_assert_eq!(
                    &got,
                    &reference,
                    "fused replay diverged: threads={} seed={:#x} chains={}",
                    threads,
                    seed,
                    fused.stats().fused_chains
                );
                let mut staged = Arena::new();
                fused.replay_scheduled(&sched, &mut staged);
                let got = output_bits(&fused, &staged);
                prop_assert_eq!(
                    &got,
                    &reference,
                    "fused scheduled replay diverged: threads={} seed={:#x} stages={}",
                    threads,
                    seed,
                    sched.stages().len()
                );
            }
        }
        pool::race::set_sched(None);
        pool::set_threads(0);
        pool::cost::set_constants(None);
    }
}
