//! Property-based gradient checking: random shapes, random values, random op
//! chains — the analytic gradient must always match finite differences.

use pace_tensor::check::assert_grad_close;
use pace_tensor::{Graph, Matrix};
use proptest::prelude::*;

fn matrix_strategy(max_r: usize, max_c: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_r, 1..=max_c).prop_flat_map(|(r, c)| {
        prop::collection::vec(-1.5f32..1.5, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn smooth_unary_chains_gradcheck(m in matrix_strategy(4, 5), pick in 0u8..5) {
        assert_grad_close("prop_unary", &m, 4e-2, move |g, x| {
            let y = match pick {
                0 => g.sigmoid(x),
                1 => g.tanh(x),
                2 => { let e = g.exp(x); g.sigmoid(e) }
                3 => { let s = g.mul_scalar(x, 0.5); g.tanh(s) }
                _ => { let a = g.add_scalar(x, 2.0); g.mul(a, a) }
            };
            let y2 = g.mul(y, y);
            g.sum_all(y2)
        });
    }

    #[test]
    fn matmul_sandwich_gradcheck(m in matrix_strategy(3, 4)) {
        assert_grad_close("prop_matmul", &m, 4e-2, |g, x| {
            let t = g.transpose(x);
            let sq = g.matmul(x, t); // r×r
            let s = g.sigmoid(sq);
            g.mean_all(s)
        });
    }

    #[test]
    fn reduction_combinations_gradcheck(m in matrix_strategy(4, 4), pick in 0u8..4) {
        assert_grad_close("prop_reduce", &m, 4e-2, move |g, x| {
            match pick {
                0 => { let r = g.sum_rows(x); let r2 = g.mul(r, r); g.sum_all(r2) }
                1 => { let c = g.sum_cols(x); let c2 = g.mul(c, c); g.sum_all(c2) }
                2 => { let r = g.mean_rows(x); let e = g.exp(r); g.mean_all(e) }
                _ => { let s = g.mean_all(x); let b = g.broadcast_scalar(s, 2, 2);
                       let b2 = g.mul(b, b); g.sum_all(b2) }
            }
        });
    }

    #[test]
    fn structural_round_trips_preserve_gradients(m in matrix_strategy(3, 4)) {
        // Slicing into pieces and concatenating back is the identity, so the
        // gradient of any downstream loss must match the direct version.
        let direct = |g: &mut Graph, x: pace_tensor::Var| {
            let s = g.sigmoid(x);
            g.sum_all(s)
        };
        let via_slices = move |g: &mut Graph, x: pace_tensor::Var| {
            let (_, c) = g.shape(x);
            let parts: Vec<_> = (0..c).map(|i| g.slice_cols(x, i, i + 1)).collect();
            let rebuilt = g.concat_cols(&parts);
            let s = g.sigmoid(rebuilt);
            g.sum_all(s)
        };
        let g1 = pace_tensor::check::analytic_grad(&m, direct);
        let g2 = pace_tensor::check::analytic_grad(&m, via_slices);
        for (a, b) in g1.data().iter().zip(g2.data()) {
            prop_assert!((a - b).abs() < 1e-6, "slice/concat changed gradient: {a} vs {b}");
        }
    }

    #[test]
    fn second_order_random_quadratics(v in prop::collection::vec(-1.0f32..1.0, 3)) {
        // f(x) = sum((x ⊙ x) ⊙ c): Hessian = diag(2c) — check via double backward.
        let c = [0.7f32, -1.3, 2.1];
        let m = Matrix::row(&v);
        let mut g = Graph::new();
        let x = g.leaf(m);
        let cv = g.leaf(Matrix::row(&c));
        let x2 = g.mul(x, x);
        let f = g.mul(x2, cv);
        let f = g.sum_all(f);
        let g1 = g.grad(f, &[x])[0];
        let s1 = g.sum_all(g1);
        let g2 = g.grad(s1, &[x])[0];
        for (got, want) in g.value(g2).data().iter().zip(c.iter().map(|ci| 2.0 * ci)) {
            prop_assert!((got - want).abs() < 1e-4, "hessian diag: {got} vs {want}");
        }
    }
}
