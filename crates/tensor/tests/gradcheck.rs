//! Finite-difference validation of every autograd op, first and second order.

use pace_tensor::check::{assert_grad_close, assert_second_order_close};
use pace_tensor::{Graph, Matrix, Var};

const TOL: f32 = 2e-2;

fn mat(vals: &[f32]) -> Matrix {
    Matrix::row(vals)
}

fn m23() -> Matrix {
    Matrix::from_vec(2, 3, vec![0.3, -0.7, 1.2, 0.9, -1.4, 0.5])
}

#[test]
fn grad_add_mul() {
    assert_grad_close("add", &m23(), TOL, |g, x| {
        let y = g.add(x, x);
        let z = g.mul(y, x);
        g.sum_all(z)
    });
}

#[test]
fn grad_sub_neg() {
    assert_grad_close("sub_neg", &m23(), TOL, |g, x| {
        let c = g.leaf(Matrix::full(2, 3, 0.5));
        let y = g.sub(x, c);
        let z = g.neg(y);
        let w = g.mul(z, z);
        g.sum_all(w)
    });
}

#[test]
fn grad_div() {
    assert_grad_close("div", &mat(&[1.3, 2.0, -1.5]), TOL, |g, x| {
        let c = g.leaf(mat(&[2.0, 3.0, 4.0]));
        let y = g.div(c, x);
        g.sum_all(y)
    });
}

#[test]
fn grad_scalar_ops() {
    assert_grad_close("scalar_ops", &m23(), TOL, |g, x| {
        let y = g.mul_scalar(x, 3.0);
        let y = g.add_scalar(y, -1.0);
        let y = g.mul(y, y);
        g.mean_all(y)
    });
}

#[test]
fn grad_pow_scalar() {
    assert_grad_close("pow", &mat(&[1.5, 2.0, 0.7]), TOL, |g, x| {
        let y = g.pow_scalar(x, 3.0);
        g.sum_all(y)
    });
}

#[test]
fn grad_matmul() {
    assert_grad_close("matmul_lhs", &m23(), TOL, |g, x| {
        let w = g.leaf(Matrix::from_vec(3, 2, vec![0.2, -0.4, 0.8, 0.1, -0.6, 0.9]));
        let y = g.matmul(x, w);
        let y2 = g.mul(y, y);
        g.sum_all(y2)
    });
    // And w.r.t. the right operand.
    let w = Matrix::from_vec(3, 2, vec![0.2, -0.4, 0.8, 0.1, -0.6, 0.9]);
    assert_grad_close("matmul_rhs", &w, TOL, |g, x| {
        let a = g.leaf(m23());
        let y = g.matmul(a, x);
        let y2 = g.mul(y, y);
        g.sum_all(y2)
    });
}

#[test]
fn grad_transpose() {
    assert_grad_close("transpose", &m23(), TOL, |g, x| {
        let xt = g.transpose(x);
        let y = g.matmul(x, xt);
        g.sum_all(y)
    });
}

#[test]
fn grad_activations() {
    for (name, f) in [
        ("sigmoid", Graph::sigmoid as fn(&mut Graph, Var) -> Var),
        ("tanh", Graph::tanh),
        ("exp", Graph::exp),
    ] {
        assert_grad_close(name, &m23(), TOL, move |g, x| {
            let y = f(g, x);
            let y2 = g.mul(y, y);
            g.sum_all(y2)
        });
    }
}

#[test]
fn grad_relu_abs_away_from_kink() {
    // Avoid x=0 where the sub-gradient is arbitrary.
    let x = mat(&[0.5, -0.8, 1.3, -2.0]);
    assert_grad_close("relu", &x, TOL, |g, v| {
        let y = g.relu(v);
        let y2 = g.mul(y, y);
        g.sum_all(y2)
    });
    assert_grad_close("abs", &x, TOL, |g, v| {
        let y = g.abs(v);
        g.sum_all(y)
    });
}

#[test]
fn grad_ln_sqrt_positive_domain() {
    let x = mat(&[0.5, 1.5, 3.0]);
    assert_grad_close("ln", &x, TOL, |g, v| {
        let y = g.ln(v);
        g.sum_all(y)
    });
    assert_grad_close("sqrt", &x, TOL, |g, v| {
        let y = g.sqrt(v);
        g.sum_all(y)
    });
}

#[test]
fn grad_max_min_no_ties() {
    let x = mat(&[0.5, -0.8, 1.3]);
    assert_grad_close("maximum", &x, TOL, |g, v| {
        let c = g.leaf(mat(&[0.0, 0.0, 2.0]));
        let y = g.maximum(v, c);
        let y2 = g.mul(y, y);
        g.sum_all(y2)
    });
    assert_grad_close("minimum", &x, TOL, |g, v| {
        let c = g.leaf(mat(&[0.0, 0.0, 2.0]));
        let y = g.minimum(v, c);
        let y2 = g.mul(y, y);
        g.sum_all(y2)
    });
}

#[test]
fn grad_reductions() {
    assert_grad_close("sum_rows", &m23(), TOL, |g, x| {
        let s = g.sum_rows(x);
        let s2 = g.mul(s, s);
        g.sum_all(s2)
    });
    assert_grad_close("mean_rows", &m23(), TOL, |g, x| {
        let s = g.mean_rows(x);
        let s2 = g.mul(s, s);
        g.sum_all(s2)
    });
    assert_grad_close("mean_all", &m23(), TOL, |g, x| {
        let m = g.mean_all(x);
        g.mul(m, m)
    });
}

#[test]
fn grad_broadcasts() {
    let row = mat(&[0.4, -0.9]);
    assert_grad_close("repeat_rows", &row, TOL, |g, x| {
        let r = g.repeat_rows(x, 3);
        let r2 = g.mul(r, r);
        g.sum_all(r2)
    });
    assert_grad_close("broadcast_scalar", &Matrix::scalar(1.7), TOL, |g, x| {
        let b = g.broadcast_scalar(x, 2, 2);
        let b2 = g.mul(b, b);
        g.sum_all(b2)
    });
    assert_grad_close("add_row_lhs", &m23(), TOL, |g, x| {
        let b = g.leaf(mat(&[0.1, -0.2, 0.3]));
        let y = g.add_row(x, b);
        let y2 = g.mul(y, y);
        g.sum_all(y2)
    });
    assert_grad_close("add_row_rhs", &mat(&[0.1, -0.2, 0.3]), TOL, |g, x| {
        let a = g.leaf(m23());
        let y = g.add_row(a, x);
        let y2 = g.mul(y, y);
        g.sum_all(y2)
    });
    assert_grad_close("mul_row_lhs", &m23(), TOL, |g, x| {
        let b = g.leaf(mat(&[0.5, -1.2, 0.8]));
        let y = g.mul_row(x, b);
        let y2 = g.mul(y, y);
        g.sum_all(y2)
    });
    assert_grad_close("mul_row_rhs", &mat(&[0.5, -1.2, 0.8]), TOL, |g, x| {
        let a = g.leaf(m23());
        let y = g.mul_row(a, x);
        let y2 = g.mul(y, y);
        g.sum_all(y2)
    });
}

#[test]
fn grad_structural() {
    assert_grad_close("concat_cols", &m23(), TOL, |g, x| {
        let c = g.leaf(Matrix::from_vec(2, 1, vec![0.7, -0.3]));
        let y = g.concat_cols(&[x, c]);
        let y2 = g.mul(y, y);
        g.sum_all(y2)
    });
    assert_grad_close("concat_rows", &m23(), TOL, |g, x| {
        let c = g.leaf(Matrix::from_vec(1, 3, vec![0.7, -0.3, 0.2]));
        let y = g.concat_rows(&[x, c]);
        let y2 = g.mul(y, y);
        g.sum_all(y2)
    });
    assert_grad_close("slice_cols", &m23(), TOL, |g, x| {
        let y = g.slice_cols(x, 1, 3);
        let y2 = g.mul(y, y);
        g.sum_all(y2)
    });
    assert_grad_close("slice_rows", &m23(), TOL, |g, x| {
        let y = g.slice_rows(x, 1, 2);
        let y2 = g.mul(y, y);
        g.sum_all(y2)
    });
}

#[test]
fn grad_accumulates_over_fanout() {
    // x used by two paths: grad must be the sum of both.
    assert_grad_close("fanout", &m23(), TOL, |g, x| {
        let a = g.sigmoid(x);
        let b = g.tanh(x);
        let s = g.mul(a, b);
        g.sum_all(s)
    });
}

#[test]
fn grad_unused_wrt_is_zero() {
    let mut g = Graph::new();
    let x = g.leaf(mat(&[1.0, 2.0]));
    let unused = g.leaf(mat(&[5.0]));
    let y = g.mul(x, x);
    let y = g.sum_all(y);
    let grads = g.grad(y, &[x, unused]);
    assert_eq!(g.value(grads[1]).data(), &[0.0]);
}

// ---- second order ----------------------------------------------------------

#[test]
fn second_order_polynomial() {
    let x = mat(&[0.8, -1.1, 0.4]);
    let w = mat(&[1.0, 0.5, -0.7]);
    assert_second_order_close("x^3", &x, &w, 5e-2, |g, v| {
        let y = g.pow_scalar(v, 3.0);
        g.sum_all(y)
    });
}

#[test]
fn second_order_sigmoid_network() {
    let x = mat(&[0.3, -0.6]);
    let w = mat(&[0.9, 0.9]);
    assert_second_order_close("sigmoid_net", &x, &w, 5e-2, |g, v| {
        let wm = g.leaf(Matrix::from_vec(2, 2, vec![0.5, -0.3, 0.8, 0.2]));
        let h = g.matmul(v, wm);
        let h = g.sigmoid(h);
        let h2 = g.mul(h, h);
        g.sum_all(h2)
    });
}

#[test]
fn second_order_through_inner_gradient_descent_step() {
    // The PACE-critical pattern: θ' = θ − η ∇L(θ); outer loss evaluated at θ'.
    // Differentiate the outer loss with respect to an input that only affects
    // it through the inner gradient.
    let q = mat(&[0.7, -0.2]); // "poisoning query" stand-in
    let w = mat(&[1.0, 1.0]);
    let f = |g: &mut Graph, qv: Var| -> Var {
        let theta = g.leaf(mat(&[0.5, -0.4]));
        // inner loss: sum((theta * q)^2)
        let tq = g.mul(theta, qv);
        let tq2 = g.mul(tq, tq);
        let inner = g.sum_all(tq2);
        let gtheta = g.grad(inner, &[theta])[0];
        let step = g.mul_scalar(gtheta, 0.1);
        let theta1 = g.sub(theta, step);
        // outer loss: sum(theta1^2) — depends on q only via the inner gradient.
        let t2 = g.mul(theta1, theta1);
        g.sum_all(t2)
    };
    assert_grad_close("hypergradient", &q, 5e-2, f);
    assert_second_order_close("hypergradient2", &q, &w, 8e-2, f);
}

#[test]
fn third_order_smoke() {
    // x^4: third derivative = 24x. Chain three grads.
    let mut g = Graph::new();
    let x = g.leaf(Matrix::scalar(1.5));
    let y = g.pow_scalar(x, 4.0);
    let y = g.sum_all(y);
    let g1 = g.grad(y, &[x])[0];
    let s1 = g.sum_all(g1);
    let g2 = g.grad(s1, &[x])[0];
    let s2 = g.sum_all(g2);
    let g3 = g.grad(s2, &[x])[0];
    let got = g.value(g3).as_scalar();
    assert!((got - 24.0 * 1.5).abs() < 1e-3, "third derivative: {got}");
}

#[test]
fn second_order_every_op() {
    // Every differentiable op, squared-and-summed so the Hessian is
    // non-trivial wherever the op has curvature, double-backward checked
    // against finite differences. Piecewise-linear ops (relu, abs, max/min,
    // slicing) have zero curvature away from their kinks — the check then
    // verifies the second-order graph builds and agrees that it is zero.
    type F = fn(&mut Graph, Var) -> Var;
    fn sq_sum(g: &mut Graph, y: Var) -> Var {
        let y2 = g.mul(y, y);
        g.sum_all(y2)
    }
    // Strictly positive input for domain-restricted ops (ln, sqrt, div, pow).
    fn p23() -> Matrix {
        Matrix::from_vec(2, 3, vec![0.4, 0.9, 1.3, 0.6, 1.1, 0.8])
    }
    let cases: Vec<(&str, Matrix, F)> = vec![
        ("add", m23(), |g, x| {
            let y = g.add(x, x);
            sq_sum(g, y)
        }),
        ("sub", m23(), |g, x| {
            let c = g.leaf(Matrix::full(2, 3, 0.3));
            let y = g.sub(x, c);
            sq_sum(g, y)
        }),
        ("mul", m23(), |g, x| {
            let y = g.mul(x, x);
            g.sum_all(y)
        }),
        ("div", p23(), |g, x| {
            let c = g.leaf(Matrix::full(2, 3, 2.0));
            let y = g.div(c, x);
            g.sum_all(y)
        }),
        ("neg", m23(), |g, x| {
            let y = g.neg(x);
            sq_sum(g, y)
        }),
        ("add_scalar", m23(), |g, x| {
            let y = g.add_scalar(x, 0.7);
            sq_sum(g, y)
        }),
        ("mul_scalar", m23(), |g, x| {
            let y = g.mul_scalar(x, 1.4);
            sq_sum(g, y)
        }),
        ("pow_scalar", p23(), |g, x| {
            let y = g.pow_scalar(x, 2.5);
            g.sum_all(y)
        }),
        ("matmul", m23(), |g, x| {
            let w = g.leaf(Matrix::from_vec(3, 2, vec![0.2, -0.4, 0.8, 0.1, -0.6, 0.9]));
            let y = g.matmul(x, w);
            sq_sum(g, y)
        }),
        ("transpose", m23(), |g, x| {
            let y = g.transpose(x);
            sq_sum(g, y)
        }),
        ("sigmoid", m23(), |g, x| {
            let y = g.sigmoid(x);
            g.sum_all(y)
        }),
        ("tanh", m23(), |g, x| {
            let y = g.tanh(x);
            g.sum_all(y)
        }),
        ("relu", m23(), |g, x| {
            let y = g.relu(x);
            sq_sum(g, y)
        }),
        ("exp", m23(), |g, x| {
            let y = g.exp(x);
            g.sum_all(y)
        }),
        ("ln", p23(), |g, x| {
            let y = g.ln(x);
            g.sum_all(y)
        }),
        ("sqrt", p23(), |g, x| {
            let y = g.sqrt(x);
            g.sum_all(y)
        }),
        ("abs", m23(), |g, x| {
            let y = g.abs(x);
            sq_sum(g, y)
        }),
        ("maximum", m23(), |g, x| {
            let c = g.leaf(Matrix::full(2, 3, 0.05));
            let y = g.maximum(x, c);
            sq_sum(g, y)
        }),
        ("minimum", m23(), |g, x| {
            let c = g.leaf(Matrix::full(2, 3, 0.05));
            let y = g.minimum(x, c);
            sq_sum(g, y)
        }),
        ("sum_all", m23(), |g, x| {
            let s = g.sum_all(x);
            g.mul(s, s)
        }),
        ("mean_all", m23(), |g, x| {
            let s = g.mean_all(x);
            g.mul(s, s)
        }),
        ("sum_rows", m23(), |g, x| {
            let s = g.sum_rows(x);
            sq_sum(g, s)
        }),
        ("mean_rows", m23(), |g, x| {
            let s = g.mean_rows(x);
            sq_sum(g, s)
        }),
        ("sum_cols", m23(), |g, x| {
            let s = g.sum_cols(x);
            sq_sum(g, s)
        }),
        ("repeat_rows", mat(&[0.4, -0.9, 0.6]), |g, x| {
            let r = g.repeat_rows(x, 3);
            sq_sum(g, r)
        }),
        (
            "repeat_cols",
            Matrix::from_vec(2, 1, vec![0.4, -0.9]),
            |g, x| {
                let r = g.repeat_cols(x, 3);
                sq_sum(g, r)
            },
        ),
        ("broadcast_scalar", Matrix::scalar(1.2), |g, x| {
            let b = g.broadcast_scalar(x, 2, 2);
            sq_sum(g, b)
        }),
        ("add_row", m23(), |g, x| {
            let b = g.leaf(mat(&[0.1, -0.2, 0.3]));
            let y = g.add_row(x, b);
            sq_sum(g, y)
        }),
        ("mul_row", m23(), |g, x| {
            let b = g.leaf(mat(&[0.5, -1.2, 0.8]));
            let y = g.mul_row(x, b);
            sq_sum(g, y)
        }),
        ("mul_col", m23(), |g, x| {
            let c = g.leaf(Matrix::from_vec(2, 1, vec![0.7, -1.3]));
            let y = g.mul_col(x, c);
            sq_sum(g, y)
        }),
        ("concat_cols", m23(), |g, x| {
            let c = g.leaf(Matrix::from_vec(2, 1, vec![0.7, -0.3]));
            let y = g.concat_cols(&[x, c]);
            sq_sum(g, y)
        }),
        ("concat_rows", m23(), |g, x| {
            let c = g.leaf(Matrix::from_vec(1, 3, vec![0.7, -0.3, 0.2]));
            let y = g.concat_rows(&[x, c]);
            sq_sum(g, y)
        }),
        ("slice_cols", m23(), |g, x| {
            let y = g.slice_cols(x, 1, 3);
            sq_sum(g, y)
        }),
        ("slice_rows", m23(), |g, x| {
            let y = g.slice_rows(x, 1, 2);
            sq_sum(g, y)
        }),
    ];
    for (name, x, f) in cases {
        let (r, c) = x.shape();
        let w = Matrix::from_vec(
            r,
            c,
            (0..r * c).map(|i| 0.3 + 0.2 * ((i % 3) as f32)).collect(),
        );
        assert_second_order_close(name, &x, &w, 8e-2, f);
    }
}

#[test]
fn grad_col_ops() {
    assert_grad_close("mul_col_lhs", &m23(), TOL, |g, x| {
        let c = g.leaf(Matrix::from_vec(2, 1, vec![0.7, -1.3]));
        let y = g.mul_col(x, c);
        let y2 = g.mul(y, y);
        g.sum_all(y2)
    });
    assert_grad_close(
        "mul_col_rhs",
        &Matrix::from_vec(2, 1, vec![0.7, -1.3]),
        TOL,
        |g, x| {
            let a = g.leaf(m23());
            let y = g.mul_col(a, x);
            let y2 = g.mul(y, y);
            g.sum_all(y2)
        },
    );
    assert_grad_close("sum_cols", &m23(), TOL, |g, x| {
        let s = g.sum_cols(x);
        let s2 = g.mul(s, s);
        g.sum_all(s2)
    });
    assert_grad_close(
        "repeat_cols",
        &Matrix::from_vec(2, 1, vec![0.4, -0.9]),
        TOL,
        |g, x| {
            let r = g.repeat_cols(x, 3);
            let r2 = g.mul(r, r);
            g.sum_all(r2)
        },
    );
}
