//! Property tests for the tape auditor: on randomly built graphs, static
//! shape inference must agree with the shapes the eager execution actually
//! produced, and a graph built purely through the public op constructors
//! must never raise a shape issue.

use pace_tensor::analysis::{audit, inferred_shape};
use pace_tensor::{Graph, Matrix, Var};
use proptest::prelude::*;

/// Applies one randomly selected, always-well-formed op to the chain.
///
/// `x` is the current chain head (arbitrary shape); returns the new head.
/// Each arm only uses shape information available at build time, mirroring
/// how model code composes ops.
fn apply_op(g: &mut Graph, x: Var, pick: u8, all: &mut Vec<Var>) -> Var {
    let (r, c) = g.shape(x);
    let y = match pick % 16 {
        0 => g.add(x, x),
        1 => {
            let prev = all[all.len() / 2];
            if g.shape(prev) == (r, c) {
                g.sub(x, prev)
            } else {
                g.neg(x)
            }
        }
        2 => g.mul(x, x),
        3 => {
            // Keep the denominator away from zero.
            let a = g.abs(x);
            let d = g.add_scalar(a, 1.0);
            g.div(x, d)
        }
        4 => g.sigmoid(x),
        5 => g.tanh(x),
        6 => {
            let t = g.transpose(x);
            g.matmul(x, t) // r×c · c×r = r×r
        }
        7 => {
            let s = g.sum_all(x);
            g.broadcast_scalar(s, r, c)
        }
        8 => {
            let row = g.sum_rows(x); // 1×c
            let back = g.repeat_rows(row, r);
            g.add(back, x)
        }
        9 => {
            let col = g.sum_cols(x); // r×1
            let back = g.repeat_cols(col, c);
            g.mul(back, x)
        }
        10 => {
            let row = g.mean_rows(x);
            g.add_row(x, row)
        }
        11 => {
            let col = g.sum_cols(x);
            g.mul_col(x, col)
        }
        12 => g.concat_cols(&[x, x]),
        13 => g.concat_rows(&[x, x]),
        14 => {
            if c > 1 {
                g.slice_cols(x, 0, c - 1)
            } else {
                g.slice_rows(x, 0, r)
            }
        }
        _ => {
            let a = g.abs(x);
            let shifted = g.add_scalar(a, 0.5);
            let l = g.ln(shifted);
            g.sqrt(shifted); // also exercise sqrt on the same positive input
            l
        }
    };
    all.push(y);
    y
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For every node of a randomly composed graph, [`inferred_shape`] must
    /// return exactly the shape eager execution recorded, and the audit
    /// must contain zero shape issues — the static pass and the interpreter
    /// agree on the whole op vocabulary reachable through the public API.
    #[test]
    fn inference_agrees_with_execution(
        r in 1usize..4,
        c in 1usize..4,
        seed_vals in prop::collection::vec(-1.5f32..1.5, 9),
        picks in prop::collection::vec(0u8..=255, 1..12),
    ) {
        let mut g = Graph::new();
        let data: Vec<f32> = (0..r * c).map(|i| seed_vals[i % seed_vals.len()]).collect();
        let leaf = g.leaf(Matrix::from_vec(r, c, data));
        let mut all = vec![leaf];
        let mut head = leaf;
        for &p in &picks {
            head = apply_op(&mut g, head, p, &mut all);
        }
        let out = g.sum_all(head);

        // Node-by-node agreement between the static pass and execution for
        // every var the builder handed out (intermediates created inside
        // `apply_op` arms are covered by the audit's full-tape pass below).
        for &v in all.iter().chain([&out]) {
            let inferred = inferred_shape(&g, v);
            prop_assert_eq!(
                inferred.clone(),
                Ok(g.shape(v)),
                "node n{} disagrees: {:?}",
                v.index(),
                inferred
            );
        }

        let report = audit(&g, out, &[leaf], "prop::inference");
        prop_assert!(
            report.shape_issues.is_empty(),
            "well-formed graph raised shape issues:\n{}",
            report.render()
        );
        prop_assert!(report.no_grad_params.is_empty(), "chain head depends on the leaf");
        prop_assert!(report.closure_failures.is_empty(), "{}", report.render());
        prop_assert_eq!(report.nodes, g.len());
    }
}
