//! Property tests for the tracing layer's zero-perturbation contract: a
//! traced run must be **bit-identical** to an untraced run of the same
//! computation, at any thread count. Tracing observes the pipeline — spans,
//! counters, histograms — without touching a single float.

use pace_tensor::{pool, trace, Graph, Matrix};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Tracing (like fault injection) is process-global state; property cases
/// must not interleave with each other or with other trace tests.
fn lock() -> MutexGuard<'static, ()> {
    static TRACE_LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match TRACE_LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn scratch_trace_path() -> PathBuf {
    std::env::temp_dir().join(format!("pace-prop-trace-{}.jsonl", std::process::id()))
}

/// Finite value table (tracing determinism is about not perturbing the
/// numerics; NaN propagation is prop_parallel's business).
fn value(code: u8) -> f32 {
    ((code % 23) as f32 - 11.0) * 0.173 + 0.05
}

fn matrix_from(rows: usize, cols: usize, codes: &[u8]) -> Matrix {
    let data: Vec<f32> = (0..rows * cols)
        .map(|i| value(codes[i % codes.len()].wrapping_add(i as u8)))
        .collect();
    Matrix::from_vec(rows, cols, data)
}

/// A small training-shaped tape: matmul chain, elementwise nonlinearity,
/// scalar loss, gradients back to both leaves. Returns every output bit.
fn run_tape(n: usize, k: usize, m: usize, codes: &[u8]) -> Vec<u32> {
    let _span = trace::span("prop::run_tape");
    let mut g = Graph::new();
    let a = g.leaf(matrix_from(n, k, codes));
    let b = g.leaf(matrix_from(k, m, codes));
    let h = g.matmul(a, b);
    let s = g.sigmoid(h);
    let sq = g.mul(s, s);
    let loss = g.sum_all(sq);
    let grads = g.grad(loss, &[a, b]);
    let mut bits: Vec<u32> = g.value(loss).data().iter().map(|x| x.to_bits()).collect();
    for v in grads {
        bits.extend(g.value(v).data().iter().map(|x| x.to_bits()));
    }
    bits
}

/// A pool-parallel elementwise pass, large enough to cross the fan-out
/// threshold so worker-side counter/histogram updates happen while traced.
fn run_pool(cols: usize, codes: &[u8]) -> Vec<u32> {
    let _span = trace::span("prop::run_pool");
    let a = matrix_from(1, cols, codes);
    a.map(|x| x * 1.0625 - 0.25)
        .data()
        .iter()
        .map(|x| x.to_bits())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arming the tracer changes nothing about the computation: same seeds,
    /// same shapes, same bits — with the pool at 1 and 4 threads.
    #[test]
    fn traced_run_is_bit_identical_to_untraced(
        n in 1usize..48,
        k in 1usize..32,
        m in 1usize..48,
        cols in 60_000usize..70_000,
        codes in proptest::collection::vec(any::<u8>(), 1..32),
    ) {
        let _guard = lock();
        let path = scratch_trace_path();
        for threads in [1usize, 4] {
            pool::set_threads(threads);
            trace::install(None);
            let tape_ref = run_tape(n, k, m, &codes);
            let pool_ref = run_pool(cols, &codes);

            trace::install(Some(path.clone()));
            let tape_traced = run_tape(n, k, m, &codes);
            let pool_traced = run_pool(cols, &codes);
            trace::flush();
            trace::install(None);

            prop_assert_eq!(&tape_traced, &tape_ref, "tape bits differ at {} threads", threads);
            prop_assert_eq!(&pool_traced, &pool_ref, "pool bits differ at {} threads", threads);

            // The trace itself must be substantive: spans recorded, and the
            // matmul FLOP counter snapshot present in the flushed file.
            let text = std::fs::read_to_string(&path).expect("trace file written");
            prop_assert!(text.lines().any(|l| l.contains("prop::run_tape")));
            prop_assert!(text.lines().any(|l| l.contains("matmul_flops")));
        }
        pool::set_threads(0);
        let _ = std::fs::remove_file(&path);
    }
}
