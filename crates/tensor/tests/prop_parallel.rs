//! Property tests for the deterministic parallel runtime: on random shapes,
//! values (including zeros, NaN, and infinities), and thread counts, the
//! pool-parallel matmul and elementwise kernels must be **bit-identical**
//! to their sequential execution — the contract that makes `PACE_THREADS`
//! a pure performance knob.

use pace_tensor::{pool, Matrix};
use proptest::prelude::*;

/// Deterministic value table mixing magnitudes, exact zeros, and non-finite
/// sentinels so both the zero-skip and NaN-propagation paths are exercised.
fn value(code: u8) -> f32 {
    match code % 16 {
        0..=2 => 0.0,
        3 => f32::NAN,
        4 => f32::INFINITY,
        5 => -1.5e20,
        6 => 1e-20,
        n => (n as f32 - 10.0) * 0.37,
    }
}

fn matrix_from(rows: usize, cols: usize, codes: &[u8]) -> Matrix {
    let data: Vec<f32> = (0..rows * cols)
        .map(|i| value(codes[i % codes.len()].wrapping_add(i as u8)))
        .collect();
    Matrix::from_vec(rows, cols, data)
}

fn bits(m: &Matrix) -> Vec<u32> {
    m.data().iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Matmul at any thread count reproduces the single-thread bits. Shapes
    /// up to 96×64·64×96 cross the parallel fan-out threshold; small shapes
    /// cover the sequential path of the same kernel.
    #[test]
    fn matmul_parallel_matches_sequential(
        n in 1usize..96,
        k in 1usize..64,
        m in 1usize..96,
        codes in proptest::collection::vec(any::<u8>(), 1..64),
        threads in 1usize..9,
    ) {
        let a = matrix_from(n, k, &codes);
        let b = matrix_from(k, m, &codes);
        pool::set_threads(1);
        let reference = a.matmul(&b);
        pool::set_threads(threads);
        let parallel = a.matmul(&b);
        pool::set_threads(0);
        prop_assert_eq!(bits(&parallel), bits(&reference));
    }

    /// Elementwise map/zip are chunk-invariant: any thread count reproduces
    /// the sequential bits (sizes chosen to cross the elementwise fan-out
    /// threshold of 2^16 elements).
    #[test]
    fn elementwise_parallel_matches_sequential(
        rows in 1usize..3,
        cols in 60_000usize..80_000,
        codes in proptest::collection::vec(any::<u8>(), 1..32),
        threads in 2usize..9,
    ) {
        let a = matrix_from(rows, cols, &codes);
        let b = matrix_from(rows, cols, &codes);
        pool::set_threads(1);
        let map_ref = a.map(|x| x * 1.0625 - 0.25);
        let zip_ref = a.zip(&b, |x, y| x * y + 0.5);
        pool::set_threads(threads);
        let map_par = a.map(|x| x * 1.0625 - 0.25);
        let zip_par = a.zip(&b, |x, y| x * y + 0.5);
        pool::set_threads(0);
        prop_assert_eq!(bits(&map_par), bits(&map_ref));
        prop_assert_eq!(bits(&zip_par), bits(&zip_ref));
    }
}
