//! Property tests for the optimizing pass pipeline: on randomly built
//! tapes, the optimized replay must reproduce the eagerly recorded forward
//! value, the first-order gradient, and the gradient-of-the-gradient — the
//! three tape shapes the PACE attack actually differentiates — within
//! `1e-5`, under every pass combination.

use pace_tensor::opt::{optimize_with, OptConfig};
use pace_tensor::{Graph, Matrix, Var};
use proptest::prelude::*;

/// Applies one randomly selected, always-well-formed op to the chain (same
/// builder the auditor's property tests use).
fn apply_op(g: &mut Graph, x: Var, pick: u8, all: &mut Vec<Var>) -> Var {
    let (r, c) = g.shape(x);
    let y = match pick % 16 {
        0 => g.add(x, x),
        1 => {
            let prev = all[all.len() / 2];
            if g.shape(prev) == (r, c) {
                g.sub(x, prev)
            } else {
                g.neg(x)
            }
        }
        2 => g.mul(x, x),
        3 => {
            let a = g.abs(x);
            let d = g.add_scalar(a, 1.0);
            g.div(x, d)
        }
        4 => g.sigmoid(x),
        5 => g.tanh(x),
        6 => {
            let t = g.transpose(x);
            g.matmul(x, t)
        }
        7 => {
            let s = g.sum_all(x);
            g.broadcast_scalar(s, r, c)
        }
        8 => {
            let row = g.sum_rows(x);
            let back = g.repeat_rows(row, r);
            g.add(back, x)
        }
        9 => {
            let col = g.sum_cols(x);
            let back = g.repeat_cols(col, c);
            g.mul(back, x)
        }
        10 => {
            let row = g.mean_rows(x);
            g.add_row(x, row)
        }
        11 => {
            let col = g.sum_cols(x);
            g.mul_col(x, col)
        }
        12 => g.concat_cols(&[x, x]),
        13 => g.concat_rows(&[x, x]),
        14 => {
            if c > 1 {
                g.slice_cols(x, 0, c - 1)
            } else {
                g.slice_rows(x, 0, r)
            }
        }
        _ => {
            let a = g.abs(x);
            let shifted = g.add_scalar(a, 0.5);
            g.ln(shifted)
        }
    };
    all.push(y);
    y
}

/// Builds a random tape ending in a scalar, plus its gradient and
/// double-backward gradient with respect to the leaf. Returns the graph,
/// the leaf, and the three outputs `[loss, ∂loss/∂leaf, ∂²]`.
fn random_grad_tape(r: usize, c: usize, seed_vals: &[f32], picks: &[u8]) -> (Graph, Var, Vec<Var>) {
    let mut g = Graph::new();
    let data: Vec<f32> = (0..r * c).map(|i| seed_vals[i % seed_vals.len()]).collect();
    let leaf = g.leaf(Matrix::from_vec(r, c, data));
    let mut all = vec![leaf];
    let mut head = leaf;
    for &p in picks {
        head = apply_op(&mut g, head, p, &mut all);
    }
    let loss = g.sum_all(head);
    let d1 = g.grad(loss, &[leaf])[0];
    let d1_sum = g.sum_all(d1);
    let d2 = g.grad(d1_sum, &[leaf])[0];
    (g, leaf, vec![loss, d1, d2])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Full pipeline (fold + CSE + DCE + buffer reuse): the optimized replay
    /// of forward, gradient, and gradient-of-gradient must match what eager
    /// execution recorded.
    #[test]
    fn optimized_replay_matches_forward_grad_and_double_grad(
        r in 1usize..4,
        c in 1usize..4,
        seed_vals in prop::collection::vec(-1.5f32..1.5, 9),
        picks in prop::collection::vec(0u8..=255, 1..10),
    ) {
        let (g, leaf, outputs) = random_grad_tape(r, c, &seed_vals, &picks);
        let plan = pace_tensor::opt::optimize(&g, &outputs, &[leaf], "prop::full");
        prop_assert!(
            plan.verify(&g, 1e-5).is_ok(),
            "optimized replay diverged: {:?}\n{}",
            plan.verify(&g, 1e-5),
            plan.stats().render()
        );
        // The pipeline must never add nodes.
        prop_assert!(plan.stats().nodes_after <= plan.stats().nodes_before);
    }

    /// Every single-pass configuration must also be sound on its own — a bug
    /// masked by a later pass would make the combined harness useless for
    /// attribution.
    #[test]
    fn each_pass_is_individually_sound(
        r in 1usize..4,
        c in 1usize..4,
        seed_vals in prop::collection::vec(-1.5f32..1.5, 9),
        picks in prop::collection::vec(0u8..=255, 1..8),
    ) {
        let (g, leaf, outputs) = random_grad_tape(r, c, &seed_vals, &picks);
        let configs = [
            ("baseline", OptConfig::baseline()),
            ("dce", OptConfig { dce: true, ..OptConfig::baseline() }),
            ("cse", OptConfig { cse: true, ..OptConfig::baseline() }),
            ("fold", OptConfig { fold: true, ..OptConfig::baseline() }),
            ("reuse", OptConfig { reuse_buffers: true, ..OptConfig::baseline() }),
        ];
        for (name, cfg) in configs {
            let plan = optimize_with(&g, &outputs, &[leaf], &format!("prop::{name}"), cfg);
            let check = plan.verify(&g, 1e-5);
            prop_assert!(
                check.is_ok(),
                "pass `{name}` alone diverged: {check:?}\n{}",
                plan.stats().render()
            );
        }
    }
}
