//! Property test for the static tape scheduler: on randomly built tapes
//! (the same generator the optimizer property suite uses), the staged
//! parallel replay must be **bit-identical** to the sequential replay —
//! across thread counts and under adversarial `PACE_SCHED` seeds. A single
//! flipped bit means a dependence edge (RAW, or a WAR/WAW slot-reuse edge)
//! was dropped and a stage read or overwrote a live value.

use pace_tensor::opt::{optimize, Arena};
use pace_tensor::sched::analyze;
use pace_tensor::{pool, Graph, Matrix, Var};
use proptest::prelude::*;

/// Applies one randomly selected, always-well-formed op to the chain.
fn apply_op(g: &mut Graph, x: Var, pick: u8, all: &mut Vec<Var>) -> Var {
    let (r, c) = g.shape(x);
    let y = match pick % 16 {
        0 => g.add(x, x),
        1 => {
            let prev = all[all.len() / 2];
            if g.shape(prev) == (r, c) {
                g.sub(x, prev)
            } else {
                g.neg(x)
            }
        }
        2 => g.mul(x, x),
        3 => {
            let a = g.abs(x);
            let d = g.add_scalar(a, 1.0);
            g.div(x, d)
        }
        4 => g.sigmoid(x),
        5 => g.tanh(x),
        6 => {
            let t = g.transpose(x);
            g.matmul(x, t)
        }
        7 => {
            let s = g.sum_all(x);
            g.broadcast_scalar(s, r, c)
        }
        8 => {
            let row = g.sum_rows(x);
            let back = g.repeat_rows(row, r);
            g.add(back, x)
        }
        9 => {
            let col = g.sum_cols(x);
            let back = g.repeat_cols(col, c);
            g.mul(back, x)
        }
        10 => {
            let row = g.mean_rows(x);
            g.add_row(x, row)
        }
        11 => {
            let col = g.sum_cols(x);
            g.mul_col(x, col)
        }
        12 => g.concat_cols(&[x, x]),
        13 => g.concat_rows(&[x, x]),
        14 => {
            if c > 1 {
                g.slice_cols(x, 0, c - 1)
            } else {
                g.slice_rows(x, 0, r)
            }
        }
        _ => {
            let a = g.abs(x);
            let shifted = g.add_scalar(a, 0.5);
            g.ln(shifted)
        }
    };
    all.push(y);
    y
}

/// Random tape ending in a scalar loss, with first- and second-order
/// gradients as extra outputs (the shapes PACE actually replays).
fn random_grad_tape(r: usize, c: usize, seed_vals: &[f32], picks: &[u8]) -> (Graph, Var, Vec<Var>) {
    let mut g = Graph::new();
    let data: Vec<f32> = (0..r * c).map(|i| seed_vals[i % seed_vals.len()]).collect();
    let leaf = g.leaf(Matrix::from_vec(r, c, data));
    let mut all = vec![leaf];
    let mut head = leaf;
    for &p in picks {
        head = apply_op(&mut g, head, p, &mut all);
    }
    let loss = g.sum_all(head);
    let d1 = g.grad(loss, &[leaf])[0];
    let d1_sum = g.sum_all(d1);
    let d2 = g.grad(d1_sum, &[leaf])[0];
    (g, leaf, vec![loss, d1, d2])
}

fn output_bits(plan: &pace_tensor::opt::TapePlan, arena: &Arena) -> Vec<Vec<u32>> {
    (0..plan.num_outputs())
        .map(|k| {
            plan.output_value(arena, k)
                .data()
                .iter()
                .map(|v| v.to_bits())
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `replay_scheduled` ≡ `replay`, bit for bit, across {1, 4, 8} threads
    /// and four adversarial `PACE_SCHED` seeds, under a cost model that
    /// forces parallel stage decisions (so the fan-out path really runs).
    #[test]
    fn scheduled_replay_is_bit_identical_to_sequential(
        r in 1usize..4,
        c in 1usize..4,
        seed_vals in prop::collection::vec(-1.5f32..1.5, 9),
        picks in prop::collection::vec(0u8..=255, 1..10),
    ) {
        let (g, leaf, outputs) = random_grad_tape(r, c, &seed_vals, &picks);
        let plan = optimize(&g, &outputs, &[leaf], "prop::sched");

        // Reference: plain sequential replay, untouched cost model.
        pool::cost::set_constants(None);
        let mut seq = Arena::new();
        plan.replay(&mut seq);
        let reference = output_bits(&plan, &seq);

        // Aggressively parallel model: every profitable-looking stage fans
        // out, maximizing the chance a missing edge would diverge.
        pool::cost::set_constants(Some(pool::cost::CostConstants {
            dispatch_ns: 1.0,
            task_ns: 1.0,
            flops_per_ns: 1.0,
            bytes_per_ns: 1.0,
            effective_parallelism: 8.0,
        }));
        let sched = analyze(&plan);
        prop_assert!(sched.is_ok(), "clean plan failed to schedule: {:?}", sched.err());
        let sched = sched.unwrap();
        prop_assert_eq!(sched.proof_stats().steps, plan.stats().steps_after);

        for &threads in &[1usize, 4, 8] {
            pool::set_threads(threads);
            for &seed in &[1u64, 2, 0x5eed, 0xfeed_f00d] {
                pool::race::set_sched(Some(seed));
                let mut arena = Arena::new();
                plan.replay_scheduled(&sched, &mut arena);
                let got = output_bits(&plan, &arena);
                prop_assert_eq!(
                    &got,
                    &reference,
                    "scheduled replay diverged: threads={} seed={:#x} stages={}",
                    threads,
                    seed,
                    sched.stages().len()
                );
            }
        }
        pool::race::set_sched(None);
        pool::set_threads(0);
        pool::cost::set_constants(None);
    }
}
