//! VAE-based anomaly detector (paper Section 6).
//!
//! Trained unsupervised on historical query encodings with a reconstruction
//! (MSE) + KL loss; a query whose reconstruction error exceeds a threshold
//! `δ` is flagged abnormal. During generator training the *deterministic*
//! reconstruction path (`z = μ`) is differentiable, so the reconstruction
//! loss of flagged poisoning queries back-propagates into the generator —
//! the adversarial confrontation that keeps poisoning queries close to the
//! historical distribution.

use pace_tensor::init::gaussian;
use pace_tensor::nn::{Activation, Dense, Mlp};
use pace_tensor::optim::{clip_global_norm, sanitize, Adam, Optimizer};
use pace_tensor::{Binding, Graph, Matrix, ParamStore, Var};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// VAE hyperparameters (paper: 7 layers total, Adam at `1e-3`, threshold
/// `δ = 0.05` by default).
#[derive(Clone, Copy, Debug)]
pub struct DetectorConfig {
    /// Hidden width.
    pub hidden: usize,
    /// Latent dimension.
    pub latent: usize,
    /// KL term weight.
    pub beta: f32,
    /// Adam learning rate.
    pub lr: f32,
    /// Training epochs over the historical sample.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Reconstruction-error threshold `δ` above which a query is abnormal.
    pub threshold: f32,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        Self {
            hidden: 64,
            latent: 8,
            beta: 1e-3,
            lr: 1e-3,
            epochs: 60,
            batch_size: 64,
            threshold: 0.05,
        }
    }
}

/// The VAE anomaly detector.
pub struct AnomalyDetector {
    params: ParamStore,
    enc: Mlp,
    mu: Dense,
    logvar: Dense,
    dec: Mlp,
    config: DetectorConfig,
    adam: Adam,
    dim: usize,
}

impl AnomalyDetector {
    /// Creates an untrained detector over `dim`-wide query encodings.
    pub fn new(dim: usize, config: DetectorConfig, seed: u64) -> Self {
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = ParamStore::new();
        let h = config.hidden;
        // 7 layers total: enc (2) + μ (1) + logvar (parallel) + dec (3).
        let enc = Mlp::new(
            &mut params,
            &mut rng,
            "vae.enc",
            &[dim, h, h],
            Activation::Relu,
            Activation::Relu,
        );
        let mu = Dense::new(
            &mut params,
            &mut rng,
            "vae.mu",
            h,
            config.latent,
            Activation::None,
        );
        let logvar = Dense::new(
            &mut params,
            &mut rng,
            "vae.logvar",
            h,
            config.latent,
            Activation::None,
        );
        let dec = Mlp::new(
            &mut params,
            &mut rng,
            "vae.dec",
            &[config.latent, h, h, dim],
            Activation::Relu,
            Activation::Sigmoid,
        );
        let adam = Adam::new(config.lr);
        Self {
            params,
            enc,
            mu,
            logvar,
            dec,
            config,
            adam,
            dim,
        }
    }

    /// The detector's configuration.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// Overrides the abnormality threshold `δ` (paper Figure 13 sweeps it).
    pub fn set_threshold(&mut self, threshold: f32) {
        self.config.threshold = threshold;
    }

    /// Current abnormality threshold.
    pub fn threshold(&self) -> f32 {
        self.config.threshold
    }

    /// The detector's parameters.
    pub fn params(&self) -> &ParamStore {
        &self.params
    }

    /// Trains on historical query encodings; returns the final epoch's mean
    /// loss.
    pub fn train(&mut self, historical: &[Vec<f32>], rng: &mut StdRng) -> f32 {
        assert!(!historical.is_empty(), "detector needs historical queries");
        let mut idx: Vec<usize> = (0..historical.len()).collect();
        let mut final_loss = f32::MAX;
        for _ in 0..self.config.epochs {
            idx.shuffle(rng);
            let mut sum = 0.0;
            let mut batches = 0;
            for chunk in idx.chunks(self.config.batch_size) {
                let rows: Vec<Vec<f32>> = chunk.iter().map(|&i| historical[i].clone()).collect();
                sum += self.train_step(&rows, rng);
                batches += 1;
            }
            final_loss = sum / batches as f32;
        }
        final_loss
    }

    fn train_step(&mut self, rows: &[Vec<f32>], rng: &mut StdRng) -> f32 {
        let n = rows.len();
        let mut g = Graph::new();
        let bind = self.params.bind(&mut g);
        let x = g.leaf(pace_ce::rows_to_matrix(rows));
        let h = self.enc.forward(&mut g, &bind, x);
        let mu = self.mu.forward(&mut g, &bind, h);
        let logvar = self.logvar.forward(&mut g, &bind, h);
        // Reparameterization: z = μ + ε·exp(logσ²/2).
        let eps = g.leaf(gaussian(rng, n, self.config.latent));
        let half_logvar = g.mul_scalar(logvar, 0.5);
        let std = g.exp(half_logvar);
        let noise = g.mul(eps, std);
        let z = g.add(mu, noise);
        let recon = self.dec.forward(&mut g, &bind, z);
        // MSE + β·KL.
        let diff = g.sub(recon, x);
        let sq = g.mul(diff, diff);
        let mse = g.mean_all(sq);
        let mu2 = g.mul(mu, mu);
        let exp_lv = g.exp(logvar);
        let kl_inner = {
            let a = g.add_scalar(logvar, 1.0);
            let b = g.sub(a, mu2);
            g.sub(b, exp_lv)
        };
        let kl_mean = g.mean_all(kl_inner);
        let kl = g.mul_scalar(kl_mean, -0.5);
        let kl_term = g.mul_scalar(kl, self.config.beta);
        let loss = g.add(mse, kl_term);
        let value = g.value(loss).as_scalar();
        let mut grads: Vec<Matrix> = g
            .grad(loss, bind.vars())
            .iter()
            .map(|&v| g.value(v).clone())
            .collect();
        sanitize(&mut grads);
        clip_global_norm(&mut grads, 5.0);
        self.adam.step(&mut self.params, &grads);
        value
    }

    /// Per-row deterministic reconstruction error (`z = μ`) as a graph node
    /// (`n×1`), differentiable with respect to `x` — the confrontation path.
    pub fn recon_error_graph(&self, g: &mut Graph, bind: &Binding, x: Var) -> Var {
        let (_, d) = g.shape(x);
        assert_eq!(d, self.dim, "encoding width mismatch");
        let h = self.enc.forward(g, bind, x);
        let mu = self.mu.forward(g, bind, h);
        let recon = self.dec.forward(g, bind, mu);
        let diff = g.sub(recon, x);
        let sq = g.mul(diff, diff);
        let sums = g.sum_cols(sq);
        g.mul_scalar(sums, 1.0 / self.dim as f32)
    }

    /// Per-row reconstruction errors of raw encodings.
    pub fn recon_errors(&self, rows: &[Vec<f32>]) -> Vec<f32> {
        if rows.is_empty() {
            return Vec::new();
        }
        let mut g = Graph::new();
        let bind = self.params.bind(&mut g);
        let x = g.leaf(pace_ce::rows_to_matrix(rows));
        let err = self.recon_error_graph(&mut g, &bind, x);
        g.value(err).data().to_vec()
    }

    /// Whether each row is abnormal under the current threshold.
    pub fn flag_abnormal(&self, rows: &[Vec<f32>]) -> Vec<bool> {
        self.recon_errors(rows)
            .iter()
            .map(|&e| e > self.config.threshold)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pace_data::{build, DatasetKind, Scale};
    use pace_workload::{generate_queries, QueryEncoder, WorkloadSpec};
    use rand::SeedableRng;

    fn historical_encodings(n: usize) -> Vec<Vec<f32>> {
        let ds = build(DatasetKind::Tpch, Scale::tiny(), 4);
        let enc = QueryEncoder::new(&ds);
        let mut rng = StdRng::seed_from_u64(5);
        generate_queries(&ds, &WorkloadSpec::default(), &mut rng, n)
            .iter()
            .map(|q| enc.encode(q))
            .collect()
    }

    #[test]
    fn training_reduces_reconstruction_error() {
        let hist = historical_encodings(200);
        let dim = hist[0].len();
        let mut det = AnomalyDetector::new(
            dim,
            DetectorConfig {
                epochs: 40,
                ..DetectorConfig::default()
            },
            7,
        );
        let mut rng = StdRng::seed_from_u64(8);
        let before: f32 = det.recon_errors(&hist).iter().sum::<f32>() / hist.len() as f32;
        det.train(&hist, &mut rng);
        let after: f32 = det.recon_errors(&hist).iter().sum::<f32>() / hist.len() as f32;
        assert!(after < before, "VAE did not learn: {before} -> {after}");
    }

    #[test]
    fn in_distribution_reconstructs_better_than_outliers() {
        let hist = historical_encodings(300);
        let dim = hist[0].len();
        let mut det = AnomalyDetector::new(dim, DetectorConfig::default(), 9);
        let mut rng = StdRng::seed_from_u64(10);
        det.train(&hist, &mut rng);
        let in_dist: f32 = det.recon_errors(&hist).iter().sum::<f32>() / hist.len() as f32;
        // Outliers: adversarially scrambled encodings (invalid bound shapes).
        let outliers: Vec<Vec<f32>> = hist
            .iter()
            .take(50)
            .map(|v| v.iter().map(|&x| 1.0 - x).collect())
            .collect();
        let out: f32 = det.recon_errors(&outliers).iter().sum::<f32>() / outliers.len() as f32;
        assert!(
            out > in_dist * 1.5,
            "outliers not separated: in-dist {in_dist}, outliers {out}"
        );
    }

    #[test]
    fn flag_abnormal_respects_threshold() {
        let hist = historical_encodings(100);
        let dim = hist[0].len();
        let mut det = AnomalyDetector::new(dim, DetectorConfig::default(), 11);
        det.set_threshold(f32::MAX);
        assert!(det.flag_abnormal(&hist).iter().all(|&b| !b));
        det.set_threshold(0.0);
        assert!(det.flag_abnormal(&hist).iter().all(|&b| b));
    }

    #[test]
    fn recon_error_gradient_flows_to_input() {
        let hist = historical_encodings(20);
        let dim = hist[0].len();
        let det = AnomalyDetector::new(dim, DetectorConfig::default(), 13);
        let mut g = Graph::new();
        let bind = det.params().bind(&mut g);
        let x = g.leaf(pace_ce::rows_to_matrix(&hist));
        let err = det.recon_error_graph(&mut g, &bind, x);
        let total = g.sum_all(err);
        let gx = g.grad(total, &[x])[0];
        assert!(
            g.value(gx).norm() > 0.0,
            "confrontation path has no input gradient"
        );
    }
}
