//! The poisoning-query generator (paper Section 5.2).
//!
//! Three sub-generators transform Gaussian noise into valid SPJ queries:
//!
//! * `G_j` — join predicate generator: noise → sigmoid table-membership
//!   vector. Outputs are validated against the schema's join patterns
//!   (invalid patterns are resampled once, then snapped to the nearest valid
//!   pattern by Hamming distance) and `G_j` is trained toward the chosen
//!   valid pattern with a cross-entropy loss (paper Eq. 8).
//! * `G_l` — lower-bound generator: (noise ⊕ join vector) → sigmoid lower
//!   bounds per attribute.
//! * `G_r` — range-size generator: same input → sigmoid range sizes. The
//!   upper bound is `lo + range·(1 − lo)`, which guarantees `lo ≤ hi ≤ 1`
//!   *by construction* (the paper adds the raw range and relies on
//!   normalization; the rescaled form keeps the same monotone
//!   differentiable structure without clamping).
//!
//! Attributes of tables outside the join pattern are masked to the full
//! range `[0, 1]`, so decoded queries are always well-formed.

use pace_tensor::fault;
use pace_tensor::init::gaussian;
use pace_tensor::nn::{Activation, Mlp};
use pace_tensor::optim::{clip_global_norm, sanitize, Adam, AdamState, Optimizer};
use pace_tensor::{Binding, Graph, Matrix, ParamStore, Var};
use pace_workload::{Query, QueryEncoder};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Hyperparameters of the generator (paper defaults: 4/5/5 layers, Adam at
/// `1e-3`).
#[derive(Clone, Copy, Debug)]
pub struct GeneratorConfig {
    /// Dimension of the Gaussian noise input.
    pub noise_dim: usize,
    /// Hidden width of all three sub-generators.
    pub hidden: usize,
    /// Total layer count of `G_j`.
    pub gj_layers: usize,
    /// Total layer count of `G_l` and `G_r`.
    pub bound_layers: usize,
    /// Adam learning rate (`η₂`).
    pub lr: f32,
    /// Gradient clip threshold.
    pub clip_norm: f32,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            noise_dim: 16,
            hidden: 64,
            gj_layers: 4,
            bound_layers: 5,
            lr: 1e-3,
            clip_norm: 5.0,
        }
    }
}

/// A sampled batch of join patterns: the binarized membership matrix plus the
/// per-row pattern table lists.
pub struct JoinBatch {
    /// Binary `n×T` membership matrix.
    pub j: Matrix,
    /// Raw noise that produced the batch (reused by `G_l`/`G_r`).
    pub noise: Matrix,
    /// Pattern (sorted table list) per row.
    pub patterns: Vec<Vec<usize>>,
}

/// The three-part poisoning-query generator.
pub struct PoisonGenerator {
    params: ParamStore,
    gj: Mlp,
    gl: Mlp,
    gr: Mlp,
    encoder: QueryEncoder,
    valid_patterns: Vec<Vec<usize>>,
    config: GeneratorConfig,
    adam: Adam,
}

fn mlp_dims(input: usize, hidden: usize, total_layers: usize, out: usize) -> Vec<usize> {
    let mut dims = vec![input];
    dims.extend(std::iter::repeat_n(hidden, total_layers.saturating_sub(1)));
    dims.push(out);
    dims
}

impl PoisonGenerator {
    /// Creates a generator for queries over `encoder`'s schema shape.
    /// `valid_patterns` are the connected join patterns legal queries may use
    /// (the attacker derives them from the public schema).
    pub fn new(
        encoder: QueryEncoder,
        valid_patterns: Vec<Vec<usize>>,
        config: GeneratorConfig,
        seed: u64,
    ) -> Self {
        assert!(!valid_patterns.is_empty(), "no valid join patterns");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = ParamStore::new();
        let t = encoder.num_tables();
        let a = encoder.attributes().len().max(1);
        let gj = Mlp::new(
            &mut params,
            &mut rng,
            "gj",
            &mlp_dims(config.noise_dim, config.hidden, config.gj_layers, t),
            Activation::Relu,
            Activation::Sigmoid,
        );
        let gl = Mlp::new(
            &mut params,
            &mut rng,
            "gl",
            &mlp_dims(config.noise_dim + t, config.hidden, config.bound_layers, a),
            Activation::Relu,
            Activation::Sigmoid,
        );
        let gr = Mlp::new(
            &mut params,
            &mut rng,
            "gr",
            &mlp_dims(config.noise_dim + t, config.hidden, config.bound_layers, a),
            Activation::Relu,
            Activation::Sigmoid,
        );
        let adam = Adam::new(config.lr);
        Self {
            params,
            gj,
            gl,
            gr,
            encoder,
            valid_patterns,
            config,
            adam,
        }
    }

    /// The generator's parameters.
    pub fn params(&self) -> &ParamStore {
        &self.params
    }

    /// Mutable parameter access (best-checkpoint restore in attack loops).
    pub fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.params
    }

    /// The query encoder the generator emits into.
    pub fn encoder(&self) -> &QueryEncoder {
        &self.encoder
    }

    /// The generator's configuration.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Samples a batch of join patterns: runs `G_j` on fresh noise, resamples
    /// rows whose thresholded output is not a valid connected pattern, and
    /// finally snaps stragglers to the Hamming-nearest valid pattern.
    pub fn sample_joins(&self, rng: &mut StdRng, n: usize) -> JoinBatch {
        let t = self.encoder.num_tables();
        let mut noise = gaussian(rng, n, self.config.noise_dim);
        let mut probs = self.gj_values(&noise);
        // One resampling round for invalid rows (paper: regenerate noise).
        for r in 0..n {
            if self.row_pattern(&probs, r).is_none() {
                let fresh = gaussian(rng, 1, self.config.noise_dim);
                for c in 0..self.config.noise_dim {
                    noise.set(r, c, fresh.get(0, c));
                }
            }
        }
        probs = self.gj_values(&noise);
        let mut j = Matrix::zeros(n, t);
        let mut patterns = Vec::with_capacity(n);
        for r in 0..n {
            let pat = match self.row_pattern(&probs, r) {
                Some(p) => p,
                None => self.nearest_valid_pattern(&probs, r),
            };
            for &tb in &pat {
                j.set(r, tb, 1.0);
            }
            patterns.push(pat);
        }
        JoinBatch { j, noise, patterns }
    }

    fn gj_values(&self, noise: &Matrix) -> Matrix {
        let mut g = Graph::new();
        let bind = self.params.bind(&mut g);
        let z = g.leaf(noise.clone());
        let out = self.gj.forward(&mut g, &bind, z);
        g.value(out).clone()
    }

    /// The thresholded pattern of one output row, if valid.
    fn row_pattern(&self, probs: &Matrix, r: usize) -> Option<Vec<usize>> {
        let t = self.encoder.num_tables();
        let pat: Vec<usize> = (0..t).filter(|&c| probs.get(r, c) > 0.5).collect();
        self.valid_patterns.contains(&pat).then_some(pat)
    }

    fn nearest_valid_pattern(&self, probs: &Matrix, r: usize) -> Vec<usize> {
        let t = self.encoder.num_tables();
        self.valid_patterns
            .iter()
            .min_by(|a, b| {
                let dist = |pat: &Vec<usize>| -> f64 {
                    (0..t)
                        .map(|c| {
                            let target = if pat.contains(&c) { 1.0 } else { 0.0 };
                            (f64::from(probs.get(r, c)) - target).abs()
                        })
                        .sum()
                };
                dist(a).partial_cmp(&dist(b)).expect("finite distances")
            })
            .expect("non-empty patterns")
            .clone()
    }

    /// One `G_j` training step on the join loss (paper Eq. 8): binary
    /// cross-entropy between `G_j`'s raw outputs and the valid binary
    /// patterns chosen for the batch. Returns the loss value.
    pub fn join_loss_step(&mut self, batch: &JoinBatch) -> f32 {
        let mut g = Graph::new();
        let bind = self.params.bind(&mut g);
        let z = g.leaf(batch.noise.clone());
        let p = self.gj.forward(&mut g, &bind, z);
        let y = g.leaf(batch.j.clone());
        let loss = bce(&mut g, p, y);
        let value = g.value(loss).as_scalar();
        self.apply_step(&mut g, loss, &bind, "generator::join_loss_step");
        value
    }

    /// Differentiable forward of the bound generators: emits the full
    /// `n×(T+2A)` encoded poisoning batch with the (constant) join matrix
    /// spliced in and absent-table attributes masked to `[0, 1]`.
    pub fn forward_bounds(&self, g: &mut Graph, bind: &Binding, batch: &JoinBatch) -> Var {
        let a = self.encoder.attributes().len();
        let z = g.leaf(batch.noise.clone());
        let j = g.leaf(batch.j.clone());
        let input = g.concat_cols(&[z, j]);
        let lo_raw = self.gl.forward(g, bind, input);
        let range = self.gr.forward(g, bind, input);
        // hi = lo + range·(1 − lo): stays within [lo, 1].
        let one_minus_lo = {
            let neg = g.neg(lo_raw);
            g.add_scalar(neg, 1.0)
        };
        let span = g.mul(range, one_minus_lo);
        let hi_raw = g.add(lo_raw, span);
        // Mask: lo ← lo·m, hi ← hi·m + (1 − m), where m is the membership bit
        // of each attribute's table.
        let mut parts: Vec<Var> = Vec::with_capacity(1 + 2 * a);
        parts.push(j);
        for (i, &(tb, _)) in self.encoder.attributes().iter().enumerate() {
            let m = g.slice_cols(j, tb, tb + 1); // n×1 constant
            let one_minus_m = {
                let neg = g.neg(m);
                g.add_scalar(neg, 1.0)
            };
            let lo_i = g.slice_cols(lo_raw, i, i + 1);
            let hi_i = g.slice_cols(hi_raw, i, i + 1);
            let lo_m = g.mul(lo_i, m);
            let hi_m = {
                let hm = g.mul(hi_i, m);
                g.add(hm, one_minus_m)
            };
            parts.push(lo_m);
            parts.push(hi_m);
        }
        g.concat_cols(&parts)
    }

    /// Applies one Adam step from a scalar loss (used by the attack loops for
    /// the poisoning and detector-confrontation objectives). `context` labels
    /// the tape for the `PACE_OPT` pipeline ([`pace_tensor::opt`]); the
    /// gradient built here is the attack hypergradient, so this is where the
    /// optimizer sees the full unrolled graph.
    pub fn apply_step(&mut self, g: &mut Graph, loss: Var, bind: &Binding, context: &str) {
        let grad_vars = g.grad(loss, bind.vars());
        let mut opt_outputs = vec![loss];
        opt_outputs.extend(&grad_vars);
        pace_tensor::opt::optimize_if_enabled(g, &opt_outputs, bind.vars(), context);
        let mut grads: Vec<Matrix> = grad_vars.iter().map(|&v| g.value(v).clone()).collect();
        sanitize(&mut grads);
        clip_global_norm(&mut grads, self.config.clip_norm);
        // Fault hook after sanitize/clip: an injected NaN reaches the
        // optimizer exactly as a genuinely broken gradient would. `context`
        // doubles as the fault site, so specs can target one attack loop.
        fault::poison_grads(context, &mut grads);
        self.adam.step(&mut self.params, &grads);
    }

    /// Exports the optimizer state (attack-loop rollback checkpoints).
    pub fn opt_state(&self) -> AdamState {
        self.adam.export_state()
    }

    /// Restores optimizer state captured by [`Self::opt_state`].
    pub fn set_opt_state(&mut self, state: AdamState) {
        self.adam.import_state(state);
    }

    /// Whether every generator parameter is finite — the authoritative
    /// divergence signal of the attack loops.
    pub fn params_finite(&self) -> bool {
        self.params
            .iter()
            .all(|(_, m)| m.data().iter().all(|v| v.is_finite()))
    }

    /// Generates `n` poisoning queries (deployment path, paper Section 3.4):
    /// values only, decoded through the encoder.
    pub fn generate(&self, rng: &mut StdRng, n: usize) -> (Vec<Query>, Vec<Vec<f32>>) {
        let batch = self.sample_joins(rng, n);
        let mut g = Graph::new();
        let bind = self.params.bind(&mut g);
        let x = self.forward_bounds(&mut g, &bind, &batch);
        let vals = g.value(x);
        let encs: Vec<Vec<f32>> = (0..n).map(|r| vals.row_slice(r).to_vec()).collect();
        let queries = encs.iter().map(|e| self.encoder.decode(e)).collect();
        (queries, encs)
    }

    /// Set the Adam learning rate (the attack escalates step size when
    /// gradients stall — paper Section 5.3, convergence analysis).
    pub fn set_lr(&mut self, lr: f32) {
        self.adam.set_learning_rate(lr);
    }
}

/// Binary cross-entropy with probability clamping.
fn bce(g: &mut Graph, p: Var, y: Var) -> Var {
    let (r, c) = g.shape(p);
    let eps = g.leaf(Matrix::full(r, c, 1e-5));
    let one_minus_eps = g.leaf(Matrix::full(r, c, 1.0 - 1e-5));
    let p = g.maximum(p, eps);
    let p = g.minimum(p, one_minus_eps);
    let ln_p = g.ln(p);
    let term1 = g.mul(y, ln_p);
    let one_minus_y = {
        let neg = g.neg(y);
        g.add_scalar(neg, 1.0)
    };
    let one_minus_p = {
        let neg = g.neg(p);
        g.add_scalar(neg, 1.0)
    };
    let ln_q = g.ln(one_minus_p);
    let term2 = g.mul(one_minus_y, ln_q);
    let sum = g.add(term1, term2);
    let mean = g.mean_all(sum);
    g.neg(mean)
}

/// Samples a fresh Gaussian noise matrix (exposed for attack loops that pin
/// noise across an outer iteration, per Algorithm 1 line 2).
pub fn sample_noise(rng: &mut impl Rng, n: usize, dim: usize) -> Matrix {
    gaussian(rng, n, dim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pace_data::{build, DatasetKind, Scale};

    fn generator(kind: DatasetKind) -> (pace_data::Dataset, PoisonGenerator) {
        let ds = build(kind, Scale::tiny(), 3);
        let enc = QueryEncoder::new(&ds);
        let patterns = ds.schema.connected_patterns(3);
        let generator = PoisonGenerator::new(enc, patterns, GeneratorConfig::default(), 11);
        (ds, generator)
    }

    #[test]
    fn sampled_joins_are_always_valid_patterns() {
        let (ds, gen) = generator(DatasetKind::Imdb);
        let mut rng = StdRng::seed_from_u64(5);
        let batch = gen.sample_joins(&mut rng, 64);
        for pat in &batch.patterns {
            assert!(ds.schema.is_connected(pat), "invalid pattern {pat:?}");
        }
        // Binary matrix matches patterns.
        for (r, pat) in batch.patterns.iter().enumerate() {
            for t in 0..ds.schema.num_tables() {
                let expect = if pat.contains(&t) { 1.0 } else { 0.0 };
                assert_eq!(batch.j.get(r, t), expect);
            }
        }
    }

    #[test]
    fn generated_queries_are_valid() {
        for kind in [DatasetKind::Dmv, DatasetKind::Tpch] {
            let (ds, gen) = generator(kind);
            let mut rng = StdRng::seed_from_u64(7);
            let (queries, encs) = gen.generate(&mut rng, 50);
            assert_eq!(queries.len(), 50);
            assert_eq!(encs.len(), 50);
            for q in &queries {
                assert!(q.is_valid(&ds.schema), "{kind:?}: invalid {q:?}");
            }
        }
    }

    #[test]
    fn bounds_are_ordered_and_masked() {
        let (ds, gen) = generator(DatasetKind::Tpch);
        let mut rng = StdRng::seed_from_u64(9);
        let batch = gen.sample_joins(&mut rng, 32);
        let mut g = Graph::new();
        let bind = gen.params().bind(&mut g);
        let x = gen.forward_bounds(&mut g, &bind, &batch);
        let vals = g.value(x);
        let t = ds.schema.num_tables();
        for r in 0..32 {
            for (i, &(tb, _)) in gen.encoder().attributes().iter().enumerate() {
                let lo = vals.get(r, t + 2 * i);
                let hi = vals.get(r, t + 2 * i + 1);
                assert!(lo <= hi + 1e-6, "row {r} attr {i}: lo {lo} > hi {hi}");
                assert!((0.0..=1.0 + 1e-6).contains(&lo));
                assert!((0.0..=1.0 + 1e-6).contains(&hi));
                if !batch.patterns[r].contains(&tb) {
                    assert_eq!(lo, 0.0, "absent-table lo not masked");
                    assert_eq!(hi, 1.0, "absent-table hi not masked");
                }
            }
        }
    }

    #[test]
    fn join_loss_decreases_with_training() {
        let (_, mut gen) = generator(DatasetKind::Stats);
        let mut rng = StdRng::seed_from_u64(13);
        let first = {
            let batch = gen.sample_joins(&mut rng, 64);
            gen.join_loss_step(&batch)
        };
        let mut last = first;
        for _ in 0..30 {
            let batch = gen.sample_joins(&mut rng, 64);
            last = gen.join_loss_step(&batch);
        }
        assert!(last < first, "join BCE did not improve: {first} -> {last}");
    }

    #[test]
    fn bounds_gradient_reaches_generator_params() {
        let (_, gen) = generator(DatasetKind::Dmv);
        let mut rng = StdRng::seed_from_u64(17);
        let batch = gen.sample_joins(&mut rng, 8);
        let mut g = Graph::new();
        let bind = gen.params().bind(&mut g);
        let x = gen.forward_bounds(&mut g, &bind, &batch);
        let s = g.sum_all(x);
        let grads = g.grad(s, bind.vars());
        let total: f32 = grads.iter().map(|&gv| g.value(gv).norm()).sum();
        assert!(
            total > 0.0,
            "no gradient flow from encoded batch to generator"
        );
    }
}
