//! Probe-level fault tolerance for the black-box campaign runtime.
//!
//! A real PACE campaign spends hours issuing `EXPLAIN`/`COUNT(*)` probes
//! against a remote victim. Probes time out, connections drop, and responses
//! occasionally arrive mangled; an attack run that panics on the first bad
//! probe loses its entire probe budget. This module makes every oracle
//! interaction fallible and recoverable:
//!
//! * [`ProbeError`] — the typed failure surface of [`crate::BlackBox`].
//! * [`RetryPolicy`] — bounded retries with exponential backoff + jitter and
//!   a per-probe deadline.
//! * [`ResilientOracle`] — wraps a `BlackBox` with the retry policy, response
//!   validation (corrupted responses are detected and retried), a response
//!   cache, and a circuit breaker that degrades to cached estimates when the
//!   oracle goes hard-down, so a transient outage cannot abort a campaign.
//!
//! Faults are injected *deterministically* through
//! [`pace_tensor::fault`] (the `PACE_FAULTS` environment spec), so every
//! recovery path in this module is exercised by reproducible tests instead
//! of waiting for a flaky network. Because the oracle in this reproduction
//! is an in-process model, backoff waits are tracked on a **virtual clock**
//! (latency accounting) instead of real sleeps: deadlines, breaker cooldowns
//! and the latency returned by [`ResilientOracle::explain_timed`] all read
//! this clock, and the test suite stays fast. A deployment against a remote
//! oracle would sleep for the same durations.

use crate::victim::BlackBox;
use pace_ce::TrainError;
use pace_tensor::trace;
use pace_workload::Query;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::fmt;

/// Why a single black-box probe (or probe sequence) failed.
#[derive(Clone, Debug, PartialEq)]
pub enum ProbeError {
    /// The oracle did not answer within its latency budget.
    Timeout {
        /// Seconds spent waiting before giving up.
        seconds: f64,
    },
    /// The oracle returned an error (connection refused, internal error...).
    Unavailable,
    /// The response arrived but failed validation (non-finite estimate,
    /// absurd cardinality) — retried like any other transient failure.
    Corrupted {
        /// What the validation rejected.
        what: &'static str,
    },
    /// The victim accepted the queries but its incremental update diverged.
    /// Not retryable: the update is deterministic, so a retry would diverge
    /// identically.
    Update(TrainError),
    /// Retries and the probe deadline are exhausted.
    Exhausted {
        /// The probe site that kept failing.
        site: &'static str,
        /// How many attempts were made.
        attempts: u32,
        /// The final underlying failure.
        last: Box<ProbeError>,
    },
}

impl ProbeError {
    /// Whether another attempt could plausibly succeed.
    fn retryable(&self) -> bool {
        !matches!(self, ProbeError::Update(_) | ProbeError::Exhausted { .. })
    }
}

impl fmt::Display for ProbeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProbeError::Timeout { seconds } => write!(f, "oracle timed out after {seconds}s"),
            ProbeError::Unavailable => write!(f, "oracle unavailable"),
            ProbeError::Corrupted { what } => write!(f, "corrupted oracle response: {what}"),
            ProbeError::Update(e) => write!(f, "victim update failed: {e}"),
            ProbeError::Exhausted {
                site,
                attempts,
                last,
            } => write!(
                f,
                "probe `{site}` exhausted {attempts} attempt(s); last: {last}"
            ),
        }
    }
}

impl std::error::Error for ProbeError {}

/// Why a whole campaign phase failed after all probe-level recovery.
#[derive(Debug)]
pub enum CampaignError {
    /// The oracle stayed down past every retry and degradation path.
    Oracle(ProbeError),
    /// Surrogate or victim training stayed divergent past every rollback.
    Train(TrainError),
    /// The campaign manifest could not be read or written.
    Storage(std::io::Error),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Oracle(e) => write!(f, "oracle failure: {e}"),
            CampaignError::Train(e) => write!(f, "training failure: {e}"),
            CampaignError::Storage(e) => write!(f, "campaign storage failure: {e}"),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<ProbeError> for CampaignError {
    fn from(e: ProbeError) -> Self {
        CampaignError::Oracle(e)
    }
}

impl From<TrainError> for CampaignError {
    fn from(e: TrainError) -> Self {
        CampaignError::Train(e)
    }
}

impl From<std::io::Error> for CampaignError {
    fn from(e: std::io::Error) -> Self {
        CampaignError::Storage(e)
    }
}

/// Bounded-retry policy for black-box probes.
#[derive(Clone, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Attempts per probe (first try included).
    pub max_attempts: u32,
    /// Backoff before the second attempt, in seconds; doubles per retry.
    pub base_backoff: f64,
    /// Backoff ceiling in seconds.
    pub max_backoff: f64,
    /// Total (virtual) seconds a single probe may consume, waits included.
    pub deadline: f64,
    /// Consecutive exhausted probes that open the circuit breaker.
    pub breaker_threshold: u32,
    /// Degraded probes served while the breaker is open before the next
    /// half-open trial against the real oracle.
    pub breaker_cooldown: u64,
    /// Seed of the deterministic backoff jitter.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_backoff: 0.05,
            max_backoff: 2.0,
            deadline: 30.0,
            breaker_threshold: 3,
            breaker_cooldown: 16,
            seed: 0x5e71,
        }
    }
}

impl RetryPolicy {
    /// Backoff (seconds) before attempt `attempt + 1`, with deterministic
    /// jitter in `[0.5, 1.0)` of the exponential schedule. Public so the
    /// latency-accounting regression tests can assert *exact* expected
    /// virtual-clock sums (a wait cut short by the deadline must never be
    /// charged).
    pub fn backoff(&self, site: &str, attempt: u32) -> f64 {
        let exp = (self.base_backoff * f64::from(1u32 << attempt.min(16))).min(self.max_backoff);
        let mut h = self.seed ^ u64::from(attempt).wrapping_mul(0x9e3779b97f4a7c15);
        for b in site.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100000001b3);
        }
        let frac = (splitmix64(h) >> 11) as f64 / (1u64 << 53) as f64;
        exp * frac.mul_add(0.5, 0.5)
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Counters describing what the resilience layer absorbed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OracleStats {
    /// Probes issued through the wrapper.
    pub probes: u64,
    /// Individual retry attempts after a failure.
    pub retries: u64,
    /// Failures that a retry subsequently recovered from.
    pub faults_absorbed: u64,
    /// Probes answered from the degradation path (breaker open).
    pub degraded: u64,
    /// Times the circuit breaker opened.
    pub breaker_trips: u64,
}

#[derive(Default)]
struct OracleState {
    /// Accumulated virtual seconds: injected latencies + backoff waits.
    virtual_clock: f64,
    consecutive_exhausted: u32,
    /// While `Some(n)`, the breaker is open and `n` more probes are served
    /// degraded before a half-open trial.
    breaker_open: Option<u64>,
    explain_cache: HashMap<String, f64>,
    count_cache: HashMap<String, u64>,
    stats: OracleStats,
}

/// A [`BlackBox`] wrapper that retries, validates, caches and — when the
/// oracle goes hard-down — degrades instead of failing the campaign.
pub struct ResilientOracle<'a> {
    bb: &'a dyn BlackBox,
    policy: RetryPolicy,
    state: RefCell<OracleState>,
}

impl<'a> ResilientOracle<'a> {
    /// Wraps `bb` with `policy`.
    pub fn new(bb: &'a dyn BlackBox, policy: RetryPolicy) -> Self {
        Self {
            bb,
            policy,
            state: RefCell::new(OracleState::default()),
        }
    }

    /// What the wrapper absorbed so far.
    pub fn stats(&self) -> OracleStats {
        self.state.borrow().stats
    }

    /// Virtual seconds accumulated by injected latencies and backoff waits.
    pub fn virtual_seconds(&self) -> f64 {
        self.state.borrow().virtual_clock
    }

    /// `EXPLAIN` with retries, validation, caching and breaker degradation.
    pub fn explain(&self, q: &Query) -> Result<f64, ProbeError> {
        let key = cache_key(q);
        let est = self.probe(
            "explain",
            || {
                let est = self.bb.explain(q)?;
                if est.is_finite() && est >= 0.0 {
                    Ok(est)
                } else {
                    Err(ProbeError::Corrupted {
                        what: "non-finite cardinality estimate",
                    })
                }
            },
            |state| {
                state.explain_cache.get(&key).copied().or_else(|| {
                    // No cached answer for this exact query: serve the median
                    // of everything seen (the Lb-S style coarse stand-in).
                    median(state.explain_cache.values().copied())
                })
            },
        )?;
        self.state.borrow_mut().explain_cache.insert(key, est);
        Ok(est)
    }

    /// `EXPLAIN` with measured latency. The measurement covers the **whole
    /// retry loop** — the oracle-reported seconds of every attempt, summed,
    /// plus the virtual seconds of injected latencies and backoff waits — so
    /// a flaky oracle genuinely looks slow to the speculation features,
    /// exactly as it would over a network. Wrapper bookkeeping (cache
    /// lookups, validation) is deliberately *outside* the measurement: it is
    /// attacker-side work, not victim latency.
    pub fn explain_timed(&self, q: &Query) -> Result<(f64, f64), ProbeError> {
        let key = cache_key(q);
        let clock0 = self.state.borrow().virtual_clock;
        let attempt_seconds = Cell::new(0.0_f64);
        let est = self.probe(
            "explain",
            || {
                let (est, secs) = self.bb.explain_timed(q)?;
                attempt_seconds.set(attempt_seconds.get() + secs);
                if est.is_finite() && est >= 0.0 {
                    Ok(est)
                } else {
                    Err(ProbeError::Corrupted {
                        what: "non-finite cardinality estimate",
                    })
                }
            },
            |state| {
                state
                    .explain_cache
                    .get(&key)
                    .copied()
                    .or_else(|| median(state.explain_cache.values().copied()))
            },
        )?;
        self.state.borrow_mut().explain_cache.insert(key, est);
        let virtual_spent = self.state.borrow().virtual_clock - clock0;
        Ok((est, attempt_seconds.get() + virtual_spent))
    }

    /// `COUNT(*)` with retries, validation, caching and breaker degradation.
    pub fn count(&self, q: &Query) -> Result<u64, ProbeError> {
        let key = cache_key(q);
        let c = self.probe(
            "count",
            || {
                let c = self.bb.count(q)?;
                if c == u64::MAX {
                    Err(ProbeError::Corrupted {
                        what: "absurd cardinality",
                    })
                } else {
                    Ok(c)
                }
            },
            |state| {
                state
                    .count_cache
                    .get(&key)
                    .copied()
                    .or_else(|| median(state.count_cache.values().copied()))
            },
        )?;
        self.state.borrow_mut().count_cache.insert(key, c);
        Ok(c)
    }

    /// The historical-workload sample (infallible; local knowledge).
    pub fn historical_sample(&self) -> &[Query] {
        self.bb.historical_sample()
    }

    /// One resilient probe: bounded retries under the deadline, then — if
    /// the breaker is open or just tripped — the degradation path.
    fn probe<T>(
        &self,
        site: &'static str,
        attempt: impl Fn() -> Result<T, ProbeError>,
        degrade: impl Fn(&OracleState) -> Option<T>,
    ) -> Result<T, ProbeError> {
        let _span = trace::span(match site {
            "explain" => "oracle::explain",
            "count" => "oracle::count",
            _ => "oracle::probe",
        });
        trace::ORACLE_PROBES.add(1);
        {
            let mut state = self.state.borrow_mut();
            state.stats.probes += 1;
            if let Some(remaining) = state.breaker_open {
                if remaining > 0 {
                    state.breaker_open = Some(remaining - 1);
                    state.stats.degraded += 1;
                    trace::ORACLE_DEGRADED.add(1);
                    return degrade(&state).ok_or(ProbeError::Unavailable);
                }
                // Cooldown over: half-open, fall through to one real trial.
            }
        }
        let deadline_start = self.state.borrow().virtual_clock;
        let mut attempts = 0u32;
        let mut had_failure = false;
        let outcome = loop {
            attempts += 1;
            match attempt() {
                Ok(v) => {
                    if had_failure {
                        self.state.borrow_mut().stats.faults_absorbed += 1;
                    }
                    break Ok(v);
                }
                Err(e) => {
                    had_failure = true;
                    if let ProbeError::Timeout { seconds } = e {
                        self.state.borrow_mut().virtual_clock += seconds;
                    }
                    if !e.retryable() {
                        break Err(e);
                    }
                    let wait = self.policy.backoff(site, attempts - 1);
                    let spent = self.state.borrow().virtual_clock - deadline_start;
                    if attempts >= self.policy.max_attempts || spent + wait > self.policy.deadline {
                        break Err(ProbeError::Exhausted {
                            site,
                            attempts,
                            last: Box::new(e),
                        });
                    }
                    let mut state = self.state.borrow_mut();
                    state.stats.retries += 1;
                    state.virtual_clock += wait;
                    trace::ORACLE_RETRIES.add(1);
                    trace::BACKOFF_VIRTUAL_US.record((wait * 1e6) as u64);
                }
            }
        };
        let mut state = self.state.borrow_mut();
        match outcome {
            Ok(v) => {
                state.consecutive_exhausted = 0;
                state.breaker_open = None;
                Ok(v)
            }
            Err(e) => {
                state.consecutive_exhausted += 1;
                let was_open = state.breaker_open.is_some();
                if state.consecutive_exhausted >= self.policy.breaker_threshold || was_open {
                    if !was_open {
                        state.stats.breaker_trips += 1;
                        trace::BREAKER_TRIPS.add(1);
                    }
                    state.breaker_open = Some(self.policy.breaker_cooldown);
                    if let Some(v) = degrade(&state) {
                        state.stats.degraded += 1;
                        trace::ORACLE_DEGRADED.add(1);
                        return Ok(v);
                    }
                }
                Err(e)
            }
        }
    }
}

/// Injects `queries` into the victim with bounded retries. The victim checks
/// its fault points *before* mutating the model, so a retried wave is never
/// double-applied. Update divergence ([`ProbeError::Update`]) is
/// deterministic and therefore not retried.
pub fn run_queries_resilient<B: BlackBox + ?Sized>(
    bb: &mut B,
    queries: &[Query],
    policy: &RetryPolicy,
) -> Result<(), ProbeError> {
    let _span = trace::span("oracle::run_queries");
    let mut attempts = 0u32;
    let mut waited = 0.0f64;
    loop {
        attempts += 1;
        match bb.run_queries(queries) {
            Ok(()) => return Ok(()),
            Err(e) => {
                if let ProbeError::Timeout { seconds } = e {
                    waited += seconds;
                }
                if !e.retryable() {
                    return Err(e);
                }
                let wait = policy.backoff("run-queries", attempts - 1);
                if attempts >= policy.max_attempts || waited + wait > policy.deadline {
                    return Err(ProbeError::Exhausted {
                        site: "run-queries",
                        attempts,
                        last: Box::new(e),
                    });
                }
                waited += wait;
                trace::ORACLE_RETRIES.add(1);
                trace::BACKOFF_VIRTUAL_US.record((wait * 1e6) as u64);
            }
        }
    }
}

fn cache_key(q: &Query) -> String {
    format!("{q:?}")
}

/// A cache value eligible for the degraded-median fallback. `f64` estimates
/// must be finite: a NaN that slips into the cache (e.g. injected by a
/// `corrupt` fault upstream of validation) would otherwise scramble the
/// comparison sort and yield an arbitrary "median".
trait CacheValue: Copy + PartialOrd {
    /// True when the value may participate in the median.
    fn is_usable(self) -> bool;
}

impl CacheValue for f64 {
    fn is_usable(self) -> bool {
        self.is_finite()
    }
}

impl CacheValue for u64 {
    fn is_usable(self) -> bool {
        true
    }
}

/// Upper median of the *usable* cached values, `None` when nothing usable
/// remains. A `None` here surfaces as [`ProbeError::Unavailable`] (or the
/// probe's own exhaustion error) from the degradation path — a typed
/// [`CampaignError::Oracle`] at the campaign boundary — never as a silent
/// NaN estimate.
fn median<T: CacheValue>(values: impl Iterator<Item = T>) -> Option<T> {
    let mut v: Vec<T> = values.filter(|x| x.is_usable()).collect();
    if v.is_empty() {
        return None;
    }
    let mid = v.len() / 2;
    v.sort_by(|a, b| {
        a.partial_cmp(b)
            .expect("non-finite values filtered before sort")
    });
    Some(v[mid])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let p = RetryPolicy::default();
        for attempt in 0..8 {
            let a = p.backoff("explain", attempt);
            let b = p.backoff("explain", attempt);
            assert_eq!(a, b, "jitter must be deterministic");
            assert!(a > 0.0 && a <= p.max_backoff);
        }
        // Different sites land on different jitter.
        assert_ne!(p.backoff("explain", 1), p.backoff("count", 1));
    }

    #[test]
    fn median_of_cached_values() {
        assert_eq!(median([3.0, 1.0, 2.0].into_iter()), Some(2.0));
        assert_eq!(median(std::iter::empty::<f64>()), None);
    }

    // Regression: the old implementation sorted with
    // `partial_cmp(..).unwrap_or(Equal)`, so a cached NaN scrambled the sort
    // and an all-NaN cache yielded `Some(NaN)` instead of falling back to a
    // typed probe error.
    #[test]
    fn median_filters_non_finite_cache_values() {
        assert_eq!(median([1.0, f64::NAN, 9.0, 2.0].into_iter()), Some(2.0));
        assert_eq!(
            median([f64::INFINITY, 3.0, f64::NEG_INFINITY, 1.0, 2.0].into_iter()),
            Some(2.0)
        );
        assert_eq!(median([f64::NAN, f64::NAN].into_iter()), None);
        assert_eq!(median([f64::INFINITY].into_iter()), None);
        // u64 caches have no non-finite values to filter.
        assert_eq!(median([5u64, 1, 3].into_iter()), Some(3));
    }

    #[test]
    fn update_errors_are_not_retryable() {
        assert!(!ProbeError::Update(TrainError::EmptyWorkload).retryable());
        assert!(ProbeError::Timeout { seconds: 0.1 }.retryable());
        assert!(ProbeError::Unavailable.retryable());
        assert!(ProbeError::Corrupted { what: "x" }.retryable());
    }
}
