//! Crash-safe, resumable attack campaigns.
//!
//! [`run_campaign`] is [`run_attack`](crate::pipeline::run_attack) with
//! durability: the poison batch is injected in waves of
//! [`PipelineConfig::wave_size`] queries, and after the craft phase and after
//! every wave a versioned, checksummed *campaign manifest* is persisted
//! atomically (write-to-temp + rename). A process killed mid-campaign — by a
//! crash fault, an OOM kill, a pre-empted spot instance — resumes at the
//! exact wave boundary it last persisted: the victim's poisoned parameters,
//! the already-injected queries, the clean baseline and all timings are
//! restored from the manifest, and only the remaining waves run. On
//! successful completion the manifest is removed.
//!
//! [`run_served_campaign`] is the same campaign routed through the
//! validated hot-swap serving path: each wave's poison accumulates into a
//! candidate snapshot that must pass [`pace_serve`]'s shadow validation
//! before it reaches the serving model (see [`crate::served`]), and the
//! manifest additionally persists the per-wave swap ledger and the
//! serving runtime's virtual-clock state, so a resumed served campaign
//! replays to the same accept/reject log bit for bit.
//!
//! The manifest format (`PACECAM2`) is length-prefixed and FNV-1a
//! checksummed like the training-checkpoint format in
//! [`pace_tensor::serialize`]; a truncated or bit-flipped manifest fails
//! closed with [`CampaignError::Storage`] instead of resuming from
//! garbage. So does a manifest whose persisted wave size or campaign kind
//! (direct vs served) disagrees with the resuming configuration — a
//! silent mismatch would shift every remaining wave boundary.

use crate::knowledge::AttackerKnowledge;
use crate::pipeline::{
    craft_poison, poison_divergence, AttackMethod, AttackOutcome, PipelineConfig,
};
use crate::resilience::{run_queries_resilient, CampaignError};
use crate::served::{ServedVictim, WaveSwap};
use crate::victim::{AttackTarget, Victim};
use pace_serve::SwapError;
use pace_tensor::{fault, serialize};
use pace_workload::{Predicate, QErrorSummary, Query, Workload};
use std::fs;
use std::io::{self, Read};
use std::path::Path;
use std::time::Instant;

const MAGIC: &[u8; 8] = b"PACECAM2";

/// Everything a killed campaign needs to resume: progress counters, the
/// poison batch, the clean baseline, timings, and the victim's parameters as
/// of the last persisted wave.
#[derive(Clone, Debug, PartialEq)]
struct Manifest {
    method_tag: u8,
    /// Poisoning queries already applied to the victim (a wave boundary).
    applied: u64,
    train_seconds: f64,
    generate_seconds: f64,
    attack_seconds: f64,
    clean_samples: Vec<f64>,
    objective_curve: Vec<f32>,
    poison: Vec<Query>,
    /// `serialize::write_params` image of the victim model.
    victim_params: Vec<u8>,
    /// Wave size the campaign was persisted with. Checked at resume: a
    /// mismatched wave size would silently shift every remaining wave
    /// boundary, so resuming with a different configuration fails closed.
    wave_size: u64,
    /// Whether the campaign runs through the serving path
    /// ([`run_served_campaign`]); a direct manifest cannot resume a served
    /// campaign or vice versa.
    served: bool,
    /// Serving-runtime timing state `[now, busy_until, tokens,
    /// last_refill]` at the last persisted boundary (all zero for direct
    /// campaigns).
    clock: [f64; 4],
    /// Per-wave hot-swap verdicts of a served campaign (empty for direct).
    swaps: Vec<WaveSwap>,
}

/// Resume-compatibility gate: the persisted manifest must match the
/// resuming campaign's method, kind (direct vs served), and wave size —
/// anything else fails closed instead of silently replaying with shifted
/// wave boundaries.
fn check_resume(
    m: &Manifest,
    path: &Path,
    method: AttackMethod,
    wave_size: usize,
    served: bool,
) -> Result<(), CampaignError> {
    let fail = |msg: String| {
        Err(CampaignError::Storage(io::Error::new(
            io::ErrorKind::InvalidData,
            msg,
        )))
    };
    if m.method_tag != method.tag() {
        return fail(format!(
            "manifest at {} belongs to method {:?}, not {:?}",
            path.display(),
            AttackMethod::from_tag(m.method_tag),
            method
        ));
    }
    if m.served != served {
        let (have, want) = if m.served {
            ("served", "direct")
        } else {
            ("direct", "served")
        };
        return fail(format!(
            "manifest at {} belongs to a {have} campaign, not a {want} one",
            path.display()
        ));
    }
    if m.wave_size != wave_size as u64 {
        return fail(format!(
            "manifest at {} was persisted with wave size {}, but the resuming \
             campaign is configured with {} — a mismatch would shift every \
             remaining wave boundary",
            path.display(),
            m.wave_size,
            wave_size
        ));
    }
    Ok(())
}

/// Runs an attack campaign that persists its progress to `manifest_path`.
///
/// If a manifest from an interrupted run exists there (same method), the
/// campaign resumes from its last persisted wave instead of starting over;
/// a fresh run crafts the poison, persists, then injects wave by wave. A
/// resumed campaign is bit-identical to an uninterrupted one: the wave cuts,
/// injection order and victim updates are unchanged — only where the process
/// happened to stop differs. (Unlike
/// [`run_attack`](crate::pipeline::run_attack), which submits the whole
/// payload as a single batch, a campaign injects in waves of
/// `cfg.wave_size`, so the two poisoned models can differ slightly.)
pub fn run_campaign(
    victim: &mut Victim<'_>,
    method: AttackMethod,
    test: &Workload,
    k: &AttackerKnowledge,
    cfg: &PipelineConfig,
    manifest_path: &Path,
) -> Result<AttackOutcome, CampaignError> {
    let wave_size = cfg.wave_size.max(1);
    let mut manifest = match load_manifest(manifest_path)? {
        Some(m) => {
            check_resume(&m, manifest_path, method, wave_size, false)?;
            // Resume: restore the victim to the last persisted wave boundary.
            serialize::read_params(
                victim.model_mut().params_mut(),
                &mut io::Cursor::new(&m.victim_params),
            )
            .map_err(CampaignError::Storage)?;
            let applied = (m.applied as usize).min(m.poison.len());
            victim.restore_injected(&m.poison[..applied]);
            m
        }
        None => {
            let _craft = pace_tensor::trace::span("campaign::craft");
            let clean_samples = victim.q_errors(test);
            let (poison, train_seconds, generate_seconds, objective_curve) =
                craft_poison(victim, method, test, k, cfg)?;
            let m = Manifest {
                method_tag: method.tag(),
                applied: 0,
                train_seconds,
                generate_seconds,
                attack_seconds: 0.0,
                clean_samples,
                objective_curve,
                poison,
                victim_params: params_image(victim)?,
                wave_size: wave_size as u64,
                served: false,
                clock: [0.0; 4],
                swaps: Vec::new(),
            };
            store_manifest(manifest_path, &m)?;
            // Crash fault point: after persisting, so a killed process
            // resumes without re-crafting (the expensive phase).
            fault::crash_point("campaign-craft");
            m
        }
    };

    while (manifest.applied as usize) < manifest.poison.len() {
        let start = manifest.applied as usize;
        let end = (start + wave_size).min(manifest.poison.len());
        let _wave = pace_tensor::trace::span_at("campaign::wave", (start / wave_size) as u64);
        let t_wave = Instant::now();
        run_queries_resilient(victim, &manifest.poison[start..end], &cfg.retry)?;
        manifest.attack_seconds += t_wave.elapsed().as_secs_f64();
        manifest.applied = end as u64;
        manifest.victim_params = params_image(victim)?;
        store_manifest(manifest_path, &manifest)?;
        fault::crash_point("campaign-wave");
    }

    let _eval = pace_tensor::trace::span("campaign::evaluate");
    let clean = QErrorSummary::from_samples(&manifest.clean_samples);
    let poisoned = QErrorSummary::from_samples(&victim.q_errors(test));
    let divergence = poison_divergence(victim, &manifest.poison, k);
    // The campaign is complete; a stale manifest must not hijack the next
    // run into a bogus resume.
    fs::remove_file(manifest_path).map_err(CampaignError::Storage)?;
    Ok(AttackOutcome {
        method,
        poison: manifest.poison,
        clean,
        poisoned,
        divergence,
        train_seconds: manifest.train_seconds,
        generate_seconds: manifest.generate_seconds,
        attack_seconds: manifest.attack_seconds,
        objective_curve: manifest.objective_curve,
        swaps: Vec::new(),
    })
}

/// [`run_campaign`] routed through the validated hot-swap serving path: the
/// victim is a [`ServedVictim`], so each wave's poison becomes a candidate
/// snapshot submitted as a versioned swap event under concurrent traffic,
/// and the swap gate may *reject* waves (the measured defense — see
/// [`crate::served`]). On top of [`run_campaign`]'s durability guarantees,
/// the manifest persists the per-wave swap ledger and the serving runtime's
/// virtual-clock state, so a killed campaign resumes to the same virtual
/// instant and replays the remaining waves to a bit-identical accept/reject
/// log. The returned [`AttackOutcome::swaps`] holds the full ledger.
pub fn run_served_campaign(
    served: &mut ServedVictim<'_>,
    method: AttackMethod,
    test: &Workload,
    k: &AttackerKnowledge,
    cfg: &PipelineConfig,
    manifest_path: &Path,
) -> Result<AttackOutcome, CampaignError> {
    let wave_size = cfg.wave_size.max(1);
    let mut manifest = match load_manifest(manifest_path)? {
        Some(m) => {
            check_resume(&m, manifest_path, method, wave_size, true)?;
            let applied = (m.applied as usize).min(m.poison.len());
            // Only accepted waves' queries reached the serving model; the
            // rejected ones were rolled back and must not be replayed into
            // the restored injected-query log.
            let accepted: Vec<Query> = m
                .swaps
                .iter()
                .filter(|s| s.result.is_ok())
                .flat_map(|s| {
                    let start = ((s.wave as usize) * wave_size).min(applied);
                    let end = (start + wave_size).min(applied);
                    m.poison[start..end].iter()
                })
                .cloned()
                .collect();
            served
                .restore_resume_state(&m.victim_params, &accepted, m.swaps.clone(), m.clock)
                .map_err(CampaignError::Storage)?;
            m
        }
        None => {
            let _craft = pace_tensor::trace::span("campaign::craft");
            let clean_samples = served.q_errors(test);
            let (poison, train_seconds, generate_seconds, objective_curve) =
                craft_poison(served, method, test, k, cfg)?;
            let m = Manifest {
                method_tag: method.tag(),
                applied: 0,
                train_seconds,
                generate_seconds,
                attack_seconds: 0.0,
                clean_samples,
                objective_curve,
                poison,
                victim_params: served_params_image(served)?,
                wave_size: wave_size as u64,
                served: true,
                // The craft phase's probes advanced the virtual clock; a
                // resume must re-enter at the same instant.
                clock: served.clock_state(),
                swaps: Vec::new(),
            };
            store_manifest(manifest_path, &m)?;
            fault::crash_point("campaign-craft");
            m
        }
    };

    while (manifest.applied as usize) < manifest.poison.len() {
        let start = manifest.applied as usize;
        let end = (start + wave_size).min(manifest.poison.len());
        let _wave = pace_tensor::trace::span_at("campaign::wave", (start / wave_size) as u64);
        let t_wave = Instant::now();
        run_queries_resilient(served, &manifest.poison[start..end], &cfg.retry)?;
        manifest.attack_seconds += t_wave.elapsed().as_secs_f64();
        manifest.applied = end as u64;
        manifest.victim_params = served_params_image(served)?;
        manifest.clock = served.clock_state();
        manifest.swaps = served.wave_swaps().to_vec();
        store_manifest(manifest_path, &manifest)?;
        fault::crash_point("campaign-wave");
    }

    let _eval = pace_tensor::trace::span("campaign::evaluate");
    let clean = QErrorSummary::from_samples(&manifest.clean_samples);
    let poisoned = QErrorSummary::from_samples(&served.q_errors(test));
    let divergence = poison_divergence(served, &manifest.poison, k);
    fs::remove_file(manifest_path).map_err(CampaignError::Storage)?;
    Ok(AttackOutcome {
        method,
        poison: manifest.poison,
        clean,
        poisoned,
        divergence,
        train_seconds: manifest.train_seconds,
        generate_seconds: manifest.generate_seconds,
        attack_seconds: manifest.attack_seconds,
        objective_curve: manifest.objective_curve,
        swaps: manifest.swaps,
    })
}

fn params_image(victim: &Victim<'_>) -> Result<Vec<u8>, CampaignError> {
    let mut buf = Vec::new();
    serialize::write_params(victim.model().params(), &mut buf).map_err(CampaignError::Storage)?;
    Ok(buf)
}

fn served_params_image(served: &ServedVictim<'_>) -> Result<Vec<u8>, CampaignError> {
    let mut buf = Vec::new();
    serialize::write_params(served.effective_model().params(), &mut buf)
        .map_err(CampaignError::Storage)?;
    Ok(buf)
}

// ---- manifest serialization -----------------------------------------------

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn store_manifest(path: &Path, m: &Manifest) -> Result<(), CampaignError> {
    let payload = encode_manifest(m);
    let mut out = Vec::with_capacity(payload.len() + 24);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    let tmp = path.with_extension("tmp");
    let write = (|| {
        fs::write(&tmp, &out)?;
        fs::rename(&tmp, path)
    })();
    write.map_err(CampaignError::Storage)
}

/// Reads a manifest if one exists. `Ok(None)` means no interrupted campaign;
/// a present-but-invalid manifest is an error, never a silent fresh start.
fn load_manifest(path: &Path) -> Result<Option<Manifest>, CampaignError> {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(CampaignError::Storage(e)),
    };
    decode_manifest_file(&bytes)
        .map(Some)
        .map_err(CampaignError::Storage)
}

fn encode_manifest(m: &Manifest) -> Vec<u8> {
    let mut w = Vec::new();
    w.push(m.method_tag);
    w.extend_from_slice(&m.applied.to_le_bytes());
    w.extend_from_slice(&m.train_seconds.to_le_bytes());
    w.extend_from_slice(&m.generate_seconds.to_le_bytes());
    w.extend_from_slice(&m.attack_seconds.to_le_bytes());
    w.extend_from_slice(&(m.clean_samples.len() as u64).to_le_bytes());
    for s in &m.clean_samples {
        w.extend_from_slice(&s.to_le_bytes());
    }
    w.extend_from_slice(&(m.objective_curve.len() as u64).to_le_bytes());
    for s in &m.objective_curve {
        w.extend_from_slice(&s.to_le_bytes());
    }
    w.extend_from_slice(&(m.poison.len() as u64).to_le_bytes());
    for q in &m.poison {
        w.extend_from_slice(&(q.tables.len() as u64).to_le_bytes());
        for &t in &q.tables {
            w.extend_from_slice(&(t as u64).to_le_bytes());
        }
        w.extend_from_slice(&(q.predicates.len() as u64).to_le_bytes());
        for p in &q.predicates {
            w.extend_from_slice(&(p.table as u64).to_le_bytes());
            w.extend_from_slice(&(p.col as u64).to_le_bytes());
            w.extend_from_slice(&p.lo.to_le_bytes());
            w.extend_from_slice(&p.hi.to_le_bytes());
        }
    }
    w.extend_from_slice(&(m.victim_params.len() as u64).to_le_bytes());
    w.extend_from_slice(&m.victim_params);
    w.extend_from_slice(&m.wave_size.to_le_bytes());
    w.push(u8::from(m.served));
    for c in m.clock {
        w.extend_from_slice(&c.to_le_bytes());
    }
    w.extend_from_slice(&(m.swaps.len() as u64).to_le_bytes());
    for s in &m.swaps {
        w.extend_from_slice(&s.wave.to_le_bytes());
        w.extend_from_slice(&s.version.to_le_bytes());
        w.extend_from_slice(&s.at.to_le_bytes());
        match &s.result {
            Ok(()) => w.push(0),
            Err(SwapError::NonFiniteParams) => w.push(1),
            Err(SwapError::QualityRegression { median, limit }) => {
                w.push(2);
                w.extend_from_slice(&median.to_le_bytes());
                w.extend_from_slice(&limit.to_le_bytes());
            }
            Err(SwapError::VersionBanned { version }) => {
                w.push(3);
                w.extend_from_slice(&version.to_le_bytes());
            }
            Err(SwapError::BreakerOpen) => w.push(4),
            Err(SwapError::NoPinnedSet) => w.push(5),
        }
    }
    w
}

fn invalid(msg: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("campaign manifest: {msg}"),
    )
}

fn decode_manifest_file(bytes: &[u8]) -> io::Result<Manifest> {
    let mut r = io::Cursor::new(bytes);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(invalid("bad magic"));
    }
    let len = read_u64(&mut r)? as usize;
    if len > bytes.len() {
        return Err(invalid("payload length exceeds file size"));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let stored = read_u64(&mut r)?;
    if stored != fnv1a(&payload) {
        return Err(invalid("checksum mismatch"));
    }
    decode_manifest(&payload)
}

/// Bounds a length field before allocating: a corrupted count must not
/// trigger a huge allocation even when the checksum collides.
fn read_len(r: &mut io::Cursor<&[u8]>, elem_size: usize) -> io::Result<usize> {
    let n = read_u64(r)? as usize;
    let remaining = r.get_ref().len() - (r.position() as usize).min(r.get_ref().len());
    if n.saturating_mul(elem_size.max(1)) > remaining {
        return Err(invalid("length field exceeds payload"));
    }
    Ok(n)
}

fn decode_manifest(payload: &[u8]) -> io::Result<Manifest> {
    let mut r = io::Cursor::new(payload);
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    let method_tag = tag[0];
    if AttackMethod::from_tag(method_tag).is_none() {
        return Err(invalid("unknown attack method tag"));
    }
    let applied = read_u64(&mut r)?;
    let train_seconds = read_f64(&mut r)?;
    let generate_seconds = read_f64(&mut r)?;
    let attack_seconds = read_f64(&mut r)?;
    let n_clean = read_len(&mut r, 8)?;
    let mut clean_samples = Vec::with_capacity(n_clean);
    for _ in 0..n_clean {
        clean_samples.push(read_f64(&mut r)?);
    }
    let n_curve = read_len(&mut r, 4)?;
    let mut objective_curve = Vec::with_capacity(n_curve);
    for _ in 0..n_curve {
        objective_curve.push(read_f32(&mut r)?);
    }
    let n_poison = read_len(&mut r, 16)?;
    let mut poison = Vec::with_capacity(n_poison);
    for _ in 0..n_poison {
        let n_tables = read_len(&mut r, 8)?;
        let mut tables = Vec::with_capacity(n_tables);
        for _ in 0..n_tables {
            tables.push(read_u64(&mut r)? as usize);
        }
        let n_preds = read_len(&mut r, 32)?;
        let mut predicates = Vec::with_capacity(n_preds);
        for _ in 0..n_preds {
            predicates.push(Predicate {
                table: read_u64(&mut r)? as usize,
                col: read_u64(&mut r)? as usize,
                lo: read_i64(&mut r)?,
                hi: read_i64(&mut r)?,
            });
        }
        poison.push(Query::new(tables, predicates));
    }
    if applied as usize > poison.len() {
        return Err(invalid("applied count exceeds poison batch"));
    }
    let n_params = read_len(&mut r, 1)?;
    let mut victim_params = vec![0u8; n_params];
    r.read_exact(&mut victim_params)?;
    let wave_size = read_u64(&mut r)?;
    if wave_size == 0 {
        return Err(invalid("zero wave size"));
    }
    let mut flag = [0u8; 1];
    r.read_exact(&mut flag)?;
    let served = match flag[0] {
        0 => false,
        1 => true,
        _ => return Err(invalid("bad served-campaign flag")),
    };
    let mut clock = [0.0f64; 4];
    for c in &mut clock {
        *c = read_f64(&mut r)?;
    }
    // Each swap record is at least wave + version + at + verdict tag.
    let n_swaps = read_len(&mut r, 25)?;
    let mut swaps = Vec::with_capacity(n_swaps);
    for _ in 0..n_swaps {
        let wave = read_u64(&mut r)?;
        let version = read_u64(&mut r)?;
        let at = read_f64(&mut r)?;
        let mut tag = [0u8; 1];
        r.read_exact(&mut tag)?;
        let result = match tag[0] {
            0 => Ok(()),
            1 => Err(SwapError::NonFiniteParams),
            2 => Err(SwapError::QualityRegression {
                median: read_f64(&mut r)?,
                limit: read_f64(&mut r)?,
            }),
            3 => Err(SwapError::VersionBanned {
                version: read_u64(&mut r)?,
            }),
            4 => Err(SwapError::BreakerOpen),
            5 => Err(SwapError::NoPinnedSet),
            _ => return Err(invalid("unknown swap verdict tag")),
        };
        swaps.push(WaveSwap {
            wave,
            version,
            at,
            result,
        });
    }
    Ok(Manifest {
        method_tag,
        applied,
        train_seconds,
        generate_seconds,
        attack_seconds,
        clean_samples,
        objective_curve,
        poison,
        victim_params,
        wave_size,
        served,
        clock,
        swaps,
    })
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_i64(r: &mut impl Read) -> io::Result<i64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(i64::from_le_bytes(b))
}

fn read_f64(r: &mut impl Read) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

fn read_f32(r: &mut impl Read) -> io::Result<f32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(f32::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_manifest() -> Manifest {
        Manifest {
            method_tag: AttackMethod::Pace.tag(),
            applied: 2,
            train_seconds: 1.25,
            generate_seconds: 0.5,
            attack_seconds: 0.125,
            clean_samples: vec![1.0, 2.5, 10.0],
            objective_curve: vec![0.1, 0.7, 0.9],
            poison: vec![
                Query::new(
                    vec![0, 1],
                    vec![Predicate {
                        table: 0,
                        col: 1,
                        lo: -5,
                        hi: 40,
                    }],
                ),
                Query::new(vec![2], vec![]),
                Query::new(
                    vec![0],
                    vec![Predicate {
                        table: 0,
                        col: 0,
                        lo: 0,
                        hi: 7,
                    }],
                ),
            ],
            victim_params: vec![1, 2, 3, 4, 5],
            wave_size: 2,
            served: true,
            clock: [3.5, 3.625, 12.0, 3.25],
            swaps: vec![
                WaveSwap {
                    wave: 0,
                    version: 2,
                    at: 1.125,
                    result: Ok(()),
                },
                WaveSwap {
                    wave: 1,
                    version: 3,
                    at: 2.25,
                    result: Err(SwapError::QualityRegression {
                        median: 9.5,
                        limit: 4.0,
                    }),
                },
                WaveSwap {
                    wave: 2,
                    version: 4,
                    at: 3.375,
                    result: Err(SwapError::VersionBanned { version: 4 }),
                },
                WaveSwap {
                    wave: 3,
                    version: 5,
                    at: 3.5,
                    result: Err(SwapError::BreakerOpen),
                },
                WaveSwap {
                    wave: 4,
                    version: 6,
                    at: 3.5,
                    result: Err(SwapError::NonFiniteParams),
                },
                WaveSwap {
                    wave: 5,
                    version: 7,
                    at: 3.5,
                    result: Err(SwapError::NoPinnedSet),
                },
            ],
        }
    }

    #[test]
    fn manifest_round_trips() {
        let m = sample_manifest();
        let payload = encode_manifest(&m);
        let mut file = Vec::new();
        file.extend_from_slice(MAGIC);
        file.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        file.extend_from_slice(&payload);
        file.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        assert_eq!(decode_manifest_file(&file).expect("round trip"), m);
    }

    #[test]
    fn manifest_rejects_corruption() {
        let m = sample_manifest();
        let payload = encode_manifest(&m);
        let mut file = Vec::new();
        file.extend_from_slice(MAGIC);
        file.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        file.extend_from_slice(&payload);
        file.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        // Every single-byte flip in the payload region must be caught by the
        // checksum; truncations must be caught by the length prefix.
        for i in [16, 17, file.len() / 2, file.len() - 9] {
            let mut bad = file.clone();
            bad[i] ^= 0x40;
            assert!(decode_manifest_file(&bad).is_err(), "flip at {i} accepted");
        }
        for cut in [4, 15, file.len() - 4] {
            assert!(
                decode_manifest_file(&file[..cut]).is_err(),
                "truncation at {cut} accepted"
            );
        }
    }

    #[test]
    fn manifest_bounds_length_fields() {
        let m = sample_manifest();
        let mut payload = encode_manifest(&m);
        // The clean-sample count sits right after tag + applied + 3 timings.
        let off = 1 + 8 + 24;
        payload[off..off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        // Recompute the checksum so only the bounds check can reject it.
        let mut file = Vec::new();
        file.extend_from_slice(MAGIC);
        file.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        file.extend_from_slice(&payload);
        file.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        let err = decode_manifest_file(&file).expect_err("absurd length accepted");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
