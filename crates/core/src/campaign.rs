//! Crash-safe, resumable attack campaigns.
//!
//! [`run_campaign`] is [`run_attack`](crate::pipeline::run_attack) with
//! durability: the poison batch is injected in waves of
//! [`PipelineConfig::wave_size`] queries, and after the craft phase and after
//! every wave a versioned, checksummed *campaign manifest* is persisted
//! atomically (write-to-temp + rename). A process killed mid-campaign — by a
//! crash fault, an OOM kill, a pre-empted spot instance — resumes at the
//! exact wave boundary it last persisted: the victim's poisoned parameters,
//! the already-injected queries, the clean baseline and all timings are
//! restored from the manifest, and only the remaining waves run. On
//! successful completion the manifest is removed.
//!
//! The manifest format (`PACECAM1`) is length-prefixed and FNV-1a
//! checksummed like the training-checkpoint format in
//! [`pace_tensor::serialize`]; a truncated or bit-flipped manifest fails
//! closed with [`CampaignError::Storage`] instead of resuming from garbage.

use crate::knowledge::AttackerKnowledge;
use crate::pipeline::{
    craft_poison, poison_divergence, AttackMethod, AttackOutcome, PipelineConfig,
};
use crate::resilience::{run_queries_resilient, CampaignError};
use crate::victim::Victim;
use pace_tensor::{fault, serialize};
use pace_workload::{Predicate, QErrorSummary, Query, Workload};
use std::fs;
use std::io::{self, Read};
use std::path::Path;
use std::time::Instant;

const MAGIC: &[u8; 8] = b"PACECAM1";

/// Everything a killed campaign needs to resume: progress counters, the
/// poison batch, the clean baseline, timings, and the victim's parameters as
/// of the last persisted wave.
#[derive(Clone, Debug, PartialEq)]
struct Manifest {
    method_tag: u8,
    /// Poisoning queries already applied to the victim (a wave boundary).
    applied: u64,
    train_seconds: f64,
    generate_seconds: f64,
    attack_seconds: f64,
    clean_samples: Vec<f64>,
    objective_curve: Vec<f32>,
    poison: Vec<Query>,
    /// `serialize::write_params` image of the victim model.
    victim_params: Vec<u8>,
}

/// Runs an attack campaign that persists its progress to `manifest_path`.
///
/// If a manifest from an interrupted run exists there (same method), the
/// campaign resumes from its last persisted wave instead of starting over;
/// a fresh run crafts the poison, persists, then injects wave by wave. A
/// resumed campaign is bit-identical to an uninterrupted one: the wave cuts,
/// injection order and victim updates are unchanged — only where the process
/// happened to stop differs. (Unlike
/// [`run_attack`](crate::pipeline::run_attack), which submits the whole
/// payload as a single batch, a campaign injects in waves of
/// `cfg.wave_size`, so the two poisoned models can differ slightly.)
pub fn run_campaign(
    victim: &mut Victim<'_>,
    method: AttackMethod,
    test: &Workload,
    k: &AttackerKnowledge,
    cfg: &PipelineConfig,
    manifest_path: &Path,
) -> Result<AttackOutcome, CampaignError> {
    let mut manifest = match load_manifest(manifest_path)? {
        Some(m) => {
            if m.method_tag != method.tag() {
                return Err(CampaignError::Storage(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "manifest at {} belongs to method {:?}, not {:?}",
                        manifest_path.display(),
                        AttackMethod::from_tag(m.method_tag),
                        method
                    ),
                )));
            }
            // Resume: restore the victim to the last persisted wave boundary.
            serialize::read_params(
                victim.model_mut().params_mut(),
                &mut io::Cursor::new(&m.victim_params),
            )
            .map_err(CampaignError::Storage)?;
            let applied = (m.applied as usize).min(m.poison.len());
            victim.restore_injected(&m.poison[..applied]);
            m
        }
        None => {
            let _craft = pace_tensor::trace::span("campaign::craft");
            let clean_samples = victim.q_errors(test);
            let (poison, train_seconds, generate_seconds, objective_curve) =
                craft_poison(victim, method, test, k, cfg)?;
            let m = Manifest {
                method_tag: method.tag(),
                applied: 0,
                train_seconds,
                generate_seconds,
                attack_seconds: 0.0,
                clean_samples,
                objective_curve,
                poison,
                victim_params: params_image(victim)?,
            };
            store_manifest(manifest_path, &m)?;
            // Crash fault point: after persisting, so a killed process
            // resumes without re-crafting (the expensive phase).
            fault::crash_point("campaign-craft");
            m
        }
    };

    let wave_size = cfg.wave_size.max(1);
    while (manifest.applied as usize) < manifest.poison.len() {
        let start = manifest.applied as usize;
        let end = (start + wave_size).min(manifest.poison.len());
        let _wave = pace_tensor::trace::span_at("campaign::wave", (start / wave_size) as u64);
        let t_wave = Instant::now();
        run_queries_resilient(victim, &manifest.poison[start..end], &cfg.retry)?;
        manifest.attack_seconds += t_wave.elapsed().as_secs_f64();
        manifest.applied = end as u64;
        manifest.victim_params = params_image(victim)?;
        store_manifest(manifest_path, &manifest)?;
        fault::crash_point("campaign-wave");
    }

    let _eval = pace_tensor::trace::span("campaign::evaluate");
    let clean = QErrorSummary::from_samples(&manifest.clean_samples);
    let poisoned = QErrorSummary::from_samples(&victim.q_errors(test));
    let divergence = poison_divergence(victim, &manifest.poison, k);
    // The campaign is complete; a stale manifest must not hijack the next
    // run into a bogus resume.
    fs::remove_file(manifest_path).map_err(CampaignError::Storage)?;
    Ok(AttackOutcome {
        method,
        poison: manifest.poison,
        clean,
        poisoned,
        divergence,
        train_seconds: manifest.train_seconds,
        generate_seconds: manifest.generate_seconds,
        attack_seconds: manifest.attack_seconds,
        objective_curve: manifest.objective_curve,
    })
}

fn params_image(victim: &Victim<'_>) -> Result<Vec<u8>, CampaignError> {
    let mut buf = Vec::new();
    serialize::write_params(victim.model().params(), &mut buf).map_err(CampaignError::Storage)?;
    Ok(buf)
}

// ---- manifest serialization -----------------------------------------------

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn store_manifest(path: &Path, m: &Manifest) -> Result<(), CampaignError> {
    let payload = encode_manifest(m);
    let mut out = Vec::with_capacity(payload.len() + 24);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    let tmp = path.with_extension("tmp");
    let write = (|| {
        fs::write(&tmp, &out)?;
        fs::rename(&tmp, path)
    })();
    write.map_err(CampaignError::Storage)
}

/// Reads a manifest if one exists. `Ok(None)` means no interrupted campaign;
/// a present-but-invalid manifest is an error, never a silent fresh start.
fn load_manifest(path: &Path) -> Result<Option<Manifest>, CampaignError> {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(CampaignError::Storage(e)),
    };
    decode_manifest_file(&bytes)
        .map(Some)
        .map_err(CampaignError::Storage)
}

fn encode_manifest(m: &Manifest) -> Vec<u8> {
    let mut w = Vec::new();
    w.push(m.method_tag);
    w.extend_from_slice(&m.applied.to_le_bytes());
    w.extend_from_slice(&m.train_seconds.to_le_bytes());
    w.extend_from_slice(&m.generate_seconds.to_le_bytes());
    w.extend_from_slice(&m.attack_seconds.to_le_bytes());
    w.extend_from_slice(&(m.clean_samples.len() as u64).to_le_bytes());
    for s in &m.clean_samples {
        w.extend_from_slice(&s.to_le_bytes());
    }
    w.extend_from_slice(&(m.objective_curve.len() as u64).to_le_bytes());
    for s in &m.objective_curve {
        w.extend_from_slice(&s.to_le_bytes());
    }
    w.extend_from_slice(&(m.poison.len() as u64).to_le_bytes());
    for q in &m.poison {
        w.extend_from_slice(&(q.tables.len() as u64).to_le_bytes());
        for &t in &q.tables {
            w.extend_from_slice(&(t as u64).to_le_bytes());
        }
        w.extend_from_slice(&(q.predicates.len() as u64).to_le_bytes());
        for p in &q.predicates {
            w.extend_from_slice(&(p.table as u64).to_le_bytes());
            w.extend_from_slice(&(p.col as u64).to_le_bytes());
            w.extend_from_slice(&p.lo.to_le_bytes());
            w.extend_from_slice(&p.hi.to_le_bytes());
        }
    }
    w.extend_from_slice(&(m.victim_params.len() as u64).to_le_bytes());
    w.extend_from_slice(&m.victim_params);
    w
}

fn invalid(msg: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("campaign manifest: {msg}"),
    )
}

fn decode_manifest_file(bytes: &[u8]) -> io::Result<Manifest> {
    let mut r = io::Cursor::new(bytes);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(invalid("bad magic"));
    }
    let len = read_u64(&mut r)? as usize;
    if len > bytes.len() {
        return Err(invalid("payload length exceeds file size"));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let stored = read_u64(&mut r)?;
    if stored != fnv1a(&payload) {
        return Err(invalid("checksum mismatch"));
    }
    decode_manifest(&payload)
}

/// Bounds a length field before allocating: a corrupted count must not
/// trigger a huge allocation even when the checksum collides.
fn read_len(r: &mut io::Cursor<&[u8]>, elem_size: usize) -> io::Result<usize> {
    let n = read_u64(r)? as usize;
    let remaining = r.get_ref().len() - (r.position() as usize).min(r.get_ref().len());
    if n.saturating_mul(elem_size.max(1)) > remaining {
        return Err(invalid("length field exceeds payload"));
    }
    Ok(n)
}

fn decode_manifest(payload: &[u8]) -> io::Result<Manifest> {
    let mut r = io::Cursor::new(payload);
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    let method_tag = tag[0];
    if AttackMethod::from_tag(method_tag).is_none() {
        return Err(invalid("unknown attack method tag"));
    }
    let applied = read_u64(&mut r)?;
    let train_seconds = read_f64(&mut r)?;
    let generate_seconds = read_f64(&mut r)?;
    let attack_seconds = read_f64(&mut r)?;
    let n_clean = read_len(&mut r, 8)?;
    let mut clean_samples = Vec::with_capacity(n_clean);
    for _ in 0..n_clean {
        clean_samples.push(read_f64(&mut r)?);
    }
    let n_curve = read_len(&mut r, 4)?;
    let mut objective_curve = Vec::with_capacity(n_curve);
    for _ in 0..n_curve {
        objective_curve.push(read_f32(&mut r)?);
    }
    let n_poison = read_len(&mut r, 16)?;
    let mut poison = Vec::with_capacity(n_poison);
    for _ in 0..n_poison {
        let n_tables = read_len(&mut r, 8)?;
        let mut tables = Vec::with_capacity(n_tables);
        for _ in 0..n_tables {
            tables.push(read_u64(&mut r)? as usize);
        }
        let n_preds = read_len(&mut r, 32)?;
        let mut predicates = Vec::with_capacity(n_preds);
        for _ in 0..n_preds {
            predicates.push(Predicate {
                table: read_u64(&mut r)? as usize,
                col: read_u64(&mut r)? as usize,
                lo: read_i64(&mut r)?,
                hi: read_i64(&mut r)?,
            });
        }
        poison.push(Query::new(tables, predicates));
    }
    if applied as usize > poison.len() {
        return Err(invalid("applied count exceeds poison batch"));
    }
    let n_params = read_len(&mut r, 1)?;
    let mut victim_params = vec![0u8; n_params];
    r.read_exact(&mut victim_params)?;
    Ok(Manifest {
        method_tag,
        applied,
        train_seconds,
        generate_seconds,
        attack_seconds,
        clean_samples,
        objective_curve,
        poison,
        victim_params,
    })
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_i64(r: &mut impl Read) -> io::Result<i64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(i64::from_le_bytes(b))
}

fn read_f64(r: &mut impl Read) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

fn read_f32(r: &mut impl Read) -> io::Result<f32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(f32::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_manifest() -> Manifest {
        Manifest {
            method_tag: AttackMethod::Pace.tag(),
            applied: 2,
            train_seconds: 1.25,
            generate_seconds: 0.5,
            attack_seconds: 0.125,
            clean_samples: vec![1.0, 2.5, 10.0],
            objective_curve: vec![0.1, 0.7, 0.9],
            poison: vec![
                Query::new(
                    vec![0, 1],
                    vec![Predicate {
                        table: 0,
                        col: 1,
                        lo: -5,
                        hi: 40,
                    }],
                ),
                Query::new(vec![2], vec![]),
                Query::new(
                    vec![0],
                    vec![Predicate {
                        table: 0,
                        col: 0,
                        lo: 0,
                        hi: 7,
                    }],
                ),
            ],
            victim_params: vec![1, 2, 3, 4, 5],
        }
    }

    #[test]
    fn manifest_round_trips() {
        let m = sample_manifest();
        let payload = encode_manifest(&m);
        let mut file = Vec::new();
        file.extend_from_slice(MAGIC);
        file.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        file.extend_from_slice(&payload);
        file.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        assert_eq!(decode_manifest_file(&file).expect("round trip"), m);
    }

    #[test]
    fn manifest_rejects_corruption() {
        let m = sample_manifest();
        let payload = encode_manifest(&m);
        let mut file = Vec::new();
        file.extend_from_slice(MAGIC);
        file.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        file.extend_from_slice(&payload);
        file.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        // Every single-byte flip in the payload region must be caught by the
        // checksum; truncations must be caught by the length prefix.
        for i in [16, 17, file.len() / 2, file.len() - 9] {
            let mut bad = file.clone();
            bad[i] ^= 0x40;
            assert!(decode_manifest_file(&bad).is_err(), "flip at {i} accepted");
        }
        for cut in [4, 15, file.len() - 4] {
            assert!(
                decode_manifest_file(&file[..cut]).is_err(),
                "truncation at {cut} accepted"
            );
        }
    }

    #[test]
    fn manifest_bounds_length_fields() {
        let m = sample_manifest();
        let mut payload = encode_manifest(&m);
        // The clean-sample count sits right after tag + applied + 3 timings.
        let off = 1 + 8 + 24;
        payload[off..off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        // Recompute the checksum so only the bounds check can reject it.
        let mut file = Vec::new();
        file.extend_from_slice(MAGIC);
        file.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        file.extend_from_slice(&payload);
        file.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        let err = decode_manifest_file(&file).expect_err("absurd length accepted");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
