//! The served victim: an attack target whose model sits *behind* the
//! hot-swap serving runtime (`pace-serve`) instead of being updated in
//! place.
//!
//! The direct [`Victim`](crate::victim::Victim) models the paper's setup
//! literally: injected queries retrain the estimator the attacker probes.
//! A production estimator is deployed differently — incremental retrains
//! produce *candidate snapshots* that must pass shadow validation (finite
//! parameters + a pinned-set q-error probe) before an atomic hot-swap puts
//! them in front of traffic. [`ServedVictim`] routes the campaign through
//! that deployment path:
//!
//! * `EXPLAIN` probes become served requests through the [`Server`]'s
//!   bounded admission queue and virtual-time batcher — the attacker
//!   reads estimates off the *active snapshot* and experiences typed
//!   serving failures ([`ServeError`] mapped onto
//!   [`ProbeError`](crate::resilience::ProbeError)).
//! * Each injected wave accumulates into a *candidate* model and is
//!   submitted as a versioned [`SwapEvent`] mid-wave, while seeded
//!   background traffic flows. The swap either validates and goes live,
//!   or is rejected — and a rejected wave *rolls back*: the poison that
//!   wave carried never reaches the serving model.
//!
//! The per-wave accept/reject log ([`WaveSwap`]) is the measured defense
//! surface: the fraction of poison waves the pinned q-error probe stops is
//! what `xtask defense-report` gates on. Everything runs on the serving
//! runtime's virtual clock, so a seeded campaign (probes, traffic, swap
//! verdicts) is bit-identical across runs and thread counts.

use crate::resilience::ProbeError;
use crate::victim::{injected_failure, AttackTarget, BlackBox};
use pace_ce::{CeModel, EncodedWorkload};
use pace_engine::Executor;
use pace_serve::{Phase, ReplyRecord, Request, ServeError, Server, SwapError, SwapEvent};
use pace_tensor::{serialize, trace};
use pace_workload::{LabeledQuery, Query, QueryEncoder, Workload};
use std::cell::{Cell, RefCell};
use std::io;

/// Version assigned to the clean model installed at construction.
const INITIAL_VERSION: u64 = 1;
/// Version of wave `w`'s candidate snapshot: `FIRST_WAVE_VERSION + w`.
const FIRST_WAVE_VERSION: u64 = 2;
/// Id stride separating one wave's background-traffic requests from the
/// next (a wave never generates this many arrivals, overload bursts
/// included).
const WAVE_ID_STRIDE: u64 = 100_000;
/// First id of the attacker's probe requests — far above any wave-traffic
/// id, so probe and traffic replies never collide in the logs.
const PROBE_ID_BASE: u64 = 2_000_000_000;

/// Background query traffic a served campaign runs concurrently with each
/// poison wave, plus the serving budgets of attacker probes.
#[derive(Clone, Debug)]
pub struct ServedTraffic {
    /// Pool the per-wave open-loop generator draws queries from.
    pub pool: Vec<Query>,
    /// Mean arrival rate during a wave, requests per virtual second.
    pub rate: f64,
    /// Virtual duration of each wave's traffic window; the wave's swap
    /// event fires halfway through it.
    pub window: f64,
    /// Deadline budget (virtual seconds) of each background request.
    pub deadline: f64,
    /// Deadline budget (virtual seconds) of each attacker `EXPLAIN` probe.
    pub probe_deadline: f64,
    /// Base seed of the traffic generator; each wave derives its own
    /// stream from it.
    pub seed: u64,
}

impl ServedTraffic {
    /// Moderate steady traffic: ~`rate × window` requests per wave, ample
    /// deadline budget so a healthy server answers everything.
    pub fn new(pool: Vec<Query>, seed: u64) -> Self {
        Self {
            pool,
            rate: 400.0,
            window: 0.25,
            deadline: 0.05,
            probe_deadline: 0.05,
            seed,
        }
    }
}

/// One poison wave's hot-swap attempt and verdict — the campaign's defense
/// ledger, persisted in the manifest and surfaced in
/// [`AttackOutcome::swaps`](crate::pipeline::AttackOutcome::swaps).
#[derive(Clone, Debug, PartialEq)]
pub struct WaveSwap {
    /// Zero-based wave index.
    pub wave: u64,
    /// Version the wave's candidate snapshot carried.
    pub version: u64,
    /// Virtual time of the swap attempt.
    pub at: f64,
    /// Swap verdict; `Err` means the wave's poison was rolled back.
    pub result: Result<(), SwapError>,
}

impl WaveSwap {
    /// Stable report label of the verdict: `accepted`,
    /// `rejected-by-probe` (shadow validation refused the candidate),
    /// `version-banned`, or `breaker-tripped`.
    pub fn class(&self) -> &'static str {
        match &self.result {
            Ok(()) => "accepted",
            Err(
                SwapError::QualityRegression { .. }
                | SwapError::NonFiniteParams
                | SwapError::NoPinnedSet,
            ) => "rejected-by-probe",
            Err(SwapError::VersionBanned { .. }) => "version-banned",
            Err(SwapError::BreakerOpen) => "breaker-tripped",
        }
    }
}

/// A victim whose estimator is deployed behind the validated hot-swap
/// serving path. Implements [`BlackBox`] (the attacker's probe surface)
/// and [`AttackTarget`] (the evaluation surface), so the whole pipeline —
/// surrogate acquisition, generator training, wave injection — runs
/// unchanged against it.
pub struct ServedVictim<'a> {
    server: RefCell<Server>,
    exec: Executor<'a>,
    encoder: QueryEncoder,
    history: Vec<Query>,
    injected: Vec<LabeledQuery>,
    /// The retrain accumulator: updated by every wave, submitted as that
    /// wave's candidate snapshot. Reset to `active` when a swap is
    /// rejected (the serving side never trained on the rejected wave).
    candidate: CeModel,
    /// Mirror of the active (validated) snapshot — what probes are served
    /// from and what evaluation measures.
    active: CeModel,
    traffic: ServedTraffic,
    wave: u64,
    next_probe_id: Cell<u64>,
    log: RefCell<Vec<ReplyRecord>>,
    swaps: Vec<WaveSwap>,
}

impl<'a> ServedVictim<'a> {
    /// Puts `model` into service (version 1, through full shadow
    /// validation — the clean model must pass its own pinned probe) and
    /// wraps the result as an attack target. `server` must be freshly
    /// constructed with the pinned validation set and fallback estimator;
    /// `history` is the workload the model was trained on.
    ///
    /// # Errors
    /// Propagates [`SwapError`] when the clean model fails validation —
    /// including [`SwapError::NoPinnedSet`] for a server wired up without
    /// pinned probes, which would make every later wave's validation
    /// vacuous.
    pub fn new(
        mut server: Server,
        model: CeModel,
        exec: Executor<'a>,
        history: Vec<Query>,
        traffic: ServedTraffic,
    ) -> Result<Self, SwapError> {
        server.try_swap(INITIAL_VERSION, model.clone())?;
        let encoder = model.encoder().clone();
        Ok(Self {
            server: RefCell::new(server),
            exec,
            encoder,
            history,
            injected: Vec::new(),
            candidate: model.clone(),
            active: model,
            traffic,
            wave: 0,
            next_probe_id: Cell::new(PROBE_ID_BASE),
            log: RefCell::new(Vec::new()),
            swaps: Vec::new(),
        })
    }

    /// Every wave's swap attempt and verdict, in wave order.
    pub fn wave_swaps(&self) -> &[WaveSwap] {
        &self.swaps
    }

    /// All reply records this campaign produced — attacker probes and
    /// background wave traffic — in completion order. Session-local: a
    /// resumed campaign starts an empty log (the swap ledger, not the
    /// reply log, is the resume contract).
    pub fn replies(&self) -> Vec<ReplyRecord> {
        self.log.borrow().clone()
    }

    /// Lifetime counters of the underlying server (session-local, like
    /// [`replies`](ServedVictim::replies)).
    pub fn summary(&self) -> pace_serve::ServeSummary {
        self.server.borrow().summary().clone()
    }

    /// Version of the snapshot currently in service.
    pub fn active_version(&self) -> Option<u64> {
        self.server.borrow().snapshots().active_version()
    }

    /// Queries injected *and accepted* so far (evaluation side; rejected
    /// waves' queries never count — the serving model rolled them back).
    pub fn injected(&self) -> &[LabeledQuery] {
        &self.injected
    }

    /// The serving runtime's timing state (see
    /// [`Server::clock_state`]) — persisted at wave boundaries so a
    /// resumed campaign re-enters the same virtual instant.
    pub(crate) fn clock_state(&self) -> [f64; 4] {
        let (now, busy, tokens, refill) = self.server.borrow().clock_state();
        [now, busy, tokens, refill]
    }

    /// Restores a resumed campaign to its last persisted wave boundary:
    /// model parameters into both the candidate and the active mirror, a
    /// break-glass install of the already-validated snapshot (visible as
    /// `SERVE_FORCE_INSTALLS`, never as a validated swap), the swap
    /// control's ban/breaker state, the virtual clock, and the ledgers.
    /// `accepted` holds the queries of accepted waves only — rejected
    /// waves never reached the serving model, so they are not replayed.
    pub(crate) fn restore_resume_state(
        &mut self,
        params: &[u8],
        accepted: &[Query],
        swaps: Vec<WaveSwap>,
        clock: [f64; 4],
    ) -> io::Result<()> {
        serialize::read_params(self.candidate.params_mut(), &mut io::Cursor::new(params))?;
        self.active = self.candidate.clone();
        let version = swaps
            .iter()
            .filter(|s| s.result.is_ok())
            .map(|s| s.version)
            .max()
            .unwrap_or(INITIAL_VERSION);
        // Validation failures ban their version and count toward the
        // consecutive-failure breaker; breaker/ban rejections do neither.
        let banned: Vec<u64> = swaps
            .iter()
            .filter(|s| {
                matches!(
                    s.result,
                    Err(SwapError::NonFiniteParams | SwapError::QualityRegression { .. })
                )
            })
            .map(|s| s.version)
            .collect();
        let mut consecutive = 0u32;
        for s in swaps.iter().rev() {
            match &s.result {
                Ok(()) => break,
                Err(SwapError::NonFiniteParams | SwapError::QualityRegression { .. }) => {
                    consecutive += 1;
                }
                Err(_) => {}
            }
        }
        let server = self.server.get_mut();
        server.force_install(version, self.active.clone());
        server.snapshots().restore_ctl(&banned, consecutive);
        server.restore_clock(clock[0], clock[1], clock[2], clock[3]);
        self.wave = swaps.len() as u64;
        self.injected = accepted
            .iter()
            .map(|q| LabeledQuery {
                query: q.clone(),
                cardinality: self.exec.count(q).max(1),
            })
            .collect();
        self.swaps = swaps;
        Ok(())
    }
}

impl BlackBox for ServedVictim<'_> {
    fn explain(&self, q: &Query) -> Result<f64, ProbeError> {
        if injected_failure("explain")?.is_some() {
            return Ok(f64::NAN); // corrupted response, caught by validation
        }
        let id = self.next_probe_id.get();
        self.next_probe_id.set(id + 1);
        let mut server = self.server.borrow_mut();
        let arrival = server.now();
        let records = server.run(
            vec![Request {
                id,
                arrival,
                deadline: arrival + self.traffic.probe_deadline,
                query: q.clone(),
            }],
            Vec::new(),
        );
        drop(server);
        let record = records.into_iter().next().ok_or(ProbeError::Unavailable)?;
        let outcome = record.outcome.clone();
        self.log.borrow_mut().push(record);
        match outcome {
            Ok(reply) => Ok(reply.estimate),
            Err(ServeError::DeadlineExceeded { .. }) => Err(ProbeError::Timeout {
                seconds: self.traffic.probe_deadline,
            }),
            Err(ServeError::Shed { .. } | ServeError::Unhealthy) => Err(ProbeError::Unavailable),
            Err(ServeError::Malformed) => Err(ProbeError::Corrupted {
                what: "probe rejected at admission as malformed",
            }),
        }
    }

    fn count(&self, q: &Query) -> Result<u64, ProbeError> {
        if injected_failure("count")?.is_some() {
            return Ok(u64::MAX); // corrupted response, caught by validation
        }
        Ok(self.exec.count(q))
    }

    /// One call is one poison wave: the queries retrain the *candidate*
    /// model, which is then submitted as a versioned hot-swap halfway
    /// through a window of seeded background traffic. An accepted swap
    /// promotes the candidate; a rejected one rolls the candidate back to
    /// the active model — either verdict is a successful probe (`Ok`),
    /// because rejection is the defense outcome the campaign measures,
    /// not an oracle failure.
    fn run_queries(&mut self, queries: &[Query]) -> Result<(), ProbeError> {
        if queries.is_empty() {
            return Ok(());
        }
        // Fault points fire before any mutation so a retry is safe.
        if injected_failure("run-queries")?.is_some() {
            return Err(ProbeError::Corrupted {
                what: "batch submission rejected",
            });
        }
        let labeled: Workload = queries
            .iter()
            .map(|q| LabeledQuery {
                query: q.clone(),
                cardinality: self.exec.count(q).max(1),
            })
            .collect();
        let data = EncodedWorkload::from_workload(&self.encoder, &labeled);
        self.candidate.update(&data).map_err(ProbeError::Update)?;

        let wave = self.wave;
        let version = FIRST_WAVE_VERSION + wave;
        let server = self.server.get_mut();
        let t0 = server.now();
        let phases = [Phase {
            name: "wave-traffic",
            duration: self.traffic.window,
            rate: self.traffic.rate,
        }];
        let mut requests = pace_serve::generate(
            &phases,
            &self.traffic.pool,
            self.traffic.seed ^ wave.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            self.traffic.deadline,
            WAVE_ID_STRIDE * (wave + 1),
        );
        // The generator emits arrivals relative to t = 0; shift the wave's
        // window to start at the server's current virtual instant.
        for r in &mut requests {
            r.arrival += t0;
            r.deadline += t0;
        }
        let swap = SwapEvent {
            at: t0 + self.traffic.window * 0.5,
            version,
            model: self.candidate.clone(),
        };
        let mark = server.swap_log().len();
        let records = server.run(requests, vec![swap]);
        let outcome = server.swap_log()[mark..]
            .iter()
            .find(|o| o.version == version)
            .cloned();
        self.log.get_mut().extend(records);
        self.wave += 1;
        let Some(outcome) = outcome else {
            // Unreachable in practice — `run` drains every scheduled swap
            // event — but a missing verdict must surface as a typed
            // failure, not a panic on the probe path.
            return Err(ProbeError::Unavailable);
        };
        match &outcome.result {
            Ok(()) => {
                self.active = self.candidate.clone();
                self.injected.extend(labeled);
                trace::SERVE_POISON_WAVES_ACCEPTED.add(1);
            }
            Err(_) => {
                self.candidate = self.active.clone();
                trace::SERVE_POISON_WAVES_REJECTED.add(1);
            }
        }
        self.swaps.push(WaveSwap {
            wave,
            version,
            at: outcome.at,
            result: outcome.result,
        });
        Ok(())
    }

    fn historical_sample(&self) -> &[Query] {
        &self.history
    }
}

impl AttackTarget for ServedVictim<'_> {
    fn q_errors(&self, test: &Workload) -> Vec<f64> {
        let data = EncodedWorkload::from_workload(&self.encoder, test);
        self.active.evaluate(&data)
    }

    fn effective_model(&self) -> &CeModel {
        &self.active
    }
}
