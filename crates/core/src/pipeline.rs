//! End-to-end attack orchestration (paper Figure 2): surrogate acquisition →
//! generator training → poisoning-query injection → evaluation.
//!
//! Every oracle interaction runs through a
//! [`ResilientOracle`](crate::resilience::ResilientOracle) built from the
//! pipeline's [`RetryPolicy`], so probe failures retry/degrade instead of
//! aborting; [`run_attack`] returns a typed [`CampaignError`] when recovery
//! is exhausted. The crash-safe, resumable variant — wave-based injection
//! with a persisted manifest — lives in [`crate::campaign`].

use crate::attack::{
    greedy_poison, loss_based_selection, random_poison, train_generator_accelerated,
    train_generator_basic, train_lbg, AttackConfig,
};
use crate::knowledge::AttackerKnowledge;
use crate::resilience::{run_queries_resilient, CampaignError, ResilientOracle, RetryPolicy};
use crate::served::WaveSwap;
use crate::surrogate::{speculate_model_type, train_surrogate, SpeculationConfig, SurrogateConfig};
use crate::victim::{AttackTarget, BlackBox, Victim};
use pace_ce::{CeModelType, EncodedWorkload};
use pace_workload::{js_divergence, QErrorSummary, Query, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// The poisoning strategies compared in the evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum AttackMethod {
    /// No attack (reference row).
    Clean,
    /// Random workload-like queries.
    Random,
    /// Loss-based selection from a random pool.
    LbS,
    /// Greedy per-attribute condition search.
    Greedy,
    /// Loss-based generation (PACE's generator, myopic objective).
    LbG,
    /// Full PACE with the accelerated algorithm.
    Pace,
    /// PACE with the basic (strawman) algorithm — ablation of Figure 12.
    PaceBasic,
    /// PACE without the anomaly detector — ablation of Figure 13.
    PaceNoDetector,
}

impl AttackMethod {
    /// The six methods of the headline tables, in paper order.
    pub fn headline() -> [AttackMethod; 6] {
        [
            AttackMethod::Clean,
            AttackMethod::Random,
            AttackMethod::LbS,
            AttackMethod::Greedy,
            AttackMethod::LbG,
            AttackMethod::Pace,
        ]
    }

    /// Display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            AttackMethod::Clean => "Clean",
            AttackMethod::Random => "Random",
            AttackMethod::LbS => "Lb-S",
            AttackMethod::Greedy => "Greedy",
            AttackMethod::LbG => "Lb-G",
            AttackMethod::Pace => "PACE",
            AttackMethod::PaceBasic => "PACE-basic",
            AttackMethod::PaceNoDetector => "PACE-w/o-detector",
        }
    }

    /// Stable on-disk tag of the campaign manifest.
    pub(crate) fn tag(self) -> u8 {
        match self {
            AttackMethod::Clean => 0,
            AttackMethod::Random => 1,
            AttackMethod::LbS => 2,
            AttackMethod::Greedy => 3,
            AttackMethod::LbG => 4,
            AttackMethod::Pace => 5,
            AttackMethod::PaceBasic => 6,
            AttackMethod::PaceNoDetector => 7,
        }
    }

    /// Inverse of [`Self::tag`].
    pub(crate) fn from_tag(tag: u8) -> Option<Self> {
        Some(match tag {
            0 => AttackMethod::Clean,
            1 => AttackMethod::Random,
            2 => AttackMethod::LbS,
            3 => AttackMethod::Greedy,
            4 => AttackMethod::LbG,
            5 => AttackMethod::Pace,
            6 => AttackMethod::PaceBasic,
            7 => AttackMethod::PaceNoDetector,
            _ => return None,
        })
    }
}

/// Configuration of the full pipeline.
#[derive(Clone, Debug, Default)]
pub struct PipelineConfig {
    /// When `Some`, skip speculation and use this surrogate type (experiments
    /// that fix or deliberately mismatch the type); `None` speculates.
    pub surrogate_type: Option<CeModelType>,
    /// Speculation parameters.
    pub speculation: SpeculationConfig,
    /// Surrogate-training parameters.
    pub surrogate: SurrogateConfig,
    /// Generator/attack parameters.
    pub attack: AttackConfig,
    /// Retry/breaker policy wrapping every oracle probe of the pipeline.
    pub retry: RetryPolicy,
    /// Queries injected per campaign wave; the resumable campaign persists
    /// its manifest after each wave ([`crate::campaign::run_campaign`]).
    pub wave_size: usize,
    /// Diagnostic upper bound: hand the attacker an exact copy of the
    /// victim's model as the surrogate (white-box). Used by ablations to
    /// decompose how much attack effectiveness the black-box surrogate
    /// transfer costs; never part of the threat model proper.
    pub white_box: bool,
}

impl PipelineConfig {
    /// A fast configuration for tests.
    pub fn quick() -> Self {
        Self {
            surrogate_type: None,
            speculation: SpeculationConfig::quick(),
            surrogate: SurrogateConfig::quick(),
            attack: AttackConfig::quick(),
            retry: RetryPolicy::default(),
            wave_size: 16,
            white_box: false,
        }
    }
}

/// Everything measured about one attack run.
#[derive(Clone, Debug)]
pub struct AttackOutcome {
    /// Strategy used.
    pub method: AttackMethod,
    /// The injected poisoning queries.
    pub poison: Vec<Query>,
    /// Test Q-error before the attack.
    pub clean: QErrorSummary,
    /// Test Q-error after the attack.
    pub poisoned: QErrorSummary,
    /// JS divergence between poisoning and historical query encodings.
    pub divergence: f64,
    /// Seconds crafting the poison (surrogate + generator training).
    pub train_seconds: f64,
    /// Seconds generating the final poisoning batch.
    pub generate_seconds: f64,
    /// Seconds injecting (victim model update).
    pub attack_seconds: f64,
    /// Generator-objective convergence curve, when applicable.
    pub objective_curve: Vec<f32>,
    /// Per-wave hot-swap outcomes, when the campaign ran through the
    /// serving path ([`crate::campaign::run_served_campaign`]); empty for
    /// direct in-process attacks, where no swap gate exists.
    pub swaps: Vec<WaveSwap>,
}

impl AttackOutcome {
    /// Multiplicative increase of the mean Q-error (the paper's headline
    /// "reduces accuracy by N×" figure).
    pub fn qerror_multiple(&self) -> f64 {
        self.poisoned.mean / self.clean.mean.max(1.0)
    }
}

/// Crafts poisoning queries with the given method (attacker side: read-only
/// access to the victim — the direct [`Victim`] or the served adapter,
/// anything implementing [`AttackTarget`]). Returns the queries, crafting
/// seconds, generation seconds, and the objective curve.
pub fn craft_poison<B: AttackTarget>(
    victim: &B,
    method: AttackMethod,
    test: &Workload,
    k: &AttackerKnowledge,
    cfg: &PipelineConfig,
) -> Result<(Vec<Query>, f64, f64, Vec<f32>), CampaignError> {
    let mut rng = StdRng::seed_from_u64(cfg.attack.seed ^ 0x91e);
    let n = cfg.attack.n_poison;
    let oracle = ResilientOracle::new(victim, cfg.retry.clone());
    let t_train = Instant::now();
    Ok(match method {
        AttackMethod::Clean => (Vec::new(), 0.0, 0.0, Vec::new()),
        AttackMethod::Random => {
            let queries = random_poison(k, &mut rng, n);
            (queries, 0.0, t_train.elapsed().as_secs_f64(), Vec::new())
        }
        AttackMethod::LbS => {
            let surrogate = acquire_surrogate(victim, k, cfg)?;
            let mut count = |q: &Query| oracle.count(q);
            let train_s = t_train.elapsed().as_secs_f64();
            let t_gen = Instant::now();
            let queries = loss_based_selection(&surrogate, &mut count, k, &mut rng, n)?;
            (queries, train_s, t_gen.elapsed().as_secs_f64(), Vec::new())
        }
        AttackMethod::Greedy => {
            let surrogate = acquire_surrogate(victim, k, cfg)?;
            let mut count = |q: &Query| oracle.count(q);
            let train_s = t_train.elapsed().as_secs_f64();
            let t_gen = Instant::now();
            let queries = greedy_poison(&surrogate, &mut count, k, &mut rng, n)?;
            (queries, train_s, t_gen.elapsed().as_secs_f64(), Vec::new())
        }
        AttackMethod::LbG => {
            let surrogate = acquire_surrogate(victim, k, cfg)?;
            let mut count = |q: &Query| oracle.count(q);
            let artifacts = train_lbg(&surrogate, &mut count, k, &cfg.attack)?;
            let train_s = t_train.elapsed().as_secs_f64();
            let t_gen = Instant::now();
            let (queries, _) = artifacts.generator.generate(&mut rng, n);
            (
                queries,
                train_s,
                t_gen.elapsed().as_secs_f64(),
                artifacts.objective_curve,
            )
        }
        AttackMethod::Pace | AttackMethod::PaceBasic | AttackMethod::PaceNoDetector => {
            let mut surrogate = acquire_surrogate(victim, k, cfg)?;
            let mut count = |q: &Query| oracle.count(q);
            let historical: Vec<Vec<f32>> = victim
                .historical_sample()
                .iter()
                .map(|q| k.encoder.encode(q))
                .collect();
            let test_data = {
                let enc = test.iter().map(|lq| k.encoder.encode(&lq.query)).collect();
                let cards: Vec<u64> = test.iter().map(|lq| lq.cardinality).collect();
                EncodedWorkload::from_parts(enc, &cards)
            };
            let mut attack_cfg = cfg.attack.clone();
            if method == AttackMethod::PaceNoDetector {
                attack_cfg.use_detector = false;
            }
            let artifacts = if method == AttackMethod::PaceBasic {
                train_generator_basic(
                    &mut surrogate,
                    &mut count,
                    &test_data,
                    &historical,
                    k,
                    &attack_cfg,
                )?
            } else {
                train_generator_accelerated(
                    &mut surrogate,
                    &mut count,
                    &test_data,
                    &historical,
                    k,
                    &attack_cfg,
                )?
            };
            let train_s = t_train.elapsed().as_secs_f64();
            let t_gen = Instant::now();
            let (queries, _) = artifacts.generator.generate(&mut rng, n);
            (
                queries,
                train_s,
                t_gen.elapsed().as_secs_f64(),
                artifacts.objective_curve,
            )
        }
    })
}

fn acquire_surrogate<B: AttackTarget>(
    victim: &B,
    k: &AttackerKnowledge,
    cfg: &PipelineConfig,
) -> Result<pace_ce::CeModel, CampaignError> {
    if cfg.white_box {
        return Ok(victim.effective_model().clone());
    }
    let ty = match cfg.surrogate_type {
        Some(ty) => ty,
        None => speculate_model_type(victim, k, &cfg.speculation)?.speculated,
    };
    train_surrogate(victim, k, ty, &cfg.surrogate)
}

/// Runs a complete attack against a victim and measures its effect on the
/// test workload. The victim's model is left in its poisoned state (callers
/// snapshot/restore its parameters to compare methods).
///
/// Injection retries under the pipeline's [`RetryPolicy`]; an error means
/// the oracle stayed down or training stayed divergent past every recovery.
/// For a crash-safe campaign that persists progress and can resume after a
/// kill, use [`crate::campaign::run_campaign`].
pub fn run_attack(
    victim: &mut Victim<'_>,
    method: AttackMethod,
    test: &Workload,
    k: &AttackerKnowledge,
    cfg: &PipelineConfig,
) -> Result<AttackOutcome, CampaignError> {
    let clean = QErrorSummary::from_samples(&victim.q_errors(test));
    let (poison, train_seconds, generate_seconds, objective_curve) =
        craft_poison(victim, method, test, k, cfg)?;
    let t_attack = Instant::now();
    run_queries_resilient(victim, &poison, &cfg.retry)?;
    let attack_seconds = t_attack.elapsed().as_secs_f64();
    let poisoned = QErrorSummary::from_samples(&victim.q_errors(test));
    let divergence = poison_divergence(victim, &poison, k);
    Ok(AttackOutcome {
        method,
        poison,
        clean,
        poisoned,
        divergence,
        train_seconds,
        generate_seconds,
        attack_seconds,
        objective_curve,
        swaps: Vec::new(),
    })
}

/// JS divergence between the poison batch and the historical workload
/// (shared by [`run_attack`] and the resumable campaigns).
pub(crate) fn poison_divergence<B: BlackBox + ?Sized>(
    victim: &B,
    poison: &[Query],
    k: &AttackerKnowledge,
) -> f64 {
    if poison.is_empty() {
        return 0.0;
    }
    let hist: Vec<Vec<f32>> = victim
        .historical_sample()
        .iter()
        .map(|q| k.encoder.encode(q))
        .collect();
    let pois: Vec<Vec<f32>> = poison.iter().map(|q| k.encoder.encode(q)).collect();
    if hist.is_empty() {
        0.0
    } else {
        js_divergence(&pois, &hist, 20)
    }
}
