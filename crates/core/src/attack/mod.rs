//! The poisoning-attack algorithms (paper Section 5).
//!
//! Both algorithms optimize the bivariate objective of Eq. 10 — maximize the
//! poisoned surrogate's Q-error on the test workload, where the surrogate's
//! parameters are themselves a function of the generated queries — and differ
//! only in how they schedule generator vs. model updates:
//!
//! * [`basic`]: alternate full generator optimization against a K-step
//!   unrolled poisoning of a fixed starting point, then re-poison — the
//!   Figure 5(a) strawman, `O(n₃(n₁+n₂))`.
//! * [`accelerated`]: interleave one-step virtual lookahead updates with
//!   periodic real surrogate updates — Algorithm 1, `O(n₁+n₂)`.

pub mod accelerated;
pub mod baselines;
pub mod basic;

use crate::detector::{AnomalyDetector, DetectorConfig};
use crate::generator::{GeneratorConfig, PoisonGenerator};
use pace_ce::{q_error_loss, CeModel};
use pace_tensor::{Binding, Graph, Var};

/// Shared attack hyperparameters (paper Section 7.1, "Hyper-parameters").
#[derive(Clone, Debug)]
pub struct AttackConfig {
    /// Number of poisoning queries finally injected (paper default 450 — 5%
    /// of the training workload).
    pub n_poison: usize,
    /// Generator-training batch size.
    pub batch: usize,
    /// Total generator iterations of the accelerated algorithm (`n₁`).
    pub iters: usize,
    /// Real surrogate-update cadence of the accelerated algorithm
    /// (Algorithm 1 line 20). For the paper's one-shot deployment — all
    /// poisoning queries injected against the *clean* victim — the default
    /// disables syncing, since a progressively poisoned surrogate would stop
    /// resembling the model the generated queries will actually face.
    pub sync_every: usize,
    /// Outer loops of the basic algorithm (`n₃`, paper default 20).
    pub basic_outer: usize,
    /// Generator iterations per outer loop of the basic algorithm.
    pub basic_inner: usize,
    /// Unrolled model-update steps `K` of the basic objective (the paper's
    /// CE incremental-update iteration count, default 10).
    pub unroll_steps: usize,
    /// Step size `η₁` of the unrolled updates.
    pub unroll_lr: f32,
    /// At most this many test queries inside the differentiable objective.
    pub test_subset: usize,
    /// Whether the anomaly-detector confrontation is active.
    pub use_detector: bool,
    /// Detector hyperparameters.
    pub detector: DetectorConfig,
    /// Generator hyperparameters.
    pub generator: GeneratorConfig,
    /// Ablation switch: disable the straight-through quantization that aligns
    /// the unrolled update with the victim's decode→re-encode path.
    pub ablate_quantization: bool,
    /// Ablation switch: disable best-objective generator checkpointing.
    pub ablate_checkpoint: bool,
    /// Iterations without objective improvement before a large-step escape.
    pub escape_patience: usize,
    /// Learning-rate multiplier of the escape step.
    pub escape_boost: f32,
    /// Both attack loops take a rollback checkpoint (generator params +
    /// optimizer + RNG state) every this many iterations; a divergent
    /// iteration (non-finite objective or parameters) restores it with a
    /// halved learning rate.
    pub checkpoint_every: usize,
    /// Rollback recoveries before generator training gives up with
    /// [`pace_ce::TrainError::Diverged`].
    pub max_rollbacks: u32,
    /// Randomness seed.
    pub seed: u64,
}

impl Default for AttackConfig {
    fn default() -> Self {
        Self {
            n_poison: 450,
            batch: 96,
            iters: 60,
            sync_every: usize::MAX,
            basic_outer: 8,
            basic_inner: 60,
            unroll_steps: 10,
            unroll_lr: 1e-2,
            test_subset: 128,
            use_detector: true,
            detector: DetectorConfig::default(),
            generator: GeneratorConfig::default(),
            ablate_quantization: false,
            ablate_checkpoint: false,
            escape_patience: 6,
            escape_boost: 5.0,
            checkpoint_every: 10,
            max_rollbacks: 3,
            seed: 0xacce,
        }
    }
}

impl AttackConfig {
    /// A fast configuration for tests.
    pub fn quick() -> Self {
        Self {
            n_poison: 60,
            batch: 32,
            iters: 30,
            sync_every: usize::MAX,
            basic_outer: 6,
            basic_inner: 30,
            unroll_steps: 4,
            test_subset: 40,
            detector: DetectorConfig {
                epochs: 15,
                ..DetectorConfig::default()
            },
            ..Self::default()
        }
    }
}

/// What generator training produces.
pub struct AttackArtifacts {
    /// The trained poisoning-query generator.
    pub generator: PoisonGenerator,
    /// The trained anomaly detector, when confrontation was enabled.
    pub detector: Option<AnomalyDetector>,
    /// Objective value (mean test Q-error of the virtually poisoned
    /// surrogate) per generator iteration — the convergence curve of
    /// Figure 15.
    pub objective_curve: Vec<f32>,
    /// Wall-clock training time in seconds.
    pub train_seconds: f64,
}

/// Builds the unrolled virtual update chain `θ₀ → … → θ_steps` inside `g`
/// (paper Eq. 9): each step is one clipped SGD move on the Q-error of the
/// poisoning batch, with the gradients kept in-graph so the outer objective
/// can differentiate through them.
///
/// The per-step global-norm clipping mirrors the victim's real incremental
/// update (`CeConfig::update_clip`); without it, the attacker's virtual
/// landscape diverges from deployment exactly in the high-loss region the
/// attack explores. The clip scale is itself a graph node, so it stays
/// differentiable.
pub(crate) fn unroll_virtual_updates(
    g: &mut Graph,
    model: &CeModel,
    theta0: Binding,
    x: Var,
    ln_labels: &[f32],
    steps: usize,
    lr: f32,
) -> Binding {
    let clip = model.config().update_clip;
    let mut theta = theta0;
    for _ in 0..steps {
        let out = model.forward(g, &theta, x);
        let loss = q_error_loss(g, out, ln_labels, model.ln_max());
        let grads = g.grad(loss, theta.vars());
        // Differentiable global-norm clip: scale = min(1, clip / ||g||).
        let mut sq = g.scalar(0.0);
        for &gr in &grads {
            let s = g.mul(gr, gr);
            let ss = g.sum_all(s);
            sq = g.add(sq, ss);
        }
        let sq = g.add_scalar(sq, 1e-12);
        let norm = g.sqrt(sq);
        let clip_node = g.scalar(clip);
        let ratio = g.div(clip_node, norm);
        let one = g.scalar(1.0);
        let scale = g.minimum(ratio, one);
        let next: Vec<Var> = theta
            .vars()
            .iter()
            .zip(grads)
            .map(|(&p, gr)| {
                let (r, c) = g.shape(gr);
                let sc = g.broadcast_scalar(scale, r, c);
                let clipped = g.mul(gr, sc);
                let step = g.mul_scalar(clipped, lr);
                g.sub(p, step)
            })
            .collect();
        theta = Binding::from_vars(next);
    }
    theta
}

/// Straight-through estimator: returns a node whose *value* equals the
/// quantized encodings (what the victim will actually re-encode after
/// decoding the generated queries) while gradients flow to `x` unchanged.
pub(crate) fn straight_through(g: &mut Graph, x: Var, quantized: &[Vec<f32>]) -> Var {
    let q = pace_ce::rows_to_matrix(quantized);
    let x_vals = g.value(x).clone();
    let mut delta = q;
    for (d, xv) in delta.data_mut().iter_mut().zip(x_vals.data()) {
        *d -= xv;
    }
    let delta = g.leaf(delta);
    g.add(x, delta)
}

/// The maximization objective (Eq. 10): mean Q-error of the model at `theta`
/// over the test workload.
pub(crate) fn poisoning_objective(
    g: &mut Graph,
    model: &CeModel,
    theta: &Binding,
    test_x: Var,
    test_ln: &[f32],
) -> Var {
    let out = model.forward(g, theta, test_x);
    q_error_loss(g, out, test_ln, model.ln_max())
}

/// Builds a standalone attack hypergradient tape — the graph both attack
/// loops differentiate: `K` unrolled virtual SGD updates of `model` on the
/// poisoning batch (Eq. 9), the test-workload Q-error objective at `θ_K`
/// (Eq. 10), and the hypergradient of that objective with respect to the
/// poisoning encodings.
///
/// Returns `(graph, outputs, inputs)` in the shape the static-analysis
/// tooling consumes ([`pace_tensor::opt::optimize`],
/// [`pace_tensor::dataflow`]): `outputs` is `[objective, ∂objective/∂x]`,
/// `inputs` is the poisoning-batch leaf followed by the `θ₀` parameter
/// leaves. Used by `xtask tape-report`, the `tape_opt` benchmark, and the
/// node-reduction acceptance test.
pub fn build_hypergradient_tape(
    model: &CeModel,
    poison_enc: &[Vec<f32>],
    poison_ln: &[f32],
    test_enc: &[Vec<f32>],
    test_ln: &[f32],
    steps: usize,
    lr: f32,
) -> (Graph, Vec<Var>, Vec<Var>) {
    let mut g = Graph::new();
    let x = g.leaf(pace_ce::rows_to_matrix(poison_enc));
    let theta0 = model.params().bind(&mut g);
    let mut inputs = vec![x];
    inputs.extend(theta0.vars().iter().copied());
    let theta_k = unroll_virtual_updates(&mut g, model, theta0, x, poison_ln, steps, lr);
    let test_x = g.leaf(pace_ce::rows_to_matrix(test_enc));
    let objective = poisoning_objective(&mut g, model, &theta_k, test_x, test_ln);
    let hypergrad = g.grad(objective, &[x])[0];
    (g, vec![objective, hypergrad], inputs)
}

pub use accelerated::train_generator_accelerated;
pub use baselines::{greedy_poison, loss_based_selection, random_poison, train_lbg};
pub use basic::train_generator_basic;
