//! The accelerated generator-training algorithm (paper Algorithm 1,
//! Figure 5(b)).
//!
//! Each iteration: train `G_j` on the join loss, generate a poisoning batch,
//! virtually update the surrogate in-graph (mirroring the victim's K-step
//! incremental update), push the generator up the hypergradient of the
//! test-workload Q-error, and confront the anomaly detector; every
//! `sync_every` iterations the surrogate is *really* updated on the current
//! batch (line 20), so generator and model "interact in time" instead of
//! wasting converged updates against stale counterparts.

use super::{
    poisoning_objective, straight_through, unroll_virtual_updates, AttackArtifacts, AttackConfig,
};
use crate::detector::AnomalyDetector;
use crate::generator::PoisonGenerator;
use crate::knowledge::AttackerKnowledge;
use pace_ce::{rows_to_matrix, CeModel, EncodedWorkload};
use pace_tensor::{Graph, Matrix};
use pace_workload::Query;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Trains a poisoning generator with the accelerated schedule.
///
/// * `surrogate` — the white-box stand-in for the victim model; it is
///   progressively poisoned during training (Algorithm 1 line 20).
/// * `count` — the attacker's `COUNT(*)` oracle for labeling generated
///   queries.
/// * `test` — the target workload whose estimation error is maximized.
/// * `historical` — encodings of historical queries (trains the detector).
pub fn train_generator_accelerated(
    surrogate: &mut CeModel,
    count: &mut dyn FnMut(&Query) -> u64,
    test: &EncodedWorkload,
    historical: &[Vec<f32>],
    k: &AttackerKnowledge,
    cfg: &AttackConfig,
) -> AttackArtifacts {
    let t0 = Instant::now();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut generator = PoisonGenerator::new(
        k.encoder.clone(),
        k.patterns.clone(),
        cfg.generator,
        cfg.seed ^ 0x9e1,
    );
    let detector = if cfg.use_detector && !historical.is_empty() {
        let mut d = AnomalyDetector::new(k.encoder.dim(), cfg.detector, cfg.seed ^ 0x9e2);
        d.train(historical, &mut rng);
        Some(d)
    } else {
        None
    };

    let test_n = cfg.test_subset.min(test.len()).max(1);
    let test_mat = rows_to_matrix(&test.enc[..test_n]);
    let test_ln = &test.ln_card[..test_n];

    let mut curve = Vec::with_capacity(cfg.iters);
    let mut best = f32::NEG_INFINITY;
    let mut best_params: Option<Vec<Matrix>> = None;
    let mut stall = 0usize;
    let base_lr = cfg.generator.lr;

    for it in 0..cfg.iters {
        // (1)–(2) join generation and Eq. 8 training.
        let batch = generator.sample_joins(&mut rng, cfg.batch);
        generator.join_loss_step(&batch);

        // (3)–(4) bound generation and masking.
        let mut g = Graph::new();
        let bind = generator.params().bind(&mut g);
        let x = generator.forward_bounds(&mut g, &bind, &batch);

        // (5) decode to concrete queries and label through the COUNT(*)
        // oracle (constants in the graph). The victim will re-encode the
        // *decoded* queries — bounds snapped to the integer domain — so the
        // unroll consumes the quantized encodings via a straight-through
        // estimator: values are quantized, gradients pass through to the
        // generator unchanged.
        let (queries, encs): (Vec<Query>, Vec<Vec<f32>>) = {
            let vals = g.value(x);
            let raw: Vec<Vec<f32>> = (0..cfg.batch).map(|r| vals.row_slice(r).to_vec()).collect();
            let queries: Vec<Query> = raw.iter().map(|e| generator.encoder().decode(e)).collect();
            let encs = queries
                .iter()
                .map(|q| generator.encoder().encode(q))
                .collect();
            (queries, encs)
        };
        let ln_labels: Vec<f32> = queries
            .iter()
            .map(|q| (count(q).max(1) as f32).ln())
            .collect();
        let x_q = if cfg.ablate_quantization {
            x
        } else {
            straight_through(&mut g, x, &encs)
        };

        // (6) virtual update of the surrogate, mirroring the victim's real
        // K-step incremental update so the hypergradient sees the full
        // deployment effect. (The acceleration over the basic algorithm is
        // the *interleaving* of generator and model updates — Lemma 5.2's
        // O(n₁+n₂) vs O(n₃(n₁+n₂)) — not a shallower lookahead.)
        let theta0 = surrogate.params().bind(&mut g);
        let theta1 = unroll_virtual_updates(
            &mut g,
            surrogate,
            theta0,
            x_q,
            &ln_labels,
            cfg.unroll_steps.max(1),
            cfg.unroll_lr,
        );

        // (7) hypergradient step on the poisoning objective.
        let test_x = g.leaf(test_mat.clone());
        let objective = poisoning_objective(&mut g, surrogate, &theta1, test_x, test_ln);
        pace_tensor::analysis::audit_if_enabled(&g, objective, bind.vars(), "attack::accelerated");
        let obj_value = g.value(objective).as_scalar();
        curve.push(obj_value);

        // (13)–(15) detector confrontation: reconstruction loss of flagged
        // queries back-propagates into the generator.
        if let Some(det) = &detector {
            let dbind = det.params().bind(&mut g);
            let errors = det.recon_error_graph(&mut g, &dbind, x);
            let flagged: Vec<f32> = g
                .value(errors)
                .data()
                .iter()
                .map(|&e| if e > det.threshold() { 1.0 } else { 0.0 })
                .collect();
            let n_flagged: f32 = flagged.iter().sum();
            if n_flagged > 0.0 {
                let mask = g.leaf(Matrix::from_vec(cfg.batch, 1, flagged));
                let masked = g.mul(errors, mask);
                let total = g.sum_all(masked);
                let recon_loss = g.mul_scalar(total, 1.0 / n_flagged);
                generator.apply_step(&mut g, recon_loss, &bind, "attack::accelerated::detector");
            }
        }

        // (19) generator ascent on the objective (descend its negative),
        // with a large-step escape when progress stalls (Section 5.3). The
        // best-performing generator state is checkpointed so an escape that
        // overshoots cannot cost the attack its progress — and a collapse
        // (objective far below the best seen) restores that checkpoint so
        // the curve re-converges instead of wandering from a wrecked state.
        if obj_value > best {
            best = obj_value;
            if !cfg.ablate_checkpoint {
                best_params = Some(generator.params().snapshot());
            }
            stall = 0;
        } else {
            stall += 1;
        }
        if !cfg.ablate_checkpoint && obj_value < best * 0.25 {
            if let Some(best_p) = &best_params {
                generator.params_mut().restore(best_p);
                generator.set_lr(base_lr);
                stall = 0;
                continue;
            }
        }
        if stall >= cfg.escape_patience {
            generator.set_lr(base_lr * cfg.escape_boost);
            stall = 0;
        } else {
            generator.set_lr(base_lr);
        }
        let loss = g.neg(objective);
        generator.apply_step(&mut g, loss, &bind, "attack::accelerated::hypergradient");

        // (20) periodic real surrogate update.
        if (it + 1) % cfg.sync_every.max(1) == 0 {
            let data = EncodedWorkload {
                enc: encs,
                ln_card: ln_labels,
            };
            surrogate.update(&data);
        }
    }

    if let Some(best) = best_params {
        generator.params_mut().restore(&best);
    }
    AttackArtifacts {
        generator,
        detector,
        objective_curve: curve,
        train_seconds: t0.elapsed().as_secs_f64(),
    }
}
