//! The accelerated generator-training algorithm (paper Algorithm 1,
//! Figure 5(b)).
//!
//! Each iteration: train `G_j` on the join loss, generate a poisoning batch,
//! virtually update the surrogate in-graph (mirroring the victim's K-step
//! incremental update), push the generator up the hypergradient of the
//! test-workload Q-error, and confront the anomaly detector; every
//! `sync_every` iterations the surrogate is *really* updated on the current
//! batch (line 20), so generator and model "interact in time" instead of
//! wasting converged updates against stale counterparts.
//!
//! The loop is resilient: the `COUNT(*)` oracle is fallible (the caller
//! supplies a retrying closure), and every `checkpoint_every` iterations the
//! generator snapshots its parameters, optimizer moments and RNG state; a
//! divergent iteration — non-finite objective or parameters, e.g. from an
//! injected NaN gradient — rolls back to the snapshot with a halved learning
//! rate instead of wrecking hours of attack progress.

use super::{
    poisoning_objective, straight_through, unroll_virtual_updates, AttackArtifacts, AttackConfig,
};
use crate::detector::AnomalyDetector;
use crate::generator::PoisonGenerator;
use crate::knowledge::AttackerKnowledge;
use crate::resilience::{CampaignError, ProbeError};
use pace_ce::{rows_to_matrix, CeModel, EncodedWorkload, TrainError};
use pace_tensor::optim::AdamState;
use pace_tensor::{Graph, Matrix};
use pace_workload::Query;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Everything both attack loops need to resume the optimization stream
/// exactly after a divergent iteration: generator params + Adam moments +
/// RNG state, the surrogate's params (the accelerated loop really updates
/// them), and the best-checkpoint bookkeeping.
pub(super) struct LoopCheckpoint {
    pub iter: usize,
    pub gen_params: Vec<Matrix>,
    pub gen_opt: AdamState,
    pub surrogate_params: Vec<Matrix>,
    pub rng: [u64; 4],
    pub best: f32,
    pub best_params: Option<Vec<Matrix>>,
    pub stall: usize,
    pub curve_len: usize,
}

impl LoopCheckpoint {
    /// Captures the loop state. Read-only: capturing must never perturb the
    /// optimization stream, so fault-free runs are bit-identical with any
    /// checkpoint cadence.
    #[allow(clippy::too_many_arguments)]
    pub fn capture(
        iter: usize,
        generator: &PoisonGenerator,
        surrogate: &CeModel,
        rng: &StdRng,
        best: f32,
        best_params: &Option<Vec<Matrix>>,
        stall: usize,
        curve_len: usize,
    ) -> Self {
        Self {
            iter,
            gen_params: generator.params().snapshot(),
            gen_opt: generator.opt_state(),
            surrogate_params: surrogate.params().snapshot(),
            rng: rng.state(),
            best,
            best_params: best_params.clone(),
            stall,
            curve_len,
        }
    }

    /// Restores everything captured; returns the iteration to resume from.
    #[allow(clippy::too_many_arguments)]
    pub fn restore(
        &self,
        generator: &mut PoisonGenerator,
        surrogate: &mut CeModel,
        rng: &mut StdRng,
        best: &mut f32,
        best_params: &mut Option<Vec<Matrix>>,
        stall: &mut usize,
        curve: &mut Vec<f32>,
    ) -> usize {
        generator.params_mut().restore(&self.gen_params);
        generator.set_opt_state(self.gen_opt.clone());
        surrogate.params_mut().restore(&self.surrogate_params);
        *rng = StdRng::from_state(self.rng);
        *best = self.best;
        *best_params = self.best_params.clone();
        *stall = self.stall;
        curve.truncate(self.curve_len);
        self.iter
    }
}

/// Trains a poisoning generator with the accelerated schedule.
///
/// * `surrogate` — the white-box stand-in for the victim model; it is
///   progressively poisoned during training (Algorithm 1 line 20).
/// * `count` — the attacker's `COUNT(*)` oracle for labeling generated
///   queries; fallible, typically a [`crate::resilience::ResilientOracle`]
///   closure. An error here means the oracle stayed down past every retry,
///   which aborts generator training with [`CampaignError::Oracle`].
/// * `test` — the target workload whose estimation error is maximized.
/// * `historical` — encodings of historical queries (trains the detector).
pub fn train_generator_accelerated(
    surrogate: &mut CeModel,
    count: &mut dyn FnMut(&Query) -> Result<u64, ProbeError>,
    test: &EncodedWorkload,
    historical: &[Vec<f32>],
    k: &AttackerKnowledge,
    cfg: &AttackConfig,
) -> Result<AttackArtifacts, CampaignError> {
    let _span = pace_tensor::trace::span("attack::accelerated");
    let t0 = Instant::now();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut generator = PoisonGenerator::new(
        k.encoder.clone(),
        k.patterns.clone(),
        cfg.generator,
        cfg.seed ^ 0x9e1,
    );
    let detector = if cfg.use_detector && !historical.is_empty() {
        let mut d = AnomalyDetector::new(k.encoder.dim(), cfg.detector, cfg.seed ^ 0x9e2);
        d.train(historical, &mut rng);
        Some(d)
    } else {
        None
    };

    let test_n = cfg.test_subset.min(test.len()).max(1);
    let test_mat = rows_to_matrix(&test.enc[..test_n]);
    let test_ln = &test.ln_card[..test_n];

    let mut curve = Vec::with_capacity(cfg.iters);
    let mut best = f32::NEG_INFINITY;
    let mut best_params: Option<Vec<Matrix>> = None;
    let mut stall = 0usize;
    let mut base_lr = cfg.generator.lr;

    let mut checkpoint =
        LoopCheckpoint::capture(0, &generator, surrogate, &rng, best, &best_params, stall, 0);
    let mut since_ckpt = 0usize;
    let mut rollbacks = 0u32;
    let mut it = 0usize;
    while it < cfg.iters {
        let _iter = pace_tensor::trace::span_at("attack::accelerated::iter", it as u64);
        if since_ckpt >= cfg.checkpoint_every.max(1)
            && generator.params_finite()
            && surrogate.params_finite()
        {
            checkpoint = LoopCheckpoint::capture(
                it,
                &generator,
                surrogate,
                &rng,
                best,
                &best_params,
                stall,
                curve.len(),
            );
            since_ckpt = 0;
        }
        // (1)–(2) join generation and Eq. 8 training.
        let batch = generator.sample_joins(&mut rng, cfg.batch);
        generator.join_loss_step(&batch);

        // (3)–(4) bound generation and masking.
        let mut g = Graph::new();
        let bind = generator.params().bind(&mut g);
        let x = generator.forward_bounds(&mut g, &bind, &batch);

        // (5) decode to concrete queries and label through the COUNT(*)
        // oracle (constants in the graph). The victim will re-encode the
        // *decoded* queries — bounds snapped to the integer domain — so the
        // unroll consumes the quantized encodings via a straight-through
        // estimator: values are quantized, gradients pass through to the
        // generator unchanged.
        let (queries, encs): (Vec<Query>, Vec<Vec<f32>>) = {
            let vals = g.value(x);
            let raw: Vec<Vec<f32>> = (0..cfg.batch).map(|r| vals.row_slice(r).to_vec()).collect();
            let queries: Vec<Query> = raw.iter().map(|e| generator.encoder().decode(e)).collect();
            let encs = queries
                .iter()
                .map(|q| generator.encoder().encode(q))
                .collect();
            (queries, encs)
        };
        let mut ln_labels: Vec<f32> = Vec::with_capacity(queries.len());
        for q in &queries {
            ln_labels.push((count(q)?.max(1) as f32).ln());
        }
        let x_q = if cfg.ablate_quantization {
            x
        } else {
            straight_through(&mut g, x, &encs)
        };

        // (6) virtual update of the surrogate, mirroring the victim's real
        // K-step incremental update so the hypergradient sees the full
        // deployment effect. (The acceleration over the basic algorithm is
        // the *interleaving* of generator and model updates — Lemma 5.2's
        // O(n₁+n₂) vs O(n₃(n₁+n₂)) — not a shallower lookahead.)
        let theta0 = surrogate.params().bind(&mut g);
        let theta1 = unroll_virtual_updates(
            &mut g,
            surrogate,
            theta0,
            x_q,
            &ln_labels,
            cfg.unroll_steps.max(1),
            cfg.unroll_lr,
        );

        // (7) hypergradient step on the poisoning objective.
        let test_x = g.leaf(test_mat.clone());
        let objective = poisoning_objective(&mut g, surrogate, &theta1, test_x, test_ln);
        pace_tensor::analysis::audit_if_enabled(&g, objective, bind.vars(), "attack::accelerated");
        let obj_value = g.value(objective).as_scalar();
        curve.push(obj_value);

        // (13)–(15) detector confrontation: reconstruction loss of flagged
        // queries back-propagates into the generator.
        if let Some(det) = &detector {
            let dbind = det.params().bind(&mut g);
            let errors = det.recon_error_graph(&mut g, &dbind, x);
            let flagged: Vec<f32> = g
                .value(errors)
                .data()
                .iter()
                .map(|&e| if e > det.threshold() { 1.0 } else { 0.0 })
                .collect();
            let n_flagged: f32 = flagged.iter().sum();
            if n_flagged > 0.0 {
                let mask = g.leaf(Matrix::from_vec(cfg.batch, 1, flagged));
                let masked = g.mul(errors, mask);
                let total = g.sum_all(masked);
                let recon_loss = g.mul_scalar(total, 1.0 / n_flagged);
                generator.apply_step(&mut g, recon_loss, &bind, "attack::accelerated::detector");
            }
        }

        // (19) generator ascent on the objective (descend its negative),
        // with a large-step escape when progress stalls (Section 5.3). The
        // best-performing generator state is checkpointed so an escape that
        // overshoots cannot cost the attack its progress — and a collapse
        // (objective far below the best seen) restores that checkpoint so
        // the curve re-converges instead of wandering from a wrecked state.
        if obj_value > best {
            best = obj_value;
            if !cfg.ablate_checkpoint {
                best_params = Some(generator.params().snapshot());
            }
            stall = 0;
        } else {
            stall += 1;
        }
        if !cfg.ablate_checkpoint && obj_value < best * 0.25 {
            if let Some(best_p) = &best_params {
                generator.params_mut().restore(best_p);
                generator.set_lr(base_lr);
                stall = 0;
                it += 1;
                since_ckpt += 1;
                continue;
            }
        }
        if stall >= cfg.escape_patience {
            generator.set_lr(base_lr * cfg.escape_boost);
            stall = 0;
        } else {
            generator.set_lr(base_lr);
        }
        let loss = g.neg(objective);
        generator.apply_step(&mut g, loss, &bind, "attack::accelerated::hypergradient");

        // (20) periodic real surrogate update.
        if (it + 1).is_multiple_of(cfg.sync_every.max(1)) {
            let data = EncodedWorkload {
                enc: encs,
                ln_card: ln_labels,
            };
            surrogate.update(&data)?;
        }

        // Divergence recovery: a non-finite objective or non-finite
        // parameters (the capped Q-error masks NaN through IEEE min/max, so
        // parameter finiteness is the authoritative signal) rolls the whole
        // loop state back and halves the learning rate.
        if !obj_value.is_finite() || !generator.params_finite() || !surrogate.params_finite() {
            if rollbacks >= cfg.max_rollbacks {
                return Err(CampaignError::Train(TrainError::Diverged { rollbacks }));
            }
            rollbacks += 1;
            pace_tensor::trace::CHECKPOINT_ROLLBACKS.add(1);
            base_lr *= 0.5;
            it = checkpoint.restore(
                &mut generator,
                surrogate,
                &mut rng,
                &mut best,
                &mut best_params,
                &mut stall,
                &mut curve,
            );
            since_ckpt = 0;
            continue;
        }
        it += 1;
        since_ckpt += 1;
    }

    if let Some(best) = best_params {
        generator.params_mut().restore(&best);
    }
    Ok(AttackArtifacts {
        generator,
        detector,
        objective_curve: curve,
        train_seconds: t0.elapsed().as_secs_f64(),
    })
}
