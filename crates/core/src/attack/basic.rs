//! The basic (strawman) generator-training algorithm (paper Figure 5(a)).
//!
//! Each outer round: (1) poison a copy of the surrogate for real with the
//! current generator's queries, starting from the original parameters `θ₀`;
//! (2) run many generator steps, each differentiating through a *full*
//! `K`-step unrolled update chain. The generator and the model only exchange
//! information once per outer round, so most inner updates chase stale
//! counterparts — this is exactly the inefficiency Algorithm 1 removes
//! (complexity `O(n₃(n₁+n₂))` vs `O(n₁+n₂)`; paper Section 5.3, Lemma 5.2).
//!
//! Like the accelerated loop, the oracle closure is fallible and each outer
//! round starts from a rollback checkpoint (generator params + optimizer +
//! RNG state): a divergent round — non-finite objective or parameters —
//! restarts from its own beginning with a halved learning rate.

use super::accelerated::LoopCheckpoint;
use super::{
    poisoning_objective, straight_through, unroll_virtual_updates, AttackArtifacts, AttackConfig,
};
use crate::detector::AnomalyDetector;
use crate::generator::PoisonGenerator;
use crate::knowledge::AttackerKnowledge;
use crate::resilience::{CampaignError, ProbeError};
use pace_ce::{rows_to_matrix, CeModel, EncodedWorkload, TrainError};
use pace_tensor::{Graph, Matrix};
use pace_workload::Query;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Trains a poisoning generator with the basic alternating schedule.
pub fn train_generator_basic(
    surrogate: &mut CeModel,
    count: &mut dyn FnMut(&Query) -> Result<u64, ProbeError>,
    test: &EncodedWorkload,
    historical: &[Vec<f32>],
    k: &AttackerKnowledge,
    cfg: &AttackConfig,
) -> Result<AttackArtifacts, CampaignError> {
    let _span = pace_tensor::trace::span("attack::basic");
    let t0 = Instant::now();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut generator = PoisonGenerator::new(
        k.encoder.clone(),
        k.patterns.clone(),
        cfg.generator,
        cfg.seed ^ 0xba1,
    );
    let detector = if cfg.use_detector && !historical.is_empty() {
        let mut d = AnomalyDetector::new(k.encoder.dim(), cfg.detector, cfg.seed ^ 0xba2);
        d.train(historical, &mut rng);
        Some(d)
    } else {
        None
    };

    let theta_origin = surrogate.params().snapshot();
    let test_n = cfg.test_subset.min(test.len()).max(1);
    let test_mat = rows_to_matrix(&test.enc[..test_n]);
    let test_ln = &test.ln_card[..test_n];
    let mut curve = Vec::new();
    let mut best = f32::NEG_INFINITY;
    let mut best_params: Option<Vec<Matrix>> = None;

    let mut rollbacks = 0u32;
    let mut base_lr = cfg.generator.lr;
    let mut outer = 0usize;
    // Checkpoint at outer-round granularity: each round starts from a clean
    // snapshot, so a divergent round is retried from its own beginning.
    let mut checkpoint =
        LoopCheckpoint::capture(0, &generator, surrogate, &rng, best, &best_params, 0, 0);
    while outer < cfg.basic_outer {
        let _round = pace_tensor::trace::span_at("attack::basic::round", outer as u64);
        if generator.params_finite() && surrogate.params_finite() {
            checkpoint = LoopCheckpoint::capture(
                outer,
                &generator,
                surrogate,
                &rng,
                best,
                &best_params,
                0,
                curve.len(),
            );
        }
        let mut diverged = false;
        // Step (2): optimize the generator against the current surrogate,
        // differentiating through the full K-step unroll each time.
        for _inner in 0..cfg.basic_inner {
            let batch = generator.sample_joins(&mut rng, cfg.batch);
            generator.join_loss_step(&batch);

            let mut g = Graph::new();
            let bind = generator.params().bind(&mut g);
            let x = generator.forward_bounds(&mut g, &bind, &batch);
            let queries: Vec<Query> = {
                let vals = g.value(x);
                (0..cfg.batch)
                    .map(|r| generator.encoder().decode(vals.row_slice(r)))
                    .collect()
            };
            let encs: Vec<Vec<f32>> = queries
                .iter()
                .map(|q| generator.encoder().encode(q))
                .collect();
            let mut ln_labels: Vec<f32> = Vec::with_capacity(queries.len());
            for q in &queries {
                ln_labels.push((count(q)?.max(1) as f32).ln());
            }
            let x_q = straight_through(&mut g, x, &encs);
            let theta0 = surrogate.params().bind(&mut g);
            let theta_k = unroll_virtual_updates(
                &mut g,
                surrogate,
                theta0,
                x_q,
                &ln_labels,
                cfg.unroll_steps.max(1),
                cfg.unroll_lr,
            );
            let test_x = g.leaf(test_mat.clone());
            let objective = poisoning_objective(&mut g, surrogate, &theta_k, test_x, test_ln);
            pace_tensor::analysis::audit_if_enabled(&g, objective, bind.vars(), "attack::basic");
            let obj_value = g.value(objective).as_scalar();
            curve.push(obj_value);
            if obj_value > best {
                best = obj_value;
                best_params = Some(generator.params().snapshot());
            }

            if let Some(det) = &detector {
                let dbind = det.params().bind(&mut g);
                let errors = det.recon_error_graph(&mut g, &dbind, x);
                let flagged: Vec<f32> = g
                    .value(errors)
                    .data()
                    .iter()
                    .map(|&e| if e > det.threshold() { 1.0 } else { 0.0 })
                    .collect();
                let n_flagged: f32 = flagged.iter().sum();
                if n_flagged > 0.0 {
                    let mask = g.leaf(Matrix::from_vec(cfg.batch, 1, flagged));
                    let masked = g.mul(errors, mask);
                    let total = g.sum_all(masked);
                    let recon_loss = g.mul_scalar(total, 1.0 / n_flagged);
                    generator.apply_step(&mut g, recon_loss, &bind, "attack::basic::detector");
                }
            }
            let loss = g.neg(objective);
            generator.apply_step(&mut g, loss, &bind, "attack::basic::hypergradient");
            // The capped Q-error loss masks NaN through IEEE min/max, so
            // parameter finiteness is the authoritative divergence signal.
            if !obj_value.is_finite() || !generator.params_finite() {
                diverged = true;
                break;
            }
        }

        if !diverged {
            // Step (3): regenerate queries, reset to θ₀, and poison for real.
            let (_, encs) = generator.generate(&mut rng, cfg.batch);
            let mut cards: Vec<u64> = Vec::with_capacity(encs.len());
            for e in &encs {
                cards.push(count(&generator.encoder().decode(e))?.max(1));
            }
            surrogate.params_mut().restore(&theta_origin);
            surrogate.update(&EncodedWorkload::from_parts(encs, &cards))?;
            if !surrogate.params_finite() {
                diverged = true;
            }
        }

        if diverged {
            if rollbacks >= cfg.max_rollbacks {
                return Err(CampaignError::Train(TrainError::Diverged { rollbacks }));
            }
            rollbacks += 1;
            pace_tensor::trace::CHECKPOINT_ROLLBACKS.add(1);
            base_lr *= 0.5;
            let mut stall = 0usize;
            outer = checkpoint.restore(
                &mut generator,
                surrogate,
                &mut rng,
                &mut best,
                &mut best_params,
                &mut stall,
                &mut curve,
            );
            generator.set_lr(base_lr);
            continue;
        }
        outer += 1;
    }

    if let Some(best) = best_params {
        generator.params_mut().restore(&best);
    }
    Ok(AttackArtifacts {
        generator,
        detector,
        objective_curve: curve,
        train_seconds: t0.elapsed().as_secs_f64(),
    })
}
