//! The four baseline poisoning strategies the paper compares against
//! (Section 7.1, "Baselines").

use super::{AttackArtifacts, AttackConfig};
use crate::generator::PoisonGenerator;
use crate::knowledge::AttackerKnowledge;
use crate::resilience::{CampaignError, ProbeError};
use pace_ce::{q_error_loss, CeModel};
use pace_tensor::Graph;
use pace_workload::{
    generate_queries_schema_only, q_error, schema_only_query_for_pattern, Predicate, Query,
    WorkloadSpec,
};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use std::time::Instant;

/// **Random**: draw poisoning queries from the same distribution as ordinary
/// workload queries.
pub fn random_poison(k: &AttackerKnowledge, rng: &mut StdRng, n: usize) -> Vec<Query> {
    generate_queries_schema_only(&k.encoder, &k.patterns, &k.spec, rng, n)
}

/// **Lb-S (loss-based selection)**: generate a 10× pool of random queries and
/// keep the `n` with the highest inference loss of the *unpoisoned* surrogate.
pub fn loss_based_selection(
    surrogate: &CeModel,
    count: &mut dyn FnMut(&Query) -> Result<u64, ProbeError>,
    k: &AttackerKnowledge,
    rng: &mut StdRng,
    n: usize,
) -> Result<Vec<Query>, CampaignError> {
    let pool = generate_queries_schema_only(&k.encoder, &k.patterns, &k.spec, rng, n * 10);
    let mut scored: Vec<(f64, Query)> = Vec::with_capacity(pool.len());
    for q in pool {
        let truth = count(&q)?.max(1) as f64;
        let score = q_error(surrogate.estimate_query(&q), truth);
        scored.push((score, q));
    }
    scored.sort_by(|a, b| b.0.total_cmp(&a.0));
    Ok(scored.into_iter().take(n).map(|(_, q)| q).collect())
}

/// **Greedy**: per query, pick a random join pattern, then build predicates
/// attribute by attribute, choosing among 10 random range conditions the one
/// that maximizes the unpoisoned surrogate's inference loss.
pub fn greedy_poison(
    surrogate: &CeModel,
    count: &mut dyn FnMut(&Query) -> Result<u64, ProbeError>,
    k: &AttackerKnowledge,
    rng: &mut StdRng,
    n: usize,
) -> Result<Vec<Query>, CampaignError> {
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let pattern = k.patterns[rng.random_range(0..k.patterns.len())].clone();
        let attrs: Vec<usize> = k
            .encoder
            .attributes()
            .iter()
            .enumerate()
            .filter(|(_, (t, _))| pattern.contains(t))
            .map(|(i, _)| i)
            .collect();
        let mut query = Query::new(pattern, vec![]);
        let budget = k.spec.max_predicates.min(attrs.len());
        for &attr in attrs.iter().take(budget) {
            let (t, c) = k.encoder.attributes()[attr];
            let stats = k.encoder.attr_stats(attr);
            let mut best: Option<(f64, Predicate)> = None;
            for _ in 0..10 {
                let a: f64 = rng.random_range(0.0..1.0);
                let b: f64 = rng.random_range(0.0..1.0);
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                let cand = Predicate {
                    table: t,
                    col: c,
                    lo: stats.denormalize(lo),
                    hi: stats.denormalize(hi),
                };
                let mut trial = query.clone();
                trial.predicates.push(cand);
                let truth = count(&trial)?.max(1) as f64;
                let score = q_error(surrogate.estimate_query(&trial), truth);
                if best.as_ref().is_none_or(|(s, _)| score > *s) {
                    best = Some((score, cand));
                }
            }
            if let Some((_, p)) = best {
                query.predicates.push(p);
            }
        }
        out.push(query);
    }
    Ok(out)
}

/// **Lb-G (loss-based generation)**: the same three-part generator as PACE,
/// but trained to maximize the inference loss of the *unpoisoned* surrogate
/// on the generated queries themselves — no bivariate lookahead, no detector.
pub fn train_lbg(
    surrogate: &CeModel,
    count: &mut dyn FnMut(&Query) -> Result<u64, ProbeError>,
    k: &AttackerKnowledge,
    cfg: &AttackConfig,
) -> Result<AttackArtifacts, CampaignError> {
    let t0 = Instant::now();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x1b6);
    let mut generator = PoisonGenerator::new(
        k.encoder.clone(),
        k.patterns.clone(),
        cfg.generator,
        cfg.seed ^ 0x1b7,
    );
    let mut curve = Vec::with_capacity(cfg.iters);
    for _ in 0..cfg.iters {
        let batch = generator.sample_joins(&mut rng, cfg.batch);
        generator.join_loss_step(&batch);
        let mut g = Graph::new();
        let bind = generator.params().bind(&mut g);
        let x = generator.forward_bounds(&mut g, &bind, &batch);
        let ln_labels: Vec<f32> = {
            let vals = g.value(x);
            let queries: Vec<Query> = (0..cfg.batch)
                .map(|r| generator.encoder().decode(vals.row_slice(r)))
                .collect();
            let mut labels = Vec::with_capacity(queries.len());
            for q in &queries {
                labels.push((count(q)?.max(1) as f32).ln());
            }
            labels
        };
        let theta = surrogate.params().bind(&mut g);
        let out = surrogate.forward(&mut g, &theta, x);
        let inference_loss = q_error_loss(&mut g, out, &ln_labels, surrogate.ln_max());
        curve.push(g.value(inference_loss).as_scalar());
        let loss = g.neg(inference_loss);
        generator.apply_step(&mut g, loss, &bind, "attack::baseline");
    }
    Ok(AttackArtifacts {
        generator,
        detector: None,
        objective_curve: curve,
        train_seconds: t0.elapsed().as_secs_f64(),
    })
}

/// Helper shared by experiments: a random query for one fixed pattern.
pub fn random_query_in_pattern(
    k: &AttackerKnowledge,
    rng: &mut StdRng,
    pattern: &[usize],
    spec: &WorkloadSpec,
) -> Query {
    schema_only_query_for_pattern(&k.encoder, spec, rng, pattern)
}
