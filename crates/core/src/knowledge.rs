//! What the attacker legitimately knows (threat model, paper Section 2.2).
//!
//! The attacker has the database schema (tables, columns, join constraints —
//! needed to craft legal SQL) and can run `COUNT(*)`/`EXPLAIN`. Everything in
//! [`AttackerKnowledge`] is derivable from that surface: attribute domains
//! from `SELECT MIN/MAX`-style counting probes, table sizes (and hence the
//! log-cardinality normalization constant) from `COUNT(*)` per table, and
//! valid join patterns from the schema's foreign keys.

use pace_data::{Dataset, Schema};
use pace_workload::{QueryEncoder, WorkloadSpec};

/// The attacker-side bundle of public knowledge about the victim database.
#[derive(Clone)]
pub struct AttackerKnowledge {
    /// Schema of the victim database.
    pub schema: Schema,
    /// Query encoder over the public attribute domains.
    pub encoder: QueryEncoder,
    /// Valid (connected) join patterns legal queries may use.
    pub patterns: Vec<Vec<usize>>,
    /// `ln C_max` — the output normalization constant, derived from
    /// `COUNT(*)` over unfiltered pattern joins.
    pub ln_max: f32,
    /// The query-shape parameters the attacker crafts probes with.
    pub spec: WorkloadSpec,
}

impl AttackerKnowledge {
    /// Derives the knowledge bundle from a dataset's public surface. Only
    /// schema metadata, column min/max, and table sizes are read — never the
    /// rows themselves.
    pub fn from_public(ds: &Dataset, spec: WorkloadSpec) -> Self {
        let max_join = spec.max_join_tables.max(1);
        Self {
            schema: ds.schema.clone(),
            encoder: QueryEncoder::new(ds),
            patterns: ds.schema.connected_patterns(max_join),
            ln_max: pace_engine::ln_max_cardinality(ds, 4) as f32,
            spec,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pace_data::{build, DatasetKind, Scale};

    #[test]
    fn knowledge_derives_consistent_shapes() {
        let ds = build(DatasetKind::Tpch, Scale::tiny(), 1);
        let k = AttackerKnowledge::from_public(&ds, WorkloadSpec::default());
        assert_eq!(k.encoder.num_tables(), ds.schema.num_tables());
        assert!(!k.patterns.is_empty());
        assert!(k.ln_max > 0.0);
        assert!(k.patterns.iter().all(|p| k.schema.is_connected(p)));
    }
}
