//! Robustness-aware model selection (paper Section 8, future work (2)):
//! "test the vulnerability of various cardinality estimation models and
//! recommend a robust one for the learned database systems."
//!
//! The advisor is defender-side tooling: the DBA owns the candidate models,
//! so each is stress-tested under the *worst-case* (white-box) PACE attack
//! and scored on clean accuracy and post-attack accuracy jointly.

use crate::attack::{train_generator_accelerated, AttackConfig};
use crate::knowledge::AttackerKnowledge;
use crate::resilience::{CampaignError, ProbeError};
use pace_ce::{CeConfig, CeModel, CeModelType, EncodedWorkload};
use pace_workload::{QErrorSummary, Query, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One candidate's stress-test outcome.
#[derive(Clone, Debug)]
pub struct ModelRobustness {
    /// The model family.
    pub model: CeModelType,
    /// Mean test Q-error before the attack.
    pub clean: f64,
    /// Mean test Q-error after a worst-case (white-box) PACE attack.
    pub poisoned: f64,
}

impl ModelRobustness {
    /// Joint score (lower is better): the geometric mean of clean and
    /// poisoned Q-error, so a model must be both accurate and robust.
    pub fn score(&self) -> f64 {
        (self.clean.max(1.0) * self.poisoned.max(1.0)).sqrt()
    }
}

/// Stress-test report over all candidate model families.
#[derive(Clone, Debug)]
pub struct RobustnessReport {
    /// Per-model outcomes, sorted best score first.
    pub rankings: Vec<ModelRobustness>,
}

impl RobustnessReport {
    /// The recommended model family (best joint score), or `None` for an
    /// empty report.
    pub fn recommended(&self) -> Option<CeModelType> {
        self.rankings.first().map(|r| r.model)
    }
}

/// Trains every model family on `train`, stress-tests each with a white-box
/// PACE attack against `test`, and ranks them.
///
/// `count` is the defender's own exact-count oracle (they own the database);
/// it is still fallible — even an in-house oracle times out — and an
/// exhausted oracle or an unrecoverably divergent stress-test surfaces as a
/// typed [`CampaignError`].
pub fn recommend_robust_model(
    k: &AttackerKnowledge,
    count: &mut dyn FnMut(&Query) -> Result<u64, ProbeError>,
    train: &Workload,
    test: &Workload,
    ce: CeConfig,
    attack: &AttackConfig,
    seed: u64,
) -> Result<RobustnessReport, CampaignError> {
    let train_data = {
        let enc = train.iter().map(|lq| k.encoder.encode(&lq.query)).collect();
        let cards: Vec<u64> = train.iter().map(|lq| lq.cardinality).collect();
        EncodedWorkload::from_parts(enc, &cards)
    };
    let test_data = {
        let enc = test.iter().map(|lq| k.encoder.encode(&lq.query)).collect();
        let cards: Vec<u64> = test.iter().map(|lq| lq.cardinality).collect();
        EncodedWorkload::from_parts(enc, &cards)
    };
    let historical: Vec<Vec<f32>> = train_data.enc.clone();

    let mut rankings: Vec<ModelRobustness> = Vec::with_capacity(CeModelType::all().len());
    for ty in CeModelType::all() {
        let mut rng = StdRng::seed_from_u64(seed ^ (ty as u64 + 1));
        let mut model = CeModel::with_encoder(ty, k.encoder.clone(), k.ln_max, ce, seed);
        model.train(&train_data, &mut rng)?;
        let clean = QErrorSummary::from_samples(&model.evaluate(&test_data)).mean;
        // Worst case: the attacker's surrogate IS the model.
        let mut surrogate = model.clone();
        let artifacts =
            train_generator_accelerated(&mut surrogate, count, &test_data, &historical, k, attack)?;
        let (_, poison_encs) = artifacts.generator.generate(&mut rng, attack.n_poison);
        let mut cards: Vec<u64> = Vec::with_capacity(poison_encs.len());
        for e in &poison_encs {
            cards.push(count(&k.encoder.decode(e))?.max(1));
        }
        model.update(&EncodedWorkload::from_parts(poison_encs, &cards))?;
        let poisoned = QErrorSummary::from_samples(&model.evaluate(&test_data)).mean;
        rankings.push(ModelRobustness {
            model: ty,
            clean,
            poisoned,
        });
    }
    rankings.sort_by(|a, b| a.score().total_cmp(&b.score()));
    Ok(RobustnessReport { rankings })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::victim::BlackBox;
    use crate::victim::Victim;
    use pace_data::{build, DatasetKind, Scale};
    use pace_engine::Executor;
    use pace_workload::{generate_queries, WorkloadSpec};

    #[test]
    fn advisor_ranks_all_families_and_recommends_one() {
        let ds = build(DatasetKind::Dmv, Scale::tiny(), 61);
        let spec = WorkloadSpec::single_table();
        let exec = Executor::new(&ds);
        let mut rng = StdRng::seed_from_u64(62);
        let train = exec.label_nonzero(generate_queries(&ds, &spec, &mut rng, 250));
        let test = exec.label_nonzero(generate_queries(&ds, &spec, &mut rng, 60));
        let k = AttackerKnowledge::from_public(&ds, spec);
        let oracle = Victim::new(
            CeModel::with_encoder(
                CeModelType::Linear,
                k.encoder.clone(),
                k.ln_max,
                CeConfig::quick(),
                63,
            ),
            Executor::new(&ds),
            vec![],
        );
        let mut count = |q: &Query| oracle.count(q);
        let attack = AttackConfig {
            iters: 6,
            batch: 24,
            n_poison: 24,
            ..AttackConfig::quick()
        };
        let report = recommend_robust_model(
            &k,
            &mut count,
            &train,
            &test,
            CeConfig {
                epochs: 10,
                ..CeConfig::quick()
            },
            &attack,
            64,
        )
        .expect("no faults installed");
        assert_eq!(report.rankings.len(), 6);
        // Sorted by score ascending.
        for w in report.rankings.windows(2) {
            assert!(w[0].score() <= w[1].score());
        }
        let rec = report.recommended().expect("non-empty rankings");
        assert!(CeModelType::all().contains(&rec));
        // Every candidate has sane measurements.
        for r in &report.rankings {
            assert!(r.clean >= 1.0 && r.clean.is_finite());
            assert!(r.poisoned >= 1.0 && r.poisoned.is_finite());
        }
    }
}
