//! `pace-core` — the PACE poisoning-attack framework (the paper's primary
//! contribution).
//!
//! Given only black-box access to a learned query-driven cardinality
//! estimator (`EXPLAIN` + `COUNT(*)` + schema), PACE crafts a small batch of
//! legal SPJ queries that, once the estimator incrementally trains on them,
//! wreck its accuracy on a target workload — while keeping the poisoning
//! queries distributionally close to the historical workload.
//!
//! The pipeline (paper Figure 2):
//!
//! 1. **Surrogate acquisition** ([`surrogate`]): speculate the black box's
//!    model type from behavioral similarity over diverse probes (Eq. 5),
//!    then train a white-box surrogate by imitation (Eq. 6/7).
//! 2. **Generator training** ([`attack`]): optimize the three-part query
//!    generator ([`generator`]) against the bivariate objective (Eq. 10) with
//!    hypergradients through unrolled surrogate updates — the basic
//!    (Figure 5a) and accelerated (Algorithm 1) schedules are both provided —
//!    while an adversarial VAE [`detector`] keeps generated queries
//!    in-distribution.
//! 3. **Attacking** ([`run_attack`]): inject the generated queries; the victim
//!    labels them with true cardinalities and updates itself, absorbing the
//!    poison.
//!
//! Baselines (Random / Lb-S / Greedy / Lb-G) live in [`attack::baselines`],
//! and the paper's future-work directions are implemented in [`budget`]
//! (budget-constrained attacks), [`defense`] (a poison-screening classifier
//! trained on PACE's own output) and [`advisor`] (robustness-aware model
//! recommendation).
//!
//! All oracle interaction is fallible and fault-tolerant: probes return
//! typed [`ProbeError`]s and every call site retries through a
//! [`ResilientOracle`] governed by a [`RetryPolicy`] ([`resilience`]);
//! long-running attacks persist resumable progress through [`campaign`].
//! Deterministic fault injection for all of it is configured with the
//! `PACE_FAULTS` environment variable (see `pace_tensor::fault`).

#![warn(missing_docs)]

pub mod advisor;
pub mod attack;
pub mod budget;
pub mod campaign;
pub mod defense;
pub mod detector;
pub mod generator;
mod knowledge;
mod pipeline;
pub mod resilience;
pub mod served;
pub mod surrogate;
mod victim;

pub use advisor::{recommend_robust_model, ModelRobustness, RobustnessReport};
pub use attack::{AttackArtifacts, AttackConfig};
pub use budget::{select_budgeted_poison, BudgetedSelection};
pub use campaign::{run_campaign, run_served_campaign};
pub use defense::{ClassifierConfig, PoisonClassifier};
pub use detector::{AnomalyDetector, DetectorConfig};
pub use generator::{GeneratorConfig, JoinBatch, PoisonGenerator};
pub use knowledge::AttackerKnowledge;
pub use pipeline::{craft_poison, run_attack, AttackMethod, AttackOutcome, PipelineConfig};
pub use resilience::{
    run_queries_resilient, CampaignError, OracleStats, ProbeError, ResilientOracle, RetryPolicy,
};
pub use served::{ServedTraffic, ServedVictim, WaveSwap};
pub use surrogate::{
    imitation_error, speculate_model_type, train_surrogate, ImitationStrategy, SpeculationConfig,
    SpeculationResult, SurrogateConfig,
};
pub use victim::{AttackTarget, BlackBox, Victim};
