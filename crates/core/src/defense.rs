//! Defenses built *from* the attack (paper Section 8, future work (1)):
//! a supervised poison classifier trained on PACE-generated queries, usable
//! by a learned database system to screen its training stream.
//!
//! The workflow the paper sketches: run PACE against your own system in a
//! sandbox, collect the generated poisoning queries as positive examples and
//! the historical workload as negatives, and train a classifier that guards
//! the estimator's incremental updates.

use pace_tensor::nn::{Activation, Mlp};
use pace_tensor::optim::{clip_global_norm, sanitize, Adam, Optimizer};
use pace_tensor::{Graph, Matrix, ParamStore};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Hyperparameters of the poison classifier.
#[derive(Clone, Copy, Debug)]
pub struct ClassifierConfig {
    /// Hidden width.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Decision threshold on the sigmoid output.
    pub threshold: f32,
}

impl Default for ClassifierConfig {
    fn default() -> Self {
        Self {
            hidden: 64,
            epochs: 40,
            batch_size: 64,
            lr: 1e-3,
            threshold: 0.5,
        }
    }
}

/// A binary MLP classifier: poison (1) vs benign (0) query encodings.
pub struct PoisonClassifier {
    params: ParamStore,
    mlp: Mlp,
    config: ClassifierConfig,
}

impl PoisonClassifier {
    /// Creates an untrained classifier over `dim`-wide encodings.
    pub fn new(dim: usize, config: ClassifierConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = ParamStore::new();
        let mlp = Mlp::new(
            &mut params,
            &mut rng,
            "clf",
            &[dim, config.hidden, config.hidden, 1],
            Activation::Relu,
            Activation::Sigmoid,
        );
        Self {
            params,
            mlp,
            config,
        }
    }

    /// Trains on labeled encodings; returns the final epoch's mean BCE loss.
    ///
    /// # Panics
    /// Panics when either class is empty or widths are inconsistent.
    pub fn train(&mut self, poison: &[Vec<f32>], benign: &[Vec<f32>], rng: &mut StdRng) -> f32 {
        assert!(
            !poison.is_empty() && !benign.is_empty(),
            "need both classes"
        );
        let mut examples: Vec<(&Vec<f32>, f32)> = Vec::with_capacity(poison.len() + benign.len());
        examples.extend(poison.iter().map(|e| (e, 1.0f32)));
        examples.extend(benign.iter().map(|e| (e, 0.0f32)));
        let mut adam = Adam::new(self.config.lr);
        let mut final_loss = f32::MAX;
        for _ in 0..self.config.epochs {
            examples.shuffle(rng);
            let mut sum = 0.0;
            let mut batches = 0;
            for chunk in examples.chunks(self.config.batch_size) {
                let rows: Vec<Vec<f32>> = chunk.iter().map(|(e, _)| (*e).clone()).collect();
                let labels: Vec<f32> = chunk.iter().map(|(_, y)| *y).collect();
                sum += self.step(&rows, &labels, &mut adam);
                batches += 1;
            }
            final_loss = sum / batches as f32;
        }
        final_loss
    }

    fn step(&mut self, rows: &[Vec<f32>], labels: &[f32], adam: &mut Adam) -> f32 {
        let n = rows.len();
        let mut g = Graph::new();
        let bind = self.params.bind(&mut g);
        let x = g.leaf(pace_ce::rows_to_matrix(rows));
        let p = self.mlp.forward(&mut g, &bind, x);
        let y = g.leaf(Matrix::from_vec(n, 1, labels.to_vec()));
        // BCE with clamping.
        let eps = g.leaf(Matrix::full(n, 1, 1e-5));
        let cap = g.leaf(Matrix::full(n, 1, 1.0 - 1e-5));
        let p = g.maximum(p, eps);
        let p = g.minimum(p, cap);
        let lnp = g.ln(p);
        let t1 = g.mul(y, lnp);
        let ny = g.neg(y);
        let one_minus_y = g.add_scalar(ny, 1.0);
        let np = g.neg(p);
        let one_minus_p = g.add_scalar(np, 1.0);
        let lnq = g.ln(one_minus_p);
        let t2 = g.mul(one_minus_y, lnq);
        let s = g.add(t1, t2);
        let m = g.mean_all(s);
        let loss = g.neg(m);
        let value = g.value(loss).as_scalar();
        let mut grads: Vec<Matrix> = g
            .grad(loss, bind.vars())
            .iter()
            .map(|&v| g.value(v).clone())
            .collect();
        sanitize(&mut grads);
        clip_global_norm(&mut grads, 5.0);
        adam.step(&mut self.params, &grads);
        value
    }

    /// Poison probability per encoding.
    pub fn scores(&self, rows: &[Vec<f32>]) -> Vec<f32> {
        if rows.is_empty() {
            return Vec::new();
        }
        let mut g = Graph::new();
        let bind = self.params.bind(&mut g);
        let x = g.leaf(pace_ce::rows_to_matrix(rows));
        let p = self.mlp.forward(&mut g, &bind, x);
        g.value(p).data().to_vec()
    }

    /// Whether each encoding is classified as poison.
    pub fn is_poison(&self, rows: &[Vec<f32>]) -> Vec<bool> {
        self.scores(rows)
            .iter()
            .map(|&s| s > self.config.threshold)
            .collect()
    }

    /// (true-positive rate on `poison`, false-positive rate on `benign`).
    pub fn evaluate(&self, poison: &[Vec<f32>], benign: &[Vec<f32>]) -> (f64, f64) {
        let tp = self.is_poison(poison).iter().filter(|&&b| b).count();
        let fp = self.is_poison(benign).iter().filter(|&&b| b).count();
        (
            tp as f64 / poison.len().max(1) as f64,
            fp as f64 / benign.len().max(1) as f64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{GeneratorConfig, PoisonGenerator};
    use pace_data::{build, DatasetKind, Scale};
    use pace_workload::{generate_queries, QueryEncoder, WorkloadSpec};

    #[test]
    fn classifier_separates_generator_output_from_workload() {
        let ds = build(DatasetKind::Tpch, Scale::tiny(), 21);
        let enc = QueryEncoder::new(&ds);
        let mut rng = StdRng::seed_from_u64(22);
        let benign: Vec<Vec<f32>> = generate_queries(&ds, &WorkloadSpec::default(), &mut rng, 300)
            .iter()
            .map(|q| enc.encode(q))
            .collect();
        // An untrained generator's raw output is far from the workload
        // distribution — exactly what a screening classifier must catch.
        let generator = PoisonGenerator::new(
            enc.clone(),
            ds.schema.connected_patterns(3),
            GeneratorConfig::default(),
            23,
        );
        let (_, poison) = generator.generate(&mut rng, 200);

        let mut clf = PoisonClassifier::new(enc.dim(), ClassifierConfig::default(), 24);
        // Hold out 50 of each class.
        clf.train(&poison[..150], &benign[..250], &mut rng);
        let (tpr, fpr) = clf.evaluate(&poison[150..], &benign[250..]);
        assert!(tpr > 0.7, "true-positive rate too low: {tpr}");
        assert!(fpr < 0.3, "false-positive rate too high: {fpr}");
    }

    #[test]
    fn scores_are_probabilities() {
        let clf = PoisonClassifier::new(8, ClassifierConfig::default(), 1);
        let rows = vec![vec![0.1f32; 8], vec![0.9f32; 8]];
        for s in clf.scores(&rows) {
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn training_requires_both_classes() {
        let mut clf = PoisonClassifier::new(4, ClassifierConfig::default(), 1);
        let mut rng = StdRng::seed_from_u64(2);
        let _ = clf.train(&[], &[vec![0.0; 4]], &mut rng);
    }
}
